package qcache

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateImmediateGrant(t *testing.T) {
	g := NewGate(4, 0, nil)
	if err := g.Acquire(context.Background(), 3); err != nil {
		t.Fatalf("Acquire(3) on an empty gate: %v", err)
	}
	if got := g.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	g.Release(3)
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after Release = %d, want 0", got)
	}
}

func TestGateWeightClamp(t *testing.T) {
	g := NewGate(2, 0, nil)
	// Heavier than capacity: clamped, runs alone.
	if err := g.Acquire(context.Background(), 10); err != nil {
		t.Fatalf("oversized Acquire: %v", err)
	}
	if got := g.InUse(); got != 2 {
		t.Fatalf("InUse = %d, want clamped 2", got)
	}
	g.Release(10)
	// Zero weight counts as one.
	if err := g.Acquire(context.Background(), 0); err != nil {
		t.Fatalf("zero-weight Acquire: %v", err)
	}
	if got := g.InUse(); got != 1 {
		t.Fatalf("InUse = %d, want 1", got)
	}
	g.Release(0)
}

func TestGateFIFOOrder(t *testing.T) {
	g := NewGate(1, 10, nil)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	order := make(chan int, waiters)
	started := make(chan struct{})
	for i := 0; i < waiters; i++ {
		go func(i int) {
			// Serialize queue entry so arrival order is deterministic.
			<-started
			if err := g.Acquire(context.Background(), 1); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				order <- -1
				return
			}
			order <- i
			g.Release(1)
		}(i)
		started <- struct{}{} // handshake: goroutine i is about to Acquire
		for g.QueueDepth() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	g.Release(1)
	for i := 0; i < waiters; i++ {
		if got := <-order; got != i {
			t.Fatalf("grant %d went to waiter %d, want FIFO", i, got)
		}
	}
}

func TestGateOverflow(t *testing.T) {
	g := NewGate(1, 1, nil)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.Acquire(context.Background(), 1) }()
	for g.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Queue full: the next request is shed.
	if err := g.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire past a full queue = %v, want ErrOverloaded", err)
	}
	g.Release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.Release(1)
}

func TestGateCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 4, nil)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.Acquire(ctx, 1) }()
	for g.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
	}
	if got := g.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after cancel = %d, want 0", got)
	}
	// The canceled waiter must not have leaked capacity.
	g.Release(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("gate unusable after a canceled waiter: %v", err)
	}
	g.Release(1)
}

func TestGateNoOvertaking(t *testing.T) {
	g := NewGate(4, 10, nil)
	if err := g.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Queue: [3, 1].
	acq3 := make(chan struct{})
	go func() {
		_ = g.Acquire(context.Background(), 3)
		close(acq3)
	}()
	for g.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	acq1 := make(chan struct{})
	go func() {
		_ = g.Acquire(context.Background(), 1)
		close(acq1)
	}()
	for g.QueueDepth() != 2 {
		time.Sleep(time.Millisecond)
	}
	// One unit frees: the 1-weight behind the queued 3-weight would fit,
	// but FIFO means it must not overtake.
	g.Release(1)
	time.Sleep(20 * time.Millisecond)
	select {
	case <-acq1:
		t.Fatal("1-weight waiter overtook the queued 3-weight")
	default:
	}
	if got := g.QueueDepth(); got != 2 {
		t.Fatalf("QueueDepth after non-fitting release = %d, want 2", got)
	}
	// The front's weight frees: both fit now and both are admitted.
	g.Release(3)
	<-acq3
	<-acq1
	if got := g.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
}

func TestGateDepthHook(t *testing.T) {
	var last atomic.Int64
	g := NewGate(1, 4, func(d int) { last.Store(int64(d)) })
	_ = g.Acquire(context.Background(), 1)
	done := make(chan struct{})
	go func() {
		_ = g.Acquire(context.Background(), 1)
		close(done)
	}()
	for g.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	if got := last.Load(); got != 1 {
		t.Fatalf("depth hook saw %d, want 1", got)
	}
	g.Release(1)
	<-done
	if got := last.Load(); got != 0 {
		t.Fatalf("depth hook after grant saw %d, want 0", got)
	}
	g.Release(1)
}

func TestNilGate(t *testing.T) {
	var g *Gate
	if err := g.Acquire(context.Background(), 5); err != nil {
		t.Fatalf("nil gate Acquire: %v", err)
	}
	g.Release(5)
	if g.QueueDepth() != 0 || g.InUse() != 0 {
		t.Fatal("nil gate reports usage")
	}
	if NewGate(0, 0, nil) != nil {
		t.Fatal("NewGate(0) should return the nil unlimited gate")
	}
}

func TestGateWidthScalesAdmission(t *testing.T) {
	// The predictive-routing capacity argument in one invariant: a gate
	// sized for two full-width queries admits capacity/k narrowed ones,
	// so halving the average fan-out width doubles admitted concurrency.
	g := NewGate(6, 1, nil)

	// mustQueue asserts one more Acquire of the given weight cannot be
	// admitted now: it parks in the queue, and canceling it unparks it.
	mustQueue := func(weight int) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		queued := make(chan error, 1)
		go func() { queued <- g.Acquire(ctx, weight) }()
		for g.QueueDepth() != 1 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		if err := <-queued; !errors.Is(err, context.Canceled) {
			t.Fatalf("queued Acquire(%d) = %v, want context.Canceled", weight, err)
		}
	}

	for i := 0; i < 2; i++ {
		if err := g.Acquire(context.Background(), 3); err != nil {
			t.Fatalf("full-width Acquire %d: %v", i, err)
		}
	}
	// Capacity holds exactly two full-width queries.
	mustQueue(3)
	g.Release(3)
	g.Release(3)

	// Narrowed to width 1, the same gate runs six queries at once.
	for i := 0; i < 6; i++ {
		if err := g.Acquire(context.Background(), 1); err != nil {
			t.Fatalf("narrowed Acquire %d: %v", i, err)
		}
	}
	if got := g.InUse(); got != 6 {
		t.Fatalf("InUse = %d, want 6", got)
	}
	mustQueue(1)
	for i := 0; i < 6; i++ {
		g.Release(1)
	}
}
