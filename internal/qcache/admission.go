package qcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned by Gate.Acquire when both the semaphore and
// the wait queue are full — the caller should shed the request (the
// server maps it to 429 + Retry-After).
var ErrOverloaded = errors.New("qcache: at capacity and the wait queue is full")

// Gate is a weighted semaphore with a bounded FIFO wait queue — the
// admission controller in front of orchestration. Capacity is measured
// in orchestration weight: callers acquire the fan-out width of their
// query (a 3-model query weighs 3), so the bound tracks concurrent model
// streams, the resource that actually saturates a backend. A request
// heavier than the whole capacity is clamped to it and simply runs
// alone.
//
// All methods are safe for concurrent use; a nil *Gate admits everything
// immediately.
type Gate struct {
	capacity int
	maxQueue int
	onDepth  func(int) // queue-depth change hook (telemetry gauge)

	mu      sync.Mutex
	inUse   int
	waiters list.List // of *waiter, front = longest waiting
}

type waiter struct {
	ready  chan struct{} // closed when the slot is granted
	weight int
}

// NewGate builds a Gate admitting at most capacity units of concurrent
// weight, with at most maxQueue requests waiting behind a full
// semaphore (non-positive maxQueue means 2×capacity). onDepth, when
// non-nil, is called with the new queue depth after every change; it
// runs while the gate's lock is held — so successive depths are
// delivered in order and the last call always reports the true depth —
// and therefore must be fast and must not call back into the Gate. A
// non-positive capacity returns nil — the unlimited gate.
func NewGate(capacity, maxQueue int, onDepth func(int)) *Gate {
	if capacity <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = 2 * capacity
	}
	return &Gate{capacity: capacity, maxQueue: maxQueue, onDepth: onDepth}
}

// notifyDepthLocked publishes the current queue depth to the hook.
// Callers must hold g.mu: keeping the callback under the lock is what
// serializes notifications, so the gauge can never be left stale by a
// reordered pair of concurrent updates.
func (g *Gate) notifyDepthLocked() {
	if g.onDepth != nil {
		g.onDepth(g.waiters.Len())
	}
}

func (g *Gate) clamp(weight int) int {
	if weight < 1 {
		return 1
	}
	if weight > g.capacity {
		return g.capacity
	}
	return weight
}

// Acquire claims weight units, waiting in FIFO order behind a full
// semaphore. It returns nil when granted, ErrOverloaded when the wait
// queue is also full, or the context error if ctx ends while queued.
// Every nil return must be paired with a Release of the same weight.
func (g *Gate) Acquire(ctx context.Context, weight int) error {
	if g == nil {
		return nil
	}
	weight = g.clamp(weight)
	g.mu.Lock()
	// Strict FIFO: a newcomer may not overtake parked waiters even when
	// it would fit right now.
	if g.waiters.Len() == 0 && g.inUse+weight <= g.capacity {
		g.inUse += weight
		g.mu.Unlock()
		return nil
	}
	if g.waiters.Len() >= g.maxQueue {
		g.mu.Unlock()
		return ErrOverloaded
	}
	w := &waiter{ready: make(chan struct{}), weight: weight}
	el := g.waiters.PushBack(w)
	g.notifyDepthLocked()
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation; the slot is ours. Let the
			// caller proceed — its orchestration context is dead anyway and
			// will release almost immediately, which keeps the
			// acquire/release pairing uniform.
			g.mu.Unlock()
			return nil
		default:
		}
		g.waiters.Remove(el)
		g.notifyDepthLocked()
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns weight units and hands freed capacity to the waiting
// queue in FIFO order (stopping at the first waiter that still does not
// fit — no overtaking).
func (g *Gate) Release(weight int) {
	if g == nil {
		return
	}
	weight = g.clamp(weight)
	g.mu.Lock()
	g.inUse -= weight
	if g.inUse < 0 {
		g.inUse = 0
	}
	granted := false
	for g.waiters.Len() > 0 {
		w := g.waiters.Front().Value.(*waiter)
		if g.inUse+w.weight > g.capacity {
			break
		}
		g.waiters.Remove(g.waiters.Front())
		g.inUse += w.weight
		close(w.ready)
		granted = true
	}
	if granted {
		g.notifyDepthLocked()
	}
	g.mu.Unlock()
}

// QueueDepth reports how many requests are parked in the wait queue.
func (g *Gate) QueueDepth() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters.Len()
}

// InUse reports the weight currently admitted (for tests and debugging).
func (g *Gate) InUse() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}
