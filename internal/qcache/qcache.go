// Package qcache implements the cross-query serving layer of LLM-MS:
// the machinery that lets the platform absorb heavy repeated traffic
// without paying a full multi-model orchestration per request.
//
// Three cooperating pieces live here, each usable on its own:
//
//   - Cache: a two-tier answer cache. The exact tier is an LRU+TTL map
//     keyed on the normalized query plus an opaque scope string (strategy,
//     model set, token budget, RAG fingerprint — everything non-semantic
//     that changes the answer). The semantic tier embeds the normalized
//     query with an embedding.Encoder and matches it against cached
//     entries through a vectordb cosine collection (the unit-cosine fast
//     path), returning a near-duplicate's answer when similarity clears a
//     configurable threshold. This is the bounded-staleness trade the
//     networked-LLM literature motivates: a semantically equivalent
//     answer now instead of an identical answer after a full fan-out.
//
//   - Group/Flight: singleflight-style coalescing for streaming
//     responses. The first request for a key becomes the leader and
//     publishes every frame it streams into a bounded broadcast buffer;
//     identical requests arriving while the leader is in flight replay
//     that buffer (history first, then live) and share the leader's
//     result, so one orchestration serves every concurrent duplicate
//     with full streaming semantics.
//
//   - Gate: admission control. A weighted semaphore bounds the total
//     concurrent orchestration weight (callers weigh a query by its
//     fan-out width) with a small context-aware FIFO wait queue in
//     front; when the queue is full, Acquire fails fast so the server
//     can shed load with 429 + Retry-After instead of collapsing.
//
// The package is deliberately value-agnostic: cached values and flight
// results are `any`, so the application layer decides what an "answer"
// is (the server stores recorded SSE frames plus the final result).
package qcache

import (
	"container/list"
	"strings"
	"sync"
	"time"
	"unicode"

	"llmms/internal/embedding"
	"llmms/internal/vectordb"
)

// Defaults for Options fields left zero.
const (
	// DefaultCapacity bounds the exact-tier entry count.
	DefaultCapacity = 256
	// DefaultTTL is the entry lifetime.
	DefaultTTL = 5 * time.Minute
	// DefaultSemanticThreshold is the cosine similarity above which two
	// distinct queries are close enough to share an answer. 0.97 is
	// deliberately conservative: with the hashing encoder it admits
	// trivial rephrasings (case, punctuation, stopword shuffles) while
	// rejecting queries that differ in any content word.
	DefaultSemanticThreshold = 0.97
)

// keySep joins the normalized query and the scope into one exact-tier
// key; it cannot appear in either part (queries are normalized to
// printable text, scopes are caller-built ASCII).
const keySep = "\x1f"

// Key identifies one cacheable answer.
type Key struct {
	// Query is the raw user query; it is normalized (lowercased,
	// whitespace-collapsed) before use, so trivially reformatted
	// duplicates collide in the exact tier.
	Query string
	// Scope is everything non-semantic that changes the answer: the
	// caller packs strategy, model set, token budget, scoring weights,
	// and the RAG fingerprint into this opaque string. Two keys match —
	// exactly or semantically — only within the same scope.
	Scope string
}

// ID returns the canonical identity string of the key: the normalized
// query joined with the scope. It doubles as the coalescing key and the
// semantic tier's document id.
func (k Key) ID() string { return Normalize(k.Query) + keySep + k.Scope }

// Normalize canonicalizes a query for exact-tier matching: lowercase,
// leading/trailing space trimmed, internal whitespace runs collapsed to
// single spaces.
func Normalize(q string) string {
	return strings.ToLower(strings.Join(strings.FieldsFunc(q, unicode.IsSpace), " "))
}

// HitKind classifies a cache lookup.
type HitKind int

// Lookup outcomes.
const (
	// Miss means no usable entry exists.
	Miss HitKind = iota
	// Exact means the normalized query matched an entry byte-for-byte.
	Exact
	// Semantic means a distinct query's entry matched above the
	// similarity threshold.
	Semantic
)

// Options tunes a Cache. The zero value takes every default.
type Options struct {
	// Capacity bounds the number of entries; the least recently used
	// entry is evicted at the bound. Non-positive means DefaultCapacity.
	Capacity int
	// TTL is how long an entry stays servable. Non-positive means
	// DefaultTTL.
	TTL time.Duration
	// SemanticThreshold is the minimum cosine similarity for a semantic
	// hit. Zero means DefaultSemanticThreshold; a value > 1 disables the
	// semantic tier outright (cosine similarity never exceeds 1).
	SemanticThreshold float64
	// Encoder embeds normalized queries for the semantic tier. Nil means
	// embedding.Default().
	Encoder embedding.Encoder
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
}

// entry is one cached answer with its bookkeeping.
type entry struct {
	id      string // Key.ID()
	scope   string
	value   any
	expires time.Time
	elem    *list.Element
}

// Cache is the two-tier answer cache. All methods are safe for
// concurrent use; a nil *Cache is inert (Get always misses, Put and
// Flush are no-ops), so callers can wire it unconditionally.
type Cache struct {
	capacity  int
	ttl       time.Duration
	threshold float64
	clock     func() time.Time

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	vectors *vectordb.Collection
}

// New builds a Cache.
func New(opts Options) *Cache {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	if opts.SemanticThreshold == 0 {
		opts.SemanticThreshold = DefaultSemanticThreshold
	}
	if opts.Encoder == nil {
		opts.Encoder = embedding.Default()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	col, err := vectordb.New().CreateCollection("qcache", vectordb.CollectionConfig{
		Metric:  vectordb.Cosine,
		Encoder: opts.Encoder,
	})
	if err != nil {
		panic(err) // fresh DB, fixed name: unreachable
	}
	return &Cache{
		capacity:  opts.Capacity,
		ttl:       opts.TTL,
		threshold: opts.SemanticThreshold,
		clock:     opts.Clock,
		entries:   make(map[string]*entry),
		lru:       list.New(),
		vectors:   col,
	}
}

// Len reports the live entry count (expired entries linger until a
// lookup or eviction touches them).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get looks key up: first the exact tier, then — when the exact tier
// misses and the semantic tier is enabled — the nearest cached query in
// the same scope above the similarity threshold. Expired entries are
// evicted on contact, never served.
func (c *Cache) Get(key Key) (any, HitKind) {
	if c == nil {
		return nil, Miss
	}
	now := c.clock()
	id := key.ID()

	c.mu.Lock()
	if e, ok := c.entries[id]; ok {
		if now.Before(e.expires) {
			c.lru.MoveToFront(e.elem)
			v := e.value
			c.mu.Unlock()
			return v, Exact
		}
		c.removeLocked(e)
	}
	c.mu.Unlock()

	if c.threshold > 1 {
		return nil, Miss
	}
	// The semantic probe runs outside c.mu: the collection has its own
	// lock, and a candidate surviving into the re-check below is
	// re-validated against the entry map under c.mu.
	res, err := c.vectors.Query(vectordb.QueryRequest{
		Text: Normalize(key.Query),
		TopK: 3,
		// Equality shorthand: only entries with the identical scope
		// (strategy, models, budget, RAG fingerprint) are comparable.
		Where: vectordb.Metadata{"scope": key.Scope},
	})
	if err != nil {
		return nil, Miss
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range res {
		if r.Similarity < c.threshold {
			break // results are ordered; nothing further clears the bar
		}
		e, ok := c.entries[r.ID]
		if !ok {
			continue // evicted between probe and re-check
		}
		if !now.Before(e.expires) {
			c.removeLocked(e)
			continue
		}
		c.lru.MoveToFront(e.elem)
		return e.value, Semantic
	}
	return nil, Miss
}

// Put stores (or refreshes) the answer for key, evicting the least
// recently used entries at capacity.
func (c *Cache) Put(key Key, value any) {
	if c == nil {
		return
	}
	nq := Normalize(key.Query)
	id := nq + keySep + key.Scope
	expires := c.clock().Add(c.ttl)

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		e.value = value
		e.expires = expires
		c.lru.MoveToFront(e.elem)
		return // the semantic document is already in place
	}
	for len(c.entries) >= c.capacity {
		c.removeLocked(c.lru.Back().Value.(*entry))
	}
	e := &entry{id: id, scope: key.Scope, value: value, expires: expires}
	e.elem = c.lru.PushFront(e)
	c.entries[id] = e
	_ = c.vectors.Upsert(vectordb.Document{
		ID:       id,
		Text:     nq,
		Metadata: vectordb.Metadata{"scope": key.Scope},
	})
}

// Flush drops every entry — the coherence hammer the server swings on
// settings changes and document upload/delete, where any cached answer
// might now be produced differently.
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.entries))
	for id := range c.entries {
		ids = append(ids, id)
	}
	c.vectors.Delete(ids...)
	c.entries = make(map[string]*entry)
	c.lru.Init()
}

// removeLocked evicts e from both tiers. Caller holds c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.id)
	c.lru.Remove(e.elem)
	c.vectors.Delete(e.id)
}
