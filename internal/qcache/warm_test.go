package qcache

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

func jsonCodec() (func(any) ([]byte, error), func([]byte) (any, error)) {
	enc := func(v any) ([]byte, error) { return json.Marshal(v) }
	dec := func(raw []byte) (any, error) {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	}
	return enc, dec
}

func TestWarmStartRoundTrip(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := New(Options{Clock: clock})
	keys := []Key{
		{Query: "What is the visa process?", Scope: "s1"},
		{Query: "how do goldfish remember", Scope: "s1"},
		{Query: "what is the visa process?", Scope: "s2"}, // same query, other scope
	}
	for i, k := range keys {
		c.Put(k, fmt.Sprintf("answer-%d", i))
	}
	enc, dec := jsonCodec()
	st := c.Snapshot("fp-v1", enc)
	if len(st.Entries) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(st.Entries))
	}
	path := filepath.Join(t.TempDir(), "qcache.json")
	if err := st.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadWarmState(path)
	if err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{Clock: clock})
	if got := fresh.WarmStart(st2, "fp-v1", dec); got != 3 {
		t.Fatalf("restored %d entries, want 3", got)
	}
	for i, k := range keys {
		v, kind := fresh.Get(k)
		if kind != Exact {
			t.Fatalf("key %d: kind %v after warm start, want Exact", i, kind)
		}
		if v != fmt.Sprintf("answer-%d", i) {
			t.Fatalf("key %d: value %v", i, v)
		}
	}
	// The semantic tier came back too: a rephrasing hits in-scope.
	if _, kind := fresh.Get(Key{Query: "  WHAT is THE visa Process?  ", Scope: "s1"}); kind != Exact {
		t.Fatalf("normalized rephrasing: kind %v", kind)
	}
}

func TestWarmStartFingerprintMismatch(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := New(Options{Clock: clock})
	c.Put(Key{Query: "q", Scope: "s"}, "a")
	enc, dec := jsonCodec()
	st := c.Snapshot("fp-old", enc)

	fresh := New(Options{Clock: clock})
	if got := fresh.WarmStart(st, "fp-new", dec); got != 0 {
		t.Fatalf("restored %d entries across a settings change, want 0", got)
	}
	if fresh.Len() != 0 {
		t.Fatalf("cache holds %d entries after rejected warm start", fresh.Len())
	}
}

func TestWarmStartKeepsOriginalExpiry(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := New(Options{TTL: time.Minute, Clock: clock})
	c.Put(Key{Query: "q", Scope: "s"}, "a")
	enc, dec := jsonCodec()
	st := c.Snapshot("fp", enc)

	// Restart 59s later: still servable...
	later := now.Add(59 * time.Second)
	fresh := New(Options{TTL: time.Minute, Clock: func() time.Time { return later }})
	if got := fresh.WarmStart(st, "fp", dec); got != 1 {
		t.Fatalf("restored %d, want 1", got)
	}
	if _, kind := fresh.Get(Key{Query: "q", Scope: "s"}); kind != Exact {
		t.Fatalf("kind %v within original TTL", kind)
	}
	// ...but a restart never extends an answer's life past its deadline.
	after := now.Add(61 * time.Second)
	stale := New(Options{TTL: time.Minute, Clock: func() time.Time { return after }})
	if got := stale.WarmStart(st, "fp", dec); got != 0 {
		t.Fatalf("restored %d expired entries, want 0", got)
	}
}

func TestWarmStartPreservesLRUOrder(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := New(Options{Clock: clock})
	for i := 0; i < 4; i++ {
		c.Put(Key{Query: fmt.Sprintf("query number %d", i), Scope: "s"}, i)
	}
	enc := func(v any) ([]byte, error) { return json.Marshal(v) }
	dec := func(raw []byte) (any, error) {
		var n int
		err := json.Unmarshal(raw, &n)
		return n, err
	}
	st := c.Snapshot("fp", enc)

	// Capacity 2: only the two most recently used entries survive the
	// restore, which proves order round-tripped.
	fresh := New(Options{Capacity: 2, Clock: clock})
	if got := fresh.WarmStart(st, "fp", dec); got != 4 {
		t.Fatalf("restored %d, want 4 (older ones evicted on the way)", got)
	}
	if fresh.Len() != 2 {
		t.Fatalf("len %d, want 2", fresh.Len())
	}
	for i := 0; i < 2; i++ {
		if _, kind := fresh.Get(Key{Query: fmt.Sprintf("query number %d", i), Scope: "s"}); kind != Miss {
			t.Fatalf("old entry %d survived", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, kind := fresh.Get(Key{Query: fmt.Sprintf("query number %d", i), Scope: "s"}); kind != Exact {
			t.Fatalf("recent entry %d lost", i)
		}
	}
	// Both tiers stay in lockstep through warm-start evictions.
	if vc := fresh.vectors.Count(); vc != fresh.Len() {
		t.Fatalf("vector tier holds %d docs, entries %d", vc, fresh.Len())
	}
}

// TestVectorTierTracksEvictions pins the two tiers to the same size:
// every path that drops an exact-tier entry (LRU eviction, expiry,
// flush) must delete the matching semantic-tier document, or the vector
// collection grows without bound.
func TestVectorTierTracksEvictions(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	c := New(Options{Capacity: 8, TTL: time.Minute, Clock: clock})
	for i := 0; i < 50; i++ {
		c.Put(Key{Query: fmt.Sprintf("distinct question %d", i), Scope: "s"}, i)
	}
	if c.Len() != 8 {
		t.Fatalf("len %d, want capacity 8", c.Len())
	}
	if vc := c.vectors.Count(); vc != 8 {
		t.Fatalf("vector tier holds %d docs after LRU eviction, want 8", vc)
	}
	// Expiry path: entries are dropped from both tiers on contact.
	now = now.Add(2 * time.Minute)
	for i := 42; i < 50; i++ {
		if _, kind := c.Get(Key{Query: fmt.Sprintf("distinct question %d", i), Scope: "s"}); kind != Miss {
			t.Fatalf("expired entry %d served (kind %v)", i, kind)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("len %d after expiry sweep, want 0", c.Len())
	}
	if vc := c.vectors.Count(); vc != 0 {
		t.Fatalf("vector tier holds %d docs after expiry, want 0", vc)
	}
	// Flush path.
	now = now.Add(-2 * time.Minute)
	for i := 0; i < 8; i++ {
		c.Put(Key{Query: fmt.Sprintf("distinct question %d", i), Scope: "s"}, i)
	}
	c.Flush()
	if vc := c.vectors.Count(); vc != 0 {
		t.Fatalf("vector tier holds %d docs after Flush, want 0", vc)
	}
}
