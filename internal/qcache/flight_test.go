package qcache

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestFlightLeaderThenFollower(t *testing.T) {
	g := NewGroup(0)
	leader, role := g.Join("k")
	if role != RoleLeader {
		t.Fatalf("first Join role = %v, want RoleLeader", role)
	}
	follower, role := g.Join("k")
	if role != RoleFollower || follower != leader {
		t.Fatalf("second Join = (%p, %v), want the leader's flight as RoleFollower", follower, role)
	}
	if n := leader.Followers(); n != 1 {
		t.Fatalf("Followers = %d, want 1", n)
	}

	published := []Frame{
		{Event: "round", Data: []byte(`{"n":1}`)},
		{Event: "chunk", Data: []byte(`{"text":"hi"}`)},
		{Event: "result", Data: []byte(`{"answer":"hi"}`)},
	}
	var got []Frame
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, ok := follower.Replay(context.Background(), func(fr Frame) error {
			got = append(got, fr)
			return nil
		})
		if !ok || v != "the result" {
			t.Errorf("Replay = (%v, %v), want (the result, true)", v, ok)
		}
	}()

	for _, fr := range published {
		leader.Publish(fr)
	}
	leader.Finish("the result")
	<-done
	if !reflect.DeepEqual(got, published) {
		t.Fatalf("replayed frames = %v, want %v", got, published)
	}
}

func TestFlightMidJoinSeesFullHistory(t *testing.T) {
	g := NewGroup(0)
	leader, _ := g.Join("k")
	leader.Publish(Frame{Event: "a", Data: []byte("1")})
	leader.Publish(Frame{Event: "b", Data: []byte("2")})

	// A follower joining mid-stream still gets the buffered history.
	f, role := g.Join("k")
	if role != RoleFollower {
		t.Fatalf("mid-stream Join role = %v", role)
	}
	var events []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Replay(context.Background(), func(fr Frame) error {
			events = append(events, fr.Event)
			return nil
		})
	}()
	leader.Publish(Frame{Event: "c", Data: []byte("3")})
	leader.Finish(nil)
	<-done
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestFlightJoinAfterFinishStartsFresh(t *testing.T) {
	g := NewGroup(0)
	leader, _ := g.Join("k")
	leader.Finish("done")
	f, role := g.Join("k")
	if role != RoleLeader {
		t.Fatalf("Join after Finish role = %v, want a fresh RoleLeader", role)
	}
	if f == leader {
		t.Fatal("Join after Finish returned the finished flight")
	}
}

func TestFlightBufferOverflowSeals(t *testing.T) {
	g := NewGroup(16) // tiny bound
	leader, _ := g.Join("k")
	leader.Publish(Frame{Event: "chunk", Data: []byte("0123456789abcdef")})
	if _, role := g.Join("k"); role != RoleBypass {
		t.Fatalf("Join on an overflowed flight = %v, want RoleBypass", role)
	}
	// A pre-attached follower keeps receiving past the seal.
	g2 := NewGroup(16)
	leader2, _ := g2.Join("k")
	f, _ := g2.Join("k")
	var n int
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Replay(context.Background(), func(Frame) error { n++; return nil })
	}()
	for i := 0; i < 5; i++ {
		leader2.Publish(Frame{Event: "chunk", Data: []byte("0123456789abcdef")})
	}
	leader2.Finish(nil)
	<-done
	if n != 5 {
		t.Fatalf("sealed-flight follower got %d frames, want 5", n)
	}
}

func TestFlightLeaderOnlySealDropsHistory(t *testing.T) {
	g := NewGroup(16) // tiny bound
	leader, _ := g.Join("k")
	// No follower ever joins: once the bound trips, the buffer must be
	// released and later frames must not re-accumulate — a leader-only
	// flight's memory is O(1) past the bound, not O(stream).
	for i := 0; i < 100; i++ {
		leader.Publish(Frame{Event: "chunk", Data: []byte("0123456789abcdef")})
	}
	leader.mu.Lock()
	frames, bytes := len(leader.frames), leader.bytes
	leader.mu.Unlock()
	if frames != 0 || bytes != 0 {
		t.Fatalf("sealed leader-only flight still buffers %d frames (%d bytes), want 0", frames, bytes)
	}
	leader.Finish(nil)
}

func TestFlightReplayContextCancel(t *testing.T) {
	g := NewGroup(0)
	leader, _ := g.Join("k")
	f, _ := g.Join("k")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var ok bool
	go func() {
		defer close(done)
		_, ok = f.Replay(ctx, func(Frame) error { return nil })
	}()
	time.Sleep(10 * time.Millisecond) // let Replay park on the cond
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Replay did not return after context cancellation")
	}
	if ok {
		t.Fatal("canceled Replay reported completion")
	}
	leader.Finish(nil) // leader must still be able to finish cleanly
}

func TestFlightReplayStopsOnWriteError(t *testing.T) {
	g := NewGroup(0)
	leader, _ := g.Join("k")
	f, _ := g.Join("k")
	leader.Publish(Frame{Event: "a", Data: []byte("1")})
	leader.Publish(Frame{Event: "b", Data: []byte("2")})
	calls := 0
	_, ok := f.Replay(context.Background(), func(Frame) error {
		calls++
		return fmt.Errorf("broken pipe")
	})
	if ok || calls != 1 {
		t.Fatalf("Replay = (ok=%v, calls=%d), want failure after the first frame", ok, calls)
	}
	leader.Finish(nil)
}

func TestNilGroupBypasses(t *testing.T) {
	var g *Group
	f, role := g.Join("k")
	if role != RoleBypass || f != nil {
		t.Fatalf("nil Group Join = (%v, %v), want (nil, RoleBypass)", f, role)
	}
}

func TestFlightConcurrentFollowers(t *testing.T) {
	g := NewGroup(0)
	leader, _ := g.Join("k")
	const followers = 8
	var wg sync.WaitGroup
	counts := make([]int, followers)
	for i := 0; i < followers; i++ {
		f, role := g.Join("k")
		if role != RoleFollower {
			t.Fatalf("follower %d role = %v", i, role)
		}
		wg.Add(1)
		go func(i int, f *Flight) {
			defer wg.Done()
			f.Replay(context.Background(), func(Frame) error { counts[i]++; return nil })
		}(i, f)
	}
	const frames = 50
	for i := 0; i < frames; i++ {
		leader.Publish(Frame{Event: "chunk", Data: []byte("x")})
	}
	leader.Finish(nil)
	wg.Wait()
	for i, n := range counts {
		if n != frames {
			t.Fatalf("follower %d saw %d frames, want %d", i, n, frames)
		}
	}
}
