package qcache

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// BenchmarkWarmStartHitRate measures what warm-starting buys on the
// first pass of repeated queries after a reboot: a cold cache misses all
// of them (every answer re-orchestrated), a warmed cache answers from
// the snapshot. hit_rate is first-pass exact hits / queries; ns/op
// includes the WarmStart decode cost, so the pair also bounds what the
// warm boot itself costs.
func BenchmarkWarmStartHitRate(b *testing.B) {
	const entries = 64
	encode := func(v any) ([]byte, error) { return json.Marshal(v) }
	decode := func(raw []byte) (any, error) {
		var s string
		err := json.Unmarshal(raw, &s)
		return s, err
	}

	donor := New(Options{Capacity: entries, TTL: time.Hour})
	keys := make([]Key, entries)
	for i := range keys {
		keys[i] = Key{Query: fmt.Sprintf("what is fact number %d?", i), Scope: "bench"}
		donor.Put(keys[i], fmt.Sprintf("answer %d", i))
	}
	st := donor.Snapshot("fp", encode)

	run := func(b *testing.B, warm bool) {
		var hits, total int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := New(Options{Capacity: entries, TTL: time.Hour})
			if warm {
				if n := c.WarmStart(st, "fp", decode); n != entries {
					b.Fatalf("warmed %d entries, want %d", n, entries)
				}
			}
			for _, k := range keys {
				if _, kind := c.Get(k); kind == Exact {
					hits++
				}
				total++
			}
		}
		b.ReportMetric(float64(hits)/float64(total), "hit_rate")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}
