package qcache

import (
	"context"
	"sync"
)

// DefaultFlightBuffer bounds the broadcast history one flight may
// accumulate before it stops admitting new followers.
const DefaultFlightBuffer = 1 << 20 // 1 MiB

// Frame is one recorded streaming frame: an SSE event name and its
// already-marshaled JSON payload. Frames are replayed verbatim, which is
// what makes a follower's stream event-for-event identical to its
// leader's.
type Frame struct {
	Event string
	Data  []byte
}

// Role is a caller's position in a flight.
type Role int

// Join outcomes.
const (
	// RoleLeader means the caller opened the flight: it must Publish
	// every frame it streams and call Finish exactly once.
	RoleLeader Role = iota
	// RoleFollower means an identical request is already in flight: the
	// caller should Replay the leader's stream instead of orchestrating.
	RoleFollower
	// RoleBypass means a flight exists but is closed to new followers
	// (its history buffer overflowed): the caller runs alone,
	// uncoalesced and unpublished.
	RoleBypass
)

// Group deduplicates concurrent identical requests. All methods are safe
// for concurrent use; a nil *Group hands every caller RoleBypass.
type Group struct {
	maxBytes int

	mu      sync.Mutex
	flights map[string]*Flight
}

// NewGroup builds a Group whose flights buffer at most maxBufferBytes of
// frame history (non-positive means DefaultFlightBuffer).
func NewGroup(maxBufferBytes int) *Group {
	if maxBufferBytes <= 0 {
		maxBufferBytes = DefaultFlightBuffer
	}
	return &Group{maxBytes: maxBufferBytes, flights: make(map[string]*Flight)}
}

// Join enters the flight for key, creating it if absent. The returned
// role tells the caller whether it leads, follows, or must bypass; the
// flight is nil only for RoleBypass.
func (g *Group) Join(key string) (*Flight, Role) {
	if g == nil {
		return nil, RoleBypass
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		f.mu.Lock()
		sealed := f.sealed
		if !sealed {
			f.followers++
		}
		f.mu.Unlock()
		if sealed {
			return nil, RoleBypass
		}
		return f, RoleFollower
	}
	f := &Flight{g: g, key: key}
	f.cond = sync.NewCond(&f.mu)
	g.flights[key] = f
	return f, RoleLeader
}

// Flight is one in-progress request shared between a leader and its
// followers.
type Flight struct {
	g   *Group
	key string

	mu        sync.Mutex
	cond      *sync.Cond
	frames    []Frame
	bytes     int
	sealed    bool // history overflowed: no new followers may join
	done      bool
	result    any
	followers int
}

// Followers reports how many followers have joined so far.
func (f *Flight) Followers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.followers
}

// Publish appends one frame to the broadcast buffer and wakes every
// follower. When the buffer bound is exceeded the flight seals — already
// attached followers keep receiving frames (they need the complete
// stream), but no new follower may join, bounding per-flight memory by
// the bound plus one frame times the attach window. A flight that seals
// with no followers attached has no consumer and can never gain one, so
// its history is dropped and buffering stops — a leader-only stream
// costs O(1) memory past the bound, not O(stream).
func (f *Flight) Publish(fr Frame) {
	f.mu.Lock()
	if f.sealed && f.followers == 0 {
		f.mu.Unlock()
		return
	}
	f.frames = append(f.frames, fr)
	f.bytes += len(fr.Event) + len(fr.Data)
	if f.bytes > f.g.maxBytes {
		f.sealed = true
		if f.followers == 0 {
			f.frames = nil
			f.bytes = 0
		}
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Finish completes the flight: the result becomes visible to every
// follower, the flight leaves the group (a later identical request
// starts fresh), and the buffered history is released once the last
// follower drains it.
func (f *Flight) Finish(result any) {
	f.g.mu.Lock()
	delete(f.g.flights, f.key)
	f.g.mu.Unlock()
	f.mu.Lock()
	f.sealed = true
	f.done = true
	f.result = result
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Replay streams the flight to fn: buffered history first, then live
// frames as the leader publishes them. It blocks until the flight
// finishes (returning the leader's result and true), until ctx ends, or
// until fn returns an error (both returning false). fn runs without the
// flight lock held, so it may write to a network connection.
func (f *Flight) Replay(ctx context.Context, fn func(Frame) error) (any, bool) {
	// cond.Wait cannot select on ctx; a cancel callback converts context
	// death into a broadcast the wait loop re-checks.
	stop := context.AfterFunc(ctx, func() { f.cond.Broadcast() })
	defer stop()

	next := 0
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		for next < len(f.frames) {
			fr := f.frames[next]
			next++
			f.mu.Unlock()
			err := fn(fr)
			f.mu.Lock()
			if err != nil {
				return nil, false
			}
		}
		if f.done {
			return f.result, true
		}
		if ctx.Err() != nil {
			return nil, false
		}
		f.cond.Wait()
	}
}
