package qcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strings"
	"time"

	"llmms/internal/vectordb"
)

// Warm start: the answer cache is the first thing a restarted server
// could serve from, and the cheapest — so it persists. Snapshot captures
// both tiers (the semantic tier's vector documents are derived from the
// entries, so only entries are stored and the vectors are re-embedded on
// load), and WarmStart reloads them with original expiry times intact.
//
// A snapshot carries the caller's settings fingerprint. WarmStart
// refuses a snapshot whose fingerprint differs from the current one —
// the same invalidation rule the live cache applies by flushing on
// settings changes: an answer produced under a different strategy,
// model set, or RAG corpus must not be served.

// WarmEntry is one persisted cache entry.
type WarmEntry struct {
	// Query is the normalized query (the exact-tier key's query part).
	Query string `json:"query"`
	// Scope is the entry's opaque scope string.
	Scope string `json:"scope"`
	// Expires is the entry's original deadline; WarmStart keeps it, so a
	// restart never extends an answer's life.
	Expires time.Time `json:"expires"`
	// Value is the codec-encoded answer.
	Value json.RawMessage `json:"value"`
}

// WarmState is a point-in-time snapshot of the cache.
type WarmState struct {
	// Fingerprint identifies the serving settings the answers were
	// produced under. WarmStart ignores the snapshot when it differs.
	Fingerprint string `json:"fingerprint"`
	// Entries in LRU order, most recently used first.
	Entries []WarmEntry `json:"entries"`
}

// Snapshot captures every live entry. The cache stores values as `any`,
// so the caller supplies the encoder (the server encodes its recorded
// SSE frames + result); entries whose value doesn't encode are skipped.
func (c *Cache) Snapshot(fingerprint string, encode func(any) ([]byte, error)) *WarmState {
	st := &WarmState{Fingerprint: fingerprint}
	if c == nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !now.Before(e.expires) {
			continue
		}
		raw, err := encode(e.value)
		if err != nil {
			continue
		}
		query, _, ok := strings.Cut(e.id, keySep)
		if !ok {
			continue
		}
		st.Entries = append(st.Entries, WarmEntry{
			Query:   query,
			Scope:   e.scope,
			Expires: e.expires,
			Value:   raw,
		})
	}
	return st
}

// WarmStart loads a snapshot into the cache: both tiers are rebuilt
// (semantic documents re-embedded through the collection encoder) and
// LRU order is preserved. Entries that have expired, fail to decode, or
// would exceed capacity are dropped. A fingerprint mismatch loads
// nothing — the snapshot was cut under different serving settings. It
// returns how many entries were restored.
func (c *Cache) WarmStart(st *WarmState, fingerprint string, decode func([]byte) (any, error)) int {
	if c == nil || st == nil || st.Fingerprint != fingerprint {
		return 0
	}
	now := c.clock()
	restored := 0
	// Back to front so the most recently used entry is pushed last and
	// lands at the LRU front, as it was.
	for i := len(st.Entries) - 1; i >= 0; i-- {
		we := st.Entries[i]
		if !now.Before(we.Expires) {
			continue
		}
		value, err := decode(we.Value)
		if err != nil {
			continue
		}
		c.mu.Lock()
		id := we.Query + keySep + we.Scope
		if e, ok := c.entries[id]; ok {
			// Live entry wins: it is newer than the snapshot.
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			continue
		}
		for len(c.entries) >= c.capacity {
			c.removeLocked(c.lru.Back().Value.(*entry))
		}
		e := &entry{id: id, scope: we.Scope, value: value, expires: we.Expires}
		e.elem = c.lru.PushFront(e)
		c.entries[id] = e
		_ = c.vectors.Upsert(vectordb.Document{
			ID:       id,
			Text:     we.Query,
			Metadata: vectordb.Metadata{"scope": we.Scope},
		})
		c.mu.Unlock()
		restored++
	}
	return restored
}

// WriteFile persists the snapshot atomically (temp + rename).
func (st *WarmState) WriteFile(path string) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("qcache: encode warm state: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("qcache: write warm state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("qcache: write warm state: %w", err)
	}
	return nil
}

// ReadWarmState loads a snapshot written by WriteFile. A missing file
// returns an empty state (nothing to warm from), not an error.
func ReadWarmState(path string) (*WarmState, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &WarmState{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("qcache: read warm state: %w", err)
	}
	var st WarmState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("qcache: parse warm state: %w", err)
	}
	return &st, nil
}
