package qcache

import (
	"fmt"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  What   is\tGo? ": "what is go?",
		"what is go?":       "what is go?",
		"WHAT\nIS\nGO?":     "what is go?",
		"":                  "",
		"   ":               "",
		"one":               "one",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExactHit(t *testing.T) {
	c := New(Options{})
	key := Key{Query: "What is Go?", Scope: "oua|a,b|256"}
	if _, kind := c.Get(key); kind != Miss {
		t.Fatalf("empty cache Get = %v, want Miss", kind)
	}
	c.Put(key, "answer")
	v, kind := c.Get(key)
	if kind != Exact || v != "answer" {
		t.Fatalf("Get = (%v, %v), want (answer, Exact)", v, kind)
	}
	// Reformatted duplicates collide in the exact tier.
	v, kind = c.Get(Key{Query: "  what   IS go? ", Scope: key.Scope})
	if kind != Exact || v != "answer" {
		t.Fatalf("normalized Get = (%v, %v), want (answer, Exact)", v, kind)
	}
	// A different scope is a different answer.
	if _, kind := c.Get(Key{Query: key.Query, Scope: "other"}); kind == Exact {
		t.Fatal("scope mismatch served an exact hit")
	}
}

func TestSemanticHit(t *testing.T) {
	// A permissive threshold so the hashing encoder's similarity between
	// near-duplicate phrasings clears the bar deterministically.
	c := New(Options{SemanticThreshold: 0.3})
	key := Key{Query: "what is the capital of france", Scope: "s"}
	c.Put(key, "paris")

	v, kind := c.Get(Key{Query: "what is the capital city of france", Scope: "s"})
	if kind != Semantic || v != "paris" {
		t.Fatalf("Get = (%v, %v), want (paris, Semantic)", v, kind)
	}
	// Same rephrasing in a different scope must miss: scopes are not
	// semantically comparable.
	if _, kind := c.Get(Key{Query: "what is the capital city of france", Scope: "other"}); kind != Miss {
		t.Fatalf("cross-scope semantic Get = %v, want Miss", kind)
	}
}

func TestSemanticThresholdRejects(t *testing.T) {
	c := New(Options{}) // default 0.97
	c.Put(Key{Query: "what is the capital of france", Scope: "s"}, "paris")
	if _, kind := c.Get(Key{Query: "how do neural networks learn", Scope: "s"}); kind != Miss {
		t.Fatalf("unrelated query Get = %v, want Miss", kind)
	}
}

func TestSemanticTierDisabled(t *testing.T) {
	c := New(Options{SemanticThreshold: 2})
	c.Put(Key{Query: "what is go", Scope: "s"}, "a language")
	// Byte-identical still hits (exact tier)...
	if _, kind := c.Get(Key{Query: "what is go", Scope: "s"}); kind != Exact {
		t.Fatal("exact tier should survive a disabled semantic tier")
	}
	// ...but nothing else can.
	if _, kind := c.Get(Key{Query: "what is go please", Scope: "s"}); kind != Miss {
		t.Fatal("semantic tier served a hit while disabled")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(Options{TTL: time.Minute, Clock: clock})
	key := Key{Query: "q", Scope: "s"}
	c.Put(key, "v")

	now = now.Add(59 * time.Second)
	if _, kind := c.Get(key); kind != Exact {
		t.Fatal("entry expired before its TTL")
	}
	// Get does not extend the TTL: 61s past Put is expired.
	now = now.Add(2 * time.Second)
	if _, kind := c.Get(key); kind != Miss {
		t.Fatal("expired entry was served")
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("expired entry lingers: Len = %d", got)
	}
	// The semantic tier must not resurrect it either.
	c2 := New(Options{TTL: time.Minute, Clock: clock, SemanticThreshold: 0.3})
	c2.Put(Key{Query: "what is the capital of france", Scope: "s"}, "paris")
	now = now.Add(2 * time.Minute)
	if _, kind := c2.Get(Key{Query: "what is the capital city of france", Scope: "s"}); kind != Miss {
		t.Fatal("semantic tier served an expired entry")
	}
}

func TestPutRefreshesTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Options{TTL: time.Minute, Clock: func() time.Time { return now }})
	key := Key{Query: "q", Scope: "s"}
	c.Put(key, "v1")
	now = now.Add(45 * time.Second)
	c.Put(key, "v2")
	now = now.Add(45 * time.Second) // 90s after first Put, 45s after refresh
	v, kind := c.Get(key)
	if kind != Exact || v != "v2" {
		t.Fatalf("Get = (%v, %v), want (v2, Exact)", v, kind)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Options{Capacity: 3})
	for i := 0; i < 3; i++ {
		c.Put(Key{Query: fmt.Sprintf("query number %d", i), Scope: "s"}, i)
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, kind := c.Get(Key{Query: "query number 0", Scope: "s"}); kind != Exact {
		t.Fatal("warmup get missed")
	}
	c.Put(Key{Query: "query number 3", Scope: "s"}, 3)
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if _, kind := c.Get(Key{Query: "query number 1", Scope: "s"}); kind != Miss {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, q := range []string{"query number 0", "query number 2", "query number 3"} {
		if _, kind := c.Get(Key{Query: q, Scope: "s"}); kind != Exact {
			t.Fatalf("entry %q was evicted, want kept", q)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(Options{SemanticThreshold: 0.3})
	c.Put(Key{Query: "what is the capital of france", Scope: "s"}, "paris")
	c.Flush()
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after Flush = %d", got)
	}
	if _, kind := c.Get(Key{Query: "what is the capital of france", Scope: "s"}); kind != Miss {
		t.Fatal("exact tier survived Flush")
	}
	if _, kind := c.Get(Key{Query: "what is the capital city of france", Scope: "s"}); kind != Miss {
		t.Fatal("semantic tier survived Flush")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	c.Put(Key{Query: "q"}, "v") // must not panic
	if _, kind := c.Get(Key{Query: "q"}); kind != Miss {
		t.Fatal("nil cache hit")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}
