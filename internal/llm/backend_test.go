package llm

import (
	"context"
	"errors"
	"testing"
)

// chunkOnly is a wrapper that decorates GenerateChunk and nothing else —
// the exact shape that used to strip streaming from the stack.
type chunkOnly struct{ inner Backend }

func (c chunkOnly) GenerateChunk(ctx context.Context, req ChunkRequest) (Chunk, error) {
	return c.inner.GenerateChunk(ctx, req)
}

// passThrough declares stream pass-through via Wrapper.
type passThrough struct{ chunkOnly }

func (p passThrough) Unwrap() Backend { return p.inner }

func TestAsStreamingDirect(t *testing.T) {
	e := NewEngine(Options{})
	sb, ok := AsStreaming(e)
	if !ok || sb == nil {
		t.Fatal("engine should resolve as streaming")
	}
}

func TestAsStreamingStrippedWithoutUnwrap(t *testing.T) {
	e := NewEngine(Options{})
	if _, ok := AsStreaming(chunkOnly{inner: e}); ok {
		t.Fatal("a wrapper without Unwrap or OpenStream must not stream")
	}
}

func TestAsStreamingFollowsUnwrapChain(t *testing.T) {
	e := NewEngine(Options{})
	b := passThrough{chunkOnly{inner: passThrough{chunkOnly{inner: e}}}}
	sb, ok := AsStreaming(b)
	if !ok {
		t.Fatal("Unwrap chain should resolve to the engine's streaming capability")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := sb.OpenStream(ctx, ChunkRequest{
		Model: ModelLlama3, Prompt: "Question: hi?\nAnswer:", MaxTokens: 8,
	})
	if err != nil {
		t.Fatalf("OpenStream through the chain: %v", err)
	}
	st.Close()
}

func TestAsStreamingNil(t *testing.T) {
	if _, ok := AsStreaming(nil); ok {
		t.Fatal("nil backend cannot stream")
	}
}

func TestWrapPreservingGraftsStreaming(t *testing.T) {
	e := NewEngine(Options{})
	wrapped := WrapPreserving(chunkOnly{inner: e}, e)
	sb, ok := AsStreaming(wrapped)
	if !ok {
		t.Fatal("WrapPreserving must preserve the inner backend's streaming capability")
	}
	st, err := sb.OpenStream(context.Background(), ChunkRequest{
		Model: ModelLlama3, Prompt: "Question: hi?\nAnswer:", MaxTokens: 8,
	})
	if err != nil {
		t.Fatalf("OpenStream on preserved composite: %v", err)
	}
	st.Close()
	// The chunk path still goes through the wrapper.
	if _, err := wrapped.GenerateChunk(context.Background(), ChunkRequest{
		Model: ModelLlama3, Prompt: "Question: hi?\nAnswer:", MaxTokens: 8,
	}); err != nil {
		t.Fatalf("GenerateChunk on preserved composite: %v", err)
	}
}

func TestWrapPreservingLeavesStreamingWrapperAlone(t *testing.T) {
	e := NewEngine(Options{})
	// The engine itself streams; wrapping it over anything must return it
	// unchanged — it made its own streaming decision.
	if got := WrapPreserving(e, NewEngine(Options{})); got != Backend(e) {
		t.Fatal("a streaming outer backend must be returned unchanged")
	}
	// Same for a Wrapper: its Unwrap chain is its declaration.
	p := passThrough{chunkOnly{inner: e}}
	if got := WrapPreserving(p, e); got != Backend(p) {
		t.Fatal("a Wrapper outer backend must be returned unchanged")
	}
}

func TestWrapPreservingNonStreamingInner(t *testing.T) {
	inner := chunkOnly{inner: NewEngine(Options{})}
	outer := chunkOnly{inner: inner}
	if got := WrapPreserving(outer, inner); got != Backend(outer) {
		t.Fatal("nothing to preserve: outer must be returned unchanged")
	}
	if _, ok := AsStreaming(WrapPreserving(outer, inner)); ok {
		t.Fatal("streaming must not appear out of thin air")
	}
}

func TestWrapPreservingNilOuter(t *testing.T) {
	e := NewEngine(Options{})
	if got := WrapPreserving(nil, e); got != Backend(e) {
		t.Fatal("nil outer should collapse to inner")
	}
}

func TestPreservingCompositeSurfacesUnsupported(t *testing.T) {
	// Force the composite shape, then break the inner chain's capability:
	// OpenStream must report ErrStreamUnsupported, the quiet routing
	// signal back to per-round generation.
	c := preservingBackend{outer: chunkOnly{inner: NewEngine(Options{})}, inner: chunkOnly{}}
	if _, err := c.OpenStream(context.Background(), ChunkRequest{Model: ModelLlama3}); !errors.Is(err, ErrStreamUnsupported) {
		t.Fatalf("want ErrStreamUnsupported, got %v", err)
	}
}
