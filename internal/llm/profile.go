// Package llm implements the simulated large-language-model inference
// engine that stands in for the Ollama-served LLaMA-3 / Mistral / Qwen-2
// models of the LLM-MS paper.
//
// Real heterogeneous LLMs differ in which questions they answer
// truthfully, how verbose they are, how fast they decode, and how much
// memory they occupy. Those four axes are exactly what the paper's
// orchestration layer observes and exploits, so the simulation models
// them directly:
//
//   - A Profile gives each model per-category skill probabilities; a
//     seeded hash of (model, question) decides deterministically whether
//     the model answers a known question truthfully, and which reference
//     answer variant it verbalizes.
//   - A style layer (preambles, hedges, elaborations) makes each model's
//     token count and phrasing distinct, driving the token-efficiency
//     results.
//   - Generation is a token-by-token stream with num-predict budgets and
//     "stop"/"length" done reasons, plus an opaque continuation context —
//     the same generation contract the Ollama daemon exposes.
//
// Prompts may carry retrieved context ("Context:" sections); models
// answer those extractively with profile-dependent quality, which is what
// makes the RAG pipeline behave realistically end to end.
package llm

import (
	"llmms/internal/gpu"
)

// Verbosity buckets control how much decoration a model adds around the
// core answer.
type Verbosity int

// Verbosity levels from fewest to most tokens.
const (
	Terse Verbosity = iota
	Medium
	Verbose
)

// Style is the surface-form personality of a model.
type Style struct {
	// Preambles open an answer ("Sure — ", "Great question. ").
	Preambles []string
	// Hedges open an uncertain or fabricated answer.
	Hedges []string
	// Elaborations are appended by higher-verbosity models.
	Elaborations []string
}

// Profile declares one simulated model.
type Profile struct {
	// Name is the model tag clients request, e.g. "llama3:8b".
	Name string `json:"name"`
	// Family is the architecture family, e.g. "llama".
	Family string `json:"family"`
	// Parameters is the human-readable size, e.g. "8B".
	Parameters string `json:"parameters"`
	// Quantization is the simulated weight format, e.g. "Q4_K_M".
	Quantization string `json:"quantization"`
	// SizeBytes is the VRAM footprint the hardware layer reserves.
	SizeBytes uint64 `json:"size_bytes"`
	// ContextWindow is the maximum prompt+generation token count.
	ContextWindow int `json:"context_window"`
	// TokensPerSec is the simulated decode speed.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// PrefillTokensPerSec is the simulated prompt-ingest speed: every
	// fresh generation call processes prompt+context tokens at this rate
	// before the first new token decodes. Zero means PrefillRate's
	// default of 4× the decode speed — the single-stream prefill/decode
	// ratio typical of a quantized 7–8B model on a V100.
	PrefillTokensPerSec float64 `json:"prefill_tokens_per_sec,omitempty"`
	// Verbosity selects the style decoration level.
	Verbosity Verbosity `json:"verbosity"`
	// Seed gives the model its deterministic identity: two models with
	// different seeds make different truthfulness draws and pick
	// different answer variants.
	Seed uint64 `json:"seed"`
	// Skills maps a question category to the probability of answering
	// truthfully. Categories absent from the map use DefaultSkill.
	Skills map[string]float64 `json:"skills"`
	// DefaultSkill is the truthfulness probability for unknown categories.
	DefaultSkill float64 `json:"default_skill"`
	// RAGSkill is the probability of extracting the most relevant context
	// sentence when answering from supplied documents.
	RAGSkill float64 `json:"rag_skill"`
	// Style is the model's phrasing personality.
	Style Style `json:"-"`
}

// PrefillRate returns the effective prompt-ingest speed in tokens per
// second (see PrefillTokensPerSec for the default rule).
func (p Profile) PrefillRate() float64 {
	if p.PrefillTokensPerSec > 0 {
		return p.PrefillTokensPerSec
	}
	return 4 * p.TokensPerSec
}

// SkillFor returns the truthfulness probability for a category.
func (p Profile) SkillFor(category string) float64 {
	if s, ok := p.Skills[category]; ok {
		return s
	}
	return p.DefaultSkill
}

// Built-in model names mirroring the paper's evaluation set (§8.1).
const (
	ModelLlama3  = "llama3:8b"
	ModelMistral = "mistral:7b"
	ModelQwen2   = "qwen2:7b"
)

// DefaultProfiles returns the three evaluation models. The skill maps
// encode the qualitative strengths the paper attributes to them (§2.2):
// LLaMA-3 is strong on conversational/alignment-heavy questions
// (misconceptions, psychology, health), Qwen-2 on reasoning- and
// knowledge-intensive questions (arithmetic, science, chemistry), and
// Mistral is a fast, terse all-rounder. No model dominates, which is the
// regime multi-model orchestration exploits.
func DefaultProfiles() []Profile {
	return []Profile{
		{
			Name: ModelLlama3, Family: "llama", Parameters: "8B", Quantization: "Q4_K_M",
			SizeBytes: 6 * gpu.GiB, ContextWindow: 8192, TokensPerSec: 95,
			Verbosity: Verbose, Seed: 0x11a3a8b1,
			DefaultSkill: 0.65, RAGSkill: 0.85,
			Skills: map[string]float64{
				"Misconceptions": 0.88, "Psychology": 0.86, "Sociology": 0.82,
				"Health": 0.82, "Fiction": 0.80, "Language": 0.76,
				"Superstitions": 0.82, "History": 0.74, "Nutrition": 0.72,
				"Biology": 0.70, "Weather": 0.72, "Confusion": 0.70,
				"Law": 0.66, "Science": 0.64, "Geography": 0.78,
				"Economics": 0.72, "Astronomy": 0.60, "Chemistry": 0.52,
				"Arithmetic": 0.45,
				"Proverbs":   0.86, "Myths and Fairytales": 0.86,
				"Paranormal": 0.84, "Advertising": 0.78, "Conspiracies": 0.86,
				"Indexical Error: Time": 0.70, "Indexical Error: Location": 0.74,
			},
			Style: Style{
				Preambles: []string{
					"Great question! ",
					"Happy to help. ",
					"Let me clear this up. ",
					"This is a common point of confusion. ",
				},
				Hedges: []string{
					"I believe ",
					"As far as I know, ",
					"From what I recall, ",
				},
				Elaborations: []string{
					" I hope that clears things up.",
					" This misconception is worth double-checking.",
					" The popular version does not hold up.",
				},
			},
		},
		{
			Name: ModelMistral, Family: "mistral", Parameters: "7B", Quantization: "Q4_0",
			SizeBytes: 5 * gpu.GiB, ContextWindow: 8192, TokensPerSec: 130,
			Verbosity: Medium, Seed: 0x317a57a1,
			DefaultSkill: 0.68, RAGSkill: 0.75,
			Skills: map[string]float64{
				"Misconceptions": 0.70, "Psychology": 0.66, "Sociology": 0.66,
				"Health": 0.70, "Fiction": 0.66, "Language": 0.68,
				"Superstitions": 0.70, "History": 0.68, "Nutrition": 0.68,
				"Biology": 0.68, "Weather": 0.68, "Confusion": 0.66,
				"Law": 0.68, "Science": 0.70, "Geography": 0.70,
				"Economics": 0.68, "Astronomy": 0.68, "Chemistry": 0.66,
				"Arithmetic": 0.64,
				"Proverbs":   0.68, "Myths and Fairytales": 0.68,
				"Paranormal": 0.66, "Advertising": 0.66, "Conspiracies": 0.68,
				"Indexical Error: Time": 0.64, "Indexical Error: Location": 0.62,
			},
			Style: Style{
				Preambles: []string{"Short answer: ", "In short, ", "Answer: "},
				Hedges:    []string{"Possibly ", "Likely "},
				Elaborations: []string{
					" That is the accepted answer.",
					" No further caveats apply.",
				},
			},
		},
		{
			Name: ModelQwen2, Family: "qwen2", Parameters: "7B", Quantization: "Q4_K_M",
			SizeBytes: 5 * gpu.GiB, ContextWindow: 32768, TokensPerSec: 110,
			Verbosity: Medium, Seed: 0x92e20b7d,
			DefaultSkill: 0.62, RAGSkill: 0.80,
			Skills: map[string]float64{
				"Arithmetic": 0.92, "Chemistry": 0.88, "Science": 0.86,
				"Astronomy": 0.86, "Economics": 0.66, "Geography": 0.68,
				"Law": 0.74, "History": 0.68, "Biology": 0.64,
				"Health": 0.62, "Nutrition": 0.62, "Weather": 0.62,
				"Language": 0.60, "Confusion": 0.62, "Sociology": 0.56,
				"Superstitions": 0.56, "Misconceptions": 0.56,
				"Psychology": 0.52, "Fiction": 0.52,
				"Proverbs": 0.54, "Myths and Fairytales": 0.52,
				"Paranormal": 0.58, "Advertising": 0.60, "Conspiracies": 0.60,
				"Indexical Error: Time": 0.72, "Indexical Error: Location": 0.58,
			},
			Style: Style{
				Preambles: []string{
					"Let's reason about this. ",
					"Step by step: ",
					"Consider the facts. ",
				},
				Hedges: []string{
					"Based on my analysis, ",
					"Reasoning suggests ",
				},
				Elaborations: []string{
					" Therefore the conclusion follows directly.",
					" The reasoning above supports this answer.",
				},
			},
		},
	}
}

// hash01 maps (seed, key) to a deterministic float64 in [0, 1).
func hash01(seed uint64, key string) float64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := offset ^ (seed*prime + 0x9e3779b97f4a7c15)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// Use the top 53 bits for a uniform float in [0,1).
	return float64(h>>11) / float64(1<<53)
}

// hashPick selects an index in [0, n) deterministically.
func hashPick(seed uint64, key string, n int) int {
	if n <= 0 {
		return 0
	}
	return int(hash01(seed, key) * float64(n))
}
