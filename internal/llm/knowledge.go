package llm

import (
	"strings"

	"llmms/internal/truthfulqa"
)

// Knowledge is the engine's question bank: the world knowledge the
// simulated models may (or may not, per their skill draws) possess. It is
// built from a TruthfulQA dataset and looked up by normalized question
// containment, so prompts wrapped with retrieved context, session
// summaries, or answer cues still resolve to the underlying question.
type Knowledge struct {
	items []truthfulqa.Item
	// byNorm maps the normalized question to an index in items.
	byNorm map[string]int
	// norms keeps the normalized questions for containment scans.
	norms []string
}

// NewKnowledge indexes a dataset. Later duplicates of the same normalized
// question are ignored.
func NewKnowledge(d truthfulqa.Dataset) *Knowledge {
	k := &Knowledge{byNorm: make(map[string]int, len(d))}
	for _, it := range d {
		n := normalizeQuestion(it.Question)
		if n == "" {
			continue
		}
		if _, dup := k.byNorm[n]; dup {
			continue
		}
		k.byNorm[n] = len(k.items)
		k.items = append(k.items, it)
		k.norms = append(k.norms, n)
	}
	return k
}

// Len returns the number of indexed questions.
func (k *Knowledge) Len() int { return len(k.items) }

// Find resolves a prompt to a known benchmark item. It first tries an
// exact match on the normalized question (fast path for bare benchmark
// prompts), then a containment scan for prompts that embed the question
// inside context or instructions.
func (k *Knowledge) Find(prompt string) (truthfulqa.Item, bool) {
	n := normalizeQuestion(extractQuestion(prompt))
	if n == "" {
		return truthfulqa.Item{}, false
	}
	if i, ok := k.byNorm[n]; ok {
		return k.items[i], true
	}
	for i, qn := range k.norms {
		if strings.Contains(n, qn) {
			return k.items[i], true
		}
	}
	return truthfulqa.Item{}, false
}

// normalizeQuestion lowercases and collapses a question to its
// alphanumeric words.
func normalizeQuestion(q string) string {
	var b strings.Builder
	lastSpace := true
	for _, r := range strings.ToLower(q) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// Prompt section markers. The RAG prompt builder and the session layer
// compose prompts with these labels; the engine parses them back out.
const (
	sectionContext  = "Context:"
	sectionSummary  = "Summary of earlier conversation:"
	sectionQuestion = "Question:"
	sectionAnswer   = "Answer:"
)

// extractQuestion pulls the user question out of a composed prompt. A
// prompt without section markers is itself the question.
func extractQuestion(prompt string) string {
	if i := strings.LastIndex(prompt, sectionQuestion); i >= 0 {
		q := prompt[i+len(sectionQuestion):]
		if j := strings.Index(q, sectionAnswer); j >= 0 {
			q = q[:j]
		}
		return strings.TrimSpace(q)
	}
	return strings.TrimSpace(prompt)
}

// extractContext pulls the retrieved-context block out of a composed
// prompt, returning "" when there is none.
func extractContext(prompt string) string {
	i := strings.Index(prompt, sectionContext)
	if i < 0 {
		return ""
	}
	ctx := prompt[i+len(sectionContext):]
	if j := strings.Index(ctx, sectionQuestion); j >= 0 {
		ctx = ctx[:j]
	}
	return strings.TrimSpace(ctx)
}

// splitSentences breaks text into sentences on ., !, ? and newlines,
// trimming whitespace and dropping empties. A period flanked by digits
// ("24.04", version "0.4.5") is part of a number, not a boundary.
func splitSentences(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	runes := []rune(text)
	for i, r := range runes {
		switch r {
		case '.':
			cur.WriteRune(r)
			if !digitFlanked(runes, i) {
				flush()
			}
		case '!', '?':
			cur.WriteRune(r)
			flush()
		case '\n':
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// digitFlanked reports whether the rune at i sits between two digits.
func digitFlanked(runes []rune, i int) bool {
	return i > 0 && i+1 < len(runes) &&
		runes[i-1] >= '0' && runes[i-1] <= '9' &&
		runes[i+1] >= '0' && runes[i+1] <= '9'
}
