package llm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// This file defines the persistent generation-session contract: instead
// of issuing one budget-capped generation call per orchestration round
// (re-sending the prompt plus accumulated context and paying stream
// setup and prompt re-ingest every time), a caller opens ONE stream per
// (model, query) and each round merely drains the next λ tokens from a
// client-side buffer. The backend keeps decoding between rounds, so
// generation overlaps with the orchestrator's scoring pass and a round
// costs "drain buffered tokens" rather than "set up stream + re-ingest
// prompt + decode chunk".

// ErrStreamUnsupported reports that a backend (or the daemon behind it)
// cannot serve persistent generation streams. Callers fall back to the
// per-round GenerateChunk path; the error is a routing signal, not a
// failure of the query.
var ErrStreamUnsupported = errors.New("llm: persistent generation streams unsupported")

// ErrStreamClosed reports a Next call on a stream after Close.
var ErrStreamClosed = errors.New("llm: generation stream closed")

// ChunkStream is one model's open generation session for one query.
// Next drains up to maxTokens already-generated (or soon-generated)
// tokens and synthesizes a Chunk with the same bookkeeping contract as
// a GenerateChunk call: Text is the drained slice, EvalCount its token
// count, Context the continuation state covering everything drained so
// far (so a caller can resume via GenerateChunk if the stream later
// breaks), and Done/DoneReason set on the terminal slice. maxTokens <= 0
// drains the whole remainder. Slicing is on token boundaries; Next never
// splits a delivered token.
//
// Next is not safe for concurrent use on one stream; Close may be called
// from any goroutine and aborts backend generation. Streams must be
// closed when abandoned (prune, early return, query end) to free backend
// capacity.
type ChunkStream interface {
	Next(ctx context.Context, maxTokens int) (Chunk, error)
	Close() error
}

// BufferedStream is optionally implemented by ChunkStream
// implementations that can report how many generated-but-undrained
// tokens sit in the client-side buffer — the pipelining win a caller can
// observe (tokens for round r+1 already decoded while round r was being
// scored).
type BufferedStream interface {
	Buffered() int
}

// StreamingBackend is implemented by backends that can hold a
// generation stream open across orchestration rounds: the in-process
// Engine and the HTTP modeld.Client. req.MaxTokens caps the whole
// session (the model's total remaining allowance), req.Cont resumes a
// previous generation exactly as in GenerateChunk.
type StreamingBackend interface {
	OpenStream(ctx context.Context, req ChunkRequest) (ChunkStream, error)
}

// streamPiece is one backend delivery: decoded text plus the ids of the
// tokens it contains (one id per token, in generation order).
type streamPiece struct {
	text string
	ids  []int
}

// StreamBuffer is the client-side token buffer shared by ChunkStream
// implementations: a producer goroutine Pushes pieces as the backend
// delivers them (then Finish or Fail exactly once), while the consumer
// Drains per-round slices. It handles token-boundary slicing and the
// per-slice Context/EvalCount/Done synthesis so both the engine-backed
// and the HTTP-backed stream share one set of semantics.
//
// All methods are safe for concurrent use by one producer and one
// consumer.
type StreamBuffer struct {
	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every state change

	base     []int // continuation state the stream was opened from
	pieces   []streamPiece
	buffered int   // token count across pieces
	drained  []int // base + ids of every token handed to the consumer

	final  *Chunk // terminal metadata, set by Finish
	err    error  // set by Fail (or Close)
	closed bool
}

// NewStreamBuffer returns a buffer for a stream resumed from cont (nil
// starts fresh). cont is cloned; the caller may reuse its slice.
func NewStreamBuffer(cont []int) *StreamBuffer {
	b := &StreamBuffer{notify: make(chan struct{})}
	b.base = append([]int(nil), cont...)
	b.drained = append([]int(nil), cont...)
	return b
}

// signal wakes every Drain waiter. Callers hold b.mu.
func (b *StreamBuffer) signal() {
	close(b.notify)
	b.notify = make(chan struct{})
}

// Push appends one delivered piece. Pieces must carry one id per token;
// a non-empty piece without ids fails the stream with
// ErrStreamUnsupported, because without ids the buffer cannot synthesize
// the per-slice continuation state that makes mid-stream fallback
// lossless — and it fails BEFORE buffering the piece, so the consumer
// has not been handed any text the fallback would duplicate.
func (b *StreamBuffer) Push(text string, ids []int) {
	if text == "" && len(ids) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.final != nil || b.err != nil {
		return
	}
	if len(ids) == 0 {
		b.err = fmt.Errorf("llm: stream piece carries no token ids: %w", ErrStreamUnsupported)
		b.signal()
		return
	}
	b.pieces = append(b.pieces, streamPiece{text: text, ids: ids})
	b.buffered += len(ids)
	b.signal()
}

// Finish records the stream's terminal chunk (Done metadata). Buffered
// pieces remain drainable; the terminal slice is synthesized once they
// are exhausted.
func (b *StreamBuffer) Finish(final Chunk) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.final != nil || b.err != nil {
		return
	}
	f := final
	b.final = &f
	b.signal()
}

// Fail records a mid-stream error. Already-buffered pieces remain
// drainable (they carry valid continuation state); the error surfaces
// once the buffer is empty.
func (b *StreamBuffer) Fail(err error) {
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.final != nil || b.err != nil {
		return
	}
	b.err = err
	b.signal()
}

// Close marks the buffer closed: subsequent Drains return
// ErrStreamClosed without serving buffered text.
func (b *StreamBuffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.signal()
}

// Buffered reports the generated-but-undrained token count.
func (b *StreamBuffer) Buffered() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buffered
}

// Drain blocks until maxTokens tokens are buffered (or the stream
// finished, failed, or ctx expired) and returns the next slice. A
// stream that failed or was interrupted mid-slice returns what it has
// as a normal partial chunk first — the error surfaces on the next
// call — so drained text is never lost. maxTokens <= 0 waits for the
// terminal chunk and drains everything.
func (b *StreamBuffer) Drain(ctx context.Context, maxTokens int) (Chunk, error) {
	b.mu.Lock()
	for {
		switch {
		case b.closed:
			b.mu.Unlock()
			return Chunk{}, ErrStreamClosed
		case b.final != nil || (maxTokens > 0 && b.buffered >= maxTokens):
			c := b.sliceLocked(maxTokens)
			b.mu.Unlock()
			return c, nil
		case b.err != nil:
			if b.buffered > 0 {
				c := b.sliceLocked(maxTokens)
				b.mu.Unlock()
				return c, nil
			}
			err := b.err
			b.mu.Unlock()
			return Chunk{}, err
		case ctx.Err() != nil:
			if b.buffered > 0 {
				c := b.sliceLocked(maxTokens)
				b.mu.Unlock()
				return c, nil
			}
			err := ctx.Err()
			b.mu.Unlock()
			return Chunk{}, err
		}
		ch := b.notify
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
		}
		b.mu.Lock()
	}
}

// sliceLocked pops up to maxTokens tokens' worth of whole pieces and
// synthesizes the round chunk. Callers hold b.mu.
func (b *StreamBuffer) sliceLocked(maxTokens int) Chunk {
	var text string
	taken := 0
	for len(b.pieces) > 0 {
		p := b.pieces[0]
		if maxTokens > 0 && taken+len(p.ids) > maxTokens && taken > 0 {
			break
		}
		// A single piece larger than the whole budget is still taken
		// (tokens cannot be split below delivery granularity), but only
		// as the first piece of a slice, so overshoot is bounded by one
		// piece.
		if maxTokens > 0 && taken+len(p.ids) > maxTokens && len(p.ids) > maxTokens {
			// fallthrough: take it anyway
		}
		text += p.text
		taken += len(p.ids)
		b.drained = append(b.drained, p.ids...)
		b.pieces = b.pieces[1:]
		if maxTokens > 0 && taken >= maxTokens {
			break
		}
	}
	b.buffered -= taken
	if len(b.pieces) == 0 && b.final != nil {
		f := *b.final
		f.Text = text
		f.EvalCount = taken
		if len(f.Context) == 0 {
			f.Context = append([]int(nil), b.drained...)
		}
		if f.TotalTokens == 0 {
			f.TotalTokens = len(f.Context)
		}
		return f
	}
	return Chunk{
		Text:        text,
		EvalCount:   taken,
		DoneReason:  DoneLength,
		Context:     append([]int(nil), b.drained...),
		TotalTokens: len(b.drained),
	}
}

// engineStream adapts the Engine's generation channel to the
// ChunkStream contract through a StreamBuffer. The pump goroutine drains
// the channel as fast as the engine produces, so the buffer — not the
// channel's small capacity — bounds how far generation runs ahead of the
// orchestrator's rounds.
type engineStream struct {
	buf    *StreamBuffer
	cancel context.CancelFunc
	once   sync.Once
	onDone func()
}

// OpenStream implements StreamingBackend over the simulated engine: it
// starts one Generate call covering the whole session budget and
// buffers its token stream client-side. The engine's per-token decode
// delay (LatencyScale) keeps flowing between Next calls, which is the
// generation/scoring overlap the orchestrator exploits.
func (e *Engine) OpenStream(ctx context.Context, req ChunkRequest) (ChunkStream, error) {
	genCtx, cancel := context.WithCancel(ctx)
	ch, err := e.Generate(genCtx, GenRequest{
		Model: req.Model, Prompt: req.Prompt, MaxTokens: req.MaxTokens, Context: req.Cont,
	})
	if err != nil {
		cancel()
		return nil, err
	}
	e.streams.Add(1)
	s := &engineStream{buf: NewStreamBuffer(req.Cont), cancel: cancel}
	s.onDone = func() { e.streams.Add(-1) }
	go func() {
		for c := range ch {
			if c.Done {
				s.buf.Finish(c)
				continue // let the producer close the channel
			}
			s.buf.Push(c.Text, c.Tokens)
		}
		// Defensive: a channel that closes without a Done chunk is an
		// engine bug; surface it rather than hanging the consumer.
		s.buf.Fail(io.ErrUnexpectedEOF)
		s.settle()
	}()
	return s, nil
}

// settle runs the stream's end-of-life accounting exactly once.
func (s *engineStream) settle() {
	s.once.Do(func() {
		if s.onDone != nil {
			s.onDone()
		}
	})
}

// Next implements ChunkStream.
func (s *engineStream) Next(ctx context.Context, maxTokens int) (Chunk, error) {
	return s.buf.Drain(ctx, maxTokens)
}

// Buffered implements BufferedStream.
func (s *engineStream) Buffered() int { return s.buf.Buffered() }

// Close implements ChunkStream: it cancels the underlying generation
// (the engine emits its cancel chunk and releases the hardware job) and
// poisons the buffer.
func (s *engineStream) Close() error {
	s.cancel()
	s.buf.Close()
	return nil
}

// OpenStreams reports the engine-side generation sessions still
// producing — the observability hook leak tests assert against. A
// closed or naturally finished stream leaves the count as soon as its
// producer goroutine exits.
func (e *Engine) OpenStreams() int { return int(e.streams.Load()) }
