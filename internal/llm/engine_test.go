package llm

import (
	"context"
	"strings"
	"sync"
	"testing"

	"llmms/internal/gpu"
	"llmms/internal/metrics"
	"llmms/internal/truthfulqa"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Generate(200, 1))})
}

func TestGenerateKnownQuestionStream(t *testing.T) {
	e := newTestEngine(t)
	stream, err := e.Generate(context.Background(), GenRequest{
		Model:  ModelLlama3,
		Prompt: "What happens if you swallow chewing gum?",
	})
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	var final Chunk
	chunks := 0
	for c := range stream {
		text.WriteString(c.Text)
		chunks++
		if c.Done {
			final = c
		}
	}
	if chunks < 2 {
		t.Fatalf("expected a multi-chunk stream, got %d chunks", chunks)
	}
	if final.DoneReason != DoneStop {
		t.Fatalf("done reason = %s, want stop", final.DoneReason)
	}
	if final.EvalCount == 0 || final.TotalTokens != final.EvalCount {
		t.Fatalf("bad counts: %+v", final)
	}
	if !strings.Contains(strings.ToLower(text.String()), "gum") {
		t.Fatalf("answer off-topic: %q", text.String())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	e := newTestEngine(t)
	req := GenRequest{Model: ModelQwen2, Prompt: "What is the capital of France?"}
	a, _, err := e.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic generation:\n%q\n%q", a, b)
	}
}

func TestModelsDiffer(t *testing.T) {
	e := newTestEngine(t)
	prompt := "What happens if you break a mirror?"
	var outs []string
	for _, m := range []string{ModelLlama3, ModelMistral, ModelQwen2} {
		text, _, err := e.GenerateAll(context.Background(), GenRequest{Model: m, Prompt: prompt})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, text)
	}
	if outs[0] == outs[1] && outs[1] == outs[2] {
		t.Fatalf("all models produced identical text: %q", outs[0])
	}
}

func TestMaxTokensAndContinuation(t *testing.T) {
	e := newTestEngine(t)
	req := GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?", MaxTokens: 5}
	part1, last1, err := e.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if last1.DoneReason != DoneLength {
		t.Fatalf("done reason = %s, want length", last1.DoneReason)
	}
	if last1.EvalCount != 5 {
		t.Fatalf("eval count = %d, want 5", last1.EvalCount)
	}
	// Continue until natural stop.
	full, lastFull, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	text := part1
	ctxState := last1.Context
	for i := 0; i < 100; i++ {
		part, last, err := e.GenerateAll(context.Background(), GenRequest{
			Model: ModelLlama3, Prompt: "Are bats blind?", MaxTokens: 7, Context: ctxState,
		})
		if err != nil {
			t.Fatal(err)
		}
		text += part
		ctxState = last.Context
		if last.DoneReason == DoneStop {
			break
		}
	}
	if text != full {
		t.Fatalf("continuation does not reassemble full answer:\n%q\n%q", text, full)
	}
	if lastFull.DoneReason != DoneStop {
		t.Fatalf("full generation reason = %s", lastFull.DoneReason)
	}
}

func TestContinuationAtStopReturnsEmpty(t *testing.T) {
	e := newTestEngine(t)
	full, last, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelMistral, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	more, last2, err := e.GenerateAll(context.Background(), GenRequest{
		Model: ModelMistral, Prompt: "Are bats blind?", Context: last.Context, MaxTokens: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if more != "" || last2.DoneReason != DoneStop {
		t.Fatalf("continuation past stop: %q %s", more, last2.DoneReason)
	}
	_ = full
}

func TestUnknownModel(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Generate(context.Background(), GenRequest{Model: "gpt-9", Prompt: "hi"}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestAutoLoadAndStats(t *testing.T) {
	e := newTestEngine(t)
	if e.Loaded(ModelMistral) {
		t.Fatal("model loaded before use")
	}
	_, _, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelMistral, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Loaded(ModelMistral) {
		t.Fatal("model not auto-loaded")
	}
	st, err := e.Stats(ModelMistral)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.TokensGenerated == 0 || st.SimulatedSeconds <= 0 {
		t.Fatalf("bad stats: %+v", st)
	}
	if err := e.Unload(ModelMistral); err != nil {
		t.Fatal(err)
	}
	if e.Loaded(ModelMistral) {
		t.Fatal("model still loaded after unload")
	}
}

func TestLoadUnknownAndUnloadIdempotent(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Load("nope"); err == nil {
		t.Fatal("expected error loading unknown model")
	}
	if err := e.Load(ModelQwen2); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(ModelQwen2); err != nil {
		t.Fatal("double load should be a no-op")
	}
	if err := e.Unload(ModelQwen2); err != nil {
		t.Fatal(err)
	}
	if err := e.Unload(ModelQwen2); err != nil {
		t.Fatal("double unload should be a no-op")
	}
}

func TestGPUAccounting(t *testing.T) {
	cluster := gpu.NewCluster(gpu.TeslaV100)
	e := NewEngine(Options{Cluster: cluster, Knowledge: NewKnowledge(truthfulqa.Seed())})
	if err := e.Load(ModelLlama3); err != nil {
		t.Fatal(err)
	}
	snap := cluster.Stats()
	if snap.Devices[0].MemoryUsed == 0 {
		t.Fatal("load did not reserve VRAM")
	}
	if err := e.Unload(ModelLlama3); err != nil {
		t.Fatal(err)
	}
	if cluster.Stats().Devices[0].MemoryUsed != 0 {
		t.Fatal("unload did not release VRAM")
	}
}

func TestCancelation(t *testing.T) {
	e := NewEngine(Options{
		Knowledge:    NewKnowledge(truthfulqa.Seed()),
		LatencyScale: 0.05, // slow enough to cancel mid-stream
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := e.Generate(ctx, GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	var final Chunk
	for c := range stream {
		got++
		if got == 2 {
			cancel()
		}
		if c.Done {
			final = c
		}
	}
	if final.DoneReason != DoneCancel {
		t.Fatalf("done reason = %s, want cancel", final.DoneReason)
	}
}

func TestExtractiveContextAnswer(t *testing.T) {
	e := newTestEngine(t)
	prompt := "Context:\n" +
		"The DMSL laboratory operates a virtual server with an NVIDIA Tesla V100 GPU. " +
		"The server runs Ubuntu and hosts the Ollama daemon. " +
		"Coffee in the kitchen is free for students.\n\n" +
		"Question: What GPU does the DMSL server use?\nAnswer:"
	text, _, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelLlama3, Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "V100") {
		t.Fatalf("extractive answer missed the relevant sentence: %q", text)
	}
	if !strings.Contains(text, "Based on the provided context") {
		t.Fatalf("extractive answer not grounded: %q", text)
	}
}

func TestGenericFallback(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(nil)})
	text, last, err := e.GenerateAll(context.Background(), GenRequest{
		Model: ModelQwen2, Prompt: "What is the airspeed velocity of an unladen swallow?",
	})
	if err != nil {
		t.Fatal(err)
	}
	if text == "" || last.DoneReason != DoneStop {
		t.Fatalf("generic answer: %q %s", text, last.DoneReason)
	}
}

func TestVerbosityDrivesTokenCounts(t *testing.T) {
	e := newTestEngine(t)
	ds := truthfulqa.Generate(60, 1)
	totals := map[string]int{}
	for _, it := range ds {
		for _, m := range []string{ModelLlama3, ModelMistral} {
			_, last, err := e.GenerateAll(context.Background(), GenRequest{Model: m, Prompt: it.Question})
			if err != nil {
				t.Fatal(err)
			}
			totals[m] += last.EvalCount
		}
	}
	if totals[ModelLlama3] <= totals[ModelMistral] {
		t.Fatalf("verbose llama3 (%d tokens) not above terse mistral (%d)",
			totals[ModelLlama3], totals[ModelMistral])
	}
}

// TestSkillProfilesRealized checks the central simulation property: each
// model's empirical truthfulness tracks its skill profile, so models have
// complementary strengths.
func TestSkillProfilesRealized(t *testing.T) {
	ds := truthfulqa.Generate(400, 1)
	e := NewEngine(Options{Knowledge: NewKnowledge(ds)})
	scorer := metrics.NewScorer(nil, metrics.RewardWeights{})

	acc := map[string]map[string][2]int{} // model -> category -> [truthful, total]
	for _, m := range []string{ModelLlama3, ModelMistral, ModelQwen2} {
		acc[m] = map[string][2]int{}
	}
	for _, it := range ds {
		for _, m := range []string{ModelLlama3, ModelMistral, ModelQwen2} {
			text, _, err := e.GenerateAll(context.Background(), GenRequest{Model: m, Prompt: it.Question})
			if err != nil {
				t.Fatal(err)
			}
			c := acc[m][it.Category]
			if scorer.Truthful(text, it) {
				c[0]++
			}
			c[1]++
			acc[m][it.Category] = c
		}
	}
	rate := func(m, cat string) float64 {
		c := acc[m][cat]
		if c[1] == 0 {
			return 0
		}
		return float64(c[0]) / float64(c[1])
	}
	// Qwen2 must beat Llama3 on arithmetic; Llama3 must beat Qwen2 on
	// misconceptions — the complementary-strengths regime.
	if rate(ModelQwen2, "Arithmetic") <= rate(ModelLlama3, "Arithmetic") {
		t.Errorf("qwen2 arithmetic %.2f not above llama3 %.2f",
			rate(ModelQwen2, "Arithmetic"), rate(ModelLlama3, "Arithmetic"))
	}
	if rate(ModelLlama3, "Misconceptions") <= rate(ModelQwen2, "Misconceptions") {
		t.Errorf("llama3 misconceptions %.2f not above qwen2 %.2f",
			rate(ModelLlama3, "Misconceptions"), rate(ModelQwen2, "Misconceptions"))
	}
}

func TestConcurrentGeneration(t *testing.T) {
	e := newTestEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{ModelLlama3, ModelMistral, ModelQwen2}[i%3]
			_, _, err := e.GenerateAll(context.Background(), GenRequest{
				Model: model, Prompt: "What is the capital of France?",
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestKnowledgeFind(t *testing.T) {
	kb := NewKnowledge(truthfulqa.Seed())
	if _, ok := kb.Find("Are bats blind?"); !ok {
		t.Fatal("exact question not found")
	}
	// Wrapped in RAG sections.
	wrapped := "Context:\nsome retrieved text.\n\nQuestion: Are bats blind?\nAnswer:"
	if _, ok := kb.Find(wrapped); !ok {
		t.Fatal("wrapped question not found")
	}
	if _, ok := kb.Find("What is the meaning of life?"); ok {
		t.Fatal("unknown question should not resolve")
	}
	if _, ok := kb.Find(""); ok {
		t.Fatal("empty prompt should not resolve")
	}
}

func TestSplitSentences(t *testing.T) {
	got := splitSentences("One. Two! Three?\nFour")
	want := []string{"One.", "Two!", "Three?", "Four"}
	if len(got) != len(want) {
		t.Fatalf("splitSentences = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("splitSentences[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRegisterReplaces(t *testing.T) {
	e := newTestEngine(t)
	p, _ := e.Profile(ModelMistral)
	p.DefaultSkill = 0.99
	e.Register(p)
	p2, _ := e.Profile(ModelMistral)
	if p2.DefaultSkill != 0.99 {
		t.Fatal("Register did not replace profile")
	}
	if _, err := e.Profile("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestContextWindowClamp(t *testing.T) {
	e := newTestEngine(t)
	p, _ := e.Profile(ModelMistral)
	p.Name = "tiny-window"
	p.ContextWindow = 8
	e.Register(p)
	text, last, err := e.GenerateAll(context.Background(), GenRequest{
		Model: "tiny-window", Prompt: "Are bats blind?",
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.TotalTokens > 8 {
		t.Fatalf("generated %d tokens past the context window", last.TotalTokens)
	}
	_ = text
}

func BenchmarkGenerateKnown(b *testing.B) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Generate(200, 1))})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := e.GenerateAll(context.Background(), GenRequest{
			Model: ModelMistral, Prompt: "What is the capital of France?",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed())})
	profiles := e.Profiles()
	if len(profiles) != 3 {
		t.Fatalf("%d profiles", len(profiles))
	}
	for i := 1; i < len(profiles); i++ {
		if profiles[i-1].Name >= profiles[i].Name {
			t.Fatalf("profiles not sorted: %v", profiles)
		}
	}
	if e.Cluster() == nil || e.Tokenizer() == nil {
		t.Fatal("nil cluster or tokenizer")
	}
	if e.Knowledge() == nil || e.Knowledge().Len() == 0 {
		t.Fatal("knowledge empty")
	}
}

func TestEngineEmbed(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed())})
	v, err := e.Embed("mxbai-embed-large", "are bats blind")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Fatal("empty embedding")
	}
	if _, err := e.Embed("no-such-encoder", "text"); err == nil {
		t.Fatal("expected error for unknown encoder")
	}
}

func TestEngineGenerateChunkPrimitive(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed())})
	first, err := e.GenerateChunk(context.Background(), ChunkRequest{Model: ModelMistral, Prompt: "Are bats blind?", MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if first.EvalCount != 5 || first.DoneReason != DoneLength {
		t.Fatalf("first chunk = %+v", first)
	}
	second, err := e.GenerateChunk(context.Background(), ChunkRequest{Model: ModelMistral, Prompt: "Are bats blind?", Cont: first.Context})
	if err != nil {
		t.Fatal(err)
	}
	if second.DoneReason != DoneStop {
		t.Fatalf("second chunk = %+v", second)
	}
	full, _, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelMistral, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Text+second.Text != full {
		t.Fatalf("chunked generation diverged:\n%q + %q\n!= %q", first.Text, second.Text, full)
	}
}
