package llm

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"llmms/internal/truthfulqa"
)

// benchBatchConcurrency is the same-model fan-in the batch benchmark
// measures: the acceptance scenario is ≥8 concurrent queries hitting
// one model.
const benchBatchConcurrency = 8

// benchmarkBatchDecode drives waves of concurrent same-model
// generations through one engine and reports per-request decode
// wall-clock (p50_ms) and aggregate qps. With batching on, the
// scheduler steps all requests together at ~2x one stream's per-token
// cost; with batching off, the independent goroutines time-slice the
// model's throughput at ~Kx.
func benchmarkBatchDecode(b *testing.B, disable bool) {
	// The scale is chosen so one llama3 decode step (~0.5ms) stays well
	// above timer granularity — smaller scales let time.Sleep overshoot
	// flatten the on/off contrast the cost model produces.
	e := NewEngine(Options{
		Knowledge:       NewKnowledge(truthfulqa.Seed()),
		LatencyScale:    0.05,
		DisableBatching: disable,
	})
	defer e.Close()
	req := GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?", MaxTokens: 24}

	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N*benchBatchConcurrency)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < benchBatchConcurrency; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				if _, _, err := e.GenerateAll(context.Background(), req); err != nil {
					b.Error(err)
					return
				}
				d := time.Since(t0)
				mu.Lock()
				lats = append(lats, d)
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	b.StopTimer()

	if b.Failed() || len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := float64(lats[len(lats)/2]) / float64(time.Millisecond)
	b.ReportMetric(p50, "p50_ms")
	b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "qps")
}

// BenchmarkBatchDecode is the engine-level half of `make bench-batch`
// (BENCH_batch.json): 8 concurrent same-model generations with the
// continuous batch scheduler on versus the goroutine-per-stream path.
func BenchmarkBatchDecode(b *testing.B) {
	b.Run("batch_on", func(b *testing.B) { benchmarkBatchDecode(b, false) })
	b.Run("batch_off", func(b *testing.B) { benchmarkBatchDecode(b, true) })
}
