package llm

import (
	"sort"
	"strings"

	"llmms/internal/embedding"
	"llmms/internal/tokenizer"
	"llmms/internal/truthfulqa"
)

// plan composes the full response a model would produce for a prompt.
// Planning is deterministic in (profile, prompt): the engine replans on
// continuation requests and resumes from the cursor, which is what makes
// the stateless Ollama-style continuation contract work.
func (e *Engine) plan(p Profile, prompt string) string {
	question := extractQuestion(prompt)
	if question == "" {
		return "I need a question or instruction to respond to."
	}
	if it, ok := e.kb.Find(prompt); ok {
		return e.planKnown(p, question, it)
	}
	if ctx := extractContext(prompt); ctx != "" {
		return e.planExtractive(p, question, ctx)
	}
	return e.planGeneric(p, question)
}

// planKnown answers a benchmark question truthfully or not according to
// the model's category skill, with a deterministic per-(model, question)
// draw — the simulation's analogue of heterogeneous model competence.
func (e *Engine) planKnown(p Profile, question string, it truthfulqa.Item) string {
	key := normalizeQuestion(question)
	truthful := hash01(p.Seed, "truth|"+key) < p.SkillFor(it.Category)

	var core string
	if truthful {
		answers := it.AllCorrect()
		// Prefer the golden phrasing, but sometimes verbalize a
		// paraphrase so different truthful models agree semantically
		// without being textually identical.
		idx := 0
		if len(answers) > 1 && hash01(p.Seed, "variant|"+key) > 0.6 {
			idx = 1 + hashPick(p.Seed, "pick|"+key, len(answers)-1)
		}
		core = answers[idx]
	} else {
		// Different models fall for different wrong answers (the seed is
		// in the hash), so untruthful outputs tend to disagree with each
		// other — the property the consensus term of the scoring exploits.
		core = it.IncorrectAnswers[hashPick(p.Seed, "wrong|"+key, len(it.IncorrectAnswers))]
	}
	return e.decorate(p, key, core, truthful, it)
}

// decorate wraps the core answer in the model's surface style. Verbosity
// drives token counts: terse models emit nearly bare answers, verbose
// models add preambles and elaborations.
func (e *Engine) decorate(p Profile, key, core string, truthful bool, it truthfulqa.Item) string {
	var b strings.Builder
	style := p.Style
	usePreamble := false
	switch p.Verbosity {
	case Verbose:
		usePreamble = true
	case Medium:
		usePreamble = hash01(p.Seed, "pre|"+key) < 0.6
	default:
		usePreamble = hash01(p.Seed, "pre|"+key) < 0.2
	}
	if usePreamble && len(style.Preambles) > 0 {
		b.WriteString(style.Preambles[hashPick(p.Seed, "preamble|"+key, len(style.Preambles))])
	}
	if !truthful && len(style.Hedges) > 0 && hash01(p.Seed, "hedge|"+key) < 0.5 {
		b.WriteString(style.Hedges[hashPick(p.Seed, "hedgepick|"+key, len(style.Hedges))])
	}
	b.WriteString(core)
	switch p.Verbosity {
	case Verbose:
		// A supporting paraphrase plus a closing elaboration.
		if truthful {
			if extras := it.AllCorrect(); len(extras) > 1 {
				alt := extras[1+hashPick(p.Seed, "extra|"+key, len(extras)-1)]
				if !strings.EqualFold(alt, core) {
					b.WriteString(" To put it another way: ")
					b.WriteString(alt)
				}
			}
		}
		if len(style.Elaborations) > 0 {
			b.WriteString(style.Elaborations[hashPick(p.Seed, "elab|"+key, len(style.Elaborations))])
		}
	case Medium:
		if len(style.Elaborations) > 0 && hash01(p.Seed, "elab?|"+key) < 0.5 {
			b.WriteString(style.Elaborations[hashPick(p.Seed, "elab|"+key, len(style.Elaborations))])
		}
	}
	return strings.TrimSpace(b.String())
}

// planExtractive answers from supplied context: sentences are ranked by
// embedding similarity to the question, and the model's RAGSkill decides
// whether it verbalizes the most relevant one or drifts to a weaker pick.
func (e *Engine) planExtractive(p Profile, question, ctx string) string {
	sentences := splitSentences(ctx)
	if len(sentences) == 0 {
		return "The provided context is empty, so I cannot ground an answer in it."
	}
	qv := e.enc.Encode(question)
	type ranked struct {
		text string
		sim  float64
	}
	rs := make([]ranked, len(sentences))
	for i, s := range sentences {
		rs[i] = ranked{text: s, sim: embedding.Cosine(qv, e.enc.Encode(s))}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sim > rs[j].sim })

	key := normalizeQuestion(question)
	pick := 0
	if hash01(p.Seed, "rag|"+key) >= p.RAGSkill && len(rs) > 1 {
		// Drift: choose among the lower-ranked sentences.
		pick = 1 + hashPick(p.Seed, "ragpick|"+key, len(rs)-1)
	}

	var b strings.Builder
	b.WriteString("Based on the provided context, ")
	b.WriteString(strings.TrimSuffix(rs[pick].text, "."))
	b.WriteString(".")
	if p.Verbosity == Verbose {
		// Elaborate with the next distinct sentence, if any; retrieved
		// chunks often overlap, so skip near-duplicates of the pick.
		for i := 1; i < len(rs); i++ {
			second := rs[(pick+i)%len(rs)]
			if strings.EqualFold(second.text, rs[pick].text) {
				continue
			}
			b.WriteString(" The context also notes: ")
			b.WriteString(second.text)
			break
		}
	}
	return b.String()
}

// genericOpeners are shared fallback phrasings for questions outside the
// knowledge base and without context; the hash pick keeps them
// model-specific and deterministic.
var genericOpeners = []string{
	"I don't have reliable information about %s.",
	"I'm not certain about %s; I would need to verify this.",
	"There is no definitive answer I can give about %s without more context.",
	"I have no comment on %s.",
}

// planGeneric handles out-of-knowledge prompts: an honest refusal built
// around the prompt's content words, styled by the model.
func (e *Engine) planGeneric(p Profile, question string) string {
	words := tokenizer.Words(question)
	var content []string
	for _, w := range words {
		if len(w) > 3 {
			content = append(content, w)
		}
		if len(content) == 4 {
			break
		}
	}
	topic := strings.Join(content, " ")
	if topic == "" {
		topic = "that"
	}
	key := normalizeQuestion(question)
	opener := genericOpeners[hashPick(p.Seed, "generic|"+key, len(genericOpeners))]
	resp := strings.Replace(opener, "%s", topic, 1)
	if p.Verbosity == Verbose {
		resp += " If you can share a document or more details, I can give a grounded answer."
	}
	return resp
}
