package llm

import "context"

// This file is the single backend contract the orchestration stack
// resolves against. Historically the repository had two disjoint
// resolutions: core.Backend (GenerateChunk) was the orchestrator's
// declared dependency, while StreamingBackend (OpenStream) was
// discovered separately by a direct type assertion on the concrete
// value. Any wrapper that decorated GenerateChunk but forgot OpenStream
// — a fault injector, a replica pool, an instrumentation shim — then
// silently stripped streaming from the whole stack: queries still
// worked, just on the slow per-round path, with nothing failing
// loudly enough to notice.
//
// The contract collapses to:
//
//   - Backend is the one required capability (GenerateChunk).
//   - Streaming is an optional capability probed with AsStreaming,
//     which follows Unwrap chains so pass-through wrappers cannot strip
//     it by accident.
//   - Wrappers that do not decorate streams either implement Wrapper
//     (declaring pass-through) or are composed with WrapPreserving,
//     which grafts the inner backend's streaming capability onto the
//     wrapped value by construction.

// Backend produces partial generations — the paper's getChunk(LLM_i, p,
// λ) primitive. Engine, modeld.Client, fleet.Pool, and core.FaultBackend
// all satisfy it; core.Backend is an alias of this interface.
// GenerateChunk generates up to req.MaxTokens more tokens of the model's
// answer to req.Prompt, resuming from req.Cont (nil starts fresh).
//
// Implementations must be safe for concurrent use across models: the
// orchestrator issues one in-flight call per active model during a
// fan-out round.
type Backend interface {
	GenerateChunk(ctx context.Context, req ChunkRequest) (Chunk, error)
}

// Wrapper is implemented by backends that decorate another backend
// without decorating its persistent-stream capability. Unwrap returns
// the wrapped backend so capability probes (AsStreaming) can continue
// the search down the chain. A wrapper that decorates streams itself
// implements StreamingBackend instead (and may additionally implement
// Wrapper — its own OpenStream wins, being found first).
type Wrapper interface {
	Unwrap() Backend
}

// AsStreaming reports whether b can hold persistent generation streams,
// resolving the capability through Unwrap chains: the first backend in
// the chain that implements StreamingBackend is returned. This is the
// ONE way the repository resolves streaming — callers must not type-assert
// StreamingBackend directly, or wrappers will strip the capability.
func AsStreaming(b Backend) (StreamingBackend, bool) {
	for b != nil {
		if sb, ok := b.(StreamingBackend); ok {
			return sb, true
		}
		w, ok := b.(Wrapper)
		if !ok {
			return nil, false
		}
		b = w.Unwrap()
	}
	return nil, false
}

// WrapPreserving composes a decorating backend over an inner one while
// preserving the inner's streaming capability by construction: the
// result generates through outer, and — when outer does not itself
// decorate streams but the inner chain can stream — opens streams
// through the inner streaming backend. Use it whenever a wrapper only
// cares about the chunk path, so wrapping can never silently downgrade
// the stack to per-round generation.
//
//	backend := llm.WrapPreserving(myChunkOnlyWrapper{engine}, engine)
//
// If outer already implements StreamingBackend (or Wrapper), it is
// returned unchanged — it has made its own streaming decision.
func WrapPreserving(outer, inner Backend) Backend {
	if outer == nil {
		return inner
	}
	if _, ok := outer.(StreamingBackend); ok {
		return outer
	}
	if _, ok := outer.(Wrapper); ok {
		return outer
	}
	if _, ok := AsStreaming(inner); !ok {
		return outer
	}
	return preservingBackend{outer: outer, inner: inner}
}

// preservingBackend is WrapPreserving's composite: chunks through the
// wrapper, streams through the inner chain.
type preservingBackend struct {
	outer Backend
	inner Backend
}

// GenerateChunk implements Backend through the wrapper.
func (p preservingBackend) GenerateChunk(ctx context.Context, req ChunkRequest) (Chunk, error) {
	return p.outer.GenerateChunk(ctx, req)
}

// OpenStream implements StreamingBackend through the inner chain.
func (p preservingBackend) OpenStream(ctx context.Context, req ChunkRequest) (ChunkStream, error) {
	sb, ok := AsStreaming(p.inner)
	if !ok {
		return nil, ErrStreamUnsupported
	}
	return sb.OpenStream(ctx, req)
}

// Unwrap exposes the inner chain for further capability probes.
func (p preservingBackend) Unwrap() Backend { return p.inner }
