package llm

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"llmms/internal/truthfulqa"
)

// batchTestPrompts exercise the planner's main shapes: known question,
// extractive context, generic fallback.
var batchTestPrompts = []string{
	"Are bats blind?",
	"What is the capital of France?",
	"Context:\nThe DMSL laboratory operates a virtual server with an NVIDIA Tesla V100 GPU.\n\nQuestion: What GPU does the DMSL server use?\nAnswer:",
	"Tell me something surprising about typography.",
}

// TestBatchedMatchesUnbatched is the determinism contract: the batch
// scheduler must produce byte-identical text and identical final-chunk
// metadata to the goroutine-per-stream path, including under MaxTokens
// clamps and continuation.
func TestBatchedMatchesUnbatched(t *testing.T) {
	kb := NewKnowledge(truthfulqa.Generate(200, 1))
	batched := NewEngine(Options{Knowledge: kb})
	unbatched := NewEngine(Options{Knowledge: kb, DisableBatching: true})
	defer batched.Close()

	for _, model := range []string{ModelLlama3, ModelMistral, ModelQwen2} {
		for _, prompt := range batchTestPrompts {
			req := GenRequest{Model: model, Prompt: prompt}
			bText, bLast, err := batched.GenerateAll(context.Background(), req)
			if err != nil {
				t.Fatalf("%s batched: %v", model, err)
			}
			uText, uLast, err := unbatched.GenerateAll(context.Background(), req)
			if err != nil {
				t.Fatalf("%s unbatched: %v", model, err)
			}
			if bText != uText {
				t.Fatalf("%s %q: batched text %q != unbatched %q", model, prompt, bText, uText)
			}
			if bLast.DoneReason != uLast.DoneReason || bLast.EvalCount != uLast.EvalCount ||
				bLast.TotalTokens != uLast.TotalTokens || len(bLast.Context) != len(uLast.Context) {
				t.Fatalf("%s %q: final chunks differ: %+v vs %+v", model, prompt, bLast, uLast)
			}
		}
	}

	// Chunked continuation: two capped calls resume identically.
	req := GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?", MaxTokens: 5}
	bText, bLast, err := batched.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	uText, uLast, err := unbatched.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if bText != uText || bLast.DoneReason != DoneLength {
		t.Fatalf("capped: %q (%s) vs %q (%s)", bText, bLast.DoneReason, uText, uLast.DoneReason)
	}
	req.Context = bLast.Context
	req.MaxTokens = 0
	bText2, _, err := batched.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Context = uLast.Context
	uText2, _, err := unbatched.GenerateAll(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if bText2 != uText2 {
		t.Fatalf("continuation: batched %q != unbatched %q", bText2, uText2)
	}
}

// TestBatchAdmissionBetweenSteps verifies continuous batching's defining
// property: a sequence submitted while another is mid-decode joins the
// running batch and streams tokens before the first finishes, rather
// than queuing behind it.
func TestBatchAdmissionBetweenSteps(t *testing.T) {
	e := NewEngine(Options{
		Knowledge:    NewKnowledge(truthfulqa.Seed()),
		LatencyScale: 0.05,
	})
	defer e.Close()

	a, err := e.Generate(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until A is demonstrably mid-decode.
	if c := <-a; c.Done {
		t.Fatal("stream A finished on its first chunk")
	}
	b, err := e.Generate(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "What is the capital of France?"})
	if err != nil {
		t.Fatal(err)
	}

	bFirst := make(chan time.Time, 1)
	var bDone sync.WaitGroup
	bDone.Add(1)
	go func() {
		defer bDone.Done()
		first := true
		for c := range b {
			if first && c.Text != "" {
				bFirst <- time.Now()
				first = false
			}
		}
	}()
	var aDone time.Time
	for c := range a {
		if c.Done {
			aDone = time.Now()
		}
	}
	bDone.Wait()
	select {
	case first := <-bFirst:
		if !first.Before(aDone) {
			t.Fatalf("B's first token (%v) did not precede A's completion (%v)", first, aDone)
		}
	default:
		t.Fatal("B produced no text")
	}
}

// TestBatchFairness pins the budget to one token per step and checks
// round-robin scheduling: a short late arrival finishes while the long
// early stream is still decoding, instead of starving behind it.
func TestBatchFairness(t *testing.T) {
	e := NewEngine(Options{
		Knowledge:      NewKnowledge(truthfulqa.Seed()),
		LatencyScale:   0.02,
		MaxBatchTokens: 1,
	})
	defer e.Close()

	a, err := e.Generate(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	if c := <-a; c.Done {
		t.Fatal("stream A finished on its first chunk")
	}
	b, err := e.Generate(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "What is the capital of France?", MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan string, 2)
	go func() {
		for c := range a {
			if c.Done {
				done <- "a"
			}
		}
	}()
	go func() {
		for c := range b {
			if c.Done {
				done <- "b"
			}
		}
	}()
	if first := <-done; first != "b" {
		t.Fatalf("long stream finished before the 2-token late arrival; round-robin starved B")
	}
	<-done
}

// TestBatchDrainOnUnload starts a generation, unloads the model
// mid-decode, and verifies the in-flight sequence finishes cleanly
// (full text, natural stop) while the model ends up unloaded; the next
// generation auto-loads a fresh scheduler.
func TestBatchDrainOnUnload(t *testing.T) {
	kb := NewKnowledge(truthfulqa.Seed())
	e := NewEngine(Options{Knowledge: kb, LatencyScale: 0.02})
	defer e.Close()

	want, _, err := NewEngine(Options{Knowledge: kb}).GenerateAll(
		context.Background(), GenRequest{Model: ModelMistral, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}

	stream, err := e.Generate(context.Background(), GenRequest{Model: ModelMistral, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	if c := <-stream; c.Done {
		t.Fatal("stream finished on its first chunk")
	}
	unloaded := make(chan error, 1)
	go func() { unloaded <- e.Unload(ModelMistral) }()

	var text string
	var last Chunk
	// Re-read the first chunk's text by regenerating below; here collect
	// the remainder and the terminal.
	for c := range stream {
		text += c.Text
		if c.Done {
			last = c
		}
	}
	if err := <-unloaded; err != nil {
		t.Fatal(err)
	}
	if last.DoneReason != DoneStop {
		t.Fatalf("drained stream ended %q, want stop", last.DoneReason)
	}
	if last.TotalTokens != len(last.Context) {
		t.Fatalf("terminal chunk inconsistent: total %d, context %d", last.TotalTokens, len(last.Context))
	}
	if e.Loaded(ModelMistral) {
		t.Fatal("model still loaded after Unload")
	}

	// The model reloads with a fresh scheduler and still matches the
	// unbatched reference.
	got, _, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelMistral, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-unload text %q != reference %q", got, want)
	}
}

// TestBatchConcurrentAdmitCancelUnload hammers one model with
// concurrent generations, mid-stream cancellations, and unloads; run
// under -race (scripts/check.sh does) it doubles as the scheduler's
// data-race test. Every stream must still terminate with a Done chunk.
func TestBatchConcurrentAdmitCancelUnload(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed())})
	defer e.Close()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stream, err := e.Generate(ctx, GenRequest{Model: ModelQwen2, Prompt: "Are bats blind?"})
			if err != nil {
				t.Error(err)
				return
			}
			sawDone := false
			n := 0
			for c := range stream {
				n++
				if i%3 == 0 && n == 2 {
					cancel()
				}
				if c.Done {
					sawDone = true
				}
			}
			if !sawDone {
				t.Errorf("stream %d closed without a Done chunk", i)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.Unload(ModelQwen2)
		}()
	}
	wg.Wait()
}

// TestGenerateAbandonedConsumerNoLeak is the goroutine-leak regression
// test for the old 16-buffered channel: a consumer that cancels and
// walks away mid-stream must not strand the producer on a blocked
// terminal send. Covers both execution paths.
func TestGenerateAbandonedConsumerNoLeak(t *testing.T) {
	for _, disable := range []bool{false, true} {
		e := NewEngine(Options{
			Knowledge:       NewKnowledge(truthfulqa.Seed()),
			LatencyScale:    0.01,
			DisableBatching: disable,
		})
		before := runtime.NumGoroutine()
		for i := 0; i < 10; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			stream, err := e.Generate(ctx, GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"})
			if err != nil {
				t.Fatal(err)
			}
			<-stream // one chunk, then abandon without draining
			cancel()
		}
		// Also abandon an uncanceled stream outright: the full-capacity
		// buffer lets the producer run to completion regardless.
		if _, err := e.Generate(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"}); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if g := runtime.NumGoroutine(); g <= before+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("disable=%v: goroutines leaked: %d before, %d after", disable, before, runtime.NumGoroutine())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestBatchStats checks the scheduler snapshot plumbing used by the
// daemon's /api/ps.
func TestBatchStats(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed())})
	defer e.Close()

	if _, ok := e.BatchStats(ModelLlama3); ok {
		t.Fatal("BatchStats reported a scheduler before any generation")
	}
	text, _, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := e.BatchStats(ModelLlama3)
	if !ok {
		t.Fatal("no scheduler after generation")
	}
	if st.Steps == 0 || st.Decoded == 0 {
		t.Fatalf("scheduler recorded no work: %+v", st)
	}
	if st.Active != 0 || st.Pending != 0 {
		t.Fatalf("idle scheduler reports occupancy: %+v", st)
	}
	if text == "" {
		t.Fatal("empty generation")
	}
	if !e.BatchingEnabled() {
		t.Fatal("BatchingEnabled false on default options")
	}

	off := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed()), DisableBatching: true})
	if off.BatchingEnabled() {
		t.Fatal("BatchingEnabled true with DisableBatching")
	}
	if _, _, err := off.GenerateAll(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := off.BatchStats(ModelLlama3); ok {
		t.Fatal("BatchStats reported a scheduler with batching disabled")
	}
}

// TestBatchHooksFire verifies the observer plumbing the telemetry layer
// hangs off the scheduler.
func TestBatchHooksFire(t *testing.T) {
	e := NewEngine(Options{Knowledge: NewKnowledge(truthfulqa.Seed())})
	defer e.Close()

	var mu sync.Mutex
	steps, admits, idles := 0, 0, 0
	e.SetBatchHooks(BatchHooks{
		Step: func(model string, occupancy, decoded int, dur time.Duration) {
			mu.Lock()
			steps++
			mu.Unlock()
		},
		Admit: func(model string, waited time.Duration) {
			mu.Lock()
			admits++
			mu.Unlock()
		},
		Idle: func(model string) {
			mu.Lock()
			idles++
			mu.Unlock()
		},
	})
	if _, _, err := e.GenerateAll(context.Background(), GenRequest{Model: ModelLlama3, Prompt: "Are bats blind?"}); err != nil {
		t.Fatal(err)
	}
	// Idle fires when the loop parks after the batch drains; give it a
	// moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s, a, i := steps, admits, idles
		mu.Unlock()
		if s > 0 && a > 0 && i > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hooks did not all fire: steps=%d admits=%d idles=%d", s, a, i)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
