package llm

import (
	"context"
	"sync"
	"time"

	"llmms/internal/tokenizer"
)

// DefaultMaxBatchTokens is the per-step token budget of a model's batch
// scheduler when Options.MaxBatchTokens is zero: prefill tokens charged
// at admission plus one decode token per stepped sequence must fit.
const DefaultMaxBatchTokens = 256

// BatchHooks observe the per-model batch schedulers. The engine calls
// them from scheduler loops without holding any engine lock; they must
// be fast and must not call back into the engine. Nil fields are
// skipped. The function-field shape keeps internal/llm free of a
// telemetry dependency — telemetry.RegisterBatchMetrics returns methods
// matching these signatures.
type BatchHooks struct {
	// Step fires after each scheduler step: occupancy is the number of
	// active sequences after the step, decoded how many tokens the step
	// produced, dur the simulated step wall-clock.
	Step func(model string, occupancy, decoded int, dur time.Duration)
	// Admit fires when a sequence joins the active batch (or completes
	// at admission); waited is the time it spent queued for a step
	// boundary.
	Admit func(model string, waited time.Duration)
	// Idle fires when a scheduler's batch drains empty and the loop
	// parks until the next submission.
	Idle func(model string)
}

// SetBatchHooks installs scheduler observers, replacing any previous
// set. Safe to call while schedulers are running.
func (e *Engine) SetBatchHooks(h BatchHooks) {
	e.hooksMu.Lock()
	e.hooks = h
	e.hooksMu.Unlock()
}

func (e *Engine) batchHooks() BatchHooks {
	e.hooksMu.RLock()
	defer e.hooksMu.RUnlock()
	return e.hooks
}

// BatchStats is a point-in-time snapshot of one model's batch scheduler.
type BatchStats struct {
	// Active is the current batch occupancy (sequences decoding).
	Active int
	// Pending is the number of sequences queued for admission.
	Pending int
	// Steps is the cumulative count of decode steps executed.
	Steps uint64
	// Decoded is the cumulative count of tokens those steps produced.
	Decoded uint64
}

// BatchStats reports the named model's scheduler snapshot. ok is false
// when the model has no scheduler (unknown model, batching disabled, or
// nothing generated since the last Unload).
func (e *Engine) BatchStats(model string) (BatchStats, bool) {
	e.mu.Lock()
	var s *batchScheduler
	if m, ok := e.models[model]; ok {
		s = m.sched
	}
	e.mu.Unlock()
	if s == nil {
		return BatchStats{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return BatchStats{
		Active: len(s.active), Pending: len(s.pending),
		Steps: s.steps, Decoded: s.decoded,
	}, true
}

// BatchingEnabled reports whether generations route through the
// continuous batch schedulers (the -batch flag on both binaries).
func (e *Engine) BatchingEnabled() bool { return !e.batchOff }

// batchSeq is one generation owned by a batch scheduler: the planned
// tokens plus a decode position the scheduler advances one token per
// step. The out channel's buffer holds the entire remaining plan, so
// every send is non-blocking by construction.
type batchSeq struct {
	ctx    context.Context
	out    chan Chunk
	tokens []tokenizer.Token
	// cursor is where this call's generation started (continuation
	// offset); pos is the next token to decode; end is one past the
	// last planned token.
	cursor, end, pos int
	reason           DoneReason
	// prefill is the token count re-ingested at admission (prompt plus
	// continued-from context), charged against the step budget once.
	prefill   int
	submitted time.Time
}

// batchScheduler is one model's continuous-batching loop: it owns the
// model's decode clock, admits pending sequences into the active batch
// between token steps, and steps all active sequences together. One
// step costs ~1x–2x a single stream's per-token wall-clock regardless
// of occupancy (see stepDuration), which is the whole point — K
// concurrent streams cost ~2x instead of Kx.
//
// Lock discipline: s.mu and the engine's e.mu are never held together.
// The loop calls e.finish and gpu accounting only after releasing s.mu;
// the engine calls submit/drain only after releasing e.mu.
type batchScheduler struct {
	e       *Engine
	model   string
	profile Profile
	budget  int

	mu       sync.Mutex
	pending  []*batchSeq
	active   []*batchSeq
	rr       int // round-robin start index into active for the next decode set
	draining bool
	steps    uint64
	decoded  uint64

	wake chan struct{} // buffered(1); submit/drain nudge the loop
	done chan struct{} // closed when the loop exits
}

func newBatchScheduler(e *Engine, model string, profile Profile, budget int) *batchScheduler {
	s := &batchScheduler{
		e: e, model: model, profile: profile, budget: budget,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go s.loop()
	return s
}

// schedulerFor returns the model's scheduler, creating and attaching one
// on first use. Callers must not hold e.mu.
func (e *Engine) schedulerFor(model string, profile Profile) *batchScheduler {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.models[model]
	if !ok {
		// Models are never deregistered, so this is unreachable after
		// planGeneration succeeded; a detached scheduler still works.
		return newBatchScheduler(e, model, profile, e.maxBatch)
	}
	if m.sched == nil {
		m.sched = newBatchScheduler(e, model, profile, e.maxBatch)
	}
	return m.sched
}

// detachScheduler clears the model's scheduler slot if it still holds
// sched, so the next schedulerFor starts fresh. Used when a submit
// raced a drain.
func (e *Engine) detachScheduler(model string, sched *batchScheduler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.models[model]; ok && m.sched == sched {
		m.sched = nil
	}
}

// drainScheduler stops admissions, lets in-flight and already-pending
// sequences finish, and blocks until the loop exits. Nil-safe and
// idempotent. Callers must not hold e.mu (the loop needs it to record
// stats while finishing).
func drainScheduler(s *batchScheduler) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
}

// submit queues a sequence for admission at the next step boundary.
// Returns false when the scheduler is draining (the caller must detach
// it and retry on a fresh one).
func (s *batchScheduler) submit(seq *batchSeq) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.pending = append(s.pending, seq)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return true
}

// stepDuration is the batch-efficiency cost model: one step pays the
// admitted sequences' prefill at the model's prefill rate plus a decode
// term that grows sublinearly with the decode-set size — batchEfficiency
// approaches 2 as K grows, so a full batch costs at most ~2x one
// stream's per-token wall-clock.
func (s *batchScheduler) stepDuration(prefillTokens, decoded int) time.Duration {
	scale := s.e.scale
	if scale <= 0 {
		return 0
	}
	var sec float64
	if prefillTokens > 0 && s.profile.PrefillRate() > 0 {
		sec += scale * float64(prefillTokens) / s.profile.PrefillRate()
	}
	if decoded > 0 && s.profile.TokensPerSec > 0 {
		sec += scale / s.profile.TokensPerSec * batchEfficiency(decoded)
	}
	return time.Duration(sec * float64(time.Second))
}

// batchEfficiency is the per-step latency multiplier for decoding k
// sequences together relative to one: 2 − 1/k (1.0 at k=1, →2 as k→∞).
func batchEfficiency(k int) float64 { return 2 - 1/float64(k) }

// terminal emits a sequence's final chunk, closes its channel, and
// records its generated tokens in the engine stats. The chunk fields
// match the unbatched path exactly for every done reason. Must be
// called without holding s.mu (e.finish takes e.mu).
func (s *batchScheduler) terminal(q *batchSeq, reason DoneReason) {
	emitted := q.pos - q.cursor
	s.e.finish(s.model, emitted, s.profile)
	q.out <- Chunk{Done: true, DoneReason: reason,
		Context: contextState(q.tokens[:q.pos]), EvalCount: emitted,
		TotalTokens: q.pos}
	close(q.out)
}

// loop is the scheduler: one iteration sweeps cancellations, admits
// pending sequences under the step budget, decodes a round-robin set of
// active sequences, sleeps the modeled step cost, then emits the
// decoded tokens and completes finished sequences. It parks when the
// batch drains empty and exits when draining with nothing left.
func (s *batchScheduler) loop() {
	var endJob func()
	park := func() {
		if endJob != nil {
			endJob()
			endJob = nil
			s.e.cluster.RecordStep(s.model, 0, 0)
			if h := s.e.batchHooks(); h.Idle != nil {
				h.Idle(s.model)
			}
		}
	}
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && len(s.active) == 0 {
			draining := s.draining
			s.mu.Unlock()
			park()
			if draining {
				close(s.done)
				return
			}
			<-s.wake
			s.mu.Lock()
		}

		// Sweep sequences canceled since the last step.
		var canceled []*batchSeq
		keep := s.active[:0]
		for _, q := range s.active {
			if q.ctx.Err() != nil {
				canceled = append(canceled, q)
			} else {
				keep = append(keep, q)
			}
		}
		clearTail(s.active, len(keep))
		s.active = keep

		// Admit pending sequences FIFO. The first admission of a step is
		// unconditional — a prompt whose prefill alone exceeds the budget
		// must still get in eventually — and later ones must fit the
		// budget alongside the decode set. Sequences with nothing left to
		// decode (continuation already at the end) complete right here.
		var admitted, finished []*batchSeq
		prefillTokens := 0
		for len(s.pending) > 0 {
			q := s.pending[0]
			if q.ctx.Err() != nil {
				s.pending = s.pending[1:]
				canceled = append(canceled, q)
				continue
			}
			if len(admitted) > 0 && prefillTokens+q.prefill+len(s.active)+1 > s.budget {
				break
			}
			s.pending = s.pending[1:]
			admitted = append(admitted, q)
			prefillTokens += q.prefill
			if q.pos >= q.end {
				finished = append(finished, q)
				continue
			}
			s.active = append(s.active, q)
		}

		// Pick this step's decode set round-robin: whatever budget the
		// prefill spend left over, at least one so prefill-heavy steps
		// still make decode progress, at most one token per active
		// sequence.
		n := s.budget - prefillTokens
		if n > len(s.active) {
			n = len(s.active)
		}
		if n < 1 && len(s.active) > 0 {
			n = 1
		}
		var stepped []*batchSeq
		if n > 0 {
			s.rr %= len(s.active)
			for i := 0; i < n; i++ {
				stepped = append(stepped, s.active[(s.rr+i)%len(s.active)])
			}
			s.rr = (s.rr + n) % len(s.active)
		} else {
			s.rr = 0
		}
		busy := len(s.active) > 0
		s.mu.Unlock()

		if h := s.e.batchHooks(); h.Admit != nil {
			now := time.Now()
			for _, q := range admitted {
				h.Admit(s.model, now.Sub(q.submitted))
			}
		}
		for _, q := range canceled {
			s.terminal(q, DoneCancel)
		}
		if busy && endJob == nil {
			endJob = s.e.cluster.BeginJob(s.model)
		}
		stepDur := s.stepDuration(prefillTokens, len(stepped))
		if stepDur > 0 {
			time.Sleep(stepDur)
		}

		// Emit the step's tokens and retire finished sequences. Sends
		// cannot block (full-capacity buffers), so holding s.mu here is
		// safe and keeps admission strictly between steps.
		var completed []*batchSeq
		s.mu.Lock()
		for _, q := range stepped {
			t := q.tokens[q.pos]
			q.out <- Chunk{Text: s.e.tok.DecodeOne(t), Tokens: []int{int(t)}}
			q.pos++
		}
		keep = s.active[:0]
		for _, q := range s.active {
			if q.pos >= q.end {
				completed = append(completed, q)
			} else {
				keep = append(keep, q)
			}
		}
		clearTail(s.active, len(keep))
		s.active = keep
		if len(stepped) > 0 {
			s.steps++
			s.decoded += uint64(len(stepped))
		}
		occupancy := len(s.active)
		s.mu.Unlock()

		s.e.cluster.RecordStep(s.model, occupancy, len(stepped))
		if h := s.e.batchHooks(); h.Step != nil && (len(stepped) > 0 || prefillTokens > 0) {
			h.Step(s.model, occupancy, len(stepped), stepDur)
		}
		for _, q := range finished {
			s.terminal(q, q.reason)
		}
		for _, q := range completed {
			s.terminal(q, q.reason)
		}
	}
}

// clearTail nils the retained slice's unused tail so retired sequences
// (and their buffered channels) can be collected promptly.
func clearTail(s []*batchSeq, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}
