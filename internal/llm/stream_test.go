package llm

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// TestStreamBufferSlicing drains a finished buffer in per-round slices
// and checks token-boundary slicing, continuation synthesis, and the
// terminal chunk's authoritative metadata.
func TestStreamBufferSlicing(t *testing.T) {
	b := NewStreamBuffer(nil)
	b.Push("Hello ", []int{1, 2})
	b.Push("world", []int{3})
	b.Push("!", []int{4})
	b.Finish(Chunk{Done: true, DoneReason: DoneStop, Context: []int{1, 2, 3, 4}, EvalCount: 4, TotalTokens: 4})

	ctx := context.Background()
	c1, err := b.Drain(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Text != "Hello " || c1.EvalCount != 2 {
		t.Fatalf("slice 1 = %q (%d tokens), want \"Hello \" (2)", c1.Text, c1.EvalCount)
	}
	if c1.Done || c1.DoneReason != DoneLength {
		t.Fatalf("non-terminal slice Done=%v reason=%q, want length continuation", c1.Done, c1.DoneReason)
	}
	if len(c1.Context) != 2 || c1.Context[0] != 1 || c1.Context[1] != 2 {
		t.Fatalf("slice 1 context = %v, want [1 2]", c1.Context)
	}
	c2, err := b.Drain(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Text != "world!" || c2.EvalCount != 2 {
		t.Fatalf("slice 2 = %q (%d tokens), want \"world!\" (2)", c2.Text, c2.EvalCount)
	}
	if !c2.Done || c2.DoneReason != DoneStop {
		t.Fatalf("terminal slice Done=%v reason=%q, want done/stop", c2.Done, c2.DoneReason)
	}
	if len(c2.Context) != 4 {
		t.Fatalf("terminal context = %v, want 4 ids", c2.Context)
	}
}

// TestStreamBufferNeverSplitsAPiece checks slicing rounds down to whole
// pieces, except a single oversized first piece which is taken whole.
func TestStreamBufferNeverSplitsAPiece(t *testing.T) {
	b := NewStreamBuffer(nil)
	b.Push("abc", []int{1, 2, 3})
	b.Push("de", []int{4, 5})
	b.Finish(Chunk{Done: true, DoneReason: DoneStop, Context: []int{1, 2, 3, 4, 5}})

	c, err := b.Drain(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The 3-token piece exceeds the 2-token ask but cannot be split:
	// bounded overshoot, taken as the slice's first piece.
	if c.Text != "abc" || c.EvalCount != 3 {
		t.Fatalf("oversized first piece = %q (%d), want abc (3)", c.Text, c.EvalCount)
	}
	c2, err := b.Drain(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Text != "de" || !c2.Done {
		t.Fatalf("tail slice = %q done=%v, want de/true", c2.Text, c2.Done)
	}
}

// TestStreamBufferPartialBeforeError checks a failed stream serves what
// it buffered as a normal partial slice first and only then surfaces
// the error — drained text is never lost to a fallback.
func TestStreamBufferPartialBeforeError(t *testing.T) {
	b := NewStreamBuffer([]int{9})
	b.Push("partial", []int{10, 11})
	b.Fail(io.ErrUnexpectedEOF)

	c, err := b.Drain(context.Background(), 8)
	if err != nil {
		t.Fatalf("partial drain errored early: %v", err)
	}
	if c.Text != "partial" || c.EvalCount != 2 {
		t.Fatalf("partial = %q (%d), want partial (2)", c.Text, c.EvalCount)
	}
	if len(c.Context) != 3 || c.Context[0] != 9 {
		t.Fatalf("partial context = %v, want base 9 + drained ids", c.Context)
	}
	if _, err := b.Drain(context.Background(), 8); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("drained-dry error = %v, want ErrUnexpectedEOF", err)
	}
}

// TestStreamBufferRejectsIdlessPieces checks a producer that cannot
// attribute token ids fails the stream BEFORE any text is handed out,
// so fallback re-generation cannot duplicate text.
func TestStreamBufferRejectsIdlessPieces(t *testing.T) {
	b := NewStreamBuffer(nil)
	b.Push("text without ids", nil)
	_, err := b.Drain(context.Background(), 4)
	if err == nil || !errors.Is(err, ErrStreamUnsupported) {
		t.Fatalf("err = %v, want ErrStreamUnsupported", err)
	}
}

// TestStreamBufferCloseAndContext checks Close poisons the buffer and a
// ctx cancel with an empty buffer returns the ctx error.
func TestStreamBufferCloseAndContext(t *testing.T) {
	b := NewStreamBuffer(nil)
	b.Push("x", []int{1})
	b.Close()
	if _, err := b.Drain(context.Background(), 1); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("post-close drain err = %v, want ErrStreamClosed", err)
	}

	b2 := NewStreamBuffer(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b2.Drain(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled empty drain err = %v, want context.Canceled", err)
	}
	// With buffered tokens, cancellation still yields the partial first.
	b3 := NewStreamBuffer(nil)
	b3.Push("y", []int{2})
	if c, err := b3.Drain(ctx, 4); err != nil || c.Text != "y" {
		t.Fatalf("canceled partial drain = %q, %v; want y, nil", c.Text, err)
	}
}

// TestEngineStreamMatchesChunkedPath drains an engine stream in
// per-round slices and checks the text, continuation, and done reason
// are token-for-token what the per-round GenerateChunk ladder returns —
// the determinism invariant the orchestrator's pipelined path relies on.
func TestEngineStreamMatchesChunkedPath(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	const prompt = "Are bats blind?"
	const step = 5

	// Reference: the per-round chunked path.
	var refText string
	var cont []int
	var refReasons []DoneReason
	for i := 0; i < 50; i++ {
		c, err := e.GenerateChunk(ctx, ChunkRequest{Model: ModelLlama3, Prompt: prompt, MaxTokens: step, Cont: cont})
		if err != nil {
			t.Fatal(err)
		}
		refText += c.Text
		cont = c.Context
		refReasons = append(refReasons, c.DoneReason)
		if c.DoneReason == DoneStop {
			break
		}
	}

	s, err := e.OpenStream(ctx, ChunkRequest{Model: ModelLlama3, Prompt: prompt, MaxTokens: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var gotText string
	var gotReasons []DoneReason
	for i := 0; i < 50; i++ {
		c, err := s.Next(ctx, step)
		if err != nil {
			t.Fatal(err)
		}
		gotText += c.Text
		gotReasons = append(gotReasons, c.DoneReason)
		if c.Done {
			if c.DoneReason != DoneStop {
				t.Fatalf("terminal reason = %q, want stop", c.DoneReason)
			}
			break
		}
	}
	if gotText != refText {
		t.Fatalf("streamed text %q != chunked text %q", gotText, refText)
	}
	if len(gotReasons) != len(refReasons) {
		t.Fatalf("streamed %d slices, chunked %d", len(gotReasons), len(refReasons))
	}
	for i := range gotReasons {
		if gotReasons[i] != refReasons[i] {
			t.Fatalf("slice %d reason %q != chunked %q", i, gotReasons[i], refReasons[i])
		}
	}
}

// TestEngineStreamContinuationResumes checks a slice's synthesized
// Context is a valid GenerateChunk resume point — the property that
// makes mid-stream fallback lossless.
func TestEngineStreamContinuationResumes(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	const prompt = "Are bats blind?"
	full, _, err := e.GenerateAll(ctx, GenRequest{Model: ModelMistral, Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}

	s, err := e.OpenStream(ctx, ChunkRequest{Model: ModelMistral, Prompt: prompt, MaxTokens: 4096})
	if err != nil {
		t.Fatal(err)
	}
	head, err := s.Next(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	tail, err := e.GenerateChunk(ctx, ChunkRequest{Model: ModelMistral, Prompt: prompt, Cont: head.Context})
	if err != nil {
		t.Fatal(err)
	}
	if head.Text+tail.Text != full {
		t.Fatalf("stream head + chunked tail = %q, want %q", head.Text+tail.Text, full)
	}
}

// TestEngineOpenStreamsAccounting checks the engine's live-session
// gauge: opens are visible, and both Close and natural completion
// release the session.
func TestEngineOpenStreamsAccounting(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	s, err := e.OpenStream(ctx, ChunkRequest{Model: ModelLlama3, Prompt: "Are bats blind?", MaxTokens: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.OpenStreams(); got != 1 {
		t.Fatalf("OpenStreams after open = %d, want 1", got)
	}
	if _, err := s.Next(ctx, 0); err != nil { // drain to completion
		t.Fatal(err)
	}
	s.Close()
	waitForStreams(t, e, 0)

	// Close mid-generation must also release the session.
	s2, err := e.OpenStream(ctx, ChunkRequest{Model: ModelQwen2, Prompt: "Are bats blind?", MaxTokens: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Next(ctx, 2); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	waitForStreams(t, e, 0)
	if _, err := s2.Next(ctx, 1); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("post-close Next err = %v, want ErrStreamClosed", err)
	}
}

// waitForStreams polls the engine's session gauge until it reaches want
// (the producer goroutine exits asynchronously after cancel/finish).
func waitForStreams(t *testing.T, e *Engine, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.OpenStreams() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("OpenStreams = %d, want %d after wait", e.OpenStreams(), want)
}
