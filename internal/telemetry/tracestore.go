package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the number of completed query traces retained
// when Options.TraceCapacity is zero.
const DefaultTraceCapacity = 256

// QueryTrace is the timing record of one completed orchestrated query —
// the cross-query, durable counterpart of core.Trace's in-flight event
// log. Every duration serializes as integer nanoseconds.
type QueryTrace struct {
	// ID is the generated query identifier (see NewQueryID), also
	// returned to clients in the X-Query-ID header and result frame.
	ID string `json:"id"`
	// TraceID is the distributed trace this query belongs to (32 hex
	// chars, shared with daemon-side spans via traceparent). Empty when
	// tracing was disabled.
	TraceID string `json:"trace_id,omitempty"`
	// Strategy is the orchestration policy that served the query.
	Strategy string `json:"strategy"`
	// Query is the user's question, truncated to the store's limit.
	Query string `json:"query"`
	// Start is when orchestration began.
	Start time.Time `json:"start"`
	// Elapsed is the total orchestration wall clock.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Outcome is "ok", "error", "all_models_failed", or "canceled".
	Outcome string `json:"outcome"`
	// Error is the terminal error of a failed query.
	Error string `json:"error,omitempty"`
	// Winner is the model whose answer was selected.
	Winner string `json:"winner,omitempty"`
	// TokensUsed is the total generation spend across all models.
	TokensUsed int `json:"tokens_used"`
	// Rounds are the per-round wall-clock spans.
	Rounds []RoundSpan `json:"rounds,omitempty"`
	// Chunks are the per-model generation call spans.
	Chunks []ChunkSpan `json:"chunks,omitempty"`
	// Scores is the score trajectory across rounds.
	Scores []ScorePoint `json:"scores,omitempty"`
	// Retries is the total retry attempts spent beyond first tries.
	Retries int `json:"retries"`
	// Failures records models dropped after retry exhaustion.
	Failures []ModelFailure `json:"failures,omitempty"`
	// Pruned lists models removed by score-based pruning.
	Pruned []string `json:"pruned,omitempty"`
	// Spans is the full distributed span tree: server stages, fleet
	// calls, modeld client requests, and grafted daemon-side spans, all
	// sharing TraceID. Reconstruct the tree from ParentID links.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// RoundSpan times one allocation round (OUA round or MAB/Hybrid pull).
type RoundSpan struct {
	// Round counts from 1 (OUA rounds, or MAB/Hybrid pulls).
	Round int `json:"round"`
	// Model is set on MAB/Hybrid pulls, where a round targets one arm.
	Model string `json:"model,omitempty"`
	// Offset is when the round opened, relative to query start.
	Offset time.Duration `json:"offset_ns"`
	// Elapsed is the round's wall clock (to the next round, or to the
	// end of the query for the final round).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ChunkSpan times one model's generation call within a round.
type ChunkSpan struct {
	Round int `json:"round"`
	// Model is the model that generated the chunk.
	Model string `json:"model"`
	// Tokens is the chunk's generated token count.
	Tokens int `json:"tokens"`
	// Offset is when the generation call began, relative to query start.
	Offset time.Duration `json:"offset_ns"`
	// Elapsed is the generation call's wall clock, retries included.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Attempts is how many tries the chunk took (1 = no retries).
	Attempts int `json:"attempts,omitempty"`
}

// ScorePoint is one model's combined score after one round.
type ScorePoint struct {
	Round int     `json:"round"`
	Model string  `json:"model"`
	Score float64 `json:"score"`
}

// ModelFailure records a model dropped after exhausting its retry budget.
type ModelFailure struct {
	Model    string `json:"model"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

// TraceSummary is the /api/traces listing row.
type TraceSummary struct {
	ID         string        `json:"id"`
	Strategy   string        `json:"strategy"`
	Query      string        `json:"query"`
	Start      time.Time     `json:"start"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Outcome    string        `json:"outcome"`
	Winner     string        `json:"winner,omitempty"`
	TokensUsed int           `json:"tokens_used"`
	Rounds     int           `json:"rounds"`
	Retries    int           `json:"retries"`
}

// summaryQueryLimit truncates the query text in listing rows.
const summaryQueryLimit = 120

func (t QueryTrace) summary() TraceSummary {
	q := t.Query
	if len(q) > summaryQueryLimit {
		q = q[:summaryQueryLimit] + "…"
	}
	return TraceSummary{
		ID: t.ID, Strategy: t.Strategy, Query: q, Start: t.Start,
		Elapsed: t.Elapsed, Outcome: t.Outcome, Winner: t.Winner,
		TokensUsed: t.TokensUsed, Rounds: len(t.Rounds), Retries: t.Retries,
	}
}

// TraceStore retains the most recent completed query traces in a
// fixed-capacity ring buffer keyed by query ID: the (capacity+1)-th
// insertion evicts the oldest trace. Safe for concurrent use.
//
// Retention is tail-based: traces worth debugging — any non-"ok"
// outcome, or a latency at or above the p99 of recent queries — are
// always stored; ordinary traces are stored with probability
// SampleRate (default 1, keep everything). Lowering the rate under
// heavy traffic keeps the ring full of errors and slow tails instead
// of thousands of identical fast successes.
type TraceStore struct {
	mu       sync.RWMutex
	capacity int
	buf      []QueryTrace
	head     int // next write position once full
	count    int
	byID     map[string]int

	sampleRate float64
	sampledOut uint64 // ordinary traces dropped by sampling
	durs       [slowWindow]time.Duration
	durHead    int
	durCount   int
	randf      func() float64 // test seam; nil means math/rand
}

// slowWindow is how many recent query durations feed the slow-tail
// (p99) estimate, and slowMinSamples how many must accumulate before
// the estimate is trusted (every trace is "slow" until then).
const (
	slowWindow     = 256
	slowMinSamples = 32
)

// NewTraceStore returns an empty store retaining up to capacity traces
// (non-positive means DefaultTraceCapacity), keeping every trace
// (SampleRate 1).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{capacity: capacity, byID: make(map[string]int), sampleRate: 1}
}

// SetSampleRate sets the retention probability for ordinary (ok,
// not-slow) traces, clamped to [0, 1]. Error and slow-tail traces are
// always retained regardless. Rate 0 keeps only the tail.
func (s *TraceStore) SetSampleRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s.mu.Lock()
	s.sampleRate = rate
	s.mu.Unlock()
}

// SampledOut reports how many ordinary traces the tail policy dropped.
func (s *TraceStore) SampledOut() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sampledOut
}

// Put stores a completed trace, evicting the oldest beyond capacity. A
// trace with an already-stored ID replaces the stored copy in place.
// Returns whether the trace was retained: an "ok" trace below the
// slow-tail threshold may be sampled out when SampleRate < 1.
func (s *TraceStore) Put(tr QueryTrace) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := true
	if tr.Outcome == "ok" && s.sampleRate < 1 && !s.slowLocked(tr.Elapsed) {
		keep = s.rollLocked() < s.sampleRate
	}
	s.recordDurLocked(tr.Elapsed)
	if !keep {
		s.sampledOut++
		return false
	}
	if idx, ok := s.byID[tr.ID]; ok {
		s.buf[idx] = tr
		return true
	}
	if s.count < s.capacity {
		s.buf = append(s.buf, tr)
		s.byID[tr.ID] = s.count
		s.count++
		s.head = s.count % s.capacity
		return true
	}
	delete(s.byID, s.buf[s.head].ID)
	s.buf[s.head] = tr
	s.byID[tr.ID] = s.head
	s.head = (s.head + 1) % s.capacity
	return true
}

// slowLocked reports whether d is at or above the p99 of the recent
// duration window. With too few samples every trace counts as slow —
// erring toward retention while the estimate warms up.
func (s *TraceStore) slowLocked(d time.Duration) bool {
	if s.durCount < slowMinSamples {
		return true
	}
	sorted := make([]time.Duration, s.durCount)
	copy(sorted, s.durs[:s.durCount])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*s.durCount + 99) / 100 // ceil(0.99*n)
	if idx > s.durCount {
		idx = s.durCount
	}
	return d >= sorted[idx-1]
}

func (s *TraceStore) recordDurLocked(d time.Duration) {
	s.durs[s.durHead] = d
	s.durHead = (s.durHead + 1) % slowWindow
	if s.durCount < slowWindow {
		s.durCount++
	}
}

func (s *TraceStore) rollLocked() float64 {
	if s.randf != nil {
		return s.randf()
	}
	return mrand.Float64()
}

// Get returns the trace with the given ID, if it is still retained.
func (s *TraceStore) Get(id string) (QueryTrace, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.byID[id]
	if !ok {
		return QueryTrace{}, false
	}
	return s.buf[idx], true
}

// List returns up to limit summaries, newest first (limit <= 0 means
// all retained traces).
func (s *TraceStore) List(limit int) []TraceSummary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.count
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]TraceSummary, 0, n)
	for k := 0; k < n; k++ {
		idx := ((s.head-1-k)%s.count + s.count) % s.count
		out = append(out, s.buf[idx].summary())
	}
	return out
}

// Len returns how many traces are currently retained.
func (s *TraceStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Cap returns the store's configured capacity.
func (s *TraceStore) Cap() int { return s.capacity }

// idCounter disambiguates IDs generated within the same nanosecond when
// the system randomness source is unavailable.
var idCounter atomic.Uint64

// NewQueryID returns a fresh 16-hex-character query identifier.
func NewQueryID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^idCounter.Add(1)<<32)
	}
	return "q" + hex.EncodeToString(b[:])
}
