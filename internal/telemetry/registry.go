// Package telemetry is the measurement layer of LLM-MS: a
// dependency-free, concurrency-safe metrics registry with Prometheus
// text-format exposition, a bounded store of completed query traces with
// span timings, and the collector that turns the orchestrator's event
// stream (core.Event) into both.
//
// The paper's §7.3 "Model Routing Transparency" and §9.5 "Transparent
// Orchestration Logs" motivate showing *why* the orchestrator allocated
// tokens the way it did; this package adds the *when*: per-round wall
// clock, per-model per-chunk generation latency, retry spend, and
// aggregate counters across queries, so the accuracy-vs-timeliness
// trade-off that governs multi-LLM systems is finally observable in a
// running server.
//
// Label cardinality is bounded by construction: instruments are labeled
// by model name, strategy, route pattern, operation, or status code —
// never by query text or any other unbounded value — and every metric
// family additionally caps its distinct series at Options.MaxSeries,
// collapsing the excess into a single series whose label values are all
// OverflowLabel. The registry therefore cannot grow without bound under
// heavy traffic.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultMaxSeries is the per-family cap on distinct label combinations
// when Options.MaxSeries is zero.
const DefaultMaxSeries = 512

// OverflowLabel is the label value that absorbs observations once a
// family has reached its series cap: the first observation beyond the
// cap creates one final series with every label set to this value, and
// all subsequent novel label combinations collapse into it.
const OverflowLabel = "_other"

// DefBuckets are the default histogram upper bounds (seconds), matching
// the conventional Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; the
// recording paths (Inc/Add/Set/Observe) are lock-free after a series'
// first observation.
type Registry struct {
	mu        sync.RWMutex
	families  map[string]*family
	maxSeries int
	onScrape  []func()
}

// NewRegistry returns an empty registry with the DefaultMaxSeries cap.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), maxSeries: DefaultMaxSeries}
}

// SetMaxSeries adjusts the per-family series cap for families registered
// afterwards. Non-positive values restore DefaultMaxSeries.
func (r *Registry) SetMaxSeries(n int) {
	if n <= 0 {
		n = DefaultMaxSeries
	}
	r.mu.Lock()
	r.maxSeries = n
	r.mu.Unlock()
}

// OnScrape registers a hook run at the start of every WriteText call,
// before exposition. Hooks sample lazily-computed values (runtime
// stats, queue depths) into gauges so scrapes see fresh numbers
// without a background sampler goroutine. Hooks must not scrape the
// registry themselves.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// Counter registers (or looks up) a monotonically increasing counter
// family. Registering the same name twice with an identical shape
// returns the same family; a conflicting re-registration panics, as does
// an invalid metric or label name — both are programmer errors that
// should surface at startup.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	return Counter{r.register(name, help, typeCounter, nil, labels)}
}

// Gauge registers (or looks up) a gauge family — a value that can go up
// and down via Set/Add.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	return Gauge{r.register(name, help, typeGauge, nil, labels)}
}

// Histogram registers (or looks up) a fixed-bucket histogram family.
// buckets are upper bounds in increasing order; nil means DefBuckets.
// The +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return Histogram{r.register(name, help, typeHistogram, buckets, labels)}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

func (r *Registry) register(name, help, typ string, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l, name))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !sameStrings(f.labels, labels) || !sameFloats(f.bucketsUB, buckets) {
			panic(fmt.Sprintf("telemetry: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:    append([]string(nil), labels...),
		bucketsUB: append([]float64(nil), buckets...),
		maxSeries: r.maxSeries,
		series:    make(map[string]*series),
	}
	// Unlabeled scalar metrics render a zero line immediately, so every
	// registered family is visible to scrapes before its first event.
	if len(labels) == 0 && typ != typeHistogram {
		f.get(nil)
	}
	r.families[name] = f
	return f
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family is one named metric with a set of labeled series.
type family struct {
	name      string
	help      string
	typ       string
	labels    []string
	bucketsUB []float64 // histogram upper bounds, +Inf implicit
	maxSeries int

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label combination's live cells. Scalar values use
// atomic float bits; histogram buckets use atomic integer counts.
type series struct {
	labelVals []string
	val       atomicFloat
	bucketN   []atomic.Uint64 // per-bucket (non-cumulative) counts
	count     atomic.Uint64
	sum       atomicFloat
}

const labelSep = "\x1f"

func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if f.maxSeries > 0 && len(f.series) >= f.maxSeries {
		// Cardinality guard: collapse novel label combinations into the
		// overflow series instead of growing without bound.
		vals = make([]string, len(f.labels))
		for i := range vals {
			vals[i] = OverflowLabel
		}
		key = strings.Join(vals, labelSep)
		if s, ok := f.series[key]; ok {
			return s
		}
	}
	s = &series{labelVals: append([]string(nil), vals...)}
	if f.typ == typeHistogram {
		s.bucketN = make([]atomic.Uint64, len(f.bucketsUB)+1)
	}
	f.series[key] = s
	return s
}

// Counter is a handle on a counter family. The zero value is inert: all
// methods are no-ops, so optional instrumentation needs no nil checks.
type Counter struct{ f *family }

// Inc adds one to the series identified by the label values.
func (c Counter) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Add adds v (must be non-negative) to the series.
func (c Counter) Add(v float64, labelVals ...string) {
	if c.f == nil || v < 0 || math.IsNaN(v) {
		return
	}
	c.f.get(labelVals).val.Add(v)
}

// Value returns the series' current value (0 if never touched).
func (c Counter) Value(labelVals ...string) float64 {
	if c.f == nil {
		return 0
	}
	return c.f.get(labelVals).val.Load()
}

// Gauge is a handle on a gauge family. The zero value is inert.
type Gauge struct{ f *family }

// Set stores v in the series.
func (g Gauge) Set(v float64, labelVals ...string) {
	if g.f == nil {
		return
	}
	g.f.get(labelVals).val.Set(v)
}

// Add moves the series by v (negative to decrease).
func (g Gauge) Add(v float64, labelVals ...string) {
	if g.f == nil {
		return
	}
	g.f.get(labelVals).val.Add(v)
}

// Value returns the series' current value.
func (g Gauge) Value(labelVals ...string) float64 {
	if g.f == nil {
		return 0
	}
	return g.f.get(labelVals).val.Load()
}

// Histogram is a handle on a histogram family. The zero value is inert.
type Histogram struct{ f *family }

// Observe records v into the series' bucket counts and sum.
func (h Histogram) Observe(v float64, labelVals ...string) {
	if h.f == nil || math.IsNaN(v) {
		return
	}
	s := h.f.get(labelVals)
	i := sort.SearchFloat64s(h.f.bucketsUB, v) // first bucket with ub >= v
	s.bucketN[i].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// Count returns how many observations the series has received.
func (h Histogram) Count(labelVals ...string) uint64 {
	if h.f == nil {
		return 0
	}
	return h.f.get(labelVals).count.Load()
}

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with # HELP and
// # TYPE lines followed by its series sorted by label values. Histograms
// render cumulative _bucket lines (le up to +Inf), _sum, and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	hooks := r.onScrape
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, len(keys))
	for i, k := range keys {
		sers[i] = f.series[k]
	}
	f.mu.RUnlock()

	for _, s := range sers {
		if f.typ != typeHistogram {
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelVals, "", 0)
			fmt.Fprintf(b, " %s\n", formatFloat(s.val.Load()))
			continue
		}
		cum := uint64(0)
		for i, ub := range f.bucketsUB {
			cum += s.bucketN[i].Load()
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.labelVals, formatFloat(ub), 1)
			fmt.Fprintf(b, " %d\n", cum)
		}
		cum += s.bucketN[len(f.bucketsUB)].Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, s.labelVals, "+Inf", 1)
		fmt.Fprintf(b, " %d\n", cum)
		b.WriteString(f.name)
		b.WriteString("_sum")
		writeLabels(b, f.labels, s.labelVals, "", 0)
		fmt.Fprintf(b, " %s\n", formatFloat(s.sum.Load()))
		b.WriteString(f.name)
		b.WriteString("_count")
		writeLabels(b, f.labels, s.labelVals, "", 0)
		fmt.Fprintf(b, " %d\n", s.count.Load())
	}
}

// writeLabels renders {name="val",...}; withLe 1 appends le=leVal. No
// braces are written when there is nothing to enclose.
func writeLabels(b *strings.Builder, names, vals []string, leVal string, withLe int) {
	if len(names) == 0 && withLe == 0 {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if withLe == 1 {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(leVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
