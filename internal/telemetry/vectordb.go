package telemetry

import "time"

// VectorDBMetrics is the instrument set for the sharded persistent
// memory substrate. Its observer methods match the vectordb.Hooks
// function fields, so wiring is one struct literal:
//
//	vm := telemetry.RegisterVectorDBMetrics(reg)
//	db.SetHooks(vectordb.Hooks{
//		ObserveQuery: vm.ObserveQuery, ObserveInsert: vm.ObserveInsert,
//		AddWALBytes: vm.AddWALBytes, IncCompaction: vm.IncCompaction,
//		SetShardDocs: vm.SetShardDocs, ObserveRecovery: vm.ObserveRecovery,
//	})
//
// Series:
//
//	llmms_vectordb_shard_docs{collection,shard}        live documents per shard (gauge)
//	llmms_vectordb_query_seconds{collection}           query latency histogram
//	llmms_vectordb_insert_seconds{collection}          insert latency histogram, durability wait included
//	llmms_vectordb_wal_bytes_total{collection}         bytes appended to the write-ahead log
//	llmms_vectordb_compactions_total{collection}       snapshot+truncate compactions completed
//	llmms_vectordb_recovery_seconds                    time the last Open spent recovering (gauge)
type VectorDBMetrics struct {
	ShardDocs       Gauge
	QuerySeconds    Histogram
	InsertSeconds   Histogram
	WALBytes        Counter
	Compactions     Counter
	RecoverySeconds Gauge
}

// vectordbBuckets resolve in-memory index operations: hash-embedding
// queries over session-sized collections run in microseconds, while the
// durable insert path stretches to the group-commit interval.
var vectordbBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, .25, 1,
}

// RegisterVectorDBMetrics creates (or rebinds, registration being
// idempotent) the llmms_vectordb_* series on reg.
func RegisterVectorDBMetrics(reg *Registry) *VectorDBMetrics {
	return &VectorDBMetrics{
		ShardDocs: reg.Gauge("llmms_vectordb_shard_docs",
			"Live documents stored in one shard of a collection.", "collection", "shard"),
		QuerySeconds: reg.Histogram("llmms_vectordb_query_seconds",
			"Vector query latency in seconds, fan-out and merge included.", vectordbBuckets, "collection"),
		InsertSeconds: reg.Histogram("llmms_vectordb_insert_seconds",
			"Insert latency in seconds, WAL durability wait included.", vectordbBuckets, "collection"),
		WALBytes: reg.Counter("llmms_vectordb_wal_bytes_total",
			"Bytes appended to the collection's write-ahead log.", "collection"),
		Compactions: reg.Counter("llmms_vectordb_compactions_total",
			"Snapshot+truncate WAL compactions completed.", "collection"),
		RecoverySeconds: reg.Gauge("llmms_vectordb_recovery_seconds",
			"Wall-clock the last database open spent on crash recovery."),
	}
}

// ObserveQuery records one query (vectordb.Hooks.ObserveQuery).
func (m *VectorDBMetrics) ObserveQuery(collection string, d time.Duration) {
	m.QuerySeconds.Observe(d.Seconds(), collection)
}

// ObserveInsert records one Add/Upsert call (vectordb.Hooks.ObserveInsert).
func (m *VectorDBMetrics) ObserveInsert(collection string, d time.Duration) {
	m.InsertSeconds.Observe(d.Seconds(), collection)
}

// AddWALBytes counts appended log bytes (vectordb.Hooks.AddWALBytes).
func (m *VectorDBMetrics) AddWALBytes(collection string, n int) {
	m.WALBytes.Add(float64(n), collection)
}

// IncCompaction counts a finished compaction (vectordb.Hooks.IncCompaction).
func (m *VectorDBMetrics) IncCompaction(collection string) {
	m.Compactions.Inc(collection)
}

// SetShardDocs reports a shard's depth (vectordb.Hooks.SetShardDocs).
func (m *VectorDBMetrics) SetShardDocs(collection, shard string, docs int) {
	m.ShardDocs.Set(float64(docs), collection, shard)
}

// ObserveRecovery reports recovery duration (vectordb.Hooks.ObserveRecovery).
func (m *VectorDBMetrics) ObserveRecovery(d time.Duration) {
	m.RecoverySeconds.Set(d.Seconds())
}
