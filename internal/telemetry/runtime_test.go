package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsSampledOnScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, name := range []string{
		"llmms_go_goroutines",
		"llmms_go_heap_alloc_bytes",
		"llmms_go_heap_objects",
		"llmms_go_gc_cycles",
		"llmms_go_gc_pause_seconds_total",
		"llmms_go_next_gc_bytes",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}
	// The gauges are sampled per scrape, not at registration: a live
	// process always has at least one goroutine and a non-zero heap, so
	// a zero value would mean the OnScrape hook never ran.
	if strings.Contains(out, "llmms_go_goroutines 0\n") {
		t.Error("goroutine gauge is zero; scrape hook did not sample")
	}
	if strings.Contains(out, "llmms_go_heap_alloc_bytes 0\n") {
		t.Error("heap gauge is zero; scrape hook did not sample")
	}
}

func TestBuildInfoMetric(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "9.9.9-test")
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "llmms_build_info{") {
		t.Fatalf("exposition missing llmms_build_info:\n%s", out)
	}
	if !strings.Contains(out, `version="9.9.9-test"`) {
		t.Error("build info missing version label")
	}
	if !strings.Contains(out, `go_version="`+runtime.Version()+`"`) {
		t.Error("build info missing go_version label")
	}
}
