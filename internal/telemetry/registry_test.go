package telemetry

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", "route", "code")
	c.Inc("/a", "200")
	c.Inc("/a", "200")
	c.Add(3, "/b", "500")

	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_requests_total Requests served.\n",
		"# TYPE test_requests_total counter\n",
		`test_requests_total{route="/a",code="200"} 2` + "\n",
		`test_requests_total{route="/b",code="500"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if got := c.Value("/a", "200"); got != 2 {
		t.Errorf("Value = %v, want 2", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t.")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after negative add = %v, want 5", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "g.")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
	if !strings.Contains(scrape(t, r), "test_gauge 6\n") {
		t.Errorf("gauge not rendered")
	}
}

func TestUnlabeledMetricsRenderBeforeFirstTouch(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_untouched_total", "u.")
	r.Gauge("test_untouched_gauge", "u.")
	r.Histogram("test_untouched_seconds", "u.", nil)
	out := scrape(t, r)
	if !strings.Contains(out, "test_untouched_total 0\n") {
		t.Errorf("untouched counter not rendered as 0:\n%s", out)
	}
	if !strings.Contains(out, "test_untouched_gauge 0\n") {
		t.Errorf("untouched gauge not rendered as 0:\n%s", out)
	}
	// Labeled or histogram families render at least HELP/TYPE.
	if !strings.Contains(out, "# TYPE test_untouched_seconds histogram\n") {
		t.Errorf("untouched histogram family invisible:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "l.", []float64{0.1, 1, 10}, "op")
	h.Observe(0.05, "gen") // bucket 0.1
	h.Observe(0.5, "gen")  // bucket 1
	h.Observe(0.7, "gen")  // bucket 1
	h.Observe(99, "gen")   // +Inf

	out := scrape(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{op="gen",le="0.1"} 1`,
		`test_latency_seconds_bucket{op="gen",le="1"} 3`,
		`test_latency_seconds_bucket{op="gen",le="10"} 3`,
		`test_latency_seconds_bucket{op="gen",le="+Inf"} 4`,
		`test_latency_seconds_count{op="gen"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count("gen") != 4 {
		t.Errorf("Count = %d, want 4", h.Count("gen"))
	}
	// _sum is 100.25; accept the formatted value present on the sum line.
	if !strings.Contains(out, `test_latency_seconds_sum{op="gen"} 100.25`) {
		t.Errorf("missing sum in:\n%s", out)
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_edge_seconds", "e.", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	out := scrape(t, r)
	if !strings.Contains(out, `test_edge_seconds_bucket{le="1"} 1`+"\n") {
		t.Errorf("observation at upper bound not counted in its bucket:\n%s", out)
	}
}

func TestSeriesCapCollapsesIntoOverflow(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(2)
	c := r.Counter("test_capped_total", "c.", "model")
	c.Inc("a")
	c.Inc("b")
	c.Inc("c") // beyond the cap
	c.Inc("d") // also collapses
	if got := c.Value(OverflowLabel); got != 2 {
		t.Errorf("overflow series = %v, want 2", got)
	}
	out := scrape(t, r)
	if strings.Contains(out, `model="c"`) || strings.Contains(out, `model="d"`) {
		t.Errorf("over-cap series leaked into exposition:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("test_capped_total{model=%q} 2\n", OverflowLabel)) {
		t.Errorf("overflow series missing:\n%s", out)
	}
	// Established series keep recording normally.
	c.Inc("a")
	if got := c.Value("a"); got != 2 {
		t.Errorf("existing series after cap = %v, want 2", got)
	}
}

func TestIdempotentAndConflictingRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_same_total", "s.", "x")
	b := r.Counter("test_same_total", "s.", "x")
	a.Inc("v")
	if got := b.Value("v"); got != 1 {
		t.Errorf("re-registration did not return the same family")
	}
	mustPanic(t, "type conflict", func() { r.Gauge("test_same_total", "s.", "x") })
	mustPanic(t, "label conflict", func() { r.Counter("test_same_total", "s.", "y") })
	mustPanic(t, "invalid name", func() { r.Counter("0bad", "b.") })
	mustPanic(t, "invalid label", func() { r.Counter("test_ok_total", "b.", "bad-label") })
	mustPanic(t, "bucket order", func() { r.Histogram("test_h_seconds", "h.", []float64{2, 1}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_escape_total", "e.", "v")
	c.Inc("a\"b\\c\nd")
	out := scrape(t, r)
	want := `test_escape_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("escaping wrong, want %q in:\n%s", want, out)
	}
}

func TestZeroValueHandlesAreInert(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc("x")
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("zero-value handles recorded something")
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_labels_total", "l.", "a", "b")
	mustPanic(t, "wrong label count", func() { c.Inc("only-one") })
}

// expositionLine matches one sample line of the 0.0.4 text format.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestExpositionParseable walks the full rendered output with a strict
// line grammar: HELP then TYPE for each family, every sample parseable,
// histogram buckets cumulative and ending at +Inf == _count.
func TestExpositionParseable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("parse_requests_total", "Requests.", "route")
	c.Inc("/a")
	h := r.Histogram("parse_latency_seconds", "Latency.", nil, "op")
	h.Observe(0.3, "x")
	h.Observe(7, "x")
	g := r.Gauge("parse_temperature", "Temp.")
	g.Set(36.6)

	out := scrape(t, r)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	var lastCum uint64
	var sawInf bool
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed HELP line %q", line)
			}
			helpSeen[parts[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if !helpSeen[parts[2]] {
				t.Errorf("TYPE before HELP for %s", parts[2])
			}
			typeSeen[parts[2]] = true
		default:
			if !expositionLine.MatchString(line) {
				t.Errorf("unparseable sample line %q", line)
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !typeSeen[base] && !typeSeen[name] {
				t.Errorf("sample %q before its TYPE line", line)
			}
			if strings.HasPrefix(line, "parse_latency_seconds_bucket") {
				v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
				if err != nil {
					t.Fatalf("bucket value in %q: %v", line, err)
				}
				if v < lastCum {
					t.Errorf("bucket counts not cumulative at %q", line)
				}
				lastCum = v
				if strings.Contains(line, `le="+Inf"`) {
					sawInf = true
					if v != 2 {
						t.Errorf("+Inf bucket = %d, want total count 2", v)
					}
				}
			}
		}
	}
	if !sawInf {
		t.Errorf("histogram rendered no +Inf bucket")
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("ct_total", "c.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "ct_total 1\n") {
		t.Errorf("handler body missing sample:\n%s", rec.Body.String())
	}
}

// TestRegistryConcurrency hammers every instrument kind from many
// goroutines while scraping — run with -race to prove safety.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.SetMaxSeries(8)
	c := r.Counter("conc_total", "c.", "worker")
	g := r.Gauge("conc_gauge", "g.")
	h := r.Histogram("conc_seconds", "h.", nil, "worker")

	const workers = 16
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w) // exceeds the series cap on purpose
			for i := 0; i < iters; i++ {
				c.Inc(label)
				g.Add(1)
				h.Observe(float64(i)/1000, label)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	// Every increment landed somewhere: sum the distinct series from the
	// scrape (looking values up by over-cap labels would re-read the
	// overflow series once per label).
	var total float64
	for _, line := range strings.Split(scrape(t, r), "\n") {
		if !strings.HasPrefix(line, "conc_total{") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		total += v
	}
	if total != workers*iters {
		t.Errorf("counter total = %v, want %d", total, workers*iters)
	}
}
