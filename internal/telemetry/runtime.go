package telemetry

import "runtime"

// Process-health instruments: goroutine count and heap/GC gauges
// sampled lazily at scrape time (ReadMemStats is not free, so it runs
// once per /metrics request, not on a timer), plus the build-info
// pseudo-metric both binaries export.

// RegisterRuntimeMetrics registers llmms_go_* process gauges on reg and
// hooks their sampling into scrape. Safe to call once per registry;
// telemetry.New does it for the platform bundle, and the daemon calls
// it on its own registry.
func RegisterRuntimeMetrics(reg *Registry) {
	goroutines := reg.Gauge("llmms_go_goroutines",
		"Goroutines currently live in the process.")
	heapAlloc := reg.Gauge("llmms_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	heapObjects := reg.Gauge("llmms_go_heap_objects",
		"Live heap objects (runtime.MemStats.HeapObjects).")
	gcCycles := reg.Gauge("llmms_go_gc_cycles",
		"Completed GC cycles since process start.")
	gcPause := reg.Gauge("llmms_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time since process start.")
	nextGC := reg.Gauge("llmms_go_next_gc_bytes",
		"Heap size at which the next GC cycle triggers.")
	reg.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		nextGC.Set(float64(ms.NextGC))
	})
}

// RegisterBuildInfo registers the llmms_build_info info-gauge: constant
// value 1 with the build's version and Go toolchain as labels, the
// conventional shape for joining version onto any other series.
func RegisterBuildInfo(reg *Registry, version string) {
	reg.Gauge("llmms_build_info",
		"Build metadata; value is always 1.", "version", "go_version").
		Set(1, version, runtime.Version())
}

// GoVersion is the running toolchain version, re-exported so binaries
// can print it from -version without importing runtime themselves.
func GoVersion() string { return runtime.Version() }
