package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeConstruction(t *testing.T) {
	tr := NewTracer("test")
	ctx, root := tr.StartRoot(context.Background(), "query")
	if root == nil {
		t.Fatal("StartRoot returned nil span")
	}
	root.SetAttr("strategy", "oua")

	cctx, child := StartSpan(ctx, "cache.lookup")
	child.SetAttr("tier", "miss")
	child.End(nil)

	_, grand := StartSpan(cctx, "inner")
	grand.End(nil)

	root.End(nil)
	recs := root.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		if r.TraceID != root.TraceID() {
			t.Errorf("span %q trace ID = %q, want %q", r.Name, r.TraceID, root.TraceID())
		}
		if r.Service != "test" {
			t.Errorf("span %q service = %q, want test", r.Name, r.Service)
		}
		byName[r.Name] = r
	}
	if byName["cache.lookup"].ParentID != root.SpanID() {
		t.Errorf("cache.lookup parent = %q, want root %q", byName["cache.lookup"].ParentID, root.SpanID())
	}
	if byName["inner"].ParentID != byName["cache.lookup"].SpanID {
		t.Errorf("inner parent = %q, want cache.lookup %q", byName["inner"].ParentID, byName["cache.lookup"].SpanID)
	}
	if byName["query"].ParentID != "" {
		t.Errorf("root parent = %q, want empty", byName["query"].ParentID)
	}
	if byName["cache.lookup"].Attrs["tier"] != "miss" {
		t.Errorf("tier attr = %q, want miss", byName["cache.lookup"].Attrs["tier"])
	}
	if byName["query"].Status != "ok" {
		t.Errorf("root status = %q, want ok", byName["query"].Status)
	}
}

func TestSpanNilSafety(t *testing.T) {
	// All span entry points must be no-ops on nil receivers: a disabled
	// tracer yields nil spans and the call sites never branch.
	var tr *Tracer
	ctx, root := tr.StartRoot(context.Background(), "query")
	if root != nil {
		t.Fatal("nil tracer produced a span")
	}
	root.SetAttr("k", "v")
	root.End(nil)
	if got := root.Traceparent(); got != "" {
		t.Errorf("nil span traceparent = %q, want empty", got)
	}
	if recs := root.Records(); recs != nil {
		t.Errorf("nil span records = %v, want nil", recs)
	}
	// StartSpan with no span in context is also a no-op.
	sctx, sp := StartSpan(ctx, "child")
	if sp != nil {
		t.Fatal("StartSpan without parent produced a span")
	}
	if sctx != ctx {
		t.Error("StartSpan without parent should return ctx unchanged")
	}
	if c := sp.Child("x"); c != nil {
		t.Error("nil span Child produced a span")
	}
}

func TestSpanErrorStatus(t *testing.T) {
	tr := NewTracer("test")
	_, root := tr.StartRoot(context.Background(), "query")
	child := root.Child("work")
	child.End(context.DeadlineExceeded)
	root.End(nil)
	for _, r := range root.Records() {
		if r.Name != "work" {
			continue
		}
		if r.Status != "error" {
			t.Errorf("status = %q, want error", r.Status)
		}
		if r.Error != context.DeadlineExceeded.Error() {
			t.Errorf("error = %q, want %q", r.Error, context.DeadlineExceeded)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer("test")
	_, root := tr.StartRoot(context.Background(), "query")
	child := root.Child("work")
	child.End(nil)
	child.End(context.Canceled) // must not double-append or flip status
	root.End(nil)
	root.End(nil)
	recs := root.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records after double End, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Name == "work" && r.Status != "ok" {
			t.Errorf("second End overwrote status: %q", r.Status)
		}
	}
}

func TestSpanCapDropsExcess(t *testing.T) {
	tr := NewTracer("test")
	_, root := tr.StartRoot(context.Background(), "query")
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		root.Child("c").End(nil)
	}
	root.End(nil)
	recs := root.Records()
	if len(recs) != MaxSpansPerTrace {
		t.Fatalf("got %d records, want cap %d", len(recs), MaxSpansPerTrace)
	}
	var rootRec *SpanRecord
	for i := range recs {
		if recs[i].Name == "query" {
			rootRec = &recs[i]
		}
	}
	// The root ends last and is one of the dropped appends; the drop
	// count still surfaces — just not on the root record itself — so
	// accept either placement.
	if rootRec != nil && rootRec.Attrs["dropped_spans"] == "" {
		t.Error("root record present but missing dropped_spans attr")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("test")
	_, root := tr.StartRoot(context.Background(), "query")
	h := root.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("traceparent %q: want 55 bytes with 00- prefix", h)
	}
	tid, sid, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if tid != root.TraceID() || sid != root.SpanID() {
		t.Errorf("parsed (%q, %q), want (%q, %q)", tid, sid, root.TraceID(), root.SpanID())
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []string{
		"",
		"garbage",
		"00-short-short-01",
		"ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",  // bad version
		"00-00000000000000000000000000000000-0123456789abcdef-01",  // zero trace ID
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",  // zero span ID
		"00-0123456789abcdef0123456789abcdeZ-0123456789abcdef-01",  // non-hex
		"00-0123456789abcdef0123456789abcdef_0123456789abcdef-01",  // bad separator
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-01x", // too long
	}
	for _, h := range cases {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want reject", h)
		}
	}
}

func TestStartRootFromJoinsUpstream(t *testing.T) {
	up := NewTracer("client")
	_, parent := up.StartRoot(context.Background(), "modeld.generate")
	tid, sid, ok := ParseTraceparent(parent.Traceparent())
	if !ok {
		t.Fatal("parse failed")
	}
	down := NewTracer("modeld")
	_, root := down.StartRootFrom(context.Background(), "modeld.handle_generate", tid, sid)
	if root.TraceID() != parent.TraceID() {
		t.Errorf("daemon root trace = %q, want upstream %q", root.TraceID(), parent.TraceID())
	}
	root.End(nil)
	recs := root.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].ParentID != parent.SpanID() {
		t.Errorf("daemon root parent = %q, want upstream span %q", recs[0].ParentID, parent.SpanID())
	}
	if recs[0].Service != "modeld" {
		t.Errorf("service = %q, want modeld", recs[0].Service)
	}
}

func TestAdoptFiltersForeignSpans(t *testing.T) {
	tr := NewTracer("client")
	_, root := tr.StartRoot(context.Background(), "query")
	good := SpanRecord{
		TraceID: root.TraceID(), SpanID: "00000000000000aa",
		Name: "remote", Service: "modeld", Start: time.Now(),
	}
	foreign := SpanRecord{
		TraceID: "ffffffffffffffffffffffffffffffff", SpanID: "00000000000000bb",
		Name: "stray", Service: "modeld", Start: time.Now(),
	}
	noID := SpanRecord{TraceID: root.TraceID(), Name: "anon"}
	root.Adopt([]SpanRecord{good, foreign, noID})
	root.End(nil)
	recs := root.Records()
	if len(recs) != 2 { // root + good
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Name == "stray" || r.Name == "anon" {
			t.Errorf("adopted invalid record %q", r.Name)
		}
	}
}

func TestNewIDsAreUniqueHex(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if len(tid) != 32 || len(sid) != 16 {
			t.Fatalf("id lengths = %d/%d, want 32/16", len(tid), len(sid))
		}
		if seen[tid] || seen[sid] {
			t.Fatal("duplicate ID generated")
		}
		seen[tid], seen[sid] = true, true
	}
}
