package telemetry

import (
	"context"
	"errors"
	"sync"
	"time"

	"llmms/internal/core"
)

// QueryObserver builds one QueryTrace from a query's orchestration event
// stream and feeds the bundle's metrics as the events arrive. It
// implements core.Recorder: attach it as Config.Recorder, run the query,
// then call Finish with the query's terminal error (nil on success) to
// record the aggregate metrics and store the trace.
//
// A single orchestrated query emits events from one goroutine, but the
// observer locks anyway so a misbehaving backend cannot corrupt it.
type QueryObserver struct {
	tel *Telemetry

	mu       sync.Mutex
	start    time.Time
	tr       QueryTrace
	finished bool
}

// StartQuery opens an observer for one query. strategy is the requested
// policy (the event stream overrides it, so a default is fine); the
// query text is truncated to the bundle's MaxQueryBytes.
func (t *Telemetry) StartQuery(id, strategy, query string) *QueryObserver {
	if len(query) > t.maxQueryBytes {
		query = query[:t.maxQueryBytes]
	}
	now := time.Now()
	return &QueryObserver{
		tel:   t,
		start: now,
		tr:    QueryTrace{ID: id, Strategy: strategy, Query: query, Start: now},
	}
}

// RecordEvent implements core.Recorder.
func (q *QueryObserver) RecordEvent(ev core.Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished {
		return
	}
	if ev.Strategy != "" {
		q.tr.Strategy = string(ev.Strategy)
	}
	offset := ev.Time.Sub(q.start)
	if offset < 0 {
		offset = 0
	}
	switch ev.Type {
	case core.EventRound:
		q.closeRound(offset)
		ro := ev.Elapsed // round events carry their offset from query start
		if ro == 0 {
			ro = offset
		}
		q.tr.Rounds = append(q.tr.Rounds, RoundSpan{Round: ev.Round, Model: ev.Model, Offset: ro})
	case core.EventChunk:
		begin := offset - ev.Elapsed
		if begin < 0 {
			begin = 0
		}
		q.tr.Chunks = append(q.tr.Chunks, ChunkSpan{
			Round: ev.Round, Model: ev.Model, Tokens: ev.Tokens,
			Offset: begin, Elapsed: ev.Elapsed, Attempts: ev.Attempts,
		})
		q.tr.Retries += retriesOf(ev.Attempts)
		q.tel.ChunkLatency.Observe(ev.Elapsed.Seconds(), ev.Model)
		q.tel.Tokens.Add(float64(ev.Tokens), ev.Model)
		if r := retriesOf(ev.Attempts); r > 0 {
			q.tel.Retries.Add(float64(r), ev.Model)
		}
		if ev.Prefetched > 0 {
			q.tel.StreamPrefetch.Add(float64(ev.Prefetched), ev.Model)
		}
	case core.EventScore:
		q.tr.Scores = append(q.tr.Scores, ScorePoint{Round: ev.Round, Model: ev.Model, Score: ev.Score})
	case core.EventScorePass:
		q.tel.ScoreLatency.Observe(ev.Elapsed.Seconds(), string(ev.Strategy))
	case core.EventStreamOpen:
		q.tel.StreamOpens.Inc(ev.Model)
	case core.EventStreamClose:
		q.tel.StreamCloses.Inc(ev.Model, ev.Reason)
	case core.EventStreamFallback:
		q.tel.StreamFallbacks.Inc(ev.Model)
	case core.EventRoundStall:
		q.tel.RoundStall.Observe(ev.Elapsed.Seconds(), string(ev.Strategy))
	case core.EventPrune:
		q.tr.Pruned = append(q.tr.Pruned, ev.Model)
		q.tel.Prunes.Inc(string(ev.Strategy))
	case core.EventModelFailed:
		q.tr.Failures = append(q.tr.Failures, ModelFailure{
			Model: ev.Model, Attempts: ev.Attempts, Reason: ev.Reason,
		})
		q.tr.Retries += retriesOf(ev.Attempts)
		q.tel.ModelFailures.Inc(ev.Model)
		if r := retriesOf(ev.Attempts); r > 0 {
			q.tel.Retries.Add(float64(r), ev.Model)
		}
	case core.EventWinner:
		q.tr.Winner = ev.Model
		q.tr.TokensUsed = ev.Tokens
		// Winner events carry the orchestrator's own total wall clock —
		// more precise than measuring around Run, which would fold in
		// server-side overhead.
		if ev.Elapsed > 0 {
			q.tr.Elapsed = ev.Elapsed
		}
	}
}

func retriesOf(attempts int) int {
	if attempts > 1 {
		return attempts - 1
	}
	return 0
}

// closeRound seals the open round span at the given end offset.
func (q *QueryObserver) closeRound(end time.Duration) {
	if n := len(q.tr.Rounds); n > 0 && q.tr.Rounds[n-1].Elapsed == 0 {
		if d := end - q.tr.Rounds[n-1].Offset; d > 0 {
			q.tr.Rounds[n-1].Elapsed = d
		}
	}
}

// Finish seals the trace with the query's terminal error (nil on
// success), records the query-level metrics, stores the trace, and
// returns a copy. Safe to call once; later calls are no-ops returning
// the sealed trace.
func (q *QueryObserver) Finish(err error) QueryTrace {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished {
		return q.tr
	}
	q.finished = true
	if q.tr.Elapsed == 0 {
		q.tr.Elapsed = time.Since(q.start)
	}
	q.closeRound(q.tr.Elapsed)
	q.tr.Outcome = outcomeLabel(err)
	if err != nil {
		q.tr.Error = err.Error()
	}
	q.tel.Queries.Inc(q.tr.Strategy, q.tr.Outcome)
	q.tel.QueryLatency.Observe(q.tr.Elapsed.Seconds(), q.tr.Strategy)
	q.tel.Traces.Put(q.tr)
	q.tel.TracesStored.Set(float64(q.tel.Traces.Len()))
	return q.tr
}

// outcomeLabel maps a terminal error to the bounded outcome label set.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrAllModelsFailed):
		return "all_models_failed"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}
