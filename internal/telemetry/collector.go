package telemetry

import (
	"context"
	"errors"
	"sync"
	"time"

	"llmms/internal/core"
)

// QueryObserver builds one QueryTrace from a query's orchestration event
// stream and feeds the bundle's metrics as the events arrive. It
// implements core.Recorder: attach it as Config.Recorder, run the query,
// then call Finish with the query's terminal error (nil on success) to
// record the aggregate metrics and store the trace.
//
// A single orchestrated query emits events from one goroutine, but the
// observer locks anyway so a misbehaving backend cannot corrupt it.
type QueryObserver struct {
	tel *Telemetry

	mu       sync.Mutex
	start    time.Time
	tr       QueryTrace
	finished bool
	root     *Span // bound by BindSpans; nil when tracing is off
	orch     *Span // orchestration span; parent of synthesized rounds
}

// StartQuery opens an observer for one query. strategy is the requested
// policy (the event stream overrides it, so a default is fine); the
// query text is truncated to the bundle's MaxQueryBytes.
func (t *Telemetry) StartQuery(id, strategy, query string) *QueryObserver {
	if len(query) > t.maxQueryBytes {
		query = query[:t.maxQueryBytes]
	}
	now := time.Now()
	return &QueryObserver{
		tel:   t,
		start: now,
		tr:    QueryTrace{ID: id, Strategy: strategy, Query: query, Start: now},
	}
}

// RecordEvent implements core.Recorder.
func (q *QueryObserver) RecordEvent(ev core.Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished {
		return
	}
	if ev.Strategy != "" {
		q.tr.Strategy = string(ev.Strategy)
	}
	offset := ev.Time.Sub(q.start)
	if offset < 0 {
		offset = 0
	}
	switch ev.Type {
	case core.EventRound:
		q.closeRound(offset)
		ro := ev.Elapsed // round events carry their offset from query start
		if ro == 0 {
			ro = offset
		}
		q.tr.Rounds = append(q.tr.Rounds, RoundSpan{Round: ev.Round, Model: ev.Model, Offset: ro})
	case core.EventChunk:
		begin := offset - ev.Elapsed
		if begin < 0 {
			begin = 0
		}
		q.tr.Chunks = append(q.tr.Chunks, ChunkSpan{
			Round: ev.Round, Model: ev.Model, Tokens: ev.Tokens,
			Offset: begin, Elapsed: ev.Elapsed, Attempts: ev.Attempts,
		})
		q.tr.Retries += retriesOf(ev.Attempts)
		q.tel.ChunkLatency.Observe(ev.Elapsed.Seconds(), ev.Model)
		q.tel.Tokens.Add(float64(ev.Tokens), ev.Model)
		if r := retriesOf(ev.Attempts); r > 0 {
			q.tel.Retries.Add(float64(r), ev.Model)
		}
		if ev.Prefetched > 0 {
			q.tel.StreamPrefetch.Add(float64(ev.Prefetched), ev.Model)
		}
	case core.EventScore:
		q.tr.Scores = append(q.tr.Scores, ScorePoint{Round: ev.Round, Model: ev.Model, Score: ev.Score})
	case core.EventScorePass:
		q.tel.ScoreLatency.Observe(ev.Elapsed.Seconds(), string(ev.Strategy))
	case core.EventStreamOpen:
		q.tel.StreamOpens.Inc(ev.Model)
	case core.EventStreamClose:
		q.tel.StreamCloses.Inc(ev.Model, ev.Reason)
	case core.EventStreamFallback:
		q.tel.StreamFallbacks.Inc(ev.Model)
	case core.EventRoundStall:
		q.tel.RoundStall.Observe(ev.Elapsed.Seconds(), string(ev.Strategy))
	case core.EventPrune:
		q.tr.Pruned = append(q.tr.Pruned, ev.Model)
		q.tel.Prunes.Inc(string(ev.Strategy))
	case core.EventModelFailed:
		q.tr.Failures = append(q.tr.Failures, ModelFailure{
			Model: ev.Model, Attempts: ev.Attempts, Reason: ev.Reason,
		})
		q.tr.Retries += retriesOf(ev.Attempts)
		q.tel.ModelFailures.Inc(ev.Model)
		if r := retriesOf(ev.Attempts); r > 0 {
			q.tel.Retries.Add(float64(r), ev.Model)
		}
	case core.EventWinner:
		q.tr.Winner = ev.Model
		q.tr.TokensUsed = ev.Tokens
		// Winner events carry the orchestrator's own total wall clock —
		// more precise than measuring around Run, which would fold in
		// server-side overhead.
		if ev.Elapsed > 0 {
			q.tr.Elapsed = ev.Elapsed
		}
	}
}

func retriesOf(attempts int) int {
	if attempts > 1 {
		return attempts - 1
	}
	return 0
}

// BindSpans ties the query's distributed trace to this observer: at
// Finish the trace gains the root's collected span records plus
// per-round and per-chunk spans synthesized from the orchestration
// event stream (core stays free of telemetry imports — the events
// already carry the timings). orch is the span wrapping the
// orchestrator Run call; synthesized round spans parent under it (or
// under root when nil). Nil root makes this a no-op.
func (q *QueryObserver) BindSpans(root, orch *Span) {
	q.mu.Lock()
	q.root = root
	q.orch = orch
	q.mu.Unlock()
}

// synthesizeSpansLocked converts the sealed Rounds/Chunks into span
// records in the bound trace: root → orchestrate → round N → chunk.
// Chunk spans attach to their round by round number; an orphan chunk
// parents under the orchestration span.
func (q *QueryObserver) synthesizeSpansLocked() {
	parentID := q.root.SpanID()
	if q.orch != nil {
		parentID = q.orch.SpanID()
	}
	roundIDs := make(map[int]string, len(q.tr.Rounds))
	for _, r := range q.tr.Rounds {
		id := NewSpanID()
		roundIDs[r.Round] = id
		attrs := map[string]string{"round": itoa(r.Round)}
		if r.Model != "" {
			attrs["model"] = r.Model
		}
		q.root.AddRecord(SpanRecord{
			SpanID: id, ParentID: parentID, Name: "round",
			Start: q.start.Add(r.Offset), Duration: r.Elapsed, Attrs: attrs,
		})
	}
	for _, c := range q.tr.Chunks {
		p := roundIDs[c.Round]
		if p == "" {
			p = parentID
		}
		attrs := map[string]string{
			"round": itoa(c.Round), "model": c.Model, "tokens": itoa(c.Tokens),
		}
		if c.Attempts > 1 {
			attrs["attempts"] = itoa(c.Attempts)
		}
		q.root.AddRecord(SpanRecord{
			ParentID: p, Name: "chunk",
			Start: q.start.Add(c.Offset), Duration: c.Elapsed, Attrs: attrs,
		})
	}
}

// closeRound seals the open round span at the given end offset.
func (q *QueryObserver) closeRound(end time.Duration) {
	if n := len(q.tr.Rounds); n > 0 && q.tr.Rounds[n-1].Elapsed == 0 {
		if d := end - q.tr.Rounds[n-1].Offset; d > 0 {
			q.tr.Rounds[n-1].Elapsed = d
		}
	}
}

// Finish seals the trace with the query's terminal error (nil on
// success), records the query-level metrics, stores the trace, and
// returns a copy. Safe to call once; later calls are no-ops returning
// the sealed trace.
func (q *QueryObserver) Finish(err error) QueryTrace {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished {
		return q.tr
	}
	q.finished = true
	if q.tr.Elapsed == 0 {
		q.tr.Elapsed = time.Since(q.start)
	}
	q.closeRound(q.tr.Elapsed)
	q.tr.Outcome = outcomeLabel(err)
	if err != nil {
		q.tr.Error = err.Error()
	}
	if q.root != nil {
		// Belt and braces: the server ends these before Finish, and End
		// is idempotent, but a panic-shortened path must still seal the
		// trace rather than lose it.
		q.orch.End(err)
		q.root.End(err)
		q.tr.TraceID = q.root.TraceID()
		q.synthesizeSpansLocked()
		q.tr.Spans = q.root.Records()
	}
	q.tel.Queries.Inc(q.tr.Strategy, q.tr.Outcome)
	q.tel.QueryLatency.Observe(q.tr.Elapsed.Seconds(), q.tr.Strategy)
	q.tel.Traces.Put(q.tr)
	q.tel.TracesStored.Set(float64(q.tel.Traces.Len()))
	return q.tr
}

// outcomeLabel maps a terminal error to the bounded outcome label set.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrAllModelsFailed):
		return "all_models_failed"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}
