package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestBatchMetrics(t *testing.T) {
	r := NewRegistry()
	bm := RegisterBatchMetrics(r)

	bm.ObserveAdmission("llama3:8b", 300*time.Microsecond)
	bm.ObserveStep("llama3:8b", 5, 5, 400*time.Microsecond)
	bm.ObserveStep("llama3:8b", 0, 0, 100*time.Microsecond) // prefill-only step
	bm.MarkIdle("llama3:8b")

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`llmms_batch_occupancy{model="llama3:8b"} 0`,
		`llmms_batch_steps_total{model="llama3:8b"} 1`,
		`llmms_batch_step_seconds_count{model="llama3:8b"} 2`,
		`llmms_batch_admission_wait_seconds_count{model="llama3:8b"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	// The fine buckets must actually resolve a 400µs step: the le=0.0005
	// bucket has it, the le=0.00025 bucket does not.
	if !strings.Contains(text, `llmms_batch_step_seconds_bucket{model="llama3:8b",le="0.0005"} 2`) {
		t.Fatalf("0.5ms bucket should hold both steps:\n%s", text)
	}
	if !strings.Contains(text, `llmms_batch_step_seconds_bucket{model="llama3:8b",le="0.00025"} 1`) {
		t.Fatalf("0.25ms bucket should hold only the prefill step:\n%s", text)
	}

	// Idempotent re-registration rebinds the same series.
	bm2 := RegisterBatchMetrics(r)
	bm2.ObserveStep("llama3:8b", 1, 1, time.Millisecond)
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `llmms_batch_steps_total{model="llama3:8b"} 2`) {
		t.Fatalf("re-registered counter did not accumulate:\n%s", b.String())
	}
}
