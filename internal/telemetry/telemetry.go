package telemetry

import "net/http"

// Options tunes a Telemetry bundle.
type Options struct {
	// TraceCapacity bounds the completed-query trace store (non-positive
	// means DefaultTraceCapacity).
	TraceCapacity int
	// MaxSeries caps the distinct label combinations per metric family
	// (non-positive means DefaultMaxSeries).
	MaxSeries int
	// MaxQueryBytes truncates the query text stored in traces
	// (non-positive means DefaultMaxQueryBytes).
	MaxQueryBytes int
}

// DefaultMaxQueryBytes bounds the query text retained per trace.
const DefaultMaxQueryBytes = 2048

// Telemetry bundles the LLM-MS instrument set: one registry, one trace
// store, and every named metric the platform records. Construct with
// New and share one instance per process — the server, the orchestrator
// recorder, and the modeld client all write into the same bundle.
//
// Metric names and labels (all label sets are bounded: strategies,
// model names from the configured inventory, fixed route patterns,
// fixed operation names, and HTTP status codes — never query text):
//
//	llmms_queries_total{strategy,outcome}            completed queries
//	llmms_query_duration_seconds{strategy}           query latency histogram
//	llmms_chunk_duration_seconds{model}              per-chunk generation latency
//	llmms_tokens_generated_total{model}              tokens generated
//	llmms_chunk_retries_total{model}                 retry attempts beyond first tries
//	llmms_model_failures_total{model}                models dropped after retry exhaustion
//	llmms_prunes_total{strategy}                     score-based prunes
//	llmms_score_duration_seconds{strategy}           per-round scoring pass compute time
//	llmms_query_traces                               traces currently retained (gauge)
//	llmms_http_requests_total{route,code}            requests by route pattern and status
//	llmms_http_request_duration_seconds{route}       per-route latency histogram
//	llmms_sse_streams_started_total                  /api/query streams opened
//	llmms_sse_streams_dropped_total                  streams the client abandoned
//	llmms_sse_frames_written_total                   SSE frames written
//	llmms_sse_encode_errors_total                    SSE frames lost to marshal/write errors
//	llmms_cache_hits_total{tier}                     answer cache hits (tier: exact|semantic)
//	llmms_cache_misses_total                         answer cache lookups that missed
//	llmms_cache_lookup_duration_seconds              answer cache lookup latency
//	llmms_coalesced_queries_total                    queries served by replaying a leader in flight
//	llmms_admission_queue_depth                      requests parked in the admission queue (gauge)
//	llmms_admission_queue_wait_seconds               time spent waiting for an orchestration slot
//	llmms_admission_rejected_total                   requests shed with 429 at a full queue
//	llmms_stream_prefetch_tokens_total{model}        tokens already buffered when a round drained them
//	llmms_round_stall_seconds{strategy}              time a round waited on generation
//	llmms_stream_opens_total{model}                  persistent generation streams opened
//	llmms_stream_closes_total{model,reason}          streams closed (reason: done|pruned|early_exit|failed|query_end|error)
//	llmms_stream_fallbacks_total{model}              sessions degraded to per-round chunk calls
//	llmms_route_decisions_total{outcome}             predictive-routing decisions (outcome: topk|probe|full|fallback_cold|fallback_far|fallback_few_obs|fallback_variance)
//	llmms_route_probes_total{model}                  ε-probe inclusions of an otherwise-excluded model
//	llmms_route_width                                predicted fan-out width histogram
//	llmms_fleet_replica_state{model,replica,state}   replica state one-hot gauge (state: serving|half_open|open|unhealthy)
//	llmms_fleet_hedges_total{model,outcome}          hedged requests (outcome: fired|won)
//	llmms_fleet_breaker_transitions_total{model,replica,to}  circuit breaker transitions (to: open|half_open|closed)
//	modeld_client_requests_total{op,outcome}         daemon client requests by operation
//	modeld_client_request_duration_seconds{op}       daemon client request latency
//	modeld_client_chunk_duration_seconds{model,outcome}  daemon client chunk latency
//	modeld_client_truncated_streams_total{model}     streams ending without done:true
type Telemetry struct {
	Registry *Registry
	Traces   *TraceStore

	Queries       Counter
	QueryLatency  Histogram
	ChunkLatency  Histogram
	Tokens        Counter
	Retries       Counter
	ModelFailures Counter
	Prunes        Counter
	ScoreLatency  Histogram
	TracesStored  Gauge

	HTTPRequests    Counter
	HTTPLatency     Histogram
	SSEStreams      Counter
	SSEDropped      Counter
	SSEFrames       Counter
	SSEEncodeErrors Counter

	StreamPrefetch  Counter
	RoundStall      Histogram
	StreamOpens     Counter
	StreamCloses    Counter
	StreamFallbacks Counter

	CacheHits      Counter
	CacheMisses    Counter
	CacheLookupLat Histogram
	Coalesced      Counter
	QueueDepth     Gauge
	QueueWait      Histogram
	Rejected       Counter

	RouteDecisions Counter
	RouteProbes    Counter
	RouteWidth     Histogram

	FleetReplicaState       Gauge
	FleetHedges             Counter
	FleetBreakerTransitions Counter

	ClientRequests  Counter
	ClientLatency   Histogram
	ClientChunkLat  Histogram
	ClientTruncated Counter

	maxQueryBytes int
}

// New builds a Telemetry bundle with every instrument registered.
func New(opts Options) *Telemetry {
	reg := NewRegistry()
	reg.SetMaxSeries(opts.MaxSeries)
	RegisterRuntimeMetrics(reg)
	maxQuery := opts.MaxQueryBytes
	if maxQuery <= 0 {
		maxQuery = DefaultMaxQueryBytes
	}
	return &Telemetry{
		Registry: reg,
		Traces:   NewTraceStore(opts.TraceCapacity),

		Queries: reg.Counter("llmms_queries_total",
			"Completed orchestrated queries by strategy and outcome.", "strategy", "outcome"),
		QueryLatency: reg.Histogram("llmms_query_duration_seconds",
			"End-to-end orchestration latency by strategy.", nil, "strategy"),
		ChunkLatency: reg.Histogram("llmms_chunk_duration_seconds",
			"Per-chunk generation call latency by model (retries included).", nil, "model"),
		Tokens: reg.Counter("llmms_tokens_generated_total",
			"Tokens generated by model.", "model"),
		Retries: reg.Counter("llmms_chunk_retries_total",
			"Generation retry attempts beyond each chunk's first try, by model.", "model"),
		ModelFailures: reg.Counter("llmms_model_failures_total",
			"Models dropped from a query after exhausting the retry budget.", "model"),
		Prunes: reg.Counter("llmms_prunes_total",
			"Models removed by score-based pruning, by strategy.", "strategy"),
		// Scoring passes run in microseconds once the fast path is warm;
		// the default latency buckets start at 5ms and would flatten the
		// whole distribution into the first bucket, so this histogram gets
		// a microsecond-resolution ladder. The top buckets exist to make a
		// regression (a pass sliding back toward re-encoding everything)
		// visible, which is the point of the per-round latency budget.
		ScoreLatency: reg.Histogram("llmms_score_duration_seconds",
			"Per-round scoring pass (embed + score) compute time by strategy.",
			[]float64{1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1},
			"strategy"),
		TracesStored: reg.Gauge("llmms_query_traces",
			"Completed query traces currently retained."),

		StreamPrefetch: reg.Counter("llmms_stream_prefetch_tokens_total",
			"Tokens already generated and buffered client-side at the moment a round drained them — the pipelining overlap won, by model.", "model"),
		// Round stalls measure how long the orchestrator waited for
		// generation after the buffer ran dry. A healthy pipelined query
		// stalls in the microsecond-to-millisecond range after round one,
		// so this histogram uses the microsecond ladder shared with the
		// scoring pass.
		RoundStall: reg.Histogram("llmms_round_stall_seconds",
			"Time a round's slowest streamed drain waited on generation, by strategy.",
			[]float64{1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1},
			"strategy"),
		StreamOpens: reg.Counter("llmms_stream_opens_total",
			"Persistent generation streams opened, by model.", "model"),
		StreamCloses: reg.Counter("llmms_stream_closes_total",
			"Persistent generation streams closed, by model and reason.", "model", "reason"),
		StreamFallbacks: reg.Counter("llmms_stream_fallbacks_total",
			"Generation sessions that degraded to per-round chunk calls after a stream error, by model.", "model"),

		HTTPRequests: reg.Counter("llmms_http_requests_total",
			"HTTP requests by route pattern and status code.", "route", "code"),
		HTTPLatency: reg.Histogram("llmms_http_request_duration_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		SSEStreams: reg.Counter("llmms_sse_streams_started_total",
			"Server-sent event streams opened by /api/query."),
		SSEDropped: reg.Counter("llmms_sse_streams_dropped_total",
			"SSE streams whose client disconnected before completion."),
		SSEFrames: reg.Counter("llmms_sse_frames_written_total",
			"SSE frames written across all streams."),
		SSEEncodeErrors: reg.Counter("llmms_sse_encode_errors_total",
			"SSE frames lost to JSON marshal failures or writes to dead clients."),

		CacheHits: reg.Counter("llmms_cache_hits_total",
			"Answer cache hits by tier (exact or semantic).", "tier"),
		CacheMisses: reg.Counter("llmms_cache_misses_total",
			"Answer cache lookups that found no servable entry."),
		// Cache lookups are map probes plus at most one small vector
		// search; the default latency buckets start at 5ms and would
		// flatten the whole distribution, so this histogram gets the same
		// microsecond ladder as the scoring pass.
		CacheLookupLat: reg.Histogram("llmms_cache_lookup_duration_seconds",
			"Answer cache lookup (exact + semantic probe) latency.",
			[]float64{1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1}),
		Coalesced: reg.Counter("llmms_coalesced_queries_total",
			"Queries served by replaying an identical in-flight leader's stream."),
		QueueDepth: reg.Gauge("llmms_admission_queue_depth",
			"Requests currently parked in the admission wait queue."),
		QueueWait: reg.Histogram("llmms_admission_queue_wait_seconds",
			"Time spent waiting for an orchestration slot before running.", nil),
		Rejected: reg.Counter("llmms_admission_rejected_total",
			"Requests shed with 429 because the admission queue was full."),

		// Routing labels are bounded: a fixed outcome vocabulary and the
		// configured model inventory. The width histogram's buckets cover
		// realistic fan-outs (1–12 models); exact integer buckets keep the
		// avg-width estimate faithful at small widths.
		RouteDecisions: reg.Counter("llmms_route_decisions_total",
			"Predictive-routing decisions by outcome (topk, probe, full, fallback_cold, fallback_far, fallback_few_obs, fallback_variance).",
			"outcome"),
		RouteProbes: reg.Counter("llmms_route_probes_total",
			"ε-probe inclusions of an otherwise-excluded model in a routed fan-out, by model.", "model"),
		RouteWidth: reg.Histogram("llmms_route_width",
			"Fan-out width (model count) the routing decision produced.",
			[]float64{1, 2, 3, 4, 5, 6, 8, 12}),

		// Fleet label cardinality is bounded by deployment shape: models ×
		// replicas × a fixed state/transition vocabulary. Replica IDs come
		// from configuration, never from requests.
		FleetReplicaState: reg.Gauge("llmms_fleet_replica_state",
			"One-hot replica state by model and replica (state: serving, half_open, open, unhealthy).",
			"model", "replica", "state"),
		FleetHedges: reg.Counter("llmms_fleet_hedges_total",
			"Tail-latency hedges by model and outcome (fired: second replica launched; won: hedge finished first).",
			"model", "outcome"),
		FleetBreakerTransitions: reg.Counter("llmms_fleet_breaker_transitions_total",
			"Per-replica circuit breaker transitions by destination state (open, half_open, closed).",
			"model", "replica", "to"),

		ClientRequests: reg.Counter("modeld_client_requests_total",
			"Daemon client requests by operation and outcome.", "op", "outcome"),
		ClientLatency: reg.Histogram("modeld_client_request_duration_seconds",
			"Daemon client request latency by operation.", nil, "op"),
		ClientChunkLat: reg.Histogram("modeld_client_chunk_duration_seconds",
			"Daemon client GenerateChunk latency by model and outcome (ok, error, canceled).", nil, "model", "outcome"),
		ClientTruncated: reg.Counter("modeld_client_truncated_streams_total",
			"Generation streams that ended without a done:true line, by model.", "model"),

		maxQueryBytes: maxQuery,
	}
}

// Handler serves the bundle's registry at GET /metrics.
func (t *Telemetry) Handler() http.Handler { return t.Registry.Handler() }

// ResponseRecorder wraps an http.ResponseWriter to capture the status
// code for instrumentation while passing Flush through, so SSE and
// NDJSON streaming handlers keep working behind the middleware.
type ResponseRecorder struct {
	http.ResponseWriter
	Status int
	wrote  bool
}

// NewResponseRecorder wraps w; an unset status reads as 200.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	return &ResponseRecorder{ResponseWriter: w, Status: http.StatusOK}
}

// WriteHeader records the first explicit status and forwards it.
func (w *ResponseRecorder) WriteHeader(code int) {
	if !w.wrote {
		w.Status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it can stream.
func (w *ResponseRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *ResponseRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }
