package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the platform: one slog.Logger shared by the
// server, the orchestrator, the fleet, and the daemon, built from the
// -log-level / -log-format flags. Every query-scoped line is stamped
// with query_id and trace_id by the caller (logger.With), so a trace ID
// from a log line finds its span tree in /api/traces and vice versa.

// NewLogger builds a slog.Logger writing to w. level is one of
// "debug", "info", "warn", "error" (case-insensitive); format is
// "text" or "json". Unknown values are an error so flag typos surface
// at startup instead of silently logging at the wrong level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default
// when a component is constructed without one, so logging call sites
// never nil-check.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
