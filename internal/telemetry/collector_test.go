package telemetry

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"llmms/internal/core"
)

// feedQuery drives one synthetic two-round OUA query through an
// observer: two models chunk in round 1, one is pruned, one retries,
// one fails, and llama3 wins.
func feedQuery(tel *Telemetry, id string) *QueryObserver {
	obs := tel.StartQuery(id, "oua", "why is the sky blue?")
	base := obs.start
	at := func(d time.Duration) time.Time { return base.Add(d) }

	obs.RecordEvent(core.Event{Type: core.EventStart, Strategy: core.StrategyOUA, Time: at(0)})
	obs.RecordEvent(core.Event{Type: core.EventRound, Strategy: core.StrategyOUA, Round: 1,
		Time: at(time.Millisecond), Elapsed: time.Millisecond})
	obs.RecordEvent(core.Event{Type: core.EventChunk, Strategy: core.StrategyOUA, Round: 1,
		Model: "llama3", Tokens: 10, Time: at(11 * time.Millisecond), Elapsed: 10 * time.Millisecond, Attempts: 1})
	obs.RecordEvent(core.Event{Type: core.EventChunk, Strategy: core.StrategyOUA, Round: 1,
		Model: "mistral", Tokens: 8, Time: at(16 * time.Millisecond), Elapsed: 15 * time.Millisecond, Attempts: 3})
	obs.RecordEvent(core.Event{Type: core.EventScorePass, Strategy: core.StrategyOUA, Round: 1,
		Time: at(17 * time.Millisecond), Elapsed: 40 * time.Microsecond})
	obs.RecordEvent(core.Event{Type: core.EventScore, Strategy: core.StrategyOUA, Round: 1,
		Model: "llama3", Score: 0.9, Time: at(17 * time.Millisecond)})
	obs.RecordEvent(core.Event{Type: core.EventPrune, Strategy: core.StrategyOUA, Round: 1,
		Model: "mistral", Score: 0.2, Reason: "trailing", Time: at(18 * time.Millisecond)})
	obs.RecordEvent(core.Event{Type: core.EventRound, Strategy: core.StrategyOUA, Round: 2,
		Time: at(20 * time.Millisecond), Elapsed: 20 * time.Millisecond})
	obs.RecordEvent(core.Event{Type: core.EventModelFailed, Strategy: core.StrategyOUA, Round: 2,
		Model: "qwen2", Attempts: 4, Reason: "backend down", Time: at(25 * time.Millisecond)})
	obs.RecordEvent(core.Event{Type: core.EventWinner, Strategy: core.StrategyOUA,
		Model: "llama3", Tokens: 18, Score: 0.9, Time: at(30 * time.Millisecond), Elapsed: 30 * time.Millisecond})
	return obs
}

func TestObserverBuildsTrace(t *testing.T) {
	tel := New(Options{})
	obs := feedQuery(tel, "q1")
	tr := obs.Finish(nil)

	if tr.ID != "q1" || tr.Strategy != "oua" || tr.Outcome != "ok" {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if tr.Winner != "llama3" || tr.TokensUsed != 18 {
		t.Errorf("winner fields wrong: winner=%q tokens=%d", tr.Winner, tr.TokensUsed)
	}
	if len(tr.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(tr.Rounds))
	}
	// Round 1 opened at 1ms and round 2 at 20ms, so round 1's wall clock
	// is the 19ms between them; round 2 is sealed by Finish.
	if tr.Rounds[0].Offset != time.Millisecond || tr.Rounds[0].Elapsed != 19*time.Millisecond {
		t.Errorf("round 1 span wrong: %+v", tr.Rounds[0])
	}
	if tr.Rounds[1].Elapsed <= 0 {
		t.Errorf("final round not sealed: %+v", tr.Rounds[1])
	}
	if len(tr.Chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(tr.Chunks))
	}
	c := tr.Chunks[0]
	if c.Model != "llama3" || c.Tokens != 10 || c.Elapsed != 10*time.Millisecond || c.Attempts != 1 {
		t.Errorf("chunk span wrong: %+v", c)
	}
	// Chunk offset is the call start: event time minus call elapsed.
	if c.Offset != time.Millisecond {
		t.Errorf("chunk offset = %v, want 1ms", c.Offset)
	}
	if len(tr.Scores) != 1 || tr.Scores[0].Score != 0.9 {
		t.Errorf("score trajectory wrong: %+v", tr.Scores)
	}
	if len(tr.Pruned) != 1 || tr.Pruned[0] != "mistral" {
		t.Errorf("pruned wrong: %+v", tr.Pruned)
	}
	if len(tr.Failures) != 1 || tr.Failures[0].Model != "qwen2" || tr.Failures[0].Attempts != 4 {
		t.Errorf("failures wrong: %+v", tr.Failures)
	}
	// Retries: mistral chunk took 3 attempts (2 retries), qwen2 failed
	// after 4 attempts (3 retries).
	if tr.Retries != 5 {
		t.Errorf("retries = %d, want 5", tr.Retries)
	}

	// The same run fed the aggregate metrics.
	if got := tel.Queries.Value("oua", "ok"); got != 1 {
		t.Errorf("queries counter = %v, want 1", got)
	}
	if got := tel.QueryLatency.Count("oua"); got != 1 {
		t.Errorf("query latency count = %v, want 1", got)
	}
	if got := tel.ChunkLatency.Count("llama3"); got != 1 {
		t.Errorf("chunk latency count = %v, want 1", got)
	}
	if got := tel.Tokens.Value("mistral"); got != 8 {
		t.Errorf("tokens = %v, want 8", got)
	}
	if got := tel.Retries.Value("mistral"); got != 2 {
		t.Errorf("mistral retries = %v, want 2", got)
	}
	if got := tel.Retries.Value("qwen2"); got != 3 {
		t.Errorf("qwen2 retries = %v, want 3", got)
	}
	if got := tel.ModelFailures.Value("qwen2"); got != 1 {
		t.Errorf("model failures = %v, want 1", got)
	}
	if got := tel.Prunes.Value("oua"); got != 1 {
		t.Errorf("prunes = %v, want 1", got)
	}
	if got := tel.ScoreLatency.Count("oua"); got != 1 {
		t.Errorf("score pass latency count = %v, want 1", got)
	}
	if got := tel.TracesStored.Value(); got != 1 {
		t.Errorf("traces gauge = %v, want 1", got)
	}
	if _, ok := tel.Traces.Get("q1"); !ok {
		t.Error("finished trace not stored")
	}
}

func TestObserverFinishOutcomes(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{core.ErrAllModelsFailed, "all_models_failed"},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "canceled"},
		{errors.New("boom"), "error"},
	}
	for _, c := range cases {
		tel := New(Options{})
		tr := tel.StartQuery("q", "mab", "x").Finish(c.err)
		if tr.Outcome != c.want {
			t.Errorf("Finish(%v) outcome = %q, want %q", c.err, tr.Outcome, c.want)
		}
		if got := tel.Queries.Value("mab", c.want); got != 1 {
			t.Errorf("Finish(%v): counter{mab,%s} = %v, want 1", c.err, c.want, got)
		}
		if c.err != nil && tr.Error == "" {
			t.Errorf("Finish(%v): error text not recorded", c.err)
		}
	}
}

func TestObserverFinishIdempotent(t *testing.T) {
	tel := New(Options{})
	obs := tel.StartQuery("q", "oua", "x")
	obs.Finish(nil)
	obs.RecordEvent(core.Event{Type: core.EventChunk, Model: "m", Tokens: 5, Time: time.Now()})
	tr := obs.Finish(errors.New("late"))
	if tr.Outcome != "ok" || len(tr.Chunks) != 0 {
		t.Errorf("post-finish activity mutated the trace: %+v", tr)
	}
	if got := tel.Queries.Value("oua", "ok"); got != 1 {
		t.Errorf("double finish double-counted: %v", got)
	}
}

func TestStartQueryTruncatesQueryText(t *testing.T) {
	tel := New(Options{MaxQueryBytes: 10})
	tr := tel.StartQuery("q", "oua", strings.Repeat("a", 100)).Finish(nil)
	if len(tr.Query) != 10 {
		t.Errorf("query stored with %d bytes, want 10", len(tr.Query))
	}
}

func TestStrategyOverriddenByEventStream(t *testing.T) {
	tel := New(Options{})
	obs := tel.StartQuery("q", "oua", "x")
	obs.RecordEvent(core.Event{Type: core.EventStart, Strategy: core.StrategyHybrid, Time: time.Now()})
	tr := obs.Finish(nil)
	if tr.Strategy != string(core.StrategyHybrid) {
		t.Errorf("strategy = %q, want hybrid", tr.Strategy)
	}
}
