package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormatsAndLevels(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "warn", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	log.Info("hidden", "k", "v")
	log.Warn("shown", "trace_id", "abc123")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (info below warn level):\n%s", len(lines), b.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("json format produced unparseable line: %v", err)
	}
	if rec["msg"] != "shown" || rec["trace_id"] != "abc123" {
		t.Errorf("line missing fields: %v", rec)
	}

	b.Reset()
	log, err = NewLogger(&b, "", "")
	if err != nil {
		t.Fatalf("NewLogger defaults: %v", err)
	}
	log.Debug("hidden at default info")
	log.Info("text line")
	if got := b.String(); !strings.Contains(got, "text line") || strings.Contains(got, "hidden") {
		t.Errorf("default text/info logger output wrong:\n%s", got)
	}

	if _, err := NewLogger(&b, "loud", "text"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewLogger(&b, "info", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	log := NopLogger()
	log.Info("into the void", "k", "v")
	log.With("a", "b").Warn("still nothing")
}
