package telemetry

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStorePutGet(t *testing.T) {
	s := NewTraceStore(4)
	tr := QueryTrace{ID: "q1", Strategy: "oua", Winner: "llama3",
		Rounds: []RoundSpan{{Round: 1, Offset: 0, Elapsed: time.Millisecond}},
		Chunks: []ChunkSpan{{Round: 1, Model: "llama3", Tokens: 7, Elapsed: time.Millisecond}},
	}
	s.Put(tr)
	got, ok := s.Get("q1")
	if !ok {
		t.Fatal("stored trace not found")
	}
	if got.Winner != "llama3" || len(got.Rounds) != 1 || got.Chunks[0].Tokens != 7 {
		t.Errorf("round-tripped trace mangled: %+v", got)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get returned a trace for an unknown ID")
	}
}

// TestTraceStoreEvictionBound proves the store never exceeds its
// capacity and always evicts oldest-first.
func TestTraceStoreEvictionBound(t *testing.T) {
	const capacity = 8
	s := NewTraceStore(capacity)
	const total = 3*capacity + 1
	for i := 0; i < total; i++ {
		s.Put(QueryTrace{ID: fmt.Sprintf("q%03d", i)})
		if s.Len() > capacity {
			t.Fatalf("store grew to %d > capacity %d after %d puts", s.Len(), capacity, i+1)
		}
	}
	if s.Len() != capacity {
		t.Fatalf("Len = %d, want %d", s.Len(), capacity)
	}
	// Exactly the newest `capacity` IDs survive.
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("q%03d", i)
		_, ok := s.Get(id)
		if wantKept := i >= total-capacity; ok != wantKept {
			t.Errorf("Get(%s) = %v, want kept=%v", id, ok, wantKept)
		}
	}
}

func TestTraceStoreSameIDReplaces(t *testing.T) {
	s := NewTraceStore(4)
	s.Put(QueryTrace{ID: "q1", Outcome: "error"})
	s.Put(QueryTrace{ID: "q1", Outcome: "ok"})
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate-ID put, want 1", s.Len())
	}
	got, _ := s.Get("q1")
	if got.Outcome != "ok" {
		t.Errorf("duplicate put did not replace: %+v", got)
	}
}

func TestTraceStoreListNewestFirst(t *testing.T) {
	s := NewTraceStore(3)
	for i := 1; i <= 5; i++ { // q1,q2 evicted
		s.Put(QueryTrace{ID: fmt.Sprintf("q%d", i)})
	}
	all := s.List(0)
	if len(all) != 3 {
		t.Fatalf("List(0) len = %d, want 3", len(all))
	}
	for i, want := range []string{"q5", "q4", "q3"} {
		if all[i].ID != want {
			t.Errorf("List[%d].ID = %s, want %s", i, all[i].ID, want)
		}
	}
	if lim := s.List(2); len(lim) != 2 || lim[0].ID != "q5" {
		t.Errorf("List(2) = %+v, want [q5 q4]", lim)
	}
}

func TestTraceSummaryTruncatesQuery(t *testing.T) {
	s := NewTraceStore(2)
	long := strings.Repeat("x", summaryQueryLimit+50)
	s.Put(QueryTrace{ID: "q1", Query: long})
	row := s.List(0)[0]
	if len(row.Query) >= len(long) {
		t.Errorf("summary query not truncated (len %d)", len(row.Query))
	}
	got, _ := s.Get("q1")
	if got.Query != long {
		t.Errorf("full trace query must stay untruncated")
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("q%d-%d", w, i)
				s.Put(QueryTrace{ID: id})
				s.Get(id)
				s.List(5)
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Errorf("Len = %d, want capacity 16", s.Len())
	}
}

func TestNewQueryID(t *testing.T) {
	format := regexp.MustCompile(`^q[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewQueryID()
		if !format.MatchString(id) {
			t.Fatalf("NewQueryID() = %q, want q + 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

// TestTraceStoreTailSampling drives the tail-based retention policy
// with a deterministic roll: errors and slow-tail traces always stick,
// ordinary traces obey the sample rate.
func TestTraceStoreTailSampling(t *testing.T) {
	s := NewTraceStore(1024)
	s.SetSampleRate(0) // keep only the tail
	roll := 0.5
	s.randf = func() float64 { return roll }

	// Warm the duration window past slowMinSamples with uniform fast
	// queries; until then everything counts as slow and is retained.
	for i := 0; i < slowMinSamples; i++ {
		tr := QueryTrace{ID: fmt.Sprintf("warm%d", i), Outcome: "ok", Elapsed: time.Millisecond}
		if !s.Put(tr) {
			t.Fatalf("warmup trace %d dropped before the p99 estimate warmed up", i)
		}
	}

	// Ordinary fast ok trace: sampled out at rate 0. Strictly faster
	// than the window's uniform 1ms so it cannot tie the p99 (the slow
	// test is d >= p99, so an equal duration would count as slow).
	if s.Put(QueryTrace{ID: "fast", Outcome: "ok", Elapsed: time.Microsecond}) {
		t.Error("ordinary trace retained at sample rate 0")
	}
	if s.SampledOut() != 1 {
		t.Errorf("SampledOut = %d, want 1", s.SampledOut())
	}
	if _, ok := s.Get("fast"); ok {
		t.Error("sampled-out trace is retrievable")
	}

	// Error outcome: always retained.
	if !s.Put(QueryTrace{ID: "err", Outcome: "error", Elapsed: time.Microsecond}) {
		t.Error("error trace dropped by sampling")
	}

	// Slow tail: at or above p99 of the (1ms-uniform) window.
	if !s.Put(QueryTrace{ID: "slow", Outcome: "ok", Elapsed: 50 * time.Millisecond}) {
		t.Error("slow-tail trace dropped by sampling")
	}

	// Partial rate: the deterministic roll of 0.5 keeps traces when the
	// rate exceeds it and drops them when it does not.
	s.SetSampleRate(0.75)
	if !s.Put(QueryTrace{ID: "kept", Outcome: "ok", Elapsed: time.Microsecond}) {
		t.Error("roll 0.5 < rate 0.75 should retain")
	}
	s.SetSampleRate(0.25)
	if s.Put(QueryTrace{ID: "dropped", Outcome: "ok", Elapsed: time.Microsecond}) {
		t.Error("roll 0.5 >= rate 0.25 should drop")
	}
}

// TestTraceStoreDefaultKeepsEverything proves the default rate of 1
// never drops, so existing behaviour is unchanged.
func TestTraceStoreDefaultKeepsEverything(t *testing.T) {
	s := NewTraceStore(1024)
	for i := 0; i < 100; i++ {
		if !s.Put(QueryTrace{ID: fmt.Sprintf("q%d", i), Outcome: "ok", Elapsed: time.Millisecond}) {
			t.Fatalf("trace %d dropped at default sample rate", i)
		}
	}
	if s.SampledOut() != 0 {
		t.Errorf("SampledOut = %d, want 0", s.SampledOut())
	}
}
