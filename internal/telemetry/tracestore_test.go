package telemetry

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStorePutGet(t *testing.T) {
	s := NewTraceStore(4)
	tr := QueryTrace{ID: "q1", Strategy: "oua", Winner: "llama3",
		Rounds: []RoundSpan{{Round: 1, Offset: 0, Elapsed: time.Millisecond}},
		Chunks: []ChunkSpan{{Round: 1, Model: "llama3", Tokens: 7, Elapsed: time.Millisecond}},
	}
	s.Put(tr)
	got, ok := s.Get("q1")
	if !ok {
		t.Fatal("stored trace not found")
	}
	if got.Winner != "llama3" || len(got.Rounds) != 1 || got.Chunks[0].Tokens != 7 {
		t.Errorf("round-tripped trace mangled: %+v", got)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get returned a trace for an unknown ID")
	}
}

// TestTraceStoreEvictionBound proves the store never exceeds its
// capacity and always evicts oldest-first.
func TestTraceStoreEvictionBound(t *testing.T) {
	const capacity = 8
	s := NewTraceStore(capacity)
	const total = 3*capacity + 1
	for i := 0; i < total; i++ {
		s.Put(QueryTrace{ID: fmt.Sprintf("q%03d", i)})
		if s.Len() > capacity {
			t.Fatalf("store grew to %d > capacity %d after %d puts", s.Len(), capacity, i+1)
		}
	}
	if s.Len() != capacity {
		t.Fatalf("Len = %d, want %d", s.Len(), capacity)
	}
	// Exactly the newest `capacity` IDs survive.
	for i := 0; i < total; i++ {
		id := fmt.Sprintf("q%03d", i)
		_, ok := s.Get(id)
		if wantKept := i >= total-capacity; ok != wantKept {
			t.Errorf("Get(%s) = %v, want kept=%v", id, ok, wantKept)
		}
	}
}

func TestTraceStoreSameIDReplaces(t *testing.T) {
	s := NewTraceStore(4)
	s.Put(QueryTrace{ID: "q1", Outcome: "error"})
	s.Put(QueryTrace{ID: "q1", Outcome: "ok"})
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate-ID put, want 1", s.Len())
	}
	got, _ := s.Get("q1")
	if got.Outcome != "ok" {
		t.Errorf("duplicate put did not replace: %+v", got)
	}
}

func TestTraceStoreListNewestFirst(t *testing.T) {
	s := NewTraceStore(3)
	for i := 1; i <= 5; i++ { // q1,q2 evicted
		s.Put(QueryTrace{ID: fmt.Sprintf("q%d", i)})
	}
	all := s.List(0)
	if len(all) != 3 {
		t.Fatalf("List(0) len = %d, want 3", len(all))
	}
	for i, want := range []string{"q5", "q4", "q3"} {
		if all[i].ID != want {
			t.Errorf("List[%d].ID = %s, want %s", i, all[i].ID, want)
		}
	}
	if lim := s.List(2); len(lim) != 2 || lim[0].ID != "q5" {
		t.Errorf("List(2) = %+v, want [q5 q4]", lim)
	}
}

func TestTraceSummaryTruncatesQuery(t *testing.T) {
	s := NewTraceStore(2)
	long := strings.Repeat("x", summaryQueryLimit+50)
	s.Put(QueryTrace{ID: "q1", Query: long})
	row := s.List(0)[0]
	if len(row.Query) >= len(long) {
		t.Errorf("summary query not truncated (len %d)", len(row.Query))
	}
	got, _ := s.Get("q1")
	if got.Query != long {
		t.Errorf("full trace query must stay untruncated")
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	s := NewTraceStore(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("q%d-%d", w, i)
				s.Put(QueryTrace{ID: id})
				s.Get(id)
				s.List(5)
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Errorf("Len = %d, want capacity 16", s.Len())
	}
}

func TestNewQueryID(t *testing.T) {
	format := regexp.MustCompile(`^q[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewQueryID()
		if !format.MatchString(id) {
			t.Fatalf("NewQueryID() = %q, want q + 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}
