package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// This file is the distributed-tracing layer: a dependency-free
// Span/Tracer implementation carried through context.Context so one
// query yields a single span tree covering HTTP handling, cache lookup,
// admission wait, orchestration rounds, fleet replica calls, and every
// modeld HTTP request — including daemon-side spans joined across the
// process boundary via the W3C traceparent header.
//
// Design notes:
//
//   - Spans of one trace share a single append-only buffer owned by the
//     root; Span.End appends the finished record, so a trace's records
//     are in end order, and the tree is reconstructed from ParentID.
//   - Every constructor returns a usable value even when tracing is
//     off: a nil *Span is a valid no-op receiver for every method, so
//     call sites never branch on "is tracing enabled".
//   - Cross-process spans: modeld.Client injects Traceparent() into
//     request headers; the daemon parses it with ParseTraceparent,
//     builds its own subtree under the caller's span ID, and ships the
//     finished records back on the NDJSON done line, where the client
//     grafts them into the local buffer with Adopt.

// MaxSpansPerTrace bounds one trace's record buffer. Past the cap,
// finished spans are counted in SpanRecord attrs on the root
// ("dropped_spans") instead of retained, so a runaway fan-out cannot
// hold unbounded memory.
const MaxSpansPerTrace = 512

// SpanRecord is one finished span, JSON-shaped for /api/traces/{id} and
// the modeld done-line extension.
type SpanRecord struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Service  string            `json:"service,omitempty"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Status   string            `json:"status"` // ok | error
	Error    string            `json:"error,omitempty"`
}

// Tracer mints root spans for one service ("llmms", "modeld"). A nil
// *Tracer is valid and disables tracing: StartRoot returns a nil span
// and the whole instrumented path degrades to no-ops.
type Tracer struct {
	service string
}

// NewTracer returns a tracer stamping every span with the service name.
func NewTracer(service string) *Tracer { return &Tracer{service: service} }

// spanBuf collects one trace's finished records. Shared by every span
// of the trace and safe for concurrent End/Adopt from fan-out workers.
type spanBuf struct {
	mu      sync.Mutex
	recs    []SpanRecord
	dropped int
}

func (b *spanBuf) add(recs ...SpanRecord) {
	b.mu.Lock()
	for _, r := range recs {
		if len(b.recs) >= MaxSpansPerTrace {
			b.dropped++
			continue
		}
		b.recs = append(b.recs, r)
	}
	b.mu.Unlock()
}

// Span is one in-flight stage of a trace. Create children with
// StartSpan (context) or Child (explicit parent); finish with End.
// All methods are safe on a nil receiver.
type Span struct {
	buf *spanBuf

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
	root  bool
}

// StartRoot opens a new trace: fresh trace ID, no parent. The returned
// context carries the span for StartSpan call sites downstream. On a
// nil tracer both returns are no-ops (ctx unchanged, nil span).
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startRoot(ctx, name, NewTraceID(), "")
}

// StartRootFrom opens this process's root span as a child of a remote
// parent: the daemon side of traceparent propagation. traceID and
// parentID must be the already-validated values from ParseTraceparent.
func (t *Tracer) StartRootFrom(ctx context.Context, name, traceID, parentID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startRoot(ctx, name, traceID, parentID)
}

func (t *Tracer) startRoot(ctx context.Context, name, traceID, parentID string) (context.Context, *Span) {
	s := &Span{
		buf:  &spanBuf{},
		root: true,
		rec: SpanRecord{
			TraceID:  traceID,
			SpanID:   NewSpanID(),
			ParentID: parentID,
			Name:     name,
			Service:  t.service,
			Start:    time.Now(),
		},
	}
	return ContextWithSpan(ctx, s), s
}

// spanKey is the context key carrying the current span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil when ctx carries
// none (tracing off, or an un-instrumented entry point).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context carrying the child. With no span in ctx it returns (ctx, nil):
// the nil span no-ops, so call sites stay unconditional.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return ContextWithSpan(ctx, child), child
}

// Child opens a child span sharing the receiver's trace and buffer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	rec := SpanRecord{
		TraceID:  s.rec.TraceID,
		SpanID:   NewSpanID(),
		ParentID: s.rec.SpanID,
		Name:     name,
		Service:  s.rec.Service,
		Start:    time.Now(),
	}
	s.mu.Unlock()
	return &Span{buf: s.buf, rec: rec}
}

// SetAttr attaches one key/value to the span. Values must come from
// bounded vocabularies or be short identifiers — never query text.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]string, 4)
		}
		s.rec.Attrs[key] = value
	}
	s.mu.Unlock()
}

// End finishes the span with its terminal error (nil on success) and
// appends the record to the trace buffer. Later calls are no-ops.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.Duration = time.Since(s.rec.Start)
	if err != nil {
		s.rec.Status = "error"
		s.rec.Error = err.Error()
	} else {
		s.rec.Status = "ok"
	}
	rec := s.rec
	if s.root {
		s.buf.mu.Lock()
		if d := s.buf.dropped; d > 0 {
			if rec.Attrs == nil {
				rec.Attrs = make(map[string]string, 1)
			}
			rec.Attrs["dropped_spans"] = itoa(d)
			s.rec = rec
		}
		s.buf.mu.Unlock()
	}
	s.mu.Unlock()
	s.buf.add(rec)
}

// itoa avoids strconv in the hot End path for the rare dropped case.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's own ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// Records returns a copy of the trace's finished records so far.
// Call after End on the subtree of interest; spans still in flight are
// absent. Nil-safe (returns nil).
func (s *Span) Records() []SpanRecord {
	if s == nil {
		return nil
	}
	s.buf.mu.Lock()
	out := make([]SpanRecord, len(s.buf.recs))
	copy(out, s.buf.recs)
	s.buf.mu.Unlock()
	return out
}

// Adopt grafts remotely-finished records (a daemon's subtree) into the
// local trace buffer. Records from a different trace are discarded —
// a daemon echoing stale spans cannot pollute an unrelated trace.
func (s *Span) Adopt(recs []SpanRecord) {
	if s == nil || len(recs) == 0 {
		return
	}
	kept := recs[:0:0]
	for _, r := range recs {
		if r.TraceID == s.rec.TraceID && r.SpanID != "" {
			kept = append(kept, r)
		}
	}
	if len(kept) > 0 {
		s.buf.add(kept...)
	}
}

// AddRecord appends an already-shaped record to the trace buffer,
// filling TraceID and Service from the span. Used by the query
// observer to synthesize round/chunk spans from orchestration events
// without core importing telemetry.
func (s *Span) AddRecord(rec SpanRecord) {
	if s == nil {
		return
	}
	rec.TraceID = s.rec.TraceID
	if rec.Service == "" {
		rec.Service = s.rec.Service
	}
	if rec.SpanID == "" {
		rec.SpanID = NewSpanID()
	}
	if rec.Status == "" {
		rec.Status = "ok"
	}
	s.buf.add(rec)
}

// --- W3C traceparent ---------------------------------------------------

// Traceparent renders the span as a W3C trace-context header value
// (version 00, sampled flag set): 00-<trace-id>-<span-id>-01.
// Returns "" on a nil span, so callers can skip header injection.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.rec.TraceID + "-" + s.rec.SpanID + "-01"
}

// ParseTraceparent validates a W3C traceparent header value and returns
// its trace and parent-span IDs. ok is false for anything malformed —
// wrong length, unknown version, non-hex, or all-zero IDs — in which
// case the callee should fall back to a fresh root span.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	// 00-{32 hex}-{16 hex}-{2 hex} = 55 bytes.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if h[0] != '0' || h[1] != '0' { // only version 00 is understood
		return "", "", false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !isHex(traceID) || !isHex(spanID) || !isHex(h[53:55]) {
		return "", "", false
	}
	if allZero(traceID) || allZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// NewTraceID returns a fresh 32-hex-character (128-bit) trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(b[8:], idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-character (64-bit) span ID.
func NewSpanID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^idCounter.Add(1)<<32)
	}
	return hex.EncodeToString(b[:])
}
