package telemetry

import "time"

// BatchMetrics is the instrument set for the engine's per-model
// continuous batch schedulers. Its observer methods match the
// llm.BatchHooks function fields, so wiring is one struct literal:
//
//	bm := telemetry.RegisterBatchMetrics(reg)
//	engine.SetBatchHooks(llm.BatchHooks{
//		Step: bm.ObserveStep, Admit: bm.ObserveAdmission, Idle: bm.MarkIdle,
//	})
//
// Series:
//
//	llmms_batch_occupancy{model}                   active sequences in the batch (gauge)
//	llmms_batch_step_seconds{model}                scheduler step wall-clock histogram
//	llmms_batch_admission_wait_seconds{model}      queue time until batch admission
//	llmms_batch_steps_total{model}                 decode steps executed
type BatchMetrics struct {
	Occupancy     Gauge
	StepSeconds   Histogram
	AdmissionWait Histogram
	Steps         Counter
}

// batchStepBuckets resolve the sub-millisecond step durations the
// simulated cost model produces at small latency scales; the default
// buckets start at 5ms and would lump every step into the first bucket.
var batchStepBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1,
}

// RegisterBatchMetrics creates (or rebinds, registration being
// idempotent) the llmms_batch_* series on reg.
func RegisterBatchMetrics(reg *Registry) *BatchMetrics {
	return &BatchMetrics{
		Occupancy: reg.Gauge("llmms_batch_occupancy",
			"Sequences currently decoding in the model's continuous batch.", "model"),
		StepSeconds: reg.Histogram("llmms_batch_step_seconds",
			"Batch scheduler step wall-clock in seconds.", batchStepBuckets, "model"),
		AdmissionWait: reg.Histogram("llmms_batch_admission_wait_seconds",
			"Time a sequence waited for admission into the batch.", batchStepBuckets, "model"),
		Steps: reg.Counter("llmms_batch_steps_total",
			"Decode steps executed by the model's batch scheduler.", "model"),
	}
}

// ObserveStep records one scheduler step (llm.BatchHooks.Step).
func (m *BatchMetrics) ObserveStep(model string, occupancy, decoded int, dur time.Duration) {
	m.Occupancy.Set(float64(occupancy), model)
	m.StepSeconds.Observe(dur.Seconds(), model)
	if decoded > 0 {
		m.Steps.Inc(model)
	}
}

// ObserveAdmission records a sequence's queue time (llm.BatchHooks.Admit).
func (m *BatchMetrics) ObserveAdmission(model string, waited time.Duration) {
	m.AdmissionWait.Observe(waited.Seconds(), model)
}

// MarkIdle zeroes the model's occupancy when its batch drains
// (llm.BatchHooks.Idle).
func (m *BatchMetrics) MarkIdle(model string) {
	m.Occupancy.Set(0, model)
}
