package session

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func ex(session, q, a string, minute int) Exchange {
	return Exchange{
		SessionID: session, Question: q, Answer: a,
		Time: time.Date(2025, 5, 1, 10, minute, 0, 0, time.UTC),
	}
}

func TestMemoryGraphRecallDirect(t *testing.T) {
	g := NewMemoryGraph(MemoryGraphOptions{})
	g.Add(ex("s1", "What GPU does the server use?", "A Tesla V100 with 32 GB.", 0))
	g.Add(ex("s1", "How many CPU cores does it have?", "Forty virtual cores.", 1))
	g.Add(ex("s2", "What is the best pizza topping?", "That is subjective.", 2))

	hits := g.Recall("Tell me about the GPU in the server", 2)
	if len(hits) == 0 {
		t.Fatal("no recall hits")
	}
	if hits[0].Exchange.Answer != "A Tesla V100 with 32 GB." {
		t.Fatalf("top hit = %+v", hits[0])
	}
	for _, h := range hits {
		if h.Exchange.Question == "What is the best pizza topping?" && h.Score > hits[0].Score {
			t.Fatalf("irrelevant exchange outranked relevant one: %+v", hits)
		}
	}
}

func TestMemoryGraphOneHopExpansion(t *testing.T) {
	g := NewMemoryGraph(MemoryGraphOptions{EdgeThreshold: 0.3})
	// Two linked exchanges about the same machine; the second never says
	// "GPU" but shares enough vocabulary to be linked to the first.
	g.Add(ex("s1", "What GPU accelerator does the inference server have installed?", "A Tesla V100.", 0))
	g.Add(ex("s1", "Does the inference server have fast storage installed?", "Yes, an NVMe drive.", 1))
	g.Add(ex("s2", "What is the capital of France?", "Paris.", 2))

	hits := g.Recall("Which GPU accelerator is in the inference server?", 1)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// With k=1 only the GPU exchange is a seed; its neighbor may arrive
	// via the edge. Ask for 2 and require the storage exchange present.
	hits = g.Recall("Which GPU accelerator is installed?", 2)
	foundStorage := false
	for _, h := range hits {
		if h.Exchange.Answer == "Yes, an NVMe drive." {
			foundStorage = true
		}
		if h.Exchange.Answer == "Paris." {
			t.Fatalf("unrelated exchange recalled: %+v", hits)
		}
	}
	if !foundStorage {
		t.Fatalf("one-hop neighbor not recalled: %+v", hits)
	}
}

func TestMemoryGraphEviction(t *testing.T) {
	g := NewMemoryGraph(MemoryGraphOptions{MaxNodes: 3})
	for i := 0; i < 5; i++ {
		g.Add(ex("s", fmt.Sprintf("unique question number %d about topic %d?", i, i), "answer", i))
	}
	if g.Len() != 3 {
		t.Fatalf("len = %d, want 3", g.Len())
	}
	// The oldest exchanges are gone.
	hits := g.Recall("unique question number 0 about topic 0?", 5)
	for _, h := range hits {
		if h.Exchange.Time.Minute() < 2 {
			t.Fatalf("evicted exchange recalled: %+v", h)
		}
	}
}

func TestMemoryGraphEmptyAndValidation(t *testing.T) {
	g := NewMemoryGraph(MemoryGraphOptions{})
	if hits := g.Recall("anything", 3); hits != nil {
		t.Fatalf("empty graph recalled %v", hits)
	}
	g.Add(Exchange{Question: "", Answer: "ignored"})
	if g.Len() != 0 {
		t.Fatal("empty question stored")
	}
	g.Add(ex("s", "a real question?", "a", 0))
	if hits := g.Recall("a real question?", 0); hits != nil {
		t.Fatalf("k=0 returned %v", hits)
	}
}

func TestMemoryGraphConcurrent(t *testing.T) {
	g := NewMemoryGraph(MemoryGraphOptions{MaxNodes: 64})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Add(ex("s", fmt.Sprintf("concurrent question %d about servers?", i), "a", i))
			g.Recall("question about servers", 3)
		}(i)
	}
	wg.Wait()
	if g.Len() != 20 {
		t.Fatalf("len = %d", g.Len())
	}
}

func BenchmarkMemoryGraphRecall(b *testing.B) {
	g := NewMemoryGraph(MemoryGraphOptions{})
	for i := 0; i < 200; i++ {
		g.Add(ex("s", fmt.Sprintf("question %d about subsystem %d performance?", i, i%9), "answer", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Recall("how is subsystem 4 performing?", 5)
	}
}
