package session

import (
	"testing"
	"time"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	now := time.Now()
	opts := Options{Clock: func() time.Time { return now }}
	s := NewStore(opts)
	a := s.Create("first")
	b := s.Create("second")
	if _, err := s.Append(a.ID, Message{Role: RoleUser, Content: "hello there"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(a.ID, Message{Role: RoleAssistant, Content: "hi", Model: "m1"}); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if len(st.Sessions) != 2 || st.NextID != 2 {
		t.Fatalf("snapshot: %d sessions, nextID %d", len(st.Sessions), st.NextID)
	}

	fresh := NewStore(opts)
	if got := fresh.Restore(st); got != 2 {
		t.Fatalf("restored %d sessions, want 2", got)
	}
	got, err := fresh.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Messages) != 2 || got.Messages[1].Model != "m1" || got.TurnCount != 2 {
		t.Fatalf("restored session wrong: %+v", got)
	}
	if _, err := fresh.Get(b.ID); err != nil {
		t.Fatal(err)
	}
	// The id counter moved forward: new sessions don't collide.
	c := fresh.Create("third")
	if c.ID == a.ID || c.ID == b.ID {
		t.Fatalf("restored store reissued id %s", c.ID)
	}
}

func TestRestoreKeepsLiveSessions(t *testing.T) {
	now := time.Now()
	opts := Options{Clock: func() time.Time { return now }}
	s := NewStore(opts)
	a := s.Create("original")
	st := s.Snapshot()
	if _, err := s.Append(a.ID, Message{Role: RoleUser, Content: "newer than the snapshot"}); err != nil {
		t.Fatal(err)
	}
	if got := s.Restore(st); got != 0 {
		t.Fatalf("restore overwrote %d live sessions", got)
	}
	live, err := s.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Messages) != 1 {
		t.Fatal("restore rolled back a live session")
	}
}
