package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"llmms/internal/tokenizer"
)

func testClock() func() time.Time {
	t := time.Date(2025, 5, 1, 12, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestCreateGetDelete(t *testing.T) {
	st := NewStore(Options{Clock: testClock()})
	s := st.Create("GPU questions")
	if s.ID == "" || s.Title != "GPU questions" {
		t.Fatalf("created = %+v", s)
	}
	got, err := st.Get(s.ID)
	if err != nil || got.ID != s.ID {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if err := st.Delete(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(s.ID); err == nil {
		t.Fatal("expected not-found after delete")
	}
	if err := st.Delete(s.ID); err == nil {
		t.Fatal("expected not-found on double delete")
	}
}

func TestAppendValidation(t *testing.T) {
	st := NewStore(Options{Clock: testClock()})
	s := st.Create("")
	if _, err := st.Append(s.ID, Message{Role: RoleUser, Content: "  "}); err == nil {
		t.Fatal("expected error for empty content")
	}
	if _, err := st.Append(s.ID, Message{Role: "system", Content: "x"}); err == nil {
		t.Fatal("expected error for invalid role")
	}
	if _, err := st.Append("missing", Message{Role: RoleUser, Content: "x"}); err == nil {
		t.Fatal("expected not-found for unknown session")
	}
}

func TestTitleFromFirstUserMessage(t *testing.T) {
	st := NewStore(Options{Clock: testClock()})
	s := st.Create("")
	s, err := st.Append(s.ID, Message{Role: RoleUser, Content: "What GPU does the lab server use for inference workloads exactly?"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Title == "" || len(s.Title) > 52 {
		t.Fatalf("title = %q", s.Title)
	}
}

func TestListOrder(t *testing.T) {
	st := NewStore(Options{Clock: testClock()})
	a := st.Create("a")
	b := st.Create("b")
	// Touch a after b so a becomes most recent.
	if _, err := st.Append(a.ID, Message{Role: RoleUser, Content: "hello"}); err != nil {
		t.Fatal(err)
	}
	list := st.List()
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list order = %v, %v", list[0].ID, list[1].ID)
	}
}

func TestClear(t *testing.T) {
	st := NewStore(Options{Clock: testClock()})
	st.Create("a")
	st.Create("b")
	st.Clear()
	if st.Len() != 0 {
		t.Fatalf("%d sessions remain", st.Len())
	}
}

func TestEvictionAtCap(t *testing.T) {
	st := NewStore(Options{MaxSessions: 3, Clock: testClock()})
	first := st.Create("first")
	st.Create("second")
	st.Create("third")
	st.Create("fourth") // evicts "first", the least recently updated
	if st.Len() != 3 {
		t.Fatalf("len = %d, want 3", st.Len())
	}
	if _, err := st.Get(first.ID); err == nil {
		t.Fatal("oldest session should have been evicted")
	}
}

func TestSummarizationTriggersAndRetains(t *testing.T) {
	st := NewStore(Options{SummarizeEvery: 6, RetainMessages: 2, Clock: testClock()})
	s := st.Create("long chat")
	topics := []string{
		"The server has a Tesla V100 GPU with thirty two gigabytes of VRAM.",
		"Understood, the V100 accelerates all inference workloads.",
		"It also has an Intel Xeon Gold processor with forty cores.",
		"Noted, a forty core Xeon Gold handles preprocessing.",
		"The platform orchestrates LLaMA, Mistral and Qwen models together.",
		"Correct, three models run under the Ollama daemon.",
		"Token budgets are allocated with OUA and MAB strategies.",
	}
	var last Session
	var err error
	for i, content := range topics {
		role := RoleUser
		if i%2 == 1 {
			role = RoleAssistant
		}
		last, err = st.Append(s.ID, Message{Role: role, Content: content})
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Summary == "" {
		t.Fatal("summary not produced after threshold")
	}
	if len(last.Messages) > 6 {
		t.Fatalf("retained %d messages, want <= 6", len(last.Messages))
	}
	if last.TurnCount != len(topics) {
		t.Fatalf("turn count = %d, want %d", last.TurnCount, len(topics))
	}
	// The newest message must be retained verbatim.
	newest := last.Messages[len(last.Messages)-1]
	if newest.Content != topics[len(topics)-1] {
		t.Fatalf("newest message lost: %q", newest.Content)
	}
}

func TestHierarchicalResummarization(t *testing.T) {
	st := NewStore(Options{SummarizeEvery: 4, RetainMessages: 2, SummaryBudget: 80, Clock: testClock()})
	s := st.Create("marathon")
	tok := tokenizer.Default()
	var last Session
	var err error
	for i := 0; i < 40; i++ {
		last, err = st.Append(s.ID, Message{
			Role:    RoleUser,
			Content: fmt.Sprintf("Turn %d discusses topic %d in the ongoing conversation about system design.", i, i%7),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Summary == "" {
		t.Fatal("no summary after 40 turns")
	}
	if n := tok.Count(last.Summary); n > 80 {
		t.Fatalf("summary has %d tokens, budget 80", n)
	}
	if len(last.Messages) > 4 {
		t.Fatalf("retained %d messages, want <= 4", len(last.Messages))
	}
}

func TestContextRespectsBudget(t *testing.T) {
	st := NewStore(Options{SummarizeEvery: 20, Clock: testClock()})
	s := st.Create("ctx")
	for i := 0; i < 8; i++ {
		if _, err := st.Append(s.ID, Message{Role: RoleUser,
			Content: fmt.Sprintf("Message number %d with a reasonable amount of content in it.", i)}); err != nil {
			t.Fatal(err)
		}
	}
	tok := tokenizer.Default()
	summary, recent, err := st.Context(s.ID, 60)
	if err != nil {
		t.Fatal(err)
	}
	total := tok.Count(summary)
	for _, m := range recent {
		total += tok.Count(m.Content)
	}
	if total > 60 {
		t.Fatalf("context uses %d tokens, budget 60", total)
	}
	if len(recent) == 0 {
		t.Fatal("context dropped every message")
	}
	// Newest messages are preferred.
	if !strings.Contains(recent[len(recent)-1].Content, "number 7") {
		t.Fatalf("newest message missing: %+v", recent)
	}
	// Unbounded context returns everything.
	_, all, err := st.Context(s.ID, 0)
	if err != nil || len(all) != 8 {
		t.Fatalf("unbounded context: %d messages, %v", len(all), err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	st := NewStore(Options{Clock: testClock()})
	s := st.Create("iso")
	s1, err := st.Append(s.ID, Message{Role: RoleUser, Content: "original"})
	if err != nil {
		t.Fatal(err)
	}
	s1.Messages[0].Content = "mutated"
	s2, err := st.Get(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Messages[0].Content != "original" {
		t.Fatal("snapshot mutation leaked into the store")
	}
}

func TestConcurrentAppends(t *testing.T) {
	st := NewStore(Options{SummarizeEvery: 8, Clock: testClock()})
	s := st.Create("conc")
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = st.Append(s.ID, Message{Role: RoleUser, Content: fmt.Sprintf("concurrent message %d", i)})
		}(i)
	}
	wg.Wait()
	got, err := st.Get(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.TurnCount != n {
		t.Fatalf("turn count = %d, want %d", got.TurnCount, n)
	}
}

func TestSummarizeEmptyAndShort(t *testing.T) {
	tok := tokenizer.Default()
	if got := Summarize("", 100, tok); got != "" {
		t.Fatalf("empty text summarized to %q", got)
	}
	short := "A single short sentence."
	if got := Summarize(short, 100, tok); got != short {
		t.Fatalf("short text altered: %q", got)
	}
}

func TestSummarizeKeepsCentralContent(t *testing.T) {
	tok := tokenizer.Default()
	// Five sentences about GPUs and one outlier; the summary under a tight
	// budget should keep GPU content over the outlier.
	text := strings.Join([]string{
		"The server uses a Tesla V100 GPU for inference.",
		"GPU memory is thirty two gigabytes on the V100.",
		"The GPU runs all three models concurrently.",
		"GPU utilization is monitored with nvidia smi.",
		"The GPU driver version supports CUDA twelve.",
		"Pelicans migrate across the Mediterranean in autumn.",
	}, "\n")
	sum := Summarize(text, 60, tok)
	if sum == "" {
		t.Fatal("empty summary")
	}
	if !strings.Contains(strings.ToLower(sum), "gpu") {
		t.Fatalf("summary lost the central topic: %q", sum)
	}
	if n := tok.Count(sum); n > 60 {
		t.Fatalf("summary has %d tokens, budget 60", n)
	}
}

func TestSummarizeDeduplicates(t *testing.T) {
	tok := tokenizer.Default()
	text := strings.Repeat("The GPU is a Tesla V100 accelerator.\n", 12) +
		"The processor is an Intel Xeon Gold with forty cores.\n" +
		strings.Repeat("The GPU is a Tesla V100 accelerator.\n", 12)
	sum := Summarize(text, 60, tok)
	if c := strings.Count(sum, "Tesla V100"); c > 1 {
		t.Fatalf("summary repeats duplicate sentence %d times: %q", c, sum)
	}
	if !strings.Contains(sum, "Xeon") {
		t.Fatalf("summary lost the distinct sentence: %q", sum)
	}
}

func TestSummarizeBudgetProperty(t *testing.T) {
	tok := tokenizer.Default()
	f := func(seed uint8, nSentences uint8) bool {
		n := 1 + int(nSentences)%30
		var b strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "Sentence %d about subject %d and item %d.\n", i, (i+int(seed))%5, i%3)
		}
		budget := 20 + int(seed)%100
		sum := Summarize(b.String(), budget, tok)
		return tok.Count(sum) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummarize(b *testing.B) {
	tok := tokenizer.Default()
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "Turn %d of the conversation covers orchestration topic %d in depth.\n", i, i%9)
	}
	text := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Summarize(text, 120, tok)
	}
}

func BenchmarkAppend(b *testing.B) {
	st := NewStore(Options{})
	s := st.Create("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = st.Append(s.ID, Message{Role: RoleUser, Content: fmt.Sprintf("benchmark message %d content", i)})
	}
}
