package session

import (
	"sort"
	"sync"
	"time"

	"llmms/internal/embedding"
)

// Exchange is one past question/answer pair stored in the memory graph.
type Exchange struct {
	// SessionID is the conversation the exchange came from.
	SessionID string `json:"session_id"`
	// Question and Answer are the exchange's content.
	Question string `json:"question"`
	Answer   string `json:"answer"`
	// Model is which model produced the answer.
	Model string `json:"model,omitempty"`
	// Time is when the exchange happened.
	Time time.Time `json:"time"`
}

// MemoryGraphOptions tunes a MemoryGraph.
type MemoryGraphOptions struct {
	// EdgeThreshold links two exchanges whose question embeddings have at
	// least this cosine similarity. Default 0.35.
	EdgeThreshold float64
	// MaxNodes bounds the graph; the oldest node is evicted at the cap.
	// Default 512.
	MaxNodes int
	// Encoder embeds questions; nil means embedding.Default().
	Encoder embedding.Encoder
}

func (o MemoryGraphOptions) withDefaults() MemoryGraphOptions {
	if o.EdgeThreshold <= 0 {
		o.EdgeThreshold = 0.35
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 512
	}
	if o.Encoder == nil {
		o.Encoder = embedding.Default()
	}
	return o
}

type memNode struct {
	ex    Exchange
	vec   embedding.Vector
	edges map[*memNode]float64
}

// MemoryGraph implements the paper's §9.5 "Contextual Memory Graphs"
// proposal: rather than storing chat logs purely in order, past
// exchanges become nodes in a similarity graph, and recall pulls in
// relevant past conversations — directly similar ones plus their graph
// neighbors — so models can give more personalized, consistent replies
// across sessions. Safe for concurrent use.
type MemoryGraph struct {
	opts MemoryGraphOptions

	mu    sync.Mutex
	nodes []*memNode
}

// NewMemoryGraph returns an empty graph.
func NewMemoryGraph(opts MemoryGraphOptions) *MemoryGraph {
	return &MemoryGraph{opts: opts.withDefaults()}
}

// Add inserts an exchange, linking it to every existing exchange whose
// question is similar beyond the edge threshold.
func (g *MemoryGraph) Add(ex Exchange) {
	if ex.Question == "" {
		return
	}
	n := &memNode{
		ex:    ex,
		vec:   g.opts.Encoder.Encode(ex.Question),
		edges: make(map[*memNode]float64),
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, other := range g.nodes {
		if sim := embedding.Cosine(n.vec, other.vec); sim >= g.opts.EdgeThreshold {
			n.edges[other] = sim
			other.edges[n] = sim
		}
	}
	g.nodes = append(g.nodes, n)
	if len(g.nodes) > g.opts.MaxNodes {
		evicted := g.nodes[0]
		g.nodes = g.nodes[1:]
		for other := range evicted.edges {
			delete(other.edges, evicted)
		}
	}
}

// Len returns the number of stored exchanges.
func (g *MemoryGraph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.nodes)
}

// Recalled is one recall hit with its relevance score.
type Recalled struct {
	Exchange Exchange `json:"exchange"`
	// Score is the cosine relevance to the query; one-hop neighbors carry
	// their damped path score.
	Score float64 `json:"score"`
	// ViaNeighbor marks hits found through a graph edge rather than by
	// direct similarity.
	ViaNeighbor bool `json:"via_neighbor,omitempty"`
}

// Recall returns up to k past exchanges relevant to the query: the most
// similar exchanges directly, expanded one hop along graph edges with a
// damped score, deduplicated, best first. The one-hop expansion is what
// distinguishes the graph from a plain vector lookup — an exchange that
// never mentions the query's words is still recalled when it is linked
// to one that does.
func (g *MemoryGraph) Recall(query string, k int) []Recalled {
	if k <= 0 {
		return nil
	}
	qv := g.opts.Encoder.Encode(query)
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.nodes) == 0 {
		return nil
	}

	// Direct scores.
	direct := make(map[*memNode]float64, len(g.nodes))
	for _, n := range g.nodes {
		direct[n] = embedding.Cosine(qv, n.vec)
	}
	// Seeds: top-k by direct score.
	seeds := append([]*memNode(nil), g.nodes...)
	sort.SliceStable(seeds, func(i, j int) bool { return direct[seeds[i]] > direct[seeds[j]] })
	if len(seeds) > k {
		seeds = seeds[:k]
	}

	// Expand one hop: a neighbor inherits seedScore·edgeSim, damped.
	const hopDamping = 0.8
	best := make(map[*memNode]Recalled, len(seeds)*2)
	for _, s := range seeds {
		if cur, ok := best[s]; !ok || direct[s] > cur.Score {
			best[s] = Recalled{Exchange: s.ex, Score: direct[s]}
		}
		for nb, edgeSim := range s.edges {
			score := direct[s] * edgeSim * hopDamping
			if cur, ok := best[nb]; !ok || score > cur.Score {
				// Direct relevance wins over a path when it is higher.
				if direct[nb] >= score {
					best[nb] = Recalled{Exchange: nb.ex, Score: direct[nb]}
				} else {
					best[nb] = Recalled{Exchange: nb.ex, Score: score, ViaNeighbor: true}
				}
			}
		}
	}
	out := make([]Recalled, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Exchange.Time.Before(out[j].Exchange.Time)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
