// Package session implements the LLM-MS session and context layer
// (§6.5): multi-turn conversation state, hierarchical summarization that
// keeps long sessions within model input limits, and a bounded in-memory
// store mirroring the paper's privacy posture (no long-term persistence
// of user-derived data; everything lives for the session only).
//
// The summarization scheme follows §7.3: after every SummarizeEvery
// messages, the turns older than the retention window are replaced by an
// extractive summary. Summaries of summaries compose hierarchically — a
// re-summarization pass condenses the previous summary together with the
// newly expired turns, so context length stays bounded no matter how long
// the conversation runs.
package session

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"llmms/internal/tokenizer"
)

// Role labels a message's author.
type Role string

// Message roles.
const (
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one conversation turn.
type Message struct {
	// Role is who produced the message.
	Role Role `json:"role"`
	// Content is the message text.
	Content string `json:"content"`
	// Model, for assistant messages, records which model answered.
	Model string `json:"model,omitempty"`
	// Time is when the message was appended.
	Time time.Time `json:"time"`
}

// Session is one conversation. All mutation goes through the Store; a
// Session value returned by the store is a snapshot safe to read freely.
type Session struct {
	// ID is the store-assigned identifier.
	ID string `json:"id"`
	// Title is the display name (defaults to the first user message).
	Title string `json:"title"`
	// Summary is the condensed representation of expired earlier turns.
	Summary string `json:"summary,omitempty"`
	// Messages are the retained (recent) turns, oldest first.
	Messages []Message `json:"messages"`
	// Created and Updated bound the session's lifetime.
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
	// TurnCount is the total number of messages ever appended, including
	// those folded into the summary.
	TurnCount int `json:"turn_count"`
}

// Options tunes a Store.
type Options struct {
	// SummarizeEvery folds history into the summary once the retained
	// message count exceeds it. Default 10 (five exchanges, matching the
	// paper's "after every five messages" per speaker).
	SummarizeEvery int
	// RetainMessages is how many recent messages stay verbatim after a
	// summarization pass. Default 4.
	RetainMessages int
	// SummaryBudget caps the summary length in tokens. Default 160.
	SummaryBudget int
	// MaxSessions bounds the store; the least recently updated session is
	// evicted at the cap. Default 256.
	MaxSessions int
	// Clock overrides time.Now in tests.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SummarizeEvery <= 0 {
		o.SummarizeEvery = 10
	}
	if o.RetainMessages <= 0 {
		o.RetainMessages = 4
	}
	if o.RetainMessages >= o.SummarizeEvery {
		o.RetainMessages = o.SummarizeEvery - 1
	}
	if o.SummaryBudget <= 0 {
		o.SummaryBudget = 160
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 256
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// ErrNotFound is returned for unknown session ids.
var ErrNotFound = errors.New("session: not found")

// Store holds sessions in memory. It is safe for concurrent use.
type Store struct {
	opts Options
	tok  *tokenizer.Tokenizer

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
}

// NewStore builds an empty store.
func NewStore(opts Options) *Store {
	return &Store{
		opts:     opts.withDefaults(),
		tok:      tokenizer.Default(),
		sessions: make(map[string]*Session),
	}
}

// Create opens a new session and returns its snapshot.
func (s *Store) Create(title string) Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	now := s.opts.Clock()
	sess := &Session{
		ID:      fmt.Sprintf("s%06d", s.nextID),
		Title:   strings.TrimSpace(title),
		Created: now,
		Updated: now,
	}
	s.evictLocked()
	s.sessions[sess.ID] = sess
	return snapshot(sess)
}

// evictLocked removes the least recently updated session when at cap.
func (s *Store) evictLocked() {
	if len(s.sessions) < s.opts.MaxSessions {
		return
	}
	var oldest *Session
	for _, sess := range s.sessions {
		if oldest == nil || sess.Updated.Before(oldest.Updated) {
			oldest = sess
		}
	}
	if oldest != nil {
		delete(s.sessions, oldest.ID)
	}
}

// Get returns a session snapshot.
func (s *Store) Get(id string) (Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return Session{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return snapshot(sess), nil
}

// List returns snapshots of all sessions, most recently updated first.
func (s *Store) List() []Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, snapshot(sess))
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Updated.Equal(out[j].Updated) {
			return out[i].Updated.After(out[j].Updated)
		}
		return out[i].ID > out[j].ID
	})
	return out
}

// Delete removes a session.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.sessions, id)
	return nil
}

// Clear removes every session, mirroring the UI's "clear history".
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = make(map[string]*Session)
}

// Len returns the number of stored sessions.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Append adds a message to a session, running a summarization pass when
// the retained history grows past the configured threshold. It returns
// the updated snapshot.
func (s *Store) Append(id string, msg Message) (Session, error) {
	if strings.TrimSpace(msg.Content) == "" {
		return Session{}, errors.New("session: empty message content")
	}
	if msg.Role != RoleUser && msg.Role != RoleAssistant {
		return Session{}, fmt.Errorf("session: invalid role %q", msg.Role)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return Session{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	now := s.opts.Clock()
	msg.Time = now
	sess.Messages = append(sess.Messages, msg)
	sess.TurnCount++
	sess.Updated = now
	if sess.Title == "" && msg.Role == RoleUser {
		sess.Title = truncateTitle(msg.Content)
	}
	if len(sess.Messages) > s.opts.SummarizeEvery {
		s.summarizeLocked(sess)
	}
	return snapshot(sess), nil
}

// summarizeLocked folds everything but the newest RetainMessages turns
// into the session summary. The previous summary participates in the
// pass, which is what makes the scheme hierarchical.
func (s *Store) summarizeLocked(sess *Session) {
	cut := len(sess.Messages) - s.opts.RetainMessages
	expired := sess.Messages[:cut]
	sess.Messages = append([]Message(nil), sess.Messages[cut:]...)

	var material []string
	if sess.Summary != "" {
		material = append(material, sess.Summary)
	}
	for _, m := range expired {
		material = append(material, fmt.Sprintf("%s: %s", m.Role, m.Content))
	}
	sess.Summary = Summarize(strings.Join(material, "\n"), s.opts.SummaryBudget, s.tok)
}

// Context assembles the prompt context for the next model call: the
// summary of expired turns plus the retained messages, bounded by
// maxTokens (0 means no bound). The newest turns are kept preferentially.
func (s *Store) Context(id string, maxTokens int) (summary string, recent []Message, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return "", nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	summary = sess.Summary
	recent = append([]Message(nil), sess.Messages...)
	if maxTokens <= 0 {
		return summary, recent, nil
	}
	budget := maxTokens - s.tok.Count(summary)
	// Walk backwards keeping the newest messages that fit.
	keepFrom := len(recent)
	for i := len(recent) - 1; i >= 0; i-- {
		n := s.tok.Count(recent[i].Content)
		if n > budget {
			break
		}
		budget -= n
		keepFrom = i
	}
	return summary, recent[keepFrom:], nil
}

// State is the store's persistable form: every session plus the id
// counter, so restored stores never reissue a live id.
type State struct {
	Sessions []Session `json:"sessions"`
	NextID   int       `json:"next_id"`
}

// Snapshot captures the whole store for persistence. The paper's
// privacy posture keeps sessions in memory by default; the server only
// persists them when the operator opts into a data directory.
func (s *Store) Snapshot() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{NextID: s.nextID}
	for _, sess := range s.sessions {
		st.Sessions = append(st.Sessions, snapshot(sess))
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}

// Restore loads a snapshot into the store, replacing nothing: sessions
// already present (by id) win, and the id counter only moves forward.
func (s *Store) Restore(st State) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.NextID > s.nextID {
		s.nextID = st.NextID
	}
	restored := 0
	for i := range st.Sessions {
		sess := st.Sessions[i]
		if sess.ID == "" {
			continue
		}
		if _, exists := s.sessions[sess.ID]; exists {
			continue
		}
		if len(s.sessions) >= s.opts.MaxSessions {
			break
		}
		cp := sess
		cp.Messages = append([]Message(nil), sess.Messages...)
		s.sessions[cp.ID] = &cp
		restored++
	}
	return restored
}

func snapshot(sess *Session) Session {
	cp := *sess
	cp.Messages = append([]Message(nil), sess.Messages...)
	return cp
}

func truncateTitle(content string) string {
	content = strings.TrimSpace(content)
	const max = 48
	if len(content) <= max {
		return content
	}
	cut := strings.LastIndex(content[:max], " ")
	if cut < max/2 {
		cut = max
	}
	return content[:cut] + "…"
}
