package session_test

import (
	"fmt"

	"llmms/internal/session"
)

// Example shows session continuity with hierarchical summarization: a
// long conversation stays within context bounds because expired turns
// fold into an extractive summary.
func Example() {
	store := session.NewStore(session.Options{SummarizeEvery: 4, RetainMessages: 2})
	sess := store.Create("demo")
	turns := []string{
		"The server has a Tesla V100 GPU for inference workloads.",
		"Noted, the V100 has thirty two gigabytes of memory.",
		"The CPU is an Intel Xeon Gold with forty virtual cores.",
		"Understood, preprocessing runs on the Xeon cores.",
		"Token budgets are allocated by the OUA and MAB strategies.",
	}
	for i, content := range turns {
		role := session.RoleUser
		if i%2 == 1 {
			role = session.RoleAssistant
		}
		if _, err := store.Append(sess.ID, session.Message{Role: role, Content: content}); err != nil {
			panic(err)
		}
	}
	snap, _ := store.Get(sess.ID)
	fmt.Println("summarized:", snap.Summary != "")
	fmt.Println("retained bounded:", len(snap.Messages) <= 4)
	fmt.Println("turns counted:", snap.TurnCount == len(turns))
	// Output:
	// summarized: true
	// retained bounded: true
	// turns counted: true
}

// ExampleMemoryGraph shows contextual recall across sessions: an
// exchange that never mentions the query's words is still found through
// a graph edge to one that does.
func ExampleMemoryGraph() {
	g := session.NewMemoryGraph(session.MemoryGraphOptions{EdgeThreshold: 0.3})
	g.Add(session.Exchange{SessionID: "s1",
		Question: "What GPU accelerator does the inference server have installed?",
		Answer:   "A Tesla V100."})
	g.Add(session.Exchange{SessionID: "s1",
		Question: "Does the inference server have fast storage installed?",
		Answer:   "Yes, an NVMe drive."})
	hits := g.Recall("Which GPU accelerator is installed?", 2)
	fmt.Println("recalled:", len(hits) == 2)
	// Output:
	// recalled: true
}
