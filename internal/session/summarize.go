package session

import (
	"sort"
	"strings"

	"llmms/internal/embedding"
	"llmms/internal/tokenizer"
)

// Summarize produces an extractive summary of text within a token
// budget. Sentences are scored by cosine similarity of their embedding to
// the centroid of all sentence embeddings (centrality), discounted for
// redundancy against already-selected sentences (a maximal-marginal-
// relevance pass), and emitted in original order so the summary reads
// chronologically.
//
// The paper summarizes with an LLM; an extractive summarizer is the
// deterministic equivalent: it preserves the load-bearing sentences the
// downstream models' context needs, which is the property the session
// layer depends on.
func Summarize(text string, maxTokens int, tok *tokenizer.Tokenizer) string {
	if tok == nil {
		tok = tokenizer.Default()
	}
	if maxTokens <= 0 {
		maxTokens = 160
	}
	sentences := splitSummaryUnits(text)
	if len(sentences) == 0 {
		return ""
	}
	if tok.Count(text) <= maxTokens {
		return strings.TrimSpace(text)
	}

	enc := embedding.Default()
	vecs := make([]embedding.Vector, len(sentences))
	for i, s := range sentences {
		vecs[i] = enc.Encode(s)
	}
	centroid := embedding.Centroid(vecs)

	type scored struct {
		idx        int
		centrality float64
	}
	ranked := make([]scored, len(sentences))
	for i := range sentences {
		ranked[i] = scored{idx: i, centrality: embedding.Cosine(vecs[i], centroid)}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].centrality > ranked[j].centrality })

	// Greedy MMR selection under the token budget.
	const redundancyPenalty = 0.7
	var selected []int
	budget := maxTokens
	for _, cand := range ranked {
		cost := tok.Count(sentences[cand.idx])
		if cost > budget {
			continue
		}
		// Skip near-duplicates of already selected sentences.
		dup := false
		for _, sel := range selected {
			if embedding.Cosine(vecs[cand.idx], vecs[sel]) > redundancyPenalty {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		selected = append(selected, cand.idx)
		budget -= cost
		if budget <= 0 {
			break
		}
	}
	if len(selected) == 0 {
		// Every sentence is over budget; hard-truncate the most central
		// one so the summary is never empty.
		best := sentences[ranked[0].idx]
		toks := tok.Encode(best)
		if len(toks) > maxTokens {
			toks = toks[:maxTokens]
		}
		return strings.TrimSpace(tok.Decode(toks))
	}
	sort.Ints(selected)
	parts := make([]string, len(selected))
	for i, idx := range selected {
		parts[i] = sentences[idx]
	}
	return strings.Join(parts, " ")
}

// splitSummaryUnits breaks conversation text into summarizable units:
// lines are the primary boundary (each turn is one line in the store's
// material), and long lines split further on sentence punctuation.
func splitSummaryUnits(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var cur strings.Builder
		for _, r := range line {
			cur.WriteRune(r)
			if r == '.' || r == '!' || r == '?' {
				if s := strings.TrimSpace(cur.String()); s != "" {
					out = append(out, s)
				}
				cur.Reset()
			}
		}
		if s := strings.TrimSpace(cur.String()); s != "" {
			out = append(out, s)
		}
	}
	return out
}
