package bench

import (
	"context"
	"fmt"
	"strings"

	"llmms/internal/core"
)

// AblationParam names a tunable the ablation harness sweeps.
type AblationParam string

// The ablatable parameters — the design choices DESIGN.md's calibration
// notes call out.
const (
	// AblatePruneMargin sweeps OUA's pruning threshold (paper pseudocode
	// uses 0.5; the repository default is 0.08).
	AblatePruneMargin AblationParam = "prune_margin"
	// AblateLeadMargin sweeps OUA's early-exit threshold.
	AblateLeadMargin AblationParam = "lead_margin"
	// AblateRounds sweeps how many chunks OUA splits each allowance into.
	AblateRounds AblationParam = "rounds"
	// AblateMABChunk sweeps the tokens granted per bandit pull.
	AblateMABChunk AblationParam = "mab_chunk"
	// AblateAlpha sweeps the query-similarity weight with β = 1 − α,
	// trading relevance against consensus in the score.
	AblateAlpha AblationParam = "alpha"
	// AblateGamma sweeps MAB's initial exploration coefficient γ₀
	// (Algorithm 2 decays it as γ = γ₀·(1 − used/λ_max); the paper fixes
	// γ₀ = 0.3).
	AblateGamma AblationParam = "gamma"
	// AblateBudget sweeps λ_max.
	AblateBudget AblationParam = "max_tokens"
)

// AblationParams lists every supported parameter.
func AblationParams() []AblationParam {
	return []AblationParam{
		AblatePruneMargin, AblateLeadMargin, AblateRounds,
		AblateMABChunk, AblateAlpha, AblateGamma, AblateBudget,
	}
}

// ParseAblationParam resolves a user-supplied parameter name.
func ParseAblationParam(s string) (AblationParam, error) {
	for _, p := range AblationParams() {
		if string(p) == s {
			return p, nil
		}
	}
	return "", fmt.Errorf("bench: unknown ablation parameter %q", s)
}

// DefaultAblationValues returns a sensible sweep for each parameter.
func DefaultAblationValues(p AblationParam) []float64 {
	switch p {
	case AblatePruneMargin, AblateLeadMargin:
		return []float64{0.02, 0.05, 0.08, 0.15, 0.30, 0.50}
	case AblateRounds:
		return []float64{1, 2, 4, 8}
	case AblateMABChunk:
		return []float64{4, 8, 16, 32, 64}
	case AblateAlpha:
		return []float64{0.3, 0.5, 0.7, 0.9, 1.0}
	case AblateGamma:
		// The lower bound is near-zero rather than zero: core's config
		// defaulting treats γ₀ ≤ 0 as "use the paper's 0.3".
		return []float64{0.01, 0.1, 0.3, 0.6, 1.0}
	case AblateBudget:
		return []float64{64, 96, 128, 192, 256, 512}
	}
	return nil
}

// AblationPoint is the evaluation at one parameter value.
type AblationPoint struct {
	// Value is the swept parameter's setting.
	Value float64 `json:"value"`
	// Results are the per-system aggregates at this setting.
	Results []SystemResult `json:"results"`
}

// Ablation is a full parameter sweep.
type Ablation struct {
	// Param is the swept parameter.
	Param AblationParam `json:"param"`
	// Points are the evaluations, in the order the values were given.
	Points []AblationPoint `json:"points"`
}

// RunAblation evaluates the systems across a parameter sweep. The base
// config supplies everything that is not swept. For parameters that only
// affect orchestration (margins, rounds, chunk, α) the single-model
// baselines are evaluated once and reused across points; the budget sweep
// re-evaluates everything.
func RunAblation(ctx context.Context, backend core.Backend, base Config, param AblationParam, values []float64) (Ablation, error) {
	if len(values) == 0 {
		values = DefaultAblationValues(param)
	}
	if len(values) == 0 {
		return Ablation{}, fmt.Errorf("bench: no values for parameter %q", param)
	}
	orchestrationOnly := param != AblateBudget

	var singles []SystemResult
	if orchestrationOnly {
		cfg := base
		cfg.Systems = singleSystems(base)
		rep, err := Run(ctx, backend, cfg)
		if err != nil {
			return Ablation{}, err
		}
		singles = rep.Results
	}

	ab := Ablation{Param: param}
	for _, v := range values {
		cfg, err := applyAblation(base, param, v)
		if err != nil {
			return Ablation{}, err
		}
		if orchestrationOnly {
			cfg.Systems = orchestratedSystems(base)
		}
		rep, err := Run(ctx, backend, cfg)
		if err != nil {
			return Ablation{}, fmt.Errorf("bench: %s=%v: %w", param, v, err)
		}
		results := rep.Results
		if orchestrationOnly {
			results = append(append([]SystemResult(nil), singles...), results...)
		}
		ab.Points = append(ab.Points, AblationPoint{Value: v, Results: results})
	}
	return ab, nil
}

func singleSystems(base Config) []System {
	all := base.Systems
	if len(all) == 0 {
		all = Systems()
	}
	var out []System
	for _, s := range all {
		if s.Strategy == core.StrategySingle {
			out = append(out, s)
		}
	}
	return out
}

func orchestratedSystems(base Config) []System {
	all := base.Systems
	if len(all) == 0 {
		all = Systems()
	}
	var out []System
	for _, s := range all {
		if s.Strategy != core.StrategySingle {
			out = append(out, s)
		}
	}
	return out
}

// applyAblation sets one swept parameter on a copy of the base config.
func applyAblation(base Config, param AblationParam, v float64) (Config, error) {
	cfg := base
	switch param {
	case AblatePruneMargin:
		cfg.PruneMargin = v
	case AblateLeadMargin:
		cfg.LeadMargin = v
	case AblateRounds:
		cfg.Rounds = int(v)
	case AblateMABChunk:
		cfg.MABChunk = int(v)
	case AblateAlpha:
		if v < 0 || v > 1 {
			return Config{}, fmt.Errorf("bench: alpha %v outside [0,1]", v)
		}
		cfg.Alpha = v
		cfg.Beta = 1 - v
	case AblateGamma:
		if v <= 0 {
			return Config{}, fmt.Errorf("bench: gamma %v must be positive", v)
		}
		cfg.Gamma0 = v
	case AblateBudget:
		cfg.MaxTokens = int(v)
	default:
		return Config{}, fmt.Errorf("bench: unknown ablation parameter %q", param)
	}
	return cfg, nil
}

// Render formats the sweep as one table per metric (reward, F1,
// reward-per-token), systems as columns and swept values as rows.
func (a Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation of %s\n", a.Param)
	if len(a.Points) == 0 {
		return b.String()
	}
	metrics := []struct {
		name string
		get  func(SystemResult) float64
	}{
		{"avg reward", func(r SystemResult) float64 { return r.AvgReward }},
		{"avg F1", func(r SystemResult) float64 { return r.AvgF1 }},
		{"reward/token", func(r SystemResult) float64 { return r.RewardPerToken }},
		{"total cost (tokens)", func(r SystemResult) float64 { return r.AvgTotalTokens }},
	}
	systems := a.Points[0].Results
	for _, m := range metrics {
		fmt.Fprintf(&b, "\n%s:\n%-10s", m.name, string(a.Param))
		for _, s := range systems {
			fmt.Fprintf(&b, " %12s", s.System)
		}
		b.WriteString("\n")
		for _, pt := range a.Points {
			fmt.Fprintf(&b, "%-10.3g", pt.Value)
			for _, s := range pt.Results {
				fmt.Fprintf(&b, " %12.4f", m.get(s))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Result returns the aggregate for one system at one point index.
func (a Ablation) Result(point int, system string) (SystemResult, bool) {
	if point < 0 || point >= len(a.Points) {
		return SystemResult{}, false
	}
	for _, r := range a.Points[point].Results {
		if r.System == system {
			return r, true
		}
	}
	return SystemResult{}, false
}
