// Package bench is the LLM-MS experiment harness. It reruns the paper's
// evaluation (Chapter 8): every TruthfulQA question is answered by each
// of the five systems — the three single-model baselines (LLaMA-3-8B,
// Mistral-7B, Qwen-2-7B) and the two orchestration strategies (LLM-MS
// OUA, LLM-MS MAB) — and the reward (Eq. 8.1), token-overlap F1,
// truthfulness accuracy, and token usage are aggregated per system.
//
// The three reported figures map onto the aggregates as:
//
//	Figure 8.1  average reward per model            → SystemResult.AvgReward
//	Figure 8.2  average F1 score per model          → SystemResult.AvgF1
//	Figure 8.3  average reward-to-tokens ratio      → SystemResult.RewardPerToken
//
// Render emits the figures as aligned text tables; CSV emits
// machine-readable rows for plotting.
package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"llmms/internal/core"
	"llmms/internal/embedding"
	"llmms/internal/llm"
	"llmms/internal/metrics"
	"llmms/internal/truthfulqa"
)

// System is one evaluated configuration.
type System struct {
	// Name is the display label used in figures.
	Name string
	// Strategy selects the orchestration policy.
	Strategy core.Strategy
	// Model is the serving model for StrategySingle (ignored otherwise).
	Model string
}

// Systems returns the paper's five evaluated systems (§8.1 "Execution
// Modes Compared"), single-model baselines first.
func Systems() []System {
	return []System{
		{Name: "LLaMA-3-8B", Strategy: core.StrategySingle, Model: llm.ModelLlama3},
		{Name: "Mistral-7B", Strategy: core.StrategySingle, Model: llm.ModelMistral},
		{Name: "Qwen-2-7B", Strategy: core.StrategySingle, Model: llm.ModelQwen2},
		{Name: "LLM-MS OUA", Strategy: core.StrategyOUA},
		{Name: "LLM-MS MAB", Strategy: core.StrategyMAB},
	}
}

// Config parameterizes a harness run.
type Config struct {
	// Dataset is the question set. Required.
	Dataset truthfulqa.Dataset
	// Systems defaults to Systems().
	Systems []System
	// Models are the candidate models for the orchestrated systems;
	// default is the paper's three.
	Models []string
	// MaxTokens is λ_max per query. Default 2048 (§6.3).
	MaxTokens int
	// Orchestrator overrides beyond the defaults (margins, chunk sizes,
	// scoring weights); zero fields keep core.DefaultConfig values.
	PruneMargin float64
	LeadMargin  float64
	Rounds      int
	MABChunk    int
	Alpha       float64
	Beta        float64
	Gamma0      float64
	// Concurrency is the number of queries evaluated in parallel.
	// Default 8.
	Concurrency int
	// Weights are the reward coefficients; zero value means the paper's
	// w1=1, w2=0.5, w3=0.5.
	Weights metrics.RewardWeights
	// Encoder scores responses; nil means embedding.Default().
	Encoder embedding.Encoder
	// Progress, when non-nil, receives (completed, total) after each
	// query so CLIs can show progress.
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if len(c.Systems) == 0 {
		c.Systems = Systems()
	}
	if len(c.Models) == 0 {
		c.Models = []string{llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2}
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 2048
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Encoder == nil {
		c.Encoder = embedding.Default()
	}
	return c
}

// QueryRecord is the raw measurement of one (system, question) cell.
type QueryRecord struct {
	// System is the display label.
	System string `json:"system"`
	// Question indexes into the dataset.
	Question int `json:"question"`
	// Category is the question's TruthfulQA category.
	Category string `json:"category"`
	// Answer is the selected response.
	Answer string `json:"answer"`
	// WinnerModel is which model produced the selected answer.
	WinnerModel string `json:"winner_model"`
	// Reward is Eq. 8.1 of the selected answer.
	Reward float64 `json:"reward"`
	// F1 is the token-overlap F1 against the correct references.
	F1 float64 `json:"f1"`
	// Truthful is the automatic accuracy judgment.
	Truthful bool `json:"truthful"`
	// AnswerTokens is the paper's token-usage metric (§8.2): the number
	// of tokens in the final selected answer.
	AnswerTokens int `json:"answer_tokens"`
	// TotalTokens is the full generation cost across all models
	// consulted, including pruned partial outputs.
	TotalTokens int `json:"total_tokens"`
	// RewardPerToken is Reward/AnswerTokens (0 when AnswerTokens is 0),
	// the per-query quantity behind Figure 8.3.
	RewardPerToken float64 `json:"reward_per_token"`
}

// SystemResult aggregates one system over the whole dataset.
type SystemResult struct {
	System string `json:"system"`
	// Queries is how many questions the aggregate covers.
	Queries int `json:"queries"`
	// AvgReward is Figure 8.1's bar for this system.
	AvgReward float64 `json:"avg_reward"`
	// AvgF1 is Figure 8.2's bar.
	AvgF1 float64 `json:"avg_f1"`
	// RewardPerToken is Figure 8.3's bar: mean of per-query ratios.
	RewardPerToken float64 `json:"reward_per_token"`
	// Accuracy is the fraction of truthful answers.
	Accuracy float64 `json:"accuracy"`
	// AvgAnswerTokens is the mean final-answer length (the paper's token
	// usage metric).
	AvgAnswerTokens float64 `json:"avg_answer_tokens"`
	// AvgTotalTokens is the mean generation cost across all models.
	AvgTotalTokens float64 `json:"avg_total_tokens"`
	// RewardStdDev is the standard deviation of per-query rewards.
	RewardStdDev float64 `json:"reward_stddev"`
}

// Report is the complete harness output.
type Report struct {
	// Results holds one aggregate per system, in Config.Systems order.
	Results []SystemResult `json:"results"`
	// Records are the raw per-query measurements.
	Records []QueryRecord `json:"records"`
	// Questions is the dataset size.
	Questions int `json:"questions"`
	// MaxTokens echoes λ_max.
	MaxTokens int `json:"max_tokens"`
	// Elapsed is the wall-clock harness duration.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Result returns one system's aggregate by display name.
func (r Report) Result(system string) (SystemResult, bool) {
	for _, res := range r.Results {
		if res.System == system {
			return res, true
		}
	}
	return SystemResult{}, false
}

// Run executes the full evaluation against a backend. The backend is
// typically the in-process llm.Engine; any core.Backend works, so the
// harness can also drive a remote modeld daemon.
func Run(ctx context.Context, backend core.Backend, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Dataset) == 0 {
		return Report{}, errors.New("bench: empty dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return Report{}, fmt.Errorf("bench: %w", err)
	}
	start := time.Now()
	scorer := metrics.NewScorer(cfg.Encoder, cfg.Weights)

	orchestrators := make(map[string]*core.Orchestrator, len(cfg.Systems))
	for _, sys := range cfg.Systems {
		oc, err := orchestratorFor(backend, cfg, sys)
		if err != nil {
			return Report{}, err
		}
		orchestrators[sys.Name] = oc
	}

	type cell struct {
		sys int
		q   int
	}
	cells := make([]cell, 0, len(cfg.Systems)*len(cfg.Dataset))
	for si := range cfg.Systems {
		for qi := range cfg.Dataset {
			cells = append(cells, cell{sys: si, q: qi})
		}
	}
	records := make([]QueryRecord, len(cells))

	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, cfg.Concurrency)
		mu   sync.Mutex
		done int
		errs []error
	)
	for i, c := range cells {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c cell) {
			defer wg.Done()
			defer func() { <-sem }()
			sys := cfg.Systems[c.sys]
			item := cfg.Dataset[c.q]
			rec, err := runQuery(ctx, orchestrators[sys.Name], scorer, sys, item, c.q)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			records[i] = rec
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, len(cells))
			}
		}(i, c)
	}
	wg.Wait()
	if len(errs) > 0 {
		return Report{}, fmt.Errorf("bench: %d queries failed, first: %w", len(errs), errs[0])
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	report := Report{
		Records:   records,
		Questions: len(cfg.Dataset),
		MaxTokens: cfg.MaxTokens,
		Elapsed:   time.Since(start),
	}
	for _, sys := range cfg.Systems {
		report.Results = append(report.Results, aggregate(sys.Name, records))
	}
	return report, nil
}

// orchestratorFor builds the per-system orchestrator. Single-model
// systems get a one-model configuration so the baseline never consults
// other models.
func orchestratorFor(backend core.Backend, cfg Config, sys System) (*core.Orchestrator, error) {
	var oc core.Config
	if sys.Strategy == core.StrategySingle {
		if sys.Model == "" {
			return nil, fmt.Errorf("bench: system %q needs a model", sys.Name)
		}
		oc = core.DefaultConfig(sys.Model)
	} else {
		oc = core.DefaultConfig(cfg.Models...)
	}
	oc.MaxTokens = cfg.MaxTokens
	oc.Encoder = cfg.Encoder
	if cfg.PruneMargin > 0 {
		oc.PruneMargin = cfg.PruneMargin
	}
	if cfg.LeadMargin > 0 {
		oc.LeadMargin = cfg.LeadMargin
	}
	if cfg.Rounds > 0 {
		oc.Rounds = cfg.Rounds
	}
	if cfg.MABChunk > 0 {
		oc.MABChunk = cfg.MABChunk
	}
	if cfg.Alpha > 0 || cfg.Beta > 0 {
		oc.Alpha = cfg.Alpha
		oc.Beta = cfg.Beta
	}
	if cfg.Gamma0 > 0 {
		oc.Gamma0 = cfg.Gamma0
	}
	return core.New(backend, oc)
}

func runQuery(ctx context.Context, oc *core.Orchestrator, scorer *metrics.Scorer, sys System, item truthfulqa.Item, qi int) (QueryRecord, error) {
	res, err := oc.Run(ctx, sys.Strategy, item.Question)
	if err != nil {
		return QueryRecord{}, fmt.Errorf("%s q%d: %w", sys.Name, qi, err)
	}
	reward := scorer.Reward(res.Answer, item)
	answerTokens := 0
	if out, ok := res.Outcome(res.Model); ok {
		answerTokens = out.Tokens
	}
	rec := QueryRecord{
		System:       sys.Name,
		Question:     qi,
		Category:     item.Category,
		Answer:       res.Answer,
		WinnerModel:  res.Model,
		Reward:       reward,
		F1:           metrics.F1(res.Answer, item),
		Truthful:     scorer.Truthful(res.Answer, item),
		AnswerTokens: answerTokens,
		TotalTokens:  res.TokensUsed,
	}
	if answerTokens > 0 {
		rec.RewardPerToken = reward / float64(answerTokens)
	}
	return rec, nil
}

// aggregate folds one system's records into its SystemResult.
func aggregate(system string, records []QueryRecord) SystemResult {
	var rewards, f1s, ratios, answerTokens, totalTokens []float64
	truthful := 0
	n := 0
	for _, r := range records {
		if r.System != system {
			continue
		}
		n++
		rewards = append(rewards, r.Reward)
		f1s = append(f1s, r.F1)
		ratios = append(ratios, r.RewardPerToken)
		answerTokens = append(answerTokens, float64(r.AnswerTokens))
		totalTokens = append(totalTokens, float64(r.TotalTokens))
		if r.Truthful {
			truthful++
		}
	}
	if n == 0 {
		return SystemResult{System: system}
	}
	rs := metrics.Summarize(rewards)
	return SystemResult{
		System:          system,
		Queries:         n,
		AvgReward:       rs.Mean,
		AvgF1:           metrics.Summarize(f1s).Mean,
		RewardPerToken:  metrics.Summarize(ratios).Mean,
		Accuracy:        float64(truthful) / float64(n),
		AvgAnswerTokens: metrics.Summarize(answerTokens).Mean,
		AvgTotalTokens:  metrics.Summarize(totalTokens).Mean,
		RewardStdDev:    rs.StdDev,
	}
}

// CategoryBreakdown aggregates one system per question category — the
// per-domain view the paper's analysis (§8.4) discusses qualitatively.
func (r Report) CategoryBreakdown(system string) []SystemResult {
	byCat := make(map[string][]QueryRecord)
	for _, rec := range r.Records {
		if rec.System == system {
			byCat[rec.Category] = append(byCat[rec.Category], rec)
		}
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	out := make([]SystemResult, 0, len(cats))
	for _, c := range cats {
		agg := aggregate(system, byCat[c])
		agg.System = c // reuse the struct; System carries the category
		out = append(out, agg)
	}
	return out
}

// WinnerShare returns, for an orchestrated system, the fraction of
// queries each underlying model won — the allocation transparency the
// paper's UI overlay exposes.
func (r Report) WinnerShare(system string) map[string]float64 {
	counts := make(map[string]int)
	total := 0
	for _, rec := range r.Records {
		if rec.System != system {
			continue
		}
		counts[rec.WinnerModel]++
		total++
	}
	out := make(map[string]float64, len(counts))
	if total == 0 {
		return out
	}
	for m, c := range counts {
		out[m] = float64(c) / float64(total)
	}
	return out
}

// Figure identifies one of the paper's evaluation figures.
type Figure string

// The paper's three evaluation figures.
const (
	Figure81Reward Figure = "8.1"
	Figure82F1     Figure = "8.2"
	Figure83Ratio  Figure = "8.3"
)

// FigureTitle returns the paper's caption for a figure.
func FigureTitle(f Figure) string {
	switch f {
	case Figure81Reward:
		return "Figure 8.1: Average reward per model over the TruthfulQA dataset"
	case Figure82F1:
		return "Figure 8.2: Average F1 score per model"
	case Figure83Ratio:
		return "Figure 8.3: Average reward-to-tokens ratio per model"
	}
	return string(f)
}

// FigureValue extracts the figure's metric from a system aggregate.
func FigureValue(f Figure, res SystemResult) float64 {
	switch f {
	case Figure81Reward:
		return res.AvgReward
	case Figure82F1:
		return res.AvgF1
	case Figure83Ratio:
		return res.RewardPerToken
	}
	return 0
}

// Render formats one figure as an aligned text table with a bar chart
// column, ready to print.
func (r Report) Render(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", FigureTitle(f))
	fmt.Fprintf(&b, "(%d questions, λ_max = %d tokens)\n\n", r.Questions, r.MaxTokens)

	maxVal := 0.0
	for _, res := range r.Results {
		if v := FigureValue(f, res); v > maxVal {
			maxVal = v
		}
	}
	const barWidth = 36
	fmt.Fprintf(&b, "%-14s %10s  %s\n", "System", "Value", "")
	for _, res := range r.Results {
		v := FigureValue(f, res)
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * barWidth)
		}
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "%-14s %10.4f  %s\n", res.System, v, strings.Repeat("█", bar))
	}
	return b.String()
}

// RenderAll renders the three figures plus the summary table.
func (r Report) RenderAll() string {
	var b strings.Builder
	for _, f := range []Figure{Figure81Reward, Figure82F1, Figure83Ratio} {
		b.WriteString(r.Render(f))
		b.WriteString("\n")
	}
	b.WriteString(r.RenderSummary())
	return b.String()
}

// RenderSummary prints every aggregate column for every system.
func (r Report) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Summary (%d questions, λ_max = %d, wall clock %s)\n\n",
		r.Questions, r.MaxTokens, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-14s %8s %8s %10s %9s %8s %8s\n",
		"System", "Reward", "F1", "Rwd/Tok", "Accuracy", "AnsTok", "CostTok")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-14s %8.4f %8.4f %10.6f %8.1f%% %8.1f %8.1f\n",
			res.System, res.AvgReward, res.AvgF1, res.RewardPerToken,
			res.Accuracy*100, res.AvgAnswerTokens, res.AvgTotalTokens)
	}
	return b.String()
}

// CSV emits one row per system with the three figure metrics plus
// accuracy and token columns; the header names match the JSON fields.
func (r Report) CSV() string {
	var b strings.Builder
	b.WriteString("system,queries,avg_reward,avg_f1,reward_per_token,accuracy,avg_answer_tokens,avg_total_tokens\n")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%s,%d,%.6f,%.6f,%.8f,%.4f,%.2f,%.2f\n",
			res.System, res.Queries, res.AvgReward, res.AvgF1,
			res.RewardPerToken, res.Accuracy, res.AvgAnswerTokens, res.AvgTotalTokens)
	}
	return b.String()
}
