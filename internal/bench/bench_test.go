package bench

import (
	"context"
	"strings"
	"testing"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// evalBudget is the scaled λ_max used by tests (see DESIGN.md: simulated
// answers are ~5–15× shorter than real model outputs, so the paper's
// λ_max = 2048 scales to 128 here).
const evalBudget = 128

func testEngine(ds truthfulqa.Dataset) *llm.Engine {
	return llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(ds)})
}

func runReport(t *testing.T, n int) Report {
	t.Helper()
	ds := truthfulqa.Generate(n, 1)
	rep, err := Run(context.Background(), testEngine(ds), Config{Dataset: ds, MaxTokens: evalBudget})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunValidation(t *testing.T) {
	engine := testEngine(truthfulqa.Seed())
	if _, err := Run(context.Background(), engine, Config{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	bad := truthfulqa.Dataset{{Question: "q?"}} // no answers
	if _, err := Run(context.Background(), engine, Config{Dataset: bad}); err == nil {
		t.Fatal("expected error for invalid dataset")
	}
	missing := System{Name: "broken", Strategy: core.StrategySingle}
	if _, err := Run(context.Background(), engine, Config{
		Dataset: truthfulqa.Seed().Head(2), Systems: []System{missing},
	}); err == nil {
		t.Fatal("expected error for single system without a model")
	}
}

func TestRunProducesAllCells(t *testing.T) {
	rep := runReport(t, 20)
	if rep.Questions != 20 {
		t.Fatalf("questions = %d", rep.Questions)
	}
	if want := 5 * 20; len(rep.Records) != want {
		t.Fatalf("records = %d, want %d", len(rep.Records), want)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("results = %d, want 5", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Queries != 20 {
			t.Fatalf("%s covers %d queries", res.System, res.Queries)
		}
		if res.AvgAnswerTokens <= 0 || res.AvgTotalTokens < res.AvgAnswerTokens {
			t.Fatalf("%s token aggregates: %+v", res.System, res)
		}
	}
	for _, rec := range rep.Records {
		if rec.Answer == "" || rec.AnswerTokens == 0 {
			t.Fatalf("empty record: %+v", rec)
		}
		if rec.TotalTokens < rec.AnswerTokens {
			t.Fatalf("total < answer tokens: %+v", rec)
		}
		if rec.TotalTokens > evalBudget {
			t.Fatalf("budget exceeded: %+v", rec)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runReport(t, 15)
	b := runReport(t, 15)
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("run not deterministic:\n%+v\n%+v", a.Results[i], b.Results[i])
		}
	}
}

// TestFigureShapes asserts the paper's headline comparative claims on a
// benchmark-scale run: Figure 8.1 (MAB achieves the highest average
// reward), Figure 8.2 (OUA achieves the highest average F1), and Figure
// 8.3 (OUA achieves the best reward-to-tokens ratio) — with both
// orchestrators above every single-model baseline on all three.
func TestFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-dataset evaluation")
	}
	rep := runReport(t, 817)
	oua, _ := rep.Result("LLM-MS OUA")
	mab, _ := rep.Result("LLM-MS MAB")
	singles := []string{"LLaMA-3-8B", "Mistral-7B", "Qwen-2-7B"}

	// Figure 8.1: MAB > OUA > every single model on average reward.
	if mab.AvgReward <= oua.AvgReward {
		t.Errorf("fig 8.1: MAB reward %.4f <= OUA %.4f", mab.AvgReward, oua.AvgReward)
	}
	for _, s := range singles {
		r, _ := rep.Result(s)
		if oua.AvgReward <= r.AvgReward {
			t.Errorf("fig 8.1: OUA reward %.4f <= %s %.4f", oua.AvgReward, s, r.AvgReward)
		}
	}
	// Figure 8.2: OUA > MAB > every single model on average F1.
	if oua.AvgF1 <= mab.AvgF1 {
		t.Errorf("fig 8.2: OUA F1 %.4f <= MAB %.4f", oua.AvgF1, mab.AvgF1)
	}
	for _, s := range singles {
		r, _ := rep.Result(s)
		if mab.AvgF1 <= r.AvgF1 {
			t.Errorf("fig 8.2: MAB F1 %.4f <= %s %.4f", mab.AvgF1, s, r.AvgF1)
		}
	}
	// Figure 8.3: OUA has the best reward-to-tokens ratio.
	if oua.RewardPerToken <= mab.RewardPerToken {
		t.Errorf("fig 8.3: OUA ratio %.5f <= MAB %.5f", oua.RewardPerToken, mab.RewardPerToken)
	}
	for _, s := range singles {
		r, _ := rep.Result(s)
		if oua.RewardPerToken <= r.RewardPerToken {
			t.Errorf("fig 8.3: OUA ratio %.5f <= %s %.5f", oua.RewardPerToken, s, r.RewardPerToken)
		}
	}
	// Orchestration accuracy beats every single model except at most one
	// specialist (the paper's qualitative claim is reward/F1, not
	// accuracy dominance, so this is intentionally loose).
	if oua.Accuracy < 0.5 || mab.Accuracy < 0.5 {
		t.Errorf("orchestration accuracy collapsed: OUA %.3f MAB %.3f", oua.Accuracy, mab.Accuracy)
	}
}

func TestSystemsList(t *testing.T) {
	sys := Systems()
	if len(sys) != 5 {
		t.Fatalf("%d systems, want 5", len(sys))
	}
	singles, orchestrated := 0, 0
	for _, s := range sys {
		if s.Strategy == core.StrategySingle {
			singles++
			if s.Model == "" {
				t.Fatalf("single system %q without model", s.Name)
			}
		} else {
			orchestrated++
		}
	}
	if singles != 3 || orchestrated != 2 {
		t.Fatalf("singles=%d orchestrated=%d", singles, orchestrated)
	}
}

func TestWinnerShare(t *testing.T) {
	rep := runReport(t, 30)
	share := rep.WinnerShare("LLM-MS OUA")
	total := 0.0
	for _, f := range share {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("winner shares sum to %f", total)
	}
	if len(share) < 2 {
		t.Fatalf("orchestration never varied its winner: %v", share)
	}
	if s := rep.WinnerShare("no-such-system"); len(s) != 0 {
		t.Fatalf("unknown system share = %v", s)
	}
}

func TestCategoryBreakdown(t *testing.T) {
	rep := runReport(t, 40)
	cats := rep.CategoryBreakdown("LLM-MS OUA")
	if len(cats) < 3 {
		t.Fatalf("only %d categories", len(cats))
	}
	seen := map[string]bool{}
	totalQ := 0
	for _, c := range cats {
		if seen[c.System] {
			t.Fatalf("duplicate category %q", c.System)
		}
		seen[c.System] = true
		totalQ += c.Queries
	}
	if totalQ != 40 {
		t.Fatalf("breakdown covers %d queries, want 40", totalQ)
	}
}

func TestRenderAndCSV(t *testing.T) {
	rep := runReport(t, 10)
	for _, f := range []Figure{Figure81Reward, Figure82F1, Figure83Ratio} {
		out := rep.Render(f)
		if !strings.Contains(out, "Figure "+string(f)) {
			t.Fatalf("missing title in:\n%s", out)
		}
		for _, sys := range []string{"LLaMA-3-8B", "LLM-MS OUA", "LLM-MS MAB"} {
			if !strings.Contains(out, sys) {
				t.Fatalf("figure %s missing %s:\n%s", f, sys, out)
			}
		}
	}
	all := rep.RenderAll()
	for _, f := range []Figure{Figure81Reward, Figure82F1, Figure83Ratio} {
		if !strings.Contains(all, FigureTitle(f)) {
			t.Fatalf("RenderAll missing figure %s", f)
		}
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 6 { // header + 5 systems
		t.Fatalf("csv has %d lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "system,queries,avg_reward") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestRunCanceled(t *testing.T) {
	ds := truthfulqa.Seed().Head(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testEngine(ds), Config{Dataset: ds}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestProgressCallback(t *testing.T) {
	ds := truthfulqa.Seed().Head(4)
	var calls int
	var lastDone, lastTotal int
	_, err := Run(context.Background(), testEngine(ds), Config{
		Dataset:     ds,
		MaxTokens:   evalBudget,
		Concurrency: 1,
		Progress: func(done, total int) {
			calls++
			lastDone, lastTotal = done, total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * 4
	if calls != want || lastDone != want || lastTotal != want {
		t.Fatalf("progress: calls=%d last=(%d/%d), want %d", calls, lastDone, lastTotal, want)
	}
}

func BenchmarkHarnessQuery(b *testing.B) {
	ds := truthfulqa.Generate(50, 1)
	engine := testEngine(ds)
	cfg := Config{Dataset: ds.Head(1), MaxTokens: evalBudget}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), engine, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
