package bench

import (
	"context"
	"strings"
	"testing"

	"llmms/internal/truthfulqa"
)

func TestParseAblationParam(t *testing.T) {
	for _, p := range AblationParams() {
		got, err := ParseAblationParam(string(p))
		if err != nil || got != p {
			t.Fatalf("ParseAblationParam(%s) = %v, %v", p, got, err)
		}
		if len(DefaultAblationValues(p)) == 0 {
			t.Fatalf("no default values for %s", p)
		}
	}
	if _, err := ParseAblationParam("temperature"); err == nil {
		t.Fatal("expected error for unknown parameter")
	}
}

func TestRunAblationMargins(t *testing.T) {
	ds := truthfulqa.Generate(30, 1)
	ab, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds, MaxTokens: evalBudget},
		AblatePruneMargin, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ab.Param != AblatePruneMargin || len(ab.Points) != 2 {
		t.Fatalf("ablation = %+v", ab)
	}
	// Every point carries all 5 systems (3 reused singles + 2 swept).
	for _, pt := range ab.Points {
		if len(pt.Results) != 5 {
			t.Fatalf("point %v has %d systems", pt.Value, len(pt.Results))
		}
	}
	// Single-model baselines are identical across points (reused, and
	// unaffected by the swept parameter).
	s0, _ := ab.Result(0, "Mistral-7B")
	s1, _ := ab.Result(1, "Mistral-7B")
	if s0 != s1 {
		t.Fatalf("baseline drifted across sweep: %+v vs %+v", s0, s1)
	}
	// The paper-literal 0.5 margin prunes nothing, so OUA's total cost
	// must be at least the tight margin's cost.
	tight, _ := ab.Result(0, "LLM-MS OUA")
	loose, _ := ab.Result(1, "LLM-MS OUA")
	if loose.AvgTotalTokens < tight.AvgTotalTokens {
		t.Fatalf("margin 0.5 cheaper than 0.05: %f < %f", loose.AvgTotalTokens, tight.AvgTotalTokens)
	}
}

func TestRunAblationAlphaValidation(t *testing.T) {
	ds := truthfulqa.Seed().Head(3)
	if _, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds}, AblateAlpha, []float64{1.5}); err == nil {
		t.Fatal("expected error for alpha outside [0,1]")
	}
	if _, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds}, AblationParam("bogus"), []float64{1}); err == nil {
		t.Fatal("expected error for unknown parameter")
	}
}

func TestRunAblationBudgetReevaluatesSingles(t *testing.T) {
	ds := truthfulqa.Generate(20, 1)
	ab, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds}, AblateBudget, []float64{32, 256})
	if err != nil {
		t.Fatal(err)
	}
	// At a 32-token budget the verbose model is truncated; at 256 it is
	// not — the baselines must differ between the points.
	s0, ok0 := ab.Result(0, "LLaMA-3-8B")
	s1, ok1 := ab.Result(1, "LLaMA-3-8B")
	if !ok0 || !ok1 {
		t.Fatalf("baseline missing from budget sweep: %+v", ab.Points)
	}
	if s0.AvgAnswerTokens >= s1.AvgAnswerTokens {
		t.Fatalf("budget sweep did not bind: %f >= %f", s0.AvgAnswerTokens, s1.AvgAnswerTokens)
	}
}

func TestAblationRender(t *testing.T) {
	ds := truthfulqa.Generate(15, 1)
	ab, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds, MaxTokens: evalBudget},
		AblateRounds, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	out := ab.Render()
	for _, want := range []string{"Ablation of rounds", "avg reward", "avg F1", "reward/token", "LLM-MS OUA"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if _, ok := ab.Result(99, "LLM-MS OUA"); ok {
		t.Fatal("out-of-range point resolved")
	}
}

func TestRunAblationGamma(t *testing.T) {
	ds := truthfulqa.Generate(25, 1)
	ab, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds, MaxTokens: evalBudget}, AblateGamma, []float64{0.01, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Near-zero exploration exploits the first decent arm; maximal
	// exploration spreads pulls — total cost must not decrease with γ.
	lo, _ := ab.Result(0, "LLM-MS MAB")
	hi, _ := ab.Result(1, "LLM-MS MAB")
	if hi.AvgTotalTokens < lo.AvgTotalTokens {
		t.Fatalf("more exploration got cheaper: γ=1 cost %f < γ≈0 cost %f",
			hi.AvgTotalTokens, lo.AvgTotalTokens)
	}
	if _, err := RunAblation(context.Background(), testEngine(ds),
		Config{Dataset: ds}, AblateGamma, []float64{0}); err == nil {
		t.Fatal("expected error for non-positive gamma")
	}
}
