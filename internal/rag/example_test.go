package rag_test

import (
	"fmt"

	"llmms/internal/rag"
	"llmms/internal/vectordb"
)

// Example shows the full RAG pipeline: ingest a document into the
// vector database, retrieve the chunks relevant to a question, and
// build the augmented prompt.
func Example() {
	db := vectordb.New()
	col, err := db.CreateCollection("docs", vectordb.CollectionConfig{})
	if err != nil {
		panic(err)
	}
	ingestor := rag.NewIngestor(col, rag.ChunkOptions{MaxTokens: 64})
	n, err := ingestor.IngestText("specs", "specs.txt",
		"The inference server uses a Tesla V100 GPU. "+
			"It has thirty two gigabytes of VRAM. "+
			"The CPU is an Intel Xeon Gold with forty cores.")
	if err != nil {
		panic(err)
	}
	fmt.Println("chunks:", n > 0)

	hits, err := rag.Retrieve(col, "how much VRAM does the GPU have", 1, "")
	if err != nil {
		panic(err)
	}
	prompt := rag.BuildPrompt(rag.PromptParts{
		Chunks:   []string{hits[0].Text},
		Question: "How much VRAM does the GPU have?",
	})
	fmt.Println("grounded:", len(hits) == 1)
	fmt.Println("prompt has context:", len(prompt) > 0)
	// Output:
	// chunks: true
	// grounded: true
	// prompt has context: true
}
