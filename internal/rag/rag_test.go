package rag

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"llmms/internal/tokenizer"
	"llmms/internal/vectordb"
)

const sampleText = `The Data Management Systems Laboratory operates a virtual server.
The server has an Intel Xeon Gold processor with forty virtual cores.
It is provisioned with ninety eight gigabytes of memory.
A dedicated NVIDIA Tesla V100 GPU with thirty two gigabytes of VRAM accelerates inference.
Storage includes a one terabyte NVMe solid state drive.
The platform uses Ollama for model serving and token streaming.
ChromaDB provides the vector database for semantic retrieval.
Flask implements the backend web server logic.
The system was evaluated on the TruthfulQA benchmark.
Orchestration strategies include OUA and MAB algorithms.`

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("One. Two! Three?\n\nFour five")
	want := []string{"One.", "Two!", "Three?", "Four five"}
	if len(got) != len(want) {
		t.Fatalf("SplitSentences = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sentence %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s := SplitSentences(""); len(s) != 0 {
		t.Fatalf("empty text produced %v", s)
	}
}

func TestSplitRespectsTokenCap(t *testing.T) {
	tok := tokenizer.Default()
	opts := ChunkOptions{MaxTokens: 40, Tokenizer: tok}
	chunks := Split(sampleText, opts)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	for _, c := range chunks {
		// A chunk may exceed the cap only when it is one sentence that is
		// oversized by itself (the chunker never splits inside a sentence).
		if n := tok.Count(c.Text); n > 40 {
			if sc := len(SplitSentences(c.Text)); sc != 1 {
				t.Fatalf("chunk %d has %d tokens (> 40) across %d sentences: %q", c.Index, n, sc, c.Text)
			}
		}
	}
	for i, c := range chunks {
		if c.Index != i {
			t.Fatalf("chunk index %d != position %d", c.Index, i)
		}
	}
}

func TestSplitOverlap(t *testing.T) {
	// Cap chosen so the overlap sentence plus the next sentence always
	// fits (the longest adjacent pair in sampleText is 86 tokens); the
	// overlap must then be carried into every subsequent chunk.
	chunks := Split(sampleText, ChunkOptions{MaxTokens: 120, OverlapSentences: 1})
	if len(chunks) < 2 {
		t.Fatalf("need 2+ chunks, got %d", len(chunks))
	}
	// Each chunk after the first must start with the previous chunk's
	// final sentence.
	for i := 1; i < len(chunks); i++ {
		prev := SplitSentences(chunks[i-1].Text)
		lastSentence := prev[len(prev)-1]
		if !strings.HasPrefix(chunks[i].Text, lastSentence) {
			t.Fatalf("chunk %d does not begin with overlap %q:\n%q", i, lastSentence, chunks[i].Text)
		}
	}
}

func TestSplitCoversAllSentences(t *testing.T) {
	chunks := Split(sampleText, ChunkOptions{MaxTokens: 40})
	joined := ""
	for _, c := range chunks {
		joined += c.Text + " "
	}
	for _, s := range SplitSentences(sampleText) {
		if !strings.Contains(joined, s) {
			t.Fatalf("sentence lost during chunking: %q", s)
		}
	}
}

func TestSplitOversizedSentence(t *testing.T) {
	long := strings.Repeat("supercalifragilistic expialidocious vocabulary ", 60) + "."
	chunks := Split(long, ChunkOptions{MaxTokens: 30})
	if len(chunks) != 1 {
		t.Fatalf("oversized sentence should be one chunk, got %d", len(chunks))
	}
}

func TestSplitNeverLosesWordsProperty(t *testing.T) {
	f := func(words []string) bool {
		var b strings.Builder
		for i, w := range words {
			b.WriteString(strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return 'x'
			}, strings.ToLower(w)))
			if i%5 == 4 {
				b.WriteString(". ")
			} else {
				b.WriteString(" ")
			}
		}
		text := b.String()
		chunks := Split(text, ChunkOptions{MaxTokens: 20})
		joined := ""
		for _, c := range chunks {
			joined += c.Text + " "
		}
		for _, s := range SplitSentences(text) {
			if !strings.Contains(joined, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newCollection(t *testing.T) *vectordb.Collection {
	t.Helper()
	db := vectordb.New()
	col, err := db.CreateCollection("docs", vectordb.CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestIngestAndRetrieve(t *testing.T) {
	col := newCollection(t)
	in := NewIngestor(col, ChunkOptions{MaxTokens: 40})
	n, err := in.IngestText("doc1", "specs.txt", sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || col.Count() != n {
		t.Fatalf("ingested %d chunks, collection has %d", n, col.Count())
	}
	res, err := Retrieve(col, "which GPU accelerates inference?", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || !strings.Contains(res[0].Text, "V100") {
		t.Fatalf("retrieval missed the GPU chunk: %+v", res)
	}
	if res[0].Metadata["doc_id"] != "doc1" || res[0].Metadata["source"] != "specs.txt" {
		t.Fatalf("chunk metadata wrong: %+v", res[0].Metadata)
	}
}

func TestRetrieveScopedToDocument(t *testing.T) {
	col := newCollection(t)
	in := NewIngestor(col, ChunkOptions{MaxTokens: 60})
	if _, err := in.IngestText("a", "a.txt", "The GPU in server A is a Tesla V100."); err != nil {
		t.Fatal(err)
	}
	if _, err := in.IngestText("b", "b.txt", "The GPU in server B is an A100."); err != nil {
		t.Fatal(err)
	}
	res, err := Retrieve(col, "what GPU does the server have", 5, "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Metadata["doc_id"] != "b" {
			t.Fatalf("doc filter leaked: %+v", r)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	col := newCollection(t)
	in := NewIngestor(col, ChunkOptions{})
	if _, err := in.IngestText("", "x.txt", "text."); err == nil {
		t.Fatal("expected error for empty doc id")
	}
	if _, err := in.IngestText("d", "x.txt", "   "); err == nil {
		t.Fatal("expected error for empty document")
	}
}

func TestDeleteDocument(t *testing.T) {
	col := newCollection(t)
	in := NewIngestor(col, ChunkOptions{MaxTokens: 30})
	n, err := in.IngestText("doc1", "a.txt", sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if removed := in.DeleteDocument("doc1"); removed != n {
		t.Fatalf("deleted %d chunks, want %d", removed, n)
	}
	if col.Count() != 0 {
		t.Fatalf("%d chunks remain", col.Count())
	}
	if removed := in.DeleteDocument("doc1"); removed != 0 {
		t.Fatalf("second delete removed %d", removed)
	}
}

func TestReingestReplaces(t *testing.T) {
	col := newCollection(t)
	in := NewIngestor(col, ChunkOptions{MaxTokens: 30})
	if _, err := in.IngestText("doc1", "a.txt", sampleText); err != nil {
		t.Fatal(err)
	}
	// Re-ingest shorter content under the same id; stale tail chunks are
	// acceptable to remain (upsert semantics), but chunk 0 must be new.
	if _, err := in.IngestText("doc1", "a.txt", "Only one short sentence."); err != nil {
		t.Fatal(err)
	}
	got := col.Get("doc1#0")
	if len(got) != 1 || !strings.Contains(got[0].Text, "short sentence") {
		t.Fatalf("re-ingest did not replace chunk 0: %+v", got)
	}
}

func TestBuildPrompt(t *testing.T) {
	p := BuildPrompt(PromptParts{
		Summary:  "User asked about GPUs earlier.",
		Chunks:   []string{"The server uses a Tesla V100.", "It has 32 GB of VRAM."},
		Question: "How much VRAM does it have?",
	})
	for _, want := range []string{
		"Summary of earlier conversation:",
		"Context:",
		"Tesla V100",
		"Question: How much VRAM does it have?",
		"Answer:",
	} {
		if !strings.Contains(p, want) {
			t.Fatalf("prompt missing %q:\n%s", want, p)
		}
	}
	bare := BuildPrompt(PromptParts{Question: "Hello?"})
	if strings.Contains(bare, "Context:") || strings.Contains(bare, "Summary") {
		t.Fatalf("bare prompt has spurious sections:\n%s", bare)
	}
}

func TestParseTxtAndMarkdown(t *testing.T) {
	txt, err := Parse("a.txt", []byte("plain text"))
	if err != nil || txt != "plain text" {
		t.Fatalf("txt parse: %q %v", txt, err)
	}
	md := "# Title\n\nSome **bold** prose.\n\n```go\ncode to drop\n```\n\n- item one\n> quoted line\n"
	got, err := Parse("doc.md", []byte(md))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "code to drop") || strings.Contains(got, "**") || strings.Contains(got, "#") {
		t.Fatalf("markdown not stripped: %q", got)
	}
	if !strings.Contains(got, "Some bold prose.") || !strings.Contains(got, "item one") {
		t.Fatalf("markdown prose lost: %q", got)
	}
	if _, err := Parse("a.docx", []byte("x")); err == nil {
		t.Fatal("expected error for unsupported extension")
	}
}

func TestParsePDF(t *testing.T) {
	pdf := "%PDF-1.4\n1 0 obj\nstream\nBT /F1 12 Tf (Hello from a) Tj (PDF \\(page one\\)) Tj ET\nendstream\nendobj\n"
	got, err := Parse("doc.pdf", []byte(pdf))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "Hello from a") || !strings.Contains(got, "PDF (page one)") {
		t.Fatalf("pdf text extraction: %q", got)
	}
	if _, err := Parse("doc.pdf", []byte("not a pdf")); err == nil {
		t.Fatal("expected error for non-PDF bytes")
	}
	if _, err := Parse("doc.pdf", []byte("%PDF-1.4\nstream FlateDecode compressed")); err == nil {
		t.Fatal("expected error for compressed PDF")
	}
}

func TestEndToEndRAGPrompt(t *testing.T) {
	col := newCollection(t)
	in := NewIngestor(col, ChunkOptions{MaxTokens: 40})
	if _, err := in.IngestText("specs", "specs.txt", sampleText); err != nil {
		t.Fatal(err)
	}
	res, err := Retrieve(col, "how many virtual cores does the processor have", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	var chunks []string
	for _, r := range res {
		chunks = append(chunks, r.Text)
	}
	prompt := BuildPrompt(PromptParts{Chunks: chunks, Question: "How many virtual cores?"})
	if !strings.Contains(prompt, "forty virtual cores") {
		t.Fatalf("retrieved context missing from prompt:\n%s", prompt)
	}
}

func BenchmarkSplit(b *testing.B) {
	text := strings.Repeat(sampleText+" ", 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Split(text, ChunkOptions{MaxTokens: 64})
	}
}

func BenchmarkIngest(b *testing.B) {
	db := vectordb.New()
	col, _ := db.CreateCollection("bench", vectordb.CollectionConfig{})
	in := NewIngestor(col, ChunkOptions{MaxTokens: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = in.IngestText(fmt.Sprintf("doc%d", i), "bench.txt", sampleText)
	}
}
