package rag

import (
	"strings"
	"testing"
)

// FuzzParsePDF asserts the PDF text extractor never panics and never
// fabricates success on garbage: any returned text must come with a nil
// error, and errors must come with empty text.
func FuzzParsePDF(f *testing.F) {
	f.Add([]byte("%PDF-1.4\nBT (Hello) Tj ET"))
	f.Add([]byte("%PDF-1.4\nBT (nested \\(parens\\)) Tj ET"))
	f.Add([]byte("%PDF-1.4\nstream FlateDecode"))
	f.Add([]byte("not a pdf at all"))
	f.Add([]byte("%PDF\nBT (unclosed"))
	f.Add([]byte("%PDF\nBT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		text, err := parsePDF(data)
		if err != nil && text != "" {
			t.Fatalf("error with non-empty text: %q, %v", text, err)
		}
	})
}

// FuzzSplit asserts the chunker conserves sentences on arbitrary text:
// every sentence the splitter produces appears in some chunk, and chunk
// indexes are consecutive.
func FuzzSplit(f *testing.F) {
	f.Add("One. Two! Three?", 20)
	f.Add("No terminal punctuation at all", 8)
	f.Add("Ubuntu 24.04 with CUDA 12.6. Next sentence.", 16)
	f.Add("", 10)
	f.Fuzz(func(t *testing.T, text string, maxTokens int) {
		if maxTokens < 1 || maxTokens > 256 {
			maxTokens = 32
		}
		if len(text) > 2000 {
			text = text[:2000]
		}
		chunks := Split(text, ChunkOptions{MaxTokens: maxTokens})
		joined := ""
		for i, c := range chunks {
			if c.Index != i {
				t.Fatalf("chunk index %d at position %d", c.Index, i)
			}
			joined += c.Text + " "
		}
		for _, s := range SplitSentences(text) {
			if !strings.Contains(joined, s) {
				t.Fatalf("sentence lost: %q\nchunks: %q", s, joined)
			}
		}
	})
}
