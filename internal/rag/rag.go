// Package rag implements the retrieval-augmented generation pipeline of
// LLM-MS: document parsing, sentence-aware chunking, ingestion into the
// vector database, top-k retrieval, and prompt construction.
//
// The paper's pipeline (§6.2) parses uploaded files, segments them into
// semantically coherent chunks, embeds chunks and queries with the same
// encoder, retrieves the top-k chunks by cosine similarity from ChromaDB,
// and prepends them to the model prompt. This package reproduces each
// stage; the prompt layout it emits ("Context:" / "Question:" / "Answer:"
// sections) is the convention the inference engine parses back out.
package rag

import (
	"fmt"
	"path/filepath"
	"strings"

	"llmms/internal/tokenizer"
	"llmms/internal/vectordb"
)

// Chunk is one retrievable document fragment.
type Chunk struct {
	// Text is the fragment content.
	Text string
	// Index is the fragment's position within its source document.
	Index int
}

// ChunkOptions tunes the chunker.
type ChunkOptions struct {
	// MaxTokens caps each chunk's token count. Default 128.
	MaxTokens int
	// OverlapSentences carries this many trailing sentences into the next
	// chunk so answers spanning a boundary stay retrievable. Default 1.
	OverlapSentences int
	// Tokenizer counts tokens; defaults to tokenizer.Default().
	Tokenizer *tokenizer.Tokenizer
}

func (o ChunkOptions) withDefaults() ChunkOptions {
	if o.MaxTokens <= 0 {
		o.MaxTokens = 128
	}
	if o.OverlapSentences < 0 {
		o.OverlapSentences = 0
	} else if o.OverlapSentences == 0 {
		o.OverlapSentences = 1
	}
	if o.Tokenizer == nil {
		o.Tokenizer = tokenizer.Default()
	}
	return o
}

// Split segments text into chunks: sentences are accumulated until the
// token cap, and each new chunk re-opens with the previous chunk's last
// OverlapSentences sentences. The overlap is dropped when it would push
// the incoming sentence past the cap, and a sentence longer than the cap
// by itself becomes its own chunk rather than being lost.
func Split(text string, opts ChunkOptions) []Chunk {
	opts = opts.withDefaults()
	sentences := SplitSentences(text)
	if len(sentences) == 0 {
		return nil
	}
	var chunks []Chunk
	var cur []string
	curTokens := 0
	overlapLen := 0 // leading sentences in cur carried over from the previous chunk
	flush := func() {
		chunks = append(chunks, Chunk{Text: strings.Join(cur, " "), Index: len(chunks)})
		tail := opts.OverlapSentences
		if tail > len(cur) {
			tail = len(cur)
		}
		cur = append([]string(nil), cur[len(cur)-tail:]...)
		overlapLen = len(cur)
		curTokens = 0
		for _, s := range cur {
			curTokens += opts.Tokenizer.Count(s)
		}
	}
	for _, s := range sentences {
		n := opts.Tokenizer.Count(s)
		if len(cur) > overlapLen && curTokens+n > opts.MaxTokens {
			flush()
		}
		if len(cur) == overlapLen && overlapLen > 0 && curTokens+n > opts.MaxTokens {
			// The overlap alone would push this sentence past the cap.
			cur = cur[:0]
			overlapLen = 0
			curTokens = 0
		}
		cur = append(cur, s)
		curTokens += n
	}
	if len(cur) > overlapLen {
		chunks = append(chunks, Chunk{Text: strings.Join(cur, " "), Index: len(chunks)})
	}
	return chunks
}

// SplitSentences breaks text into trimmed sentences on ., !, ? and
// blank lines. A period flanked by digits ("Ubuntu 24.04", "v0.4.5") is
// part of a number, not a sentence boundary.
func SplitSentences(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	prevNewline := false
	runes := []rune(text)
	for i, r := range runes {
		switch r {
		case '.':
			cur.WriteRune(r)
			if !digitFlanked(runes, i) {
				flush()
			}
			prevNewline = false
		case '!', '?':
			cur.WriteRune(r)
			flush()
			prevNewline = false
		case '\n':
			if prevNewline {
				flush()
			} else {
				cur.WriteByte(' ')
			}
			prevNewline = true
		default:
			cur.WriteRune(r)
			prevNewline = false
		}
	}
	flush()
	return out
}

// digitFlanked reports whether the rune at i sits between two digits.
func digitFlanked(runes []rune, i int) bool {
	return i > 0 && i+1 < len(runes) &&
		runes[i-1] >= '0' && runes[i-1] <= '9' &&
		runes[i+1] >= '0' && runes[i+1] <= '9'
}

// Ingestor writes parsed, chunked documents into a vector collection.
type Ingestor struct {
	col  *vectordb.Collection
	opts ChunkOptions
}

// NewIngestor binds an ingestor to a collection.
func NewIngestor(col *vectordb.Collection, opts ChunkOptions) *Ingestor {
	return &Ingestor{col: col, opts: opts.withDefaults()}
}

// IngestFile parses raw file bytes by extension (.txt, .md, .pdf),
// chunks the text, and upserts every chunk with source metadata. It
// returns the number of chunks stored.
func (in *Ingestor) IngestFile(docID, filename string, data []byte) (int, error) {
	text, err := Parse(filename, data)
	if err != nil {
		return 0, err
	}
	return in.IngestText(docID, filename, text)
}

// IngestText chunks pre-extracted text and upserts the chunks.
func (in *Ingestor) IngestText(docID, source, text string) (int, error) {
	if strings.TrimSpace(docID) == "" {
		return 0, fmt.Errorf("rag: empty document id")
	}
	chunks := Split(text, in.opts)
	if len(chunks) == 0 {
		return 0, fmt.Errorf("rag: document %q produced no chunks", docID)
	}
	docs := make([]vectordb.Document, len(chunks))
	for i, c := range chunks {
		docs[i] = vectordb.Document{
			ID:   fmt.Sprintf("%s#%d", docID, c.Index),
			Text: c.Text,
			Metadata: vectordb.Metadata{
				"doc_id": docID,
				"source": source,
				"chunk":  c.Index,
			},
		}
	}
	if err := in.col.Upsert(docs...); err != nil {
		return 0, err
	}
	return len(chunks), nil
}

// DeleteDocument removes every chunk of a previously ingested document
// and returns how many chunks were deleted.
func (in *Ingestor) DeleteDocument(docID string) int {
	// Chunk ids are sequential; probe until a miss.
	removed := 0
	for i := 0; ; i++ {
		id := fmt.Sprintf("%s#%d", docID, i)
		if in.col.Delete(id) == 0 {
			break
		}
		removed++
	}
	return removed
}

// Retrieve returns the top-k chunks for a query, optionally restricted to
// one document id (empty means all documents).
func Retrieve(col *vectordb.Collection, query string, topK int, docID string) ([]vectordb.Result, error) {
	req := vectordb.QueryRequest{Text: query, TopK: topK}
	if docID != "" {
		req.Where = vectordb.Metadata{"doc_id": docID}
	}
	return col.Query(req)
}

// PromptParts is the material BuildPrompt assembles.
type PromptParts struct {
	// Summary is the condensed earlier-conversation context (may be "").
	Summary string
	// Chunks are the retrieved context fragments, best first.
	Chunks []string
	// Question is the user's query.
	Question string
}

// BuildPrompt composes the final model prompt in the layout the engine
// parses: optional conversation summary, optional retrieved context, then
// the question and an answer cue.
func BuildPrompt(p PromptParts) string {
	var b strings.Builder
	if s := strings.TrimSpace(p.Summary); s != "" {
		b.WriteString("Summary of earlier conversation:\n")
		b.WriteString(s)
		b.WriteString("\n\n")
	}
	if len(p.Chunks) > 0 {
		b.WriteString("Context:\n")
		for _, c := range p.Chunks {
			b.WriteString(strings.TrimSpace(c))
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	b.WriteString("Question: ")
	b.WriteString(strings.TrimSpace(p.Question))
	b.WriteString("\nAnswer:")
	return b.String()
}

// Parse extracts plain text from raw file bytes based on the filename
// extension. Supported: .txt, .text, .md, .markdown, .pdf (text-object
// extraction for uncompressed PDFs).
func Parse(filename string, data []byte) (string, error) {
	switch strings.ToLower(filepath.Ext(filename)) {
	case ".txt", ".text", "":
		return string(data), nil
	case ".md", ".markdown":
		return stripMarkdown(string(data)), nil
	case ".pdf":
		return parsePDF(data)
	default:
		return "", fmt.Errorf("rag: unsupported file type %q", filepath.Ext(filename))
	}
}

// stripMarkdown removes common Markdown syntax, keeping the prose.
func stripMarkdown(s string) string {
	var out []string
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		trimmed = strings.TrimLeft(trimmed, "#> ")
		trimmed = strings.TrimPrefix(trimmed, "- ")
		trimmed = strings.TrimPrefix(trimmed, "* ")
		trimmed = strings.ReplaceAll(trimmed, "**", "")
		trimmed = strings.ReplaceAll(trimmed, "__", "")
		trimmed = strings.ReplaceAll(trimmed, "`", "")
		out = append(out, trimmed)
	}
	return strings.Join(out, "\n")
}

// parsePDF extracts text from uncompressed PDF content streams: the
// string operands of Tj and TJ operators inside BT/ET text blocks.
// Compressed streams (FlateDecode) are out of scope and reported as such.
func parsePDF(data []byte) (string, error) {
	s := string(data)
	if !strings.HasPrefix(s, "%PDF") {
		return "", fmt.Errorf("rag: not a PDF file")
	}
	var b strings.Builder
	rest := s
	found := false
	for {
		bt := strings.Index(rest, "BT")
		if bt < 0 {
			break
		}
		et := strings.Index(rest[bt:], "ET")
		if et < 0 {
			break
		}
		block := rest[bt : bt+et]
		rest = rest[bt+et+2:]
		for _, lit := range pdfStringLiterals(block) {
			b.WriteString(lit)
			b.WriteString(" ")
		}
		found = true
	}
	if !found {
		if strings.Contains(s, "FlateDecode") {
			return "", fmt.Errorf("rag: compressed PDF streams are not supported; export the PDF as text")
		}
		return "", fmt.Errorf("rag: no extractable text objects found in PDF")
	}
	return strings.TrimSpace(b.String()), nil
}

// pdfStringLiterals scans a content-stream block for (...) literals,
// handling \-escapes and nested parentheses.
func pdfStringLiterals(block string) []string {
	var lits []string
	for i := 0; i < len(block); i++ {
		if block[i] != '(' {
			continue
		}
		depth := 1
		var cur strings.Builder
		j := i + 1
		for ; j < len(block) && depth > 0; j++ {
			c := block[j]
			switch c {
			case '\\':
				if j+1 < len(block) {
					j++
					switch block[j] {
					case 'n':
						cur.WriteByte('\n')
					case 't':
						cur.WriteByte('\t')
					case '(', ')', '\\':
						cur.WriteByte(block[j])
					}
				}
			case '(':
				depth++
				cur.WriteByte(c)
			case ')':
				depth--
				if depth > 0 {
					cur.WriteByte(c)
				}
			default:
				cur.WriteByte(c)
			}
		}
		if cur.Len() > 0 {
			lits = append(lits, cur.String())
		}
		i = j - 1
	}
	return lits
}
