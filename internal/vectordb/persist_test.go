package vectordb

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := New()
	c1, err := db.CreateCollection("facts", CollectionConfig{Index: "hnsw"})
	if err != nil {
		t.Fatal(err)
	}
	err = c1.Add(
		Document{ID: "a", Text: "water boils at one hundred degrees celsius", Metadata: Metadata{"category": "science"}},
		Document{ID: "b", Text: "the yen is the currency of japan", Metadata: Metadata{"category": "economics"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := db.CreateCollection("session-chunks", CollectionConfig{Metric: L2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Add(Document{ID: "s1", Text: "session summary text"}); err != nil {
		t.Fatal(err)
	}

	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	names := loaded.ListCollections()
	if len(names) != 2 || names[0] != "facts" || names[1] != "session-chunks" {
		t.Fatalf("ListCollections after load = %v", names)
	}
	lc1, err := loaded.Collection("facts")
	if err != nil {
		t.Fatal(err)
	}
	if lc1.Count() != 2 || lc1.Metric() != Cosine || lc1.cfg.Index != "hnsw" {
		t.Fatalf("facts collection mis-restored: count=%d metric=%s index=%s",
			lc1.Count(), lc1.Metric(), lc1.cfg.Index)
	}
	res, err := lc1.Query(QueryRequest{Text: "japanese currency", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "b" {
		t.Fatalf("query after load = %+v", res)
	}
	if got := res[0].Metadata["category"]; got != "economics" {
		t.Fatalf("metadata lost: %v", got)
	}
	lc2, err := loaded.Collection("session-chunks")
	if err != nil {
		t.Fatal(err)
	}
	if lc2.Metric() != L2 {
		t.Fatalf("metric lost: %s", lc2.Metric())
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error loading missing directory")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected error for corrupt manifest")
	}
}

func TestSaveIsRepeatable(t *testing.T) {
	dir := t.TempDir()
	db := New()
	c, _ := db.CreateCollection("c", CollectionConfig{})
	_ = c.Add(Document{ID: "x", Text: "hello"})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	_ = c.Add(Document{ID: "y", Text: "world"})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := loaded.Collection("c")
	if lc.Count() != 2 {
		t.Fatalf("count = %d, want 2", lc.Count())
	}
}
