package vectordb

import (
	"fmt"
	"math"
	"testing"

	"llmms/internal/embedding"
)

// TestUnitCosineFastPathMatchesGeneral pins the fast path's exactness:
// for encoder-embedded documents, query results under the unit-dot
// distance match the norm-recomputing cosine to float tolerance, for
// both index types and for text and explicit-embedding queries.
func TestUnitCosineFastPathMatchesGeneral(t *testing.T) {
	texts := []string{
		"the great wall of china is not visible from space",
		"astronauts cannot see the wall with the naked eye",
		"goldfish have memories lasting months not seconds",
		"lightning can strike the same place twice",
		"the sky appears blue because of rayleigh scattering",
	}
	enc := embedding.Default()
	for _, idx := range []string{"flat", "hnsw"} {
		t.Run(idx, func(t *testing.T) {
			fast := newCollection("fast", CollectionConfig{Metric: Cosine, Index: idx, Shards: 1})
			slow := newCollection("slow", CollectionConfig{Metric: Cosine, Index: idx, Shards: 1})
			slow.shards[0].unitCosine = false
			slow.shards[0].index.setDist(Cosine.distance)
			for i, txt := range texts {
				doc := Document{ID: fmt.Sprintf("d%d", i), Text: txt}
				if err := fast.Add(doc); err != nil {
					t.Fatal(err)
				}
				if err := slow.Add(doc); err != nil {
					t.Fatal(err)
				}
			}
			if !fast.shards[0].unitCosine {
				t.Fatal("encoder-only collection left the fast path")
			}
			// Unnormalized explicit query vector: the fast path must
			// normalize its own copy, leaving distances exact.
			qv := enc.Encode("is the great wall visible from orbit")
			for i := range qv {
				qv[i] *= 3
			}
			for _, req := range []QueryRequest{
				{Text: "is the great wall visible from orbit", TopK: len(texts)},
				{Embedding: qv, TopK: len(texts)},
			} {
				got, err := fast.Query(req)
				if err != nil {
					t.Fatal(err)
				}
				want, err := slow.Query(req)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("result count %d != %d", len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i].ID {
						t.Fatalf("rank %d: %s != %s", i, got[i].ID, want[i].ID)
					}
					if d := math.Abs(got[i].Distance - want[i].Distance); d > 1e-6 {
						t.Fatalf("rank %d distance off by %g", i, d)
					}
				}
			}
		})
	}
}

// TestUnitCosineDowngrade pins the invariant enforcement: inserting one
// explicit non-unit embedding drops the collection off the fast path,
// and queries stay correct (the general cosine handles mixed norms).
func TestUnitCosineDowngrade(t *testing.T) {
	c := newCollection("mixed", CollectionConfig{Metric: Cosine, Shards: 1})
	if err := c.Add(Document{ID: "unit", Text: "the sky is blue"}); err != nil {
		t.Fatal(err)
	}
	if !c.shards[0].unitCosine {
		t.Fatal("collection should start on the fast path")
	}
	// An explicit unit embedding keeps the fast path.
	unit := embedding.Default().Encode("grass is green in spring")
	if err := c.Add(Document{ID: "explicit-unit", Text: "grass is green in spring", Embedding: unit}); err != nil {
		t.Fatal(err)
	}
	if !c.shards[0].unitCosine {
		t.Fatal("unit explicit embedding must not downgrade")
	}
	// A scaled embedding must downgrade — and still rank correctly,
	// because true cosine ignores magnitude.
	scaled := embedding.Clone(unit)
	for i := range scaled {
		scaled[i] *= 5
	}
	if err := c.Add(Document{ID: "scaled", Embedding: scaled, Text: "grass is green in spring"}); err != nil {
		t.Fatal(err)
	}
	if c.shards[0].unitCosine {
		t.Fatal("non-unit explicit embedding must downgrade the collection")
	}
	res, err := c.Query(QueryRequest{Text: "what color is grass", TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	// The scaled copy and its unit twin must tie (same direction), both
	// ahead of the off-topic document.
	if d := math.Abs(res[0].Distance - res[1].Distance); d > 1e-6 {
		t.Fatalf("identical-direction documents differ by %g", d)
	}
	if res[2].ID != "unit" {
		t.Fatalf("off-topic document ranked %v", res)
	}
}

// TestUnitCosineDowngradeIsPerShard pins the sharded refinement of the
// invariant: one non-unit embedding downgrades only the shard it hashes
// to, the other shards keep the fast path, and cross-shard merged
// results stay exact (both paths compute true cosine distance for a
// normalized query, so distances remain comparable).
func TestUnitCosineDowngradeIsPerShard(t *testing.T) {
	c := newCollection("sharded", CollectionConfig{Metric: Cosine, Shards: 4})
	enc := embedding.Default()
	texts := []string{
		"the sky appears blue because of rayleigh scattering",
		"grass is green in spring",
		"lightning can strike the same place twice",
		"goldfish have memories lasting months",
		"the great wall is not visible from space",
		"astronauts orbit the earth every ninety minutes",
	}
	for i, txt := range texts {
		if err := c.Add(Document{ID: fmt.Sprintf("d%d", i), Text: txt}); err != nil {
			t.Fatal(err)
		}
	}
	scaled := enc.Encode("a scaled vector lands in exactly one shard")
	for i := range scaled {
		scaled[i] *= 7
	}
	if err := c.Add(Document{ID: "scaled", Text: "a scaled vector lands in exactly one shard", Embedding: scaled}); err != nil {
		t.Fatal(err)
	}
	hit := c.shardIndex("scaled")
	for i, sh := range c.shards {
		if i == hit && sh.unitCosine {
			t.Fatalf("shard %d holds the non-unit doc but kept the fast path", i)
		}
		if i != hit && !sh.unitCosine {
			t.Fatalf("shard %d downgraded without holding a non-unit doc", i)
		}
	}
	// Merged results must match a single-shard (fully downgraded-capable)
	// collection holding the same documents.
	ref := newCollection("ref", CollectionConfig{Metric: Cosine, Shards: 1})
	for _, d := range c.All() {
		if err := ref.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	req := QueryRequest{Text: "which vector was scaled", TopK: len(texts) + 1}
	got, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: %s != %s", i, got[i].ID, want[i].ID)
		}
		if d := math.Abs(got[i].Distance - want[i].Distance); d > 1e-6 {
			t.Fatalf("rank %d distance off by %g", i, d)
		}
	}
}
