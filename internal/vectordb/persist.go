package vectordb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"llmms/internal/embedding"
)

// persistence file layout: <dir>/manifest.json names every collection and
// its configuration; <dir>/col_<i>.json holds that collection's documents
// (embeddings included). Indexes are rebuilt on load.

const manifestName = "manifest.json"

type manifest struct {
	Version     int                `json:"version"`
	Collections []collectionHeader `json:"collections"`
	// NextFile numbers the next col_<i>.json/wal_<i>.log pair on durable
	// databases (version 2), keeping file ids stable across collection
	// deletes. Save's plain version-1 snapshots renumber instead.
	NextFile int `json:"next_file,omitempty"`
}

type collectionHeader struct {
	Name    string     `json:"name"`
	File    string     `json:"file"`
	Metric  Distance   `json:"metric"`
	Index   string     `json:"index"`
	Encoder string     `json:"encoder"`
	HNSW    HNSWConfig `json:"hnsw"`
	// WAL and Shards are set on durable (version 2) databases only.
	WAL    string `json:"wal,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// Save writes the whole database under dir, creating it if needed. The
// write is atomic per file (temp + rename) so a crashed save never leaves
// a torn collection file.
func (db *DB) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("vectordb: save: %w", err)
	}
	db.mu.RLock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	cols := make([]*Collection, 0, len(names))
	db.mu.RUnlock()

	// ListCollections sorts; reuse for stable file numbering.
	names = db.ListCollections()
	for _, n := range names {
		c, err := db.Collection(n)
		if err != nil {
			return err
		}
		cols = append(cols, c)
	}

	m := manifest{Version: 1}
	for i, c := range cols {
		file := fmt.Sprintf("col_%d.json", i)
		m.Collections = append(m.Collections, collectionHeader{
			Name:    c.name,
			File:    file,
			Metric:  c.cfg.Metric,
			Index:   c.cfg.Index,
			Encoder: c.cfg.Encoder.Name(),
			HNSW:    c.cfg.HNSW,
		})
		if err := writeJSONAtomic(filepath.Join(dir, file), c.All()); err != nil {
			return fmt.Errorf("vectordb: save collection %q: %w", c.name, err)
		}
	}
	if err := writeJSONAtomic(filepath.Join(dir, manifestName), m); err != nil {
		return fmt.Errorf("vectordb: save manifest: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save into memory. If dir
// holds a durable database (version-2 manifest with WALs), the log
// tails are replayed too — read-only, nothing on disk changes; use Open
// to resume writing. Encoders are resolved by name from the embedding
// registry.
func Load(dir string) (*DB, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("vectordb: load manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("vectordb: parse manifest: %w", err)
	}
	db := New()
	for _, h := range m.Collections {
		enc, err := embedding.Lookup(h.Encoder)
		if err != nil {
			return nil, fmt.Errorf("vectordb: collection %q: %w", h.Name, err)
		}
		c, err := db.CreateCollection(h.Name, CollectionConfig{
			Metric:  h.Metric,
			Encoder: enc,
			Index:   h.Index,
			HNSW:    h.HNSW,
			Shards:  h.Shards,
		})
		if err != nil {
			return nil, err
		}
		docRaw, err := os.ReadFile(filepath.Join(dir, h.File))
		if err != nil {
			return nil, fmt.Errorf("vectordb: load collection %q: %w", h.Name, err)
		}
		var docs []Document
		if err := json.Unmarshal(docRaw, &docs); err != nil {
			return nil, fmt.Errorf("vectordb: parse collection %q: %w", h.Name, err)
		}
		if err := c.bulkLoad(docs); err != nil {
			return nil, fmt.Errorf("vectordb: rebuild collection %q: %w", h.Name, err)
		}
		if h.WAL != "" {
			var applyErr error
			apply := func(rec walRecord) {
				if applyErr == nil {
					applyErr = c.applyWAL(rec)
				}
			}
			walPath := filepath.Join(dir, h.WAL)
			if _, err := scanWAL(walPath+".old", apply); err != nil {
				return nil, fmt.Errorf("vectordb: replay %q: %w", h.Name, err)
			}
			if _, err := scanWAL(walPath, apply); err != nil {
				return nil, fmt.Errorf("vectordb: replay %q: %w", h.Name, err)
			}
			if applyErr != nil {
				return nil, fmt.Errorf("vectordb: replay %q: %w", h.Name, applyErr)
			}
		}
	}
	return db, nil
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
