package vectordb

import (
	"sort"

	"llmms/internal/embedding"
)

// flatIndex is the exact brute-force index: search scans every live
// vector. It is the reference implementation HNSW recall is measured
// against, and the default for the small collections LLM-MS sessions
// produce (per-session document chunks).
type flatIndex struct {
	dist distFunc
	// entries maps id to vector. Iteration order does not affect results
	// because ties are broken on id during sorting.
	entries map[string]embedding.Vector
}

func newFlat(metric Distance) *flatIndex {
	return &flatIndex{dist: metric.distance, entries: make(map[string]embedding.Vector)}
}

func (f *flatIndex) add(id string, v embedding.Vector) { f.entries[id] = v }
func (f *flatIndex) remove(id string)                  { delete(f.entries, id) }
func (f *flatIndex) len() int                          { return len(f.entries) }
func (f *flatIndex) setDist(d distFunc)                { f.dist = d }

func (f *flatIndex) search(q embedding.Vector, k int, allow func(string) bool) []candidate {
	cands := make([]candidate, 0, len(f.entries))
	for id, v := range f.entries {
		if allow != nil && !allow(id) {
			continue
		}
		cands = append(cands, candidate{id: id, dist: f.dist(q, v)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
