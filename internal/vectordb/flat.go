package vectordb

import (
	"sort"

	"llmms/internal/embedding"
)

// flatIndex is the exact brute-force index: search scans every live
// vector. It is the reference implementation HNSW recall is measured
// against, and the default for the small collections LLM-MS sessions
// produce (per-session document chunks).
//
// Entries live in parallel slices (with swap-delete removal and an
// id→position map) rather than a map, so the scan iterates contiguous
// memory; selection goes through a bounded max-heap, so a query does
// O(n log k) work and O(k) allocation instead of materializing and
// sorting every candidate. Iteration order does not affect results
// because ties are broken on id.
type flatIndex struct {
	dist distFunc
	ids  []string
	vecs []embedding.Vector
	pos  map[string]int
}

func newFlat(metric Distance) *flatIndex {
	return &flatIndex{dist: metric.distance, pos: make(map[string]int)}
}

func (f *flatIndex) add(id string, v embedding.Vector) {
	if i, ok := f.pos[id]; ok {
		f.vecs[i] = v
		return
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, v)
}

func (f *flatIndex) remove(id string) {
	i, ok := f.pos[id]
	if !ok {
		return
	}
	last := len(f.ids) - 1
	f.ids[i], f.vecs[i] = f.ids[last], f.vecs[last]
	f.pos[f.ids[i]] = i
	f.ids = f.ids[:last]
	f.vecs = f.vecs[:last]
	delete(f.pos, id)
}

func (f *flatIndex) len() int           { return len(f.ids) }
func (f *flatIndex) setDist(d distFunc) { f.dist = d }

func (f *flatIndex) search(q embedding.Vector, k int, allow func(string) bool) []candidate {
	t := topK{k: k}
	for i, id := range f.ids {
		if allow != nil && !allow(id) {
			continue
		}
		t.offer(candidate{id: id, dist: f.dist(q, f.vecs[i])})
	}
	return t.sorted()
}

// candWorse orders candidates for the selection heap: a is worse than b
// when it is farther, with the id as tie-break so results are
// deterministic regardless of scan order.
func candWorse(a, b candidate) bool {
	if a.dist != b.dist {
		return a.dist > b.dist
	}
	return a.id > b.id
}

// topK keeps the k best candidates seen so far in a max-heap (worst on
// top), hand-rolled to avoid container/heap's interface dispatch on the
// hottest loop in the database.
type topK struct {
	k int
	h []candidate
}

func (t *topK) offer(c candidate) {
	if t.k <= 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		i := len(t.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !candWorse(t.h[i], t.h[p]) {
				break
			}
			t.h[i], t.h[p] = t.h[p], t.h[i]
			i = p
		}
		return
	}
	if !candWorse(t.h[0], c) {
		return // not better than the worst kept candidate
	}
	t.h[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(t.h) && candWorse(t.h[l], t.h[worst]) {
			worst = l
		}
		if r < len(t.h) && candWorse(t.h[r], t.h[worst]) {
			worst = r
		}
		if worst == i {
			break
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// sorted returns the kept candidates by ascending (distance, id).
func (t *topK) sorted() []candidate {
	out := t.h
	sort.Slice(out, func(i, j int) bool { return candWorse(out[j], out[i]) })
	return out
}
