package vectordb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentQueryUpsert exercises queries racing upserts and deletes
// across shards. Run under -race (make check does) it pins two things:
// the sharded paths are data-race-free, and queries make progress while
// writers stream in — the starvation the single collection-wide RWMutex
// caused, where a query held the lock through its whole scan-and-sort
// and writers convoyed behind it.
func TestConcurrentQueryUpsert(t *testing.T) {
	c := newCollection("c", CollectionConfig{Shards: 4})
	for i := 0; i < 64; i++ {
		if err := c.Add(Document{ID: fmt.Sprintf("seed%d", i), Text: fmt.Sprintf("seed document %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	const (
		writers = 4
		readers = 4
		iters   = 200
	)
	var queries atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("w%d-%d", w, i%32)
				if err := c.Upsert(Document{ID: id, Text: fmt.Sprintf("writer %d revision %d", w, i)}); err != nil {
					errs <- err
					return
				}
				if i%16 == 15 {
					c.Delete(id)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := c.Query(QueryRequest{Text: fmt.Sprintf("seed document %d", i%64), TopK: 8})
				if err != nil {
					errs <- err
					return
				}
				if len(res) == 0 {
					errs <- fmt.Errorf("reader %d: empty result over non-empty collection", r)
					return
				}
				queries.Add(1)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if queries.Load() != readers*iters {
		t.Fatalf("completed %d queries, want %d", queries.Load(), readers*iters)
	}
	for i := 0; i < 64; i++ {
		if got := c.Get(fmt.Sprintf("seed%d", i)); len(got) != 1 {
			t.Fatalf("seed%d lost during concurrent churn", i)
		}
	}
}

// TestConcurrentDurableWrites races acknowledged durable writes from
// many goroutines and verifies the WAL recovers every one of them.
func TestConcurrentDurableWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("docs", CollectionConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := c.Upsert(Document{ID: fmt.Sprintf("w%d-%d", w, i), Text: fmt.Sprintf("writer %d item %d", w, i)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2, err := db2.Collection("docs")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count() != writers*perWriter {
		t.Fatalf("recovered %d docs, want %d", c2.Count(), writers*perWriter)
	}
}
