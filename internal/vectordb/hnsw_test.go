package vectordb

import (
	"fmt"
	"math/rand"
	"testing"

	"llmms/internal/embedding"
)

// randomUnitVectors returns n deterministic pseudo-random unit vectors.
func randomUnitVectors(n, dim int, seed int64) []embedding.Vector {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]embedding.Vector, n)
	for i := range vs {
		v := make(embedding.Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		embedding.NormalizeInPlace(v)
		vs[i] = v
	}
	return vs
}

func TestHNSWRecallAgainstFlat(t *testing.T) {
	const (
		n   = 800
		dim = 32
		k   = 10
	)
	vecs := randomUnitVectors(n, dim, 42)
	queries := randomUnitVectors(30, dim, 99)

	flat := newFlat(Cosine)
	hnsw := newHNSW(Cosine, HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 128})
	for i, v := range vecs {
		id := fmt.Sprintf("v%d", i)
		flat.add(id, v)
		hnsw.add(id, v)
	}

	var hits, total int
	for _, q := range queries {
		exact := flat.search(q, k, nil)
		approx := hnsw.search(q, k, nil)
		want := map[string]bool{}
		for _, c := range exact {
			want[c.id] = true
		}
		for _, c := range approx {
			if want[c.id] {
				hits++
			}
		}
		total += len(exact)
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Fatalf("HNSW recall@%d = %.3f, want >= 0.9", k, recall)
	}
}

func TestHNSWOrderedResults(t *testing.T) {
	vecs := randomUnitVectors(200, 16, 7)
	h := newHNSW(Cosine, HNSWConfig{})
	for i, v := range vecs {
		h.add(fmt.Sprintf("v%d", i), v)
	}
	q := randomUnitVectors(1, 16, 8)[0]
	res := h.search(q, 20, nil)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].dist > res[i].dist {
			t.Fatalf("unsorted results at %d: %v > %v", i, res[i-1].dist, res[i].dist)
		}
	}
}

func TestHNSWRemoveAndTombstones(t *testing.T) {
	vecs := randomUnitVectors(100, 16, 3)
	h := newHNSW(Cosine, HNSWConfig{})
	for i, v := range vecs {
		h.add(fmt.Sprintf("v%d", i), v)
	}
	if h.len() != 100 {
		t.Fatalf("len = %d, want 100", h.len())
	}
	for i := 0; i < 40; i++ {
		h.remove(fmt.Sprintf("v%d", i))
	}
	if h.len() != 60 {
		t.Fatalf("len after removals = %d, want 60", h.len())
	}
	// Removed ids must never be returned.
	q := randomUnitVectors(1, 16, 4)[0]
	for _, c := range h.search(q, 60, nil) {
		var idx int
		fmt.Sscanf(c.id, "v%d", &idx)
		if idx < 40 {
			t.Fatalf("tombstoned id %s returned", c.id)
		}
	}
	// Removing an unknown id is a no-op.
	h.remove("nope")
	if h.len() != 60 {
		t.Fatalf("len after no-op remove = %d", h.len())
	}
}

func TestHNSWRebuildTriggered(t *testing.T) {
	vecs := randomUnitVectors(60, 8, 5)
	h := newHNSW(Cosine, HNSWConfig{RebuildTombstoneRatio: 0.3})
	for i, v := range vecs {
		h.add(fmt.Sprintf("v%d", i), v)
	}
	for i := 0; i < 30; i++ {
		h.remove(fmt.Sprintf("v%d", i))
	}
	// Rebuilds fire whenever the tombstone ratio crosses the threshold,
	// so the ratio must never exceed it once removals are done.
	if ratio := float64(h.deleted) / float64(h.live+h.deleted); ratio > 0.3 {
		t.Fatalf("tombstone ratio %.3f exceeds rebuild threshold", ratio)
	}
	if h.deleted >= 30 {
		t.Fatalf("no rebuild ever ran: %d tombstones remain", h.deleted)
	}
	if h.len() != 30 {
		t.Fatalf("len after rebuild = %d, want 30", h.len())
	}
	q := randomUnitVectors(1, 8, 6)[0]
	if res := h.search(q, 30, nil); len(res) != 30 {
		t.Fatalf("search after rebuild returned %d, want 30", len(res))
	}
}

func TestHNSWEmptyAndSingle(t *testing.T) {
	h := newHNSW(Cosine, HNSWConfig{})
	if res := h.search(embedding.Vector{1, 0}, 5, nil); res != nil {
		t.Fatalf("empty index returned %v", res)
	}
	h.add("only", embedding.Vector{1, 0})
	res := h.search(embedding.Vector{0.9, 0.1}, 5, nil)
	if len(res) != 1 || res[0].id != "only" {
		t.Fatalf("single-node search: %v", res)
	}
	h.remove("only")
	if h.len() != 0 {
		t.Fatalf("len = %d after removing only node", h.len())
	}
	if res := h.search(embedding.Vector{1, 0}, 5, nil); len(res) != 0 {
		t.Fatalf("emptied index returned %v", res)
	}
	// Index must accept inserts again after being emptied.
	h.add("again", embedding.Vector{0, 1})
	if res := h.search(embedding.Vector{0, 1}, 1, nil); len(res) != 1 || res[0].id != "again" {
		t.Fatalf("reuse after empty: %v", res)
	}
}

func TestHNSWReplaceViaAdd(t *testing.T) {
	h := newHNSW(Cosine, HNSWConfig{})
	h.add("x", embedding.Vector{1, 0})
	h.add("x", embedding.Vector{0, 1})
	if h.len() != 1 {
		t.Fatalf("len = %d, want 1 after replace", h.len())
	}
	res := h.search(embedding.Vector{0, 1}, 1, nil)
	if len(res) != 1 || res[0].dist > 0.01 {
		t.Fatalf("replace did not take: %v", res)
	}
}

func TestHNSWWithFilter(t *testing.T) {
	vecs := randomUnitVectors(300, 16, 11)
	h := newHNSW(Cosine, HNSWConfig{})
	for i, v := range vecs {
		h.add(fmt.Sprintf("v%d", i), v)
	}
	q := randomUnitVectors(1, 16, 12)[0]
	// Only even ids allowed.
	allow := func(id string) bool {
		var idx int
		fmt.Sscanf(id, "v%d", &idx)
		return idx%2 == 0
	}
	res := h.search(q, 10, allow)
	if len(res) == 0 {
		t.Fatal("filtered search returned nothing")
	}
	for _, c := range res {
		if !allow(c.id) {
			t.Fatalf("filter violated: %s", c.id)
		}
	}
}

func TestHNSWCollectionIntegration(t *testing.T) {
	db := New()
	c, err := db.CreateCollection("hnsw", CollectionConfig{Index: "hnsw"})
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"the heart pumps blood through the circulatory system",
		"photosynthesis converts carbon dioxide into glucose",
		"the capital of australia is canberra",
		"antibiotics are not effective against viruses",
		"sound cannot travel through a vacuum",
	}
	for i, txt := range texts {
		if err := c.Add(Document{ID: fmt.Sprintf("d%d", i), Text: txt}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Query(QueryRequest{Text: "what is the capital city of australia", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "d2" {
		t.Fatalf("got %+v, want d2", res)
	}
}

func TestHNSWDeterministicForInsertionOrder(t *testing.T) {
	vecs := randomUnitVectors(150, 16, 21)
	build := func() *hnswIndex {
		h := newHNSW(Cosine, HNSWConfig{Seed: 9})
		for i, v := range vecs {
			h.add(fmt.Sprintf("v%d", i), v)
		}
		return h
	}
	a, b := build(), build()
	q := randomUnitVectors(1, 16, 22)[0]
	ra, rb := a.search(q, 10, nil), b.search(q, 10, nil)
	if len(ra) != len(rb) {
		t.Fatalf("result lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].id != rb[i].id {
			t.Fatalf("results differ at %d: %s vs %s", i, ra[i].id, rb[i].id)
		}
	}
}

func BenchmarkHNSWSearch5000(b *testing.B) {
	vecs := randomUnitVectors(5000, 64, 31)
	h := newHNSW(Cosine, HNSWConfig{})
	for i, v := range vecs {
		h.add(fmt.Sprintf("v%d", i), v)
	}
	q := randomUnitVectors(1, 64, 32)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.search(q, 10, nil)
	}
}

func BenchmarkHNSWInsert(b *testing.B) {
	vecs := randomUnitVectors(b.N+1, 64, 41)
	h := newHNSW(Cosine, HNSWConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.add(fmt.Sprintf("v%d", i), vecs[i])
	}
}
