package vectordb

import (
	"fmt"
	"testing"

	"llmms/internal/embedding"
)

func newTestCollection(t *testing.T, cfg CollectionConfig) *Collection {
	t.Helper()
	db := New()
	c, err := db.CreateCollection("test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAddAndQueryByText(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	err := c.Add(
		Document{ID: "gum", Text: "Chewing gum passes through the digestive system if swallowed."},
		Document{ID: "wall", Text: "The Great Wall of China is not visible from the Moon."},
		Document{ID: "bats", Text: "Bats are not blind and many use echolocation."},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(QueryRequest{Text: "what happens when you swallow gum", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "gum" {
		t.Fatalf("got %+v, want top hit 'gum'", res)
	}
	if res[0].Similarity <= 0 {
		t.Fatalf("expected positive similarity, got %v", res[0].Similarity)
	}
}

func TestAddDuplicateFails(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	if err := c.Add(Document{ID: "a", Text: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Document{ID: "a", Text: "y"}); err == nil {
		t.Fatal("expected duplicate id error")
	}
	if err := c.Add(Document{ID: "", Text: "y"}); err == nil {
		t.Fatal("expected empty id error")
	}
}

func TestUpsertReplaces(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	if err := c.Upsert(Document{ID: "a", Text: "the original text about cats"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(Document{ID: "a", Text: "completely different content about volcanoes"}); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("count = %d, want 1", c.Count())
	}
	docs := c.Get("a")
	if len(docs) != 1 || docs[0].Text != "completely different content about volcanoes" {
		t.Fatalf("upsert did not replace: %+v", docs)
	}
	res, err := c.Query(QueryRequest{Text: "volcanoes", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "a" {
		t.Fatalf("query after upsert: %+v", res)
	}
}

func TestDelete(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	for i := 0; i < 5; i++ {
		if err := c.Add(Document{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("document number %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Delete("d1", "d3", "missing"); n != 2 {
		t.Fatalf("Delete removed %d, want 2", n)
	}
	if c.Count() != 3 {
		t.Fatalf("count = %d, want 3", c.Count())
	}
	res, err := c.Query(QueryRequest{Text: "document number 1", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == "d1" || r.ID == "d3" {
			t.Fatalf("deleted doc %s still returned", r.ID)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	if _, err := c.Query(QueryRequest{}); err == nil {
		t.Fatal("expected error for query without text or embedding")
	}
}

func TestQueryByEmbedding(t *testing.T) {
	enc := embedding.Default()
	c := newTestCollection(t, CollectionConfig{Encoder: enc})
	if err := c.Add(Document{ID: "x", Text: "lightning can strike the same place twice"}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(QueryRequest{Embedding: enc.Encode("lightning strikes twice"), TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "x" {
		t.Fatalf("got %+v", res)
	}
}

func TestMetadataFilters(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	err := c.Add(
		Document{ID: "a", Text: "alpha doc", Metadata: Metadata{"category": "health", "page": 1}},
		Document{ID: "b", Text: "beta doc", Metadata: Metadata{"category": "law", "page": 2}},
		Document{ID: "c", Text: "gamma doc", Metadata: Metadata{"category": "health", "page": 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		where Metadata
		want  map[string]bool
	}{
		{"eq-shorthand", Metadata{"category": "health"}, map[string]bool{"a": true, "c": true}},
		{"eq-op", Metadata{"category": Metadata{"$eq": "law"}}, map[string]bool{"b": true}},
		{"ne", Metadata{"category": Metadata{"$ne": "health"}}, map[string]bool{"b": true}},
		{"gt", Metadata{"page": Metadata{"$gt": 1}}, map[string]bool{"b": true, "c": true}},
		{"gte", Metadata{"page": Metadata{"$gte": 2}}, map[string]bool{"b": true, "c": true}},
		{"lt", Metadata{"page": Metadata{"$lt": 2}}, map[string]bool{"a": true}},
		{"lte", Metadata{"page": Metadata{"$lte": 2}}, map[string]bool{"a": true, "b": true}},
		{"in", Metadata{"category": Metadata{"$in": []any{"law", "science"}}}, map[string]bool{"b": true}},
		{"nin", Metadata{"category": Metadata{"$nin": []any{"law"}}}, map[string]bool{"a": true, "c": true}},
		{"and", Metadata{"$and": []any{
			map[string]any{"category": "health"},
			map[string]any{"page": map[string]any{"$gt": 1}},
		}}, map[string]bool{"c": true}},
		{"or", Metadata{"$or": []any{
			map[string]any{"page": 1},
			map[string]any{"page": 2},
		}}, map[string]bool{"a": true, "b": true}},
		{"multi-field-implicit-and", Metadata{"category": "health", "page": 3}, map[string]bool{"c": true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := c.Query(QueryRequest{Text: "doc", TopK: 10, Where: tc.where})
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, r := range res {
				got[r.ID] = true
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got ids %v, want %v", got, tc.want)
			}
			for id := range tc.want {
				if !got[id] {
					t.Fatalf("missing id %s: got %v", id, got)
				}
			}
		})
	}
}

func TestBadFilters(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	if err := c.Add(Document{ID: "a", Text: "x", Metadata: Metadata{"k": 1}}); err != nil {
		t.Fatal(err)
	}
	bad := []Metadata{
		{"k": Metadata{"$bogus": 1}},
		{"$xor": []any{}},
		{"k": Metadata{"$gt": "not-a-number"}},
		{"k": Metadata{"$in": 5}},
	}
	for _, w := range bad {
		if _, err := c.Query(QueryRequest{Text: "x", Where: w}); err == nil {
			t.Errorf("filter %v: expected error", w)
		}
	}
}

func TestWhereDocument(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	err := c.Add(
		Document{ID: "a", Text: "The visa application requires form DS-160."},
		Document{ID: "b", Text: "Passports are issued by the state department."},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(QueryRequest{Text: "travel documents", TopK: 5,
		WhereDocument: Metadata{"$contains": "VISA"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "a" {
		t.Fatalf("contains filter: %+v", res)
	}
	res, err = c.Query(QueryRequest{Text: "travel documents", TopK: 5,
		WhereDocument: Metadata{"$not_contains": "visa"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != "b" {
		t.Fatalf("not_contains filter: %+v", res)
	}
}

func TestDBCollectionLifecycle(t *testing.T) {
	db := New()
	if _, err := db.CreateCollection("", CollectionConfig{}); err == nil {
		t.Fatal("expected error for empty name")
	}
	if _, err := db.CreateCollection("c1", CollectionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateCollection("c1", CollectionConfig{}); err == nil {
		t.Fatal("expected duplicate collection error")
	}
	c, err := db.GetOrCreateCollection("c1", CollectionConfig{})
	if err != nil || c.Name() != "c1" {
		t.Fatalf("GetOrCreate existing: %v %v", c, err)
	}
	if _, err := db.GetOrCreateCollection("c2", CollectionConfig{}); err != nil {
		t.Fatal(err)
	}
	names := db.ListCollections()
	if len(names) != 2 || names[0] != "c1" || names[1] != "c2" {
		t.Fatalf("ListCollections = %v", names)
	}
	if err := db.DeleteCollection("c1"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteCollection("c1"); err == nil {
		t.Fatal("expected error deleting missing collection")
	}
	if _, err := db.Collection("c1"); err == nil {
		t.Fatal("expected error getting deleted collection")
	}
}

func TestDistanceMetrics(t *testing.T) {
	a := embedding.Vector{1, 0}
	b := embedding.Vector{0, 1}
	if d := Cosine.distance(a, a); d > 1e-9 {
		t.Fatalf("cosine self-distance = %v", d)
	}
	if d := Cosine.distance(a, b); d < 0.99 || d > 1.01 {
		t.Fatalf("cosine orthogonal distance = %v, want 1", d)
	}
	if d := L2.distance(a, b); d != 2 {
		t.Fatalf("l2 distance = %v, want 2", d)
	}
	if d := InnerProduct.distance(a, a); d != -1 {
		t.Fatalf("ip distance = %v, want -1", d)
	}
}

func TestResultsSortedByDistance(t *testing.T) {
	c := newTestCollection(t, CollectionConfig{})
	for i := 0; i < 20; i++ {
		if err := c.Add(Document{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("topic %d content words here", i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Query(QueryRequest{Text: "topic 7 content", TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Distance > res[i].Distance {
			t.Fatalf("results not sorted: %v then %v", res[i-1].Distance, res[i].Distance)
		}
	}
}

func BenchmarkFlatQuery1000(b *testing.B) {
	db := New()
	c, _ := db.CreateCollection("bench", CollectionConfig{})
	for i := 0; i < 1000; i++ {
		_ = c.Add(Document{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("document about subject %d and matters of fact", i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Query(QueryRequest{Text: "subject 500 facts", TopK: 10})
	}
}

func TestDeleteWhere(t *testing.T) {
	db := New()
	c, err := db.CreateCollection("dw", CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []Document{
		{ID: "a1", Text: "alpha one", Metadata: Metadata{"doc": "a", "page": 1}},
		{ID: "a2", Text: "alpha two", Metadata: Metadata{"doc": "a", "page": 2}},
		{ID: "b1", Text: "beta one", Metadata: Metadata{"doc": "b", "page": 1}},
	}
	if err := c.Add(docs...); err != nil {
		t.Fatal(err)
	}
	n, err := c.DeleteWhere(Metadata{"doc": "a"})
	if err != nil || n != 2 {
		t.Fatalf("DeleteWhere = %d, %v", n, err)
	}
	if c.Count() != 1 {
		t.Fatalf("count = %d", c.Count())
	}
	if got := c.Get("b1"); len(got) != 1 {
		t.Fatal("survivor lost")
	}
	// Deleted documents are gone from the index too.
	res, err := c.Query(QueryRequest{Text: "alpha", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Metadata["doc"] == "a" {
			t.Fatalf("deleted doc still searchable: %+v", r)
		}
	}
	// Operator filters work.
	n, err = c.DeleteWhere(Metadata{"page": Metadata{"$gte": 1}})
	if err != nil || n != 1 {
		t.Fatalf("operator DeleteWhere = %d, %v", n, err)
	}
	// Invalid filters are rejected.
	if _, err := c.DeleteWhere(Metadata{"page": Metadata{"$weird": 1}}); err == nil {
		t.Fatal("expected error for invalid operator")
	}
}
