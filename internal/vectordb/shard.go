package vectordb

import (
	"runtime"
	"sort"
	"sync"
)

// DefaultShards is the shard count for collections that don't set
// CollectionConfig.Shards: one shard per schedulable CPU, so writers on
// different shards never convoy on one lock.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// shard is one hash partition of a collection: its own document map,
// its own index, its own lock. A shard never sees another shard's keys,
// so the unit-cosine fast-path invariant is tracked — and, when an
// explicit non-unit embedding lands, downgraded — per shard.
type shard struct {
	mu   sync.RWMutex
	docs map[string]*Document
	// unitCosine reports that the shard is on the cosine fast path: the
	// metric is Cosine and every stored embedding is unit or zero —
	// guaranteed by the encoder for embedded text, verified on insert
	// for explicit embeddings. One non-unit explicit embedding
	// downgrades the shard (permanently) to the norm-recomputing metric.
	unitCosine bool
	index      index
}

// newShard builds shard i of a collection. HNSW shards decorrelate their
// level-assignment RNG by shard index so the partitions don't build
// structurally identical graphs.
func newShard(cfg CollectionConfig, i int) *shard {
	var idx index
	if cfg.Index == "hnsw" {
		hc := cfg.HNSW
		hc.Seed += int64(i)
		idx = newHNSW(cfg.Metric, hc)
	} else {
		idx = newFlat(cfg.Metric)
	}
	sh := &shard{docs: make(map[string]*Document), index: idx}
	if cfg.Metric == Cosine {
		sh.unitCosine = true
		sh.index.setDist(unitCosineDistance)
	}
	return sh
}

// insertLocked applies one prepared document to the shard, replacing any
// existing document with the same id. The shard's write lock is held.
func (sh *shard) insertLocked(p prepared, metric Distance) {
	if _, ok := sh.docs[p.doc.ID]; ok {
		sh.index.remove(p.doc.ID)
		delete(sh.docs, p.doc.ID)
	}
	if p.breaksUnit && sh.unitCosine {
		sh.unitCosine = false
		sh.index.setDist(metric.distance)
	}
	stored := p.doc
	sh.docs[stored.ID] = &stored
	sh.index.add(stored.ID, stored.Embedding)
}

// shardIndex maps a document id to its shard with FNV-1a. The hash is
// inlined (not hash/fnv) to keep the hot insert/delete/get paths free of
// allocation and interface calls.
func (c *Collection) shardIndex(id string) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % uint64(len(c.shards)))
}

// shardSet returns the sorted, deduplicated shard indices a prepared
// batch touches.
func shardSet(pp []prepared) []int {
	seen := make(map[int]struct{}, len(pp))
	for i := range pp {
		seen[pp[i].shard] = struct{}{}
	}
	return sortedKeys(seen)
}

// shardSetIDs is shardSet for a plain id list.
func shardSetIDs(c *Collection, ids []string) []int {
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		seen[c.shardIndex(id)] = struct{}{}
	}
	return sortedKeys(seen)
}

// allShards returns [0, n).
func allShards(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortedKeys(m map[int]struct{}) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// lockShards write-locks the given shards. idxs must be sorted
// ascending: taking every multi-shard lock in one global order is what
// makes concurrent multi-shard writes deadlock-free.
func (c *Collection) lockShards(idxs []int) {
	for _, i := range idxs {
		c.shards[i].mu.Lock()
	}
}

// unlockShards releases locks taken by lockShards.
func (c *Collection) unlockShards(idxs []int) {
	for _, i := range idxs {
		c.shards[i].mu.Unlock()
	}
}
