package vectordb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"llmms/internal/embedding"
)

// Durable databases. Open arms every collection with a write-ahead log
// under the JSON snapshot layer persist.go defines:
//
//	<dir>/manifest.json   collection headers + next file id (version 2)
//	<dir>/col_<i>.json    snapshot of collection i's documents
//	<dir>/wal_<i>.log     writes since that snapshot (see wal.go)
//
// Recovery = load snapshot, replay WAL tail (torn final record dropped
// by CRC), rebuild each shard's index in parallel. When the log passes a
// size threshold the collection compacts: the log rotates aside, a new
// snapshot is cut, and the rotated log is deleted; a crash anywhere in
// that sequence recovers, because rotated records are always applied
// in memory before the snapshot is cut, and replaying them again under
// the next boot is idempotent.

// OpenOptions configures a durable database.
type OpenOptions struct {
	// Sync is the WAL durability policy; defaults to SyncBatch.
	Sync SyncPolicy
	// BatchInterval is the group-commit accumulation window under
	// SyncBatch; defaults to 2ms.
	BatchInterval time.Duration
	// CompactBytes is the WAL size that triggers snapshot+truncate
	// compaction; defaults to 8 MiB. Negative disables compaction.
	CompactBytes int64
	// DefaultShards overrides DefaultShards() for collections created
	// without an explicit CollectionConfig.Shards (the -vectordb-shards
	// flag). Non-positive means DefaultShards().
	DefaultShards int
	// Hooks observes substrate activity (telemetry).
	Hooks Hooks
}

func (o OpenOptions) withDefaults() OpenOptions {
	if o.Sync == "" {
		o.Sync = SyncBatch
	}
	if o.BatchInterval <= 0 {
		o.BatchInterval = 2 * time.Millisecond
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 8 << 20
	}
	return o
}

// Open loads (or initializes) a durable database rooted at dir. Every
// collection is recovered to exactly the acknowledged-write prefix of
// its snapshot + WAL, and subsequent writes are logged before they are
// acknowledged. Close the database to cut final snapshots and release
// the logs.
func Open(dir string, opts OpenOptions) (*DB, error) {
	opts = opts.withDefaults()
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vectordb: open %s: %w", dir, err)
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	db := New()
	db.dir = dir
	db.opts = opts
	db.hooks = opts.Hooks
	db.man = man
	for i := range db.man.Collections {
		c, err := db.recoverCollection(&db.man.Collections[i])
		if err != nil {
			return nil, err
		}
		db.collections[c.name] = c
	}
	if err := db.writeManifestLocked(); err != nil {
		return nil, err
	}
	if db.hooks.ObserveRecovery != nil {
		db.hooks.ObserveRecovery(time.Since(start))
	}
	return db, nil
}

// readManifest loads <dir>/manifest.json, upgrading version-1 manifests
// (plain Save output: no WAL names, no file counter) in memory. A
// missing file is an empty database.
func readManifest(dir string) (manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return manifest{Version: 2}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("vectordb: open manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, fmt.Errorf("vectordb: parse manifest: %w", err)
	}
	if m.Version < 2 {
		for i := range m.Collections {
			if m.Collections[i].WAL == "" {
				m.Collections[i].WAL = fmt.Sprintf("wal_%d.log", i)
			}
		}
		m.Version = 2
	}
	if m.NextFile < len(m.Collections) {
		m.NextFile = len(m.Collections)
	}
	return m, nil
}

// recoverCollection rebuilds one collection from its snapshot and WAL
// and leaves it armed for further writes.
func (db *DB) recoverCollection(h *collectionHeader) (*Collection, error) {
	enc, err := embedding.Lookup(h.Encoder)
	if err != nil {
		return nil, fmt.Errorf("vectordb: collection %q: %w", h.Name, err)
	}
	shards := h.Shards
	if shards <= 0 {
		shards = db.opts.DefaultShards
	}
	c := newCollection(h.Name, CollectionConfig{
		Metric:  h.Metric,
		Encoder: enc,
		Index:   h.Index,
		HNSW:    h.HNSW,
		Shards:  shards,
	})
	c.hooks = db.hooks
	h.Shards = len(c.shards) // pin the resolved count for the next boot

	snapPath := filepath.Join(db.dir, h.File)
	snapRaw, err := os.ReadFile(snapPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("vectordb: load collection %q: %w", h.Name, err)
	}
	if len(snapRaw) > 0 {
		var docs []Document
		if err := json.Unmarshal(snapRaw, &docs); err != nil {
			return nil, fmt.Errorf("vectordb: parse collection %q: %w", h.Name, err)
		}
		if err := c.bulkLoad(docs); err != nil {
			return nil, fmt.Errorf("vectordb: rebuild collection %q: %w", h.Name, err)
		}
	}

	// Replay the rotated log of an interrupted compaction first, then the
	// live log: that is write order, and the live log carries every write
	// made after the rotation, so replaying a rotated record the snapshot
	// already covers converges to the right state.
	walPath := filepath.Join(db.dir, h.WAL)
	oldPath := walPath + ".old"
	var applyErr error
	apply := func(rec walRecord) {
		if applyErr == nil {
			applyErr = c.applyWAL(rec)
		}
	}
	_, hadOld := statFile(oldPath)
	if hadOld {
		if _, err := scanWAL(oldPath, apply); err != nil {
			return nil, fmt.Errorf("vectordb: replay %q: %w", h.Name, err)
		}
	}
	validLen, err := scanWAL(walPath, apply)
	if err != nil {
		return nil, fmt.Errorf("vectordb: replay %q: %w", h.Name, err)
	}
	if applyErr != nil {
		return nil, fmt.Errorf("vectordb: replay %q: %w", h.Name, applyErr)
	}

	w, err := openWAL(walPath, validLen, db.opts.Sync, db.opts.BatchInterval, db.walBytesHook(h.Name))
	if err != nil {
		return nil, fmt.Errorf("vectordb: open wal for %q: %w", h.Name, err)
	}
	c.wal = w
	c.snapFile = snapPath
	c.compactBytes = db.opts.CompactBytes
	if hadOld {
		// Finish the interrupted compaction: the rotated records are now
		// applied, so a fresh snapshot covers them and the file can go.
		if err := writeJSONAtomic(snapPath, c.All()); err != nil {
			return nil, fmt.Errorf("vectordb: compact %q: %w", h.Name, err)
		}
		if err := os.Remove(oldPath); err != nil {
			return nil, fmt.Errorf("vectordb: compact %q: %w", h.Name, err)
		}
	}
	c.observeShardDocs(allShards(len(c.shards)))
	return c, nil
}

func statFile(path string) (fs.FileInfo, bool) {
	fi, err := os.Stat(path)
	return fi, err == nil
}

// applyWAL re-applies one logged record during recovery. The collection
// has no armed WAL yet, so nothing is re-logged.
func (c *Collection) applyWAL(rec walRecord) error {
	switch rec.Op {
	case walOpUpsert:
		return c.write(rec.Docs, true, false)
	case walOpDelete:
		c.Delete(rec.IDs...)
		return nil
	}
	return fmt.Errorf("unknown wal op %q", rec.Op)
}

// bulkLoad inserts snapshot documents, rebuilding each shard's index on
// its own goroutine. Only used on fresh collections during recovery.
func (c *Collection) bulkLoad(docs []Document) error {
	pp, err := c.prepare(docs)
	if err != nil {
		return err
	}
	perShard := make([][]prepared, len(c.shards))
	for i := range pp {
		perShard[pp[i].shard] = append(perShard[pp[i].shard], pp[i])
	}
	var wg sync.WaitGroup
	for si, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, batch []prepared) {
			defer wg.Done()
			sh.mu.Lock()
			for i := range batch {
				sh.insertLocked(batch[i], c.cfg.Metric)
			}
			sh.mu.Unlock()
		}(c.shards[si], batch)
	}
	wg.Wait()
	return nil
}

// walBytesHook adapts the database hook to the per-collection callback
// the WAL wants.
func (db *DB) walBytesHook(name string) func(int) {
	if db.hooks.AddWALBytes == nil {
		return nil
	}
	return func(n int) { db.hooks.AddWALBytes(name, n) }
}

// armLocked gives a newly created collection its on-disk files and
// registers it in the manifest. Caller holds db.mu on a durable DB.
func (db *DB) armLocked(c *Collection) error {
	n := db.man.NextFile
	h := collectionHeader{
		Name:    c.name,
		File:    fmt.Sprintf("col_%d.json", n),
		WAL:     fmt.Sprintf("wal_%d.log", n),
		Metric:  c.cfg.Metric,
		Index:   c.cfg.Index,
		Encoder: c.cfg.Encoder.Name(),
		HNSW:    c.cfg.HNSW,
		Shards:  len(c.shards),
	}
	snapPath := filepath.Join(db.dir, h.File)
	if err := writeJSONAtomic(snapPath, []Document{}); err != nil {
		return fmt.Errorf("vectordb: create collection %q: %w", c.name, err)
	}
	w, err := openWAL(filepath.Join(db.dir, h.WAL), 0, db.opts.Sync, db.opts.BatchInterval, db.walBytesHook(c.name))
	if err != nil {
		return fmt.Errorf("vectordb: create collection %q: %w", c.name, err)
	}
	c.wal = w
	c.snapFile = snapPath
	c.compactBytes = db.opts.CompactBytes
	db.man.NextFile = n + 1
	db.man.Collections = append(db.man.Collections, h)
	return db.writeManifestLocked()
}

// disarmLocked removes a collection's on-disk state. Caller holds db.mu
// on a durable DB.
func (db *DB) disarmLocked(c *Collection) error {
	c.waitCompaction()
	_ = c.wal.close()
	os.Remove(c.wal.path)
	os.Remove(c.wal.path + ".old")
	os.Remove(c.snapFile)
	kept := db.man.Collections[:0]
	for _, h := range db.man.Collections {
		if h.Name != c.name {
			kept = append(kept, h)
		}
	}
	db.man.Collections = kept
	return db.writeManifestLocked()
}

func (db *DB) writeManifestLocked() error {
	if err := writeJSONAtomic(filepath.Join(db.dir, manifestName), db.man); err != nil {
		return fmt.Errorf("vectordb: write manifest: %w", err)
	}
	return nil
}

// maybeCompact kicks off a background compaction when the WAL passes the
// size threshold. At most one compaction per collection runs at a time;
// writes proceed concurrently throughout.
func (c *Collection) maybeCompact() {
	if c.wal == nil || c.compactBytes <= 0 {
		return
	}
	if c.wal.sizeNow() < c.compactBytes {
		return
	}
	if !c.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.compacting.Store(false)
		_ = c.compact()
	}()
}

// compact rotates the WAL aside, cuts a snapshot that covers everything
// the rotated log held, and deletes the rotated log.
func (c *Collection) compact() error {
	oldPath := c.wal.path + ".old"
	if _, ok := statFile(oldPath); ok {
		// Leftover from a compaction that failed before snapshotting. Its
		// records are applied in memory, so snapshot first — rotating over
		// it could drop them from disk.
		if err := writeJSONAtomic(c.snapFile, c.All()); err != nil {
			return err
		}
		if err := os.Remove(oldPath); err != nil {
			return err
		}
	}
	if err := c.wal.rotate(oldPath); err != nil {
		return err
	}
	if err := writeJSONAtomic(c.snapFile, c.All()); err != nil {
		return err
	}
	if err := os.Remove(oldPath); err != nil {
		return err
	}
	if c.hooks.IncCompaction != nil {
		c.hooks.IncCompaction(c.name)
	}
	return nil
}

// waitCompaction blocks until no compaction is in flight.
func (c *Collection) waitCompaction() {
	for c.compacting.Load() {
		time.Sleep(time.Millisecond)
	}
}

// Close flushes and closes a durable database: outstanding WAL appends
// are synced, each collection cuts a final snapshot, and its emptied log
// is truncated so the next Open replays nothing. In-memory databases
// close as a no-op. The database rejects writes after Close.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dir == "" {
		return nil
	}
	var firstErr error
	for _, name := range db.man.Collections {
		c, ok := db.collections[name.Name]
		if !ok || c.wal == nil {
			continue
		}
		c.waitCompaction()
		if err := c.wal.close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vectordb: close wal %q: %w", c.name, err)
		}
		if err := writeJSONAtomic(c.snapFile, c.All()); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("vectordb: final snapshot %q: %w", c.name, err)
			}
			continue // keep the WAL so the writes aren't lost
		}
		if err := os.Truncate(c.wal.path, 0); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vectordb: truncate wal %q: %w", c.name, err)
		}
		os.Remove(c.wal.path + ".old")
	}
	return firstErr
}
