package vectordb

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"sync"
	"time"
)

// Write-ahead log. Each record is one logical write (a multi-document
// upsert or delete) framed as
//
//	[4B payload length LE][4B CRC32(payload) LE][JSON payload]
//
// Appends go to the OS immediately; durability comes from fsync, whose
// policy is configurable (SyncPolicy). Under SyncBatch a background
// group-commit worker accumulates concurrent appends for a short window
// and retires them with one fsync, so write throughput is bounded by the
// disk's sync rate times the batch size, not divided by it.
//
// Replay (scanWAL) stops at the first frame that is short, fails its
// CRC, or doesn't decode: that is the torn tail of a crashed write, and
// everything before it is exactly the acknowledged prefix. openWAL
// truncates the tail away before appending again.

// SyncPolicy controls when a WAL append becomes durable.
type SyncPolicy string

// Supported sync policies.
const (
	// SyncBatch groups concurrent appends into one fsync (default).
	SyncBatch SyncPolicy = "batch"
	// SyncAlways fsyncs every append before acknowledging it.
	SyncAlways SyncPolicy = "always"
	// SyncNone never fsyncs; durability is whatever the OS page cache
	// delivers. Process crashes lose nothing, machine crashes may.
	SyncNone SyncPolicy = "none"
)

// ParseSyncPolicy validates a policy string (the -wal-sync flag).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncBatch, SyncAlways, SyncNone:
		return SyncPolicy(s), nil
	}
	return "", errors.New(`vectordb: sync policy must be "batch", "always", or "none"`)
}

// WAL record operations.
const (
	walOpUpsert = "upsert"
	walOpDelete = "delete"
)

// walRecord is the JSON payload of one frame. Upsert documents carry an
// embedding only when the caller supplied one explicitly; text-embedded
// documents are re-encoded on replay (encoders are deterministic by
// contract), which keeps the log a fraction of the index size.
type walRecord struct {
	Op   string     `json:"op"`
	Docs []Document `json:"docs,omitempty"`
	IDs  []string   `json:"ids,omitempty"`
}

const walFrameHeader = 8

var errWALClosed = errors.New("wal closed")

// walAck is the durability handle an append returns: wait blocks until
// the record's bytes are synced per the policy.
type walAck struct {
	ch       chan error
	err      error
	resolved bool
}

func ackDone(err error) *walAck { return &walAck{err: err, resolved: true} }

func (a *walAck) wait() error {
	if a.resolved {
		return a.err
	}
	return <-a.ch
}

type wal struct {
	path     string
	policy   SyncPolicy
	interval time.Duration
	onBytes  func(int)

	// syncMu serializes fsync/rotation so a rotation never closes the
	// file a concurrent group commit is syncing. Appends never take it.
	syncMu sync.Mutex

	mu      sync.Mutex
	f       *os.File
	size    int64
	waiters []chan error
	closed  bool

	kick chan struct{}
	quit chan struct{}
	done chan struct{}
}

// openWAL opens (creating if needed) the log at path for appending,
// truncating any torn tail left by a crash. validLen is the scanned
// length of the good prefix.
func openWAL(path string, validLen int64, policy SyncPolicy, interval time.Duration, onBytes func(int)) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{
		path:     path,
		policy:   policy,
		interval: interval,
		onBytes:  onBytes,
		f:        f,
		size:     validLen,
		kick:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if policy == SyncBatch {
		go w.run()
	} else {
		close(w.done)
	}
	return w, nil
}

// append frames rec and writes it to the log, returning the ack the
// caller waits on. Callers invoke it while holding the shard locks the
// record's documents live in, which pins log order to apply order.
func (w *wal) append(rec walRecord) *walAck {
	payload, err := json.Marshal(rec)
	if err != nil {
		return ackDone(err)
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ackDone(errWALClosed)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.mu.Unlock()
		return ackDone(err)
	}
	w.size += int64(len(frame))
	if w.onBytes != nil {
		w.onBytes(len(frame))
	}
	switch w.policy {
	case SyncAlways:
		err := w.f.Sync()
		w.mu.Unlock()
		return ackDone(err)
	case SyncNone:
		w.mu.Unlock()
		return ackDone(nil)
	}
	ch := make(chan error, 1)
	w.waiters = append(w.waiters, ch)
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return &walAck{ch: ch}
}

func (w *wal) sizeNow() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// run is the group-commit worker: woken by the first waiter, it sleeps
// one accumulation window so concurrent appends pile on, then retires
// the whole batch with a single fsync.
func (w *wal) run() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			w.flush()
			return
		case <-w.kick:
		}
		time.Sleep(w.interval)
		w.flush()
	}
}

// flush syncs the file once and resolves every waiter enqueued before
// the sync. The fsync runs outside w.mu so appends keep flowing (and
// shard locks held across append never wait on disk).
func (w *wal) flush() {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	ws := w.waiters
	w.waiters = nil
	f := w.f
	w.mu.Unlock()
	if len(ws) == 0 {
		return
	}
	err := f.Sync()
	for _, ch := range ws {
		ch <- err
	}
}

// rotate retires the current log: outstanding appends are synced and
// acknowledged, the file is renamed to oldPath, and a fresh empty log
// opens at the same path. The caller snapshots afterwards and then
// deletes oldPath; replay handles every crash point in between because
// old-log records are always already applied when the snapshot is cut,
// and new-log records replay idempotently on top of it.
func (w *wal) rotate(oldPath string) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	err := w.f.Sync()
	for _, ch := range w.waiters {
		ch <- err
	}
	w.waiters = nil
	if err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.path, oldPath); err != nil {
		// The old handle is gone; reopen so the log keeps accepting
		// appends even though rotation failed.
		f, ferr := os.OpenFile(w.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if ferr == nil {
			w.f = f
		}
		return err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.size = 0
	return nil
}

// close stops the worker, syncs outstanding bytes, and closes the file.
// Appends after close fail with errWALClosed.
func (w *wal) close() error {
	if w.policy == SyncBatch {
		close(w.quit)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanWAL reads frames from path, calling apply for each decoded record,
// and returns the byte length of the valid prefix. A missing file is an
// empty log. A short, CRC-corrupt, or undecodable tail ends the scan
// without error: that is the torn tail of a crashed write, and recovery
// keeps exactly the acknowledged prefix before it.
func scanWAL(path string, apply func(walRecord)) (int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var off int64
	for {
		rest := data[off:]
		if len(rest) < walFrameHeader {
			break
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n < 0 || n > len(rest)-walFrameHeader {
			break
		}
		payload := rest[walFrameHeader : walFrameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if apply != nil {
			apply(rec)
		}
		off += int64(walFrameHeader + n)
	}
	return off, nil
}
