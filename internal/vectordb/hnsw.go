package vectordb

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"llmms/internal/embedding"
)

// HNSWConfig tunes the hierarchical navigable small world index.
type HNSWConfig struct {
	// M is the maximum number of bidirectional links per node per layer
	// (layer 0 allows 2·M). Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Default 200.
	EfConstruction int
	// EfSearch is the beam width used while querying; raised
	// automatically to the requested k. Default 64.
	EfSearch int
	// Seed makes level assignment deterministic for a given insertion
	// order. Default 1.
	Seed int64
	// RebuildTombstoneRatio triggers a full rebuild when the fraction of
	// tombstoned nodes exceeds it. Default 0.5.
	RebuildTombstoneRatio float64
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RebuildTombstoneRatio <= 0 {
		c.RebuildTombstoneRatio = 0.5
	}
	return c
}

// hnswNode is one graph node. neighbors[l] lists the node's links at
// layer l; a node participates in layers 0..len(neighbors)-1.
type hnswNode struct {
	id        string
	vec       embedding.Vector
	neighbors [][]int32
	deleted   bool
}

// hnswIndex implements the index interface with an HNSW graph. Deletion
// is tombstone-based: removed nodes keep routing until a rebuild is
// triggered, which is the standard practice for HNSW-backed stores
// (including the one the paper deploys).
type hnswIndex struct {
	distFn distFunc
	cfg    HNSWConfig
	rng    *rand.Rand
	levelM float64 // 1/ln(M), the level-assignment scale

	nodes    []*hnswNode
	byID     map[string]int32
	entry    int32 // index of the entry point, -1 when empty
	maxLevel int
	live     int
	deleted  int
}

func newHNSW(metric Distance, cfg HNSWConfig) *hnswIndex {
	cfg = cfg.withDefaults()
	return &hnswIndex{
		distFn: metric.distance,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		levelM: 1 / math.Log(float64(cfg.M)),
		byID:   make(map[string]int32),
		entry:  -1,
	}
}

func (h *hnswIndex) len() int { return h.live }

func (h *hnswIndex) dist(a, b embedding.Vector) float64 { return h.distFn(a, b) }

func (h *hnswIndex) setDist(d distFunc) { h.distFn = d }

// randomLevel draws the layer count for a new node from the standard
// exponential distribution used by HNSW.
func (h *hnswIndex) randomLevel() int {
	return int(math.Floor(-math.Log(1-h.rng.Float64()) * h.levelM))
}

func (h *hnswIndex) add(id string, v embedding.Vector) {
	if old, ok := h.byID[id]; ok {
		// Replace: tombstone the old node, insert fresh.
		if !h.nodes[old].deleted {
			h.nodes[old].deleted = true
			h.live--
			h.deleted++
		}
		delete(h.byID, id)
	}
	level := h.randomLevel()
	node := &hnswNode{id: id, vec: v, neighbors: make([][]int32, level+1)}
	idx := int32(len(h.nodes))
	h.nodes = append(h.nodes, node)
	h.byID[id] = idx
	h.live++

	if h.entry == -1 {
		h.entry = idx
		h.maxLevel = level
		return
	}

	ep := h.entry
	// Descend greedily through layers above the node's top layer.
	for l := h.maxLevel; l > level; l-- {
		ep = h.greedyClosest(v, ep, l)
	}
	// Insert with beam search from min(level, maxLevel) down to 0.
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(v, []int32{ep}, h.cfg.EfConstruction, l, nil)
		m := h.cfg.M
		if l == 0 {
			m = 2 * h.cfg.M
		}
		selected := h.selectNeighbors(cands, m)
		node.neighbors[l] = selected
		for _, n := range selected {
			nb := h.nodes[n]
			if l < len(nb.neighbors) {
				nb.neighbors[l] = append(nb.neighbors[l], idx)
				if len(nb.neighbors[l]) > m {
					nb.neighbors[l] = h.pruneNeighbors(nb.vec, nb.neighbors[l], m)
				}
			}
		}
		if len(cands) > 0 {
			ep = cands[0].idx
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
}

func (h *hnswIndex) remove(id string) {
	idx, ok := h.byID[id]
	if !ok {
		return
	}
	node := h.nodes[idx]
	if !node.deleted {
		node.deleted = true
		h.live--
		h.deleted++
	}
	delete(h.byID, id)
	if h.live > 0 && float64(h.deleted)/float64(h.live+h.deleted) > h.cfg.RebuildTombstoneRatio {
		h.rebuild()
	} else if h.entry == idx {
		// Keep a live entry point if one exists; tombstoned entry points
		// still route, but a live one avoids degenerate starts.
		for i, n := range h.nodes {
			if !n.deleted {
				h.entry = int32(i)
				h.maxLevel = len(n.neighbors) - 1
				break
			}
		}
	}
	if h.live == 0 {
		h.nodes = nil
		h.byID = make(map[string]int32)
		h.entry = -1
		h.maxLevel = 0
		h.deleted = 0
	}
}

// rebuild reconstructs the graph from live nodes, dropping tombstones.
func (h *hnswIndex) rebuild() {
	liveNodes := make([]*hnswNode, 0, h.live)
	for _, n := range h.nodes {
		if !n.deleted {
			liveNodes = append(liveNodes, n)
		}
	}
	sort.Slice(liveNodes, func(i, j int) bool { return liveNodes[i].id < liveNodes[j].id })
	h.nodes = nil
	h.byID = make(map[string]int32, len(liveNodes))
	h.entry = -1
	h.maxLevel = 0
	h.live = 0
	h.deleted = 0
	for _, n := range liveNodes {
		h.add(n.id, n.vec)
	}
}

// greedyClosest walks layer l greedily toward q starting at ep and
// returns the local minimum.
func (h *hnswIndex) greedyClosest(q embedding.Vector, ep int32, l int) int32 {
	cur := ep
	curDist := h.dist(q, h.nodes[cur].vec)
	for {
		improved := false
		node := h.nodes[cur]
		if l < len(node.neighbors) {
			for _, n := range node.neighbors[l] {
				if d := h.dist(q, h.nodes[n].vec); d < curDist {
					cur, curDist = n, d
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// scored pairs a node index with its distance to the query.
type scored struct {
	idx  int32
	dist float64
}

// minHeap orders scored by ascending distance.
type minHeap []scored

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// maxHeap orders scored by descending distance (worst on top).
type maxHeap []scored

func (h maxHeap) Len() int           { return len(h) }
func (h maxHeap) Less(i, j int) bool { return h[i].dist > h[j].dist }
func (h maxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *maxHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// searchLayer is the HNSW beam search at one layer. accept, when non-nil,
// controls which nodes may enter the result set (tombstoned or filtered
// nodes still route). The result is sorted by ascending distance.
func (h *hnswIndex) searchLayer(q embedding.Vector, eps []int32, ef, l int, accept func(*hnswNode) bool) []scored {
	visited := make(map[int32]bool, ef*4)
	var candidates minHeap
	var results maxHeap
	for _, ep := range eps {
		d := h.dist(q, h.nodes[ep].vec)
		visited[ep] = true
		heap.Push(&candidates, scored{ep, d})
		if accept == nil || accept(h.nodes[ep]) {
			heap.Push(&results, scored{ep, d})
		}
	}
	for candidates.Len() > 0 {
		c := heap.Pop(&candidates).(scored)
		if results.Len() >= ef && c.dist > results[0].dist {
			break
		}
		node := h.nodes[c.idx]
		if l >= len(node.neighbors) {
			continue
		}
		for _, n := range node.neighbors[l] {
			if visited[n] {
				continue
			}
			visited[n] = true
			d := h.dist(q, h.nodes[n].vec)
			if results.Len() < ef || d < results[0].dist {
				heap.Push(&candidates, scored{n, d})
				if accept == nil || accept(h.nodes[n]) {
					heap.Push(&results, scored{n, d})
					if results.Len() > ef {
						heap.Pop(&results)
					}
				}
			}
		}
	}
	out := make([]scored, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&results).(scored)
	}
	return out
}

// selectNeighbors keeps the m closest candidates (simple heuristic).
func (h *hnswIndex) selectNeighbors(cands []scored, m int) []int32 {
	if len(cands) > m {
		cands = cands[:m]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

// pruneNeighbors trims a neighbor list to the m closest to base.
func (h *hnswIndex) pruneNeighbors(base embedding.Vector, neighbors []int32, m int) []int32 {
	ss := make([]scored, len(neighbors))
	for i, n := range neighbors {
		ss[i] = scored{n, h.dist(base, h.nodes[n].vec)}
	}
	sort.Slice(ss, func(i, j int) bool { return ss[i].dist < ss[j].dist })
	if len(ss) > m {
		ss = ss[:m]
	}
	out := make([]int32, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

func (h *hnswIndex) search(q embedding.Vector, k int, allow func(string) bool) []candidate {
	if h.entry == -1 || h.live == 0 {
		return nil
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	// With filters, widen the beam so post-filter recall holds up.
	if allow != nil {
		ef *= 2
	}
	accept := func(n *hnswNode) bool {
		if n.deleted {
			return false
		}
		return allow == nil || allow(n.id)
	}
	ep := h.entry
	for l := h.maxLevel; l > 0; l-- {
		ep = h.greedyClosest(q, ep, l)
	}
	found := h.searchLayer(q, []int32{ep}, ef, 0, accept)
	if len(found) > k {
		found = found[:k]
	}
	out := make([]candidate, len(found))
	for i, s := range found {
		out[i] = candidate{id: h.nodes[s.idx].id, dist: s.dist}
	}
	return out
}
