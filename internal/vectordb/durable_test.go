package vectordb

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestOpenWriteCloseReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("docs", CollectionConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Add(Document{
			ID:       fmt.Sprintf("d%d", i),
			Text:     fmt.Sprintf("document number %d about topic %d", i, i%3),
			Metadata: Metadata{"n": i},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Delete("d3", "d7", "missing"); got != 2 {
		t.Fatalf("deleted %d, want 2", got)
	}
	if _, err := db.CreateCollection("other", CollectionConfig{Index: "hnsw"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2, err := db2.Collection("docs")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 18 {
		t.Fatalf("recovered %d docs, want 18", c2.Count())
	}
	if len(c2.Get("d3")) != 0 {
		t.Fatal("deleted document survived restart")
	}
	got := c2.Get("d5")
	if len(got) != 1 || got[0].Text != "document number 5 about topic 2" {
		t.Fatalf("recovered doc wrong: %+v", got)
	}
	res, err := c2.Query(QueryRequest{Text: "document about topic 1", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("query after recovery returned %d results", len(res))
	}
	if names := db2.ListCollections(); len(names) != 2 {
		t.Fatalf("collections after reopen: %v", names)
	}
	// A clean Close cuts a snapshot and empties the log.
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range m.Collections {
		if fi, ok := statFile(filepath.Join(dir, h.WAL)); ok && fi.Size() != 0 {
			t.Fatalf("wal %s not truncated after Close: %d bytes", h.WAL, fi.Size())
		}
	}
}

func TestOpenRecoversWithoutClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, OpenOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("docs", CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Upsert(Document{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("text %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate a crash. Everything acknowledged under
	// SyncAlways must come back from the WAL alone.
	db2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2, err := db2.Collection("docs")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 10 {
		t.Fatalf("recovered %d docs, want 10", c2.Count())
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	var compactions atomic.Int64
	db, err := Open(dir, OpenOptions{
		CompactBytes: 1, // every durable write passes the threshold
		Hooks:        Hooks{IncCompaction: func(string) { compactions.Add(1) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("docs", CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := c.Upsert(Document{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("text %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for compactions.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if compactions.Load() == 0 {
		t.Fatal("no compaction ran")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := statFile(filepath.Join(dir, "wal_0.log.old")); ok {
		t.Fatal("rotated wal left behind after Close")
	}
	db2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	c2, err := db2.Collection("docs")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count() != 25 {
		t.Fatalf("recovered %d docs across compactions, want 25", c2.Count())
	}
}

func TestDeleteCollectionDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("gone", CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(Document{ID: "x", Text: "ephemeral"}); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteCollection("gone"); err != nil {
		t.Fatal(err)
	}
	if _, ok := statFile(filepath.Join(dir, "col_0.json")); ok {
		t.Fatal("snapshot file survived DeleteCollection")
	}
	if _, ok := statFile(filepath.Join(dir, "wal_0.log")); ok {
		t.Fatal("wal file survived DeleteCollection")
	}
	// File ids are not reused: the next collection gets a fresh number.
	if _, err := db.CreateCollection("next", CollectionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := statFile(filepath.Join(dir, "col_1.json")); !ok {
		t.Fatal("new collection did not get the next file id")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if names := db2.ListCollections(); len(names) != 1 || names[0] != "next" {
		t.Fatalf("collections after reopen: %v", names)
	}
}

// walOp is one acknowledged write in the crash-recovery property test.
type walOp struct {
	upsert []Document
	del    []string
}

func applyOps(model map[string]Document, ops []walOp) {
	for _, op := range ops {
		for _, d := range op.upsert {
			model[d.ID] = d
		}
		for _, id := range op.del {
			delete(model, id)
		}
	}
}

// TestCrashRecoveryPrefix is the crash-recovery property test: writing
// acknowledged operations, killing the log at an arbitrary byte offset,
// and reopening yields exactly the operations whose frames survived
// intact — a prefix of the acknowledged writes, with any torn final
// record discarded by the CRC check — and queries over the recovered
// collection match a never-crashed collection holding the same state.
func TestCrashRecoveryPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, OpenOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("docs", CollectionConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var ops []walOp
	for i := 0; i < 18; i++ {
		switch {
		case i%5 == 4:
			ids := []string{fmt.Sprintf("d%d", i-2)}
			c.Delete(ids...)
			ops = append(ops, walOp{del: ids})
		case i%7 == 3: // multi-document batch spanning shards
			batch := []Document{
				{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("batch doc %d", i)},
				{ID: fmt.Sprintf("d%db", i), Text: fmt.Sprintf("batch doc %d sibling", i)},
			}
			if err := c.Upsert(batch...); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, walOp{upsert: batch})
		default:
			d := Document{ID: fmt.Sprintf("d%d", i), Text: fmt.Sprintf("doc %d about subject %d", i, i%4)}
			if err := c.Upsert(d); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, walOp{upsert: []Document{d}})
		}
	}
	// No Close: the WAL is the only durable copy of these writes.
	walRaw, err := os.ReadFile(filepath.Join(dir, "wal_0.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, recomputed from the length headers alone.
	var ends []int64
	off := int64(0)
	for off < int64(len(walRaw)) {
		n := int64(binary.LittleEndian.Uint32(walRaw[off : off+4]))
		off += walFrameHeader + n
		ends = append(ends, off)
	}
	if off != int64(len(walRaw)) || len(ends) != len(ops) {
		t.Fatalf("wal has %d frames over %d/%d bytes, want %d ops", len(ends), off, len(walRaw), len(ops))
	}

	// Kill points: every frame boundary, mid-header, and mid-payload.
	cuts := []int64{0, 3}
	for i, e := range ends {
		cuts = append(cuts, e)
		if i+1 < len(ends) {
			cuts = append(cuts, e+5, (e+ends[i+1])/2)
		}
	}
	framesBelow := func(cut int64) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			crashDir := t.TempDir()
			copyDataDir(t, dir, crashDir)
			if err := os.Truncate(filepath.Join(crashDir, "wal_0.log"), cut); err != nil {
				t.Fatal(err)
			}
			verifyRecovered(t, crashDir, ops[:framesBelow(cut)])
		})
	}

	// Corrupting the final record's payload must discard it via CRC —
	// same outcome as truncating just before it.
	t.Run("corrupt-final-crc", func(t *testing.T) {
		crashDir := t.TempDir()
		copyDataDir(t, dir, crashDir)
		raw := append([]byte(nil), walRaw...)
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(filepath.Join(crashDir, "wal_0.log"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		verifyRecovered(t, crashDir, ops[:len(ops)-1])
	})
}

func copyDataDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// verifyRecovered opens crashDir and checks the recovered collection
// holds exactly the state after applying ops, and answers queries
// identically to a never-crashed in-memory collection of that state.
func verifyRecovered(t *testing.T, crashDir string, ops []walOp) {
	t.Helper()
	model := make(map[string]Document)
	applyOps(model, ops)

	db, err := Open(crashDir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.Collection("docs")
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != len(model) {
		t.Fatalf("recovered %d docs, want %d", c.Count(), len(model))
	}
	ref := newCollection("ref", CollectionConfig{Shards: 1})
	for id, d := range model {
		got := c.Get(id)
		if len(got) != 1 || got[0].Text != d.Text {
			t.Fatalf("doc %s: recovered %+v, want %+v", id, got, d)
		}
		if err := ref.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if len(model) == 0 {
		return
	}
	req := QueryRequest{Text: "doc about subject 2", TopK: len(model)}
	got, err := c.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered query returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: %s != %s", i, got[i].ID, want[i].ID)
		}
		if d := math.Abs(got[i].Distance - want[i].Distance); d > 1e-9 {
			t.Fatalf("rank %d distance off by %g", i, d)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, ok := range []string{"batch", "always", "none"} {
		if _, err := ParseSyncPolicy(ok); err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
