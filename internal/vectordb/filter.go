package vectordb

import (
	"fmt"
	"strings"
)

// filter is a compiled metadata predicate.
type filter func(Metadata) bool

// docPredicate is a compiled document-text predicate.
type docPredicate func(string) bool

// compileFilter translates a Chroma-style Where map into a predicate.
//
// Supported forms:
//
//	{"field": value}                      — equality shorthand
//	{"field": {"$eq": v}}                 — and $ne, $gt, $gte, $lt, $lte
//	{"field": {"$in": [v1, v2]}}          — and $nin
//	{"$and": [filter, filter, ...]}
//	{"$or":  [filter, filter, ...]}
//
// A map with several top-level fields is an implicit $and over them.
func compileFilter(where Metadata) (filter, error) {
	var preds []filter
	for key, val := range where {
		key, val := key, val
		switch key {
		case "$and", "$or":
			clauses, ok := val.([]any)
			if !ok {
				// Also accept a concrete []Metadata for Go callers.
				if ms, ok2 := val.([]Metadata); ok2 {
					clauses = make([]any, len(ms))
					for i, m := range ms {
						clauses[i] = m
					}
				} else {
					return nil, fmt.Errorf("%s expects a list of clauses", key)
				}
			}
			sub := make([]filter, 0, len(clauses))
			for _, cl := range clauses {
				m, err := toMetadata(cl)
				if err != nil {
					return nil, fmt.Errorf("%s clause: %w", key, err)
				}
				f, err := compileFilter(m)
				if err != nil {
					return nil, err
				}
				sub = append(sub, f)
			}
			isAnd := key == "$and"
			preds = append(preds, func(md Metadata) bool {
				for _, f := range sub {
					if f(md) != isAnd {
						return !isAnd
					}
				}
				return isAnd
			})
		default:
			if strings.HasPrefix(key, "$") {
				return nil, fmt.Errorf("unknown logical operator %q", key)
			}
			f, err := compileFieldPredicate(key, val)
			if err != nil {
				return nil, err
			}
			preds = append(preds, f)
		}
	}
	return func(md Metadata) bool {
		for _, p := range preds {
			if !p(md) {
				return false
			}
		}
		return true
	}, nil
}

func toMetadata(v any) (Metadata, error) {
	switch m := v.(type) {
	case Metadata:
		return m, nil
	case map[string]any:
		return Metadata(m), nil
	default:
		return nil, fmt.Errorf("expected object, got %T", v)
	}
}

// compileFieldPredicate builds the predicate for a single field.
func compileFieldPredicate(field string, spec any) (filter, error) {
	ops, err := toMetadata(spec)
	if err != nil {
		// Equality shorthand: {"field": value}.
		want := spec
		return func(md Metadata) bool {
			got, ok := md[field]
			return ok && scalarEqual(got, want)
		}, nil
	}
	var preds []filter
	for op, arg := range ops {
		op, arg := op, arg
		switch op {
		case "$eq":
			preds = append(preds, func(md Metadata) bool {
				got, ok := md[field]
				return ok && scalarEqual(got, arg)
			})
		case "$ne":
			preds = append(preds, func(md Metadata) bool {
				got, ok := md[field]
				return ok && !scalarEqual(got, arg)
			})
		case "$gt", "$gte", "$lt", "$lte":
			cmpArg, ok := toFloat(arg)
			if !ok {
				return nil, fmt.Errorf("%s on field %q needs a numeric argument, got %T", op, field, arg)
			}
			op := op
			preds = append(preds, func(md Metadata) bool {
				got, ok := md[field]
				if !ok {
					return false
				}
				f, ok := toFloat(got)
				if !ok {
					return false
				}
				switch op {
				case "$gt":
					return f > cmpArg
				case "$gte":
					return f >= cmpArg
				case "$lt":
					return f < cmpArg
				default:
					return f <= cmpArg
				}
			})
		case "$in", "$nin":
			list, ok := arg.([]any)
			if !ok {
				if ss, ok2 := arg.([]string); ok2 {
					list = make([]any, len(ss))
					for i, s := range ss {
						list[i] = s
					}
				} else {
					return nil, fmt.Errorf("%s on field %q needs a list, got %T", op, field, arg)
				}
			}
			isIn := op == "$in"
			preds = append(preds, func(md Metadata) bool {
				got, ok := md[field]
				if !ok {
					return false
				}
				for _, item := range list {
					if scalarEqual(got, item) {
						return isIn
					}
				}
				return !isIn
			})
		default:
			return nil, fmt.Errorf("unknown operator %q on field %q", op, field)
		}
	}
	return func(md Metadata) bool {
		for _, p := range preds {
			if !p(md) {
				return false
			}
		}
		return true
	}, nil
}

// compileDocFilter translates a WhereDocument map:
//
//	{"$contains": "substring"}
//	{"$not_contains": "substring"}
//	{"$and"/"$or": [docFilter, ...]}
func compileDocFilter(where Metadata) (docPredicate, error) {
	var preds []docPredicate
	for key, val := range where {
		switch key {
		case "$contains", "$not_contains":
			s, ok := val.(string)
			if !ok {
				return nil, fmt.Errorf("%s needs a string, got %T", key, val)
			}
			want := key == "$contains"
			needle := strings.ToLower(s)
			preds = append(preds, func(text string) bool {
				return strings.Contains(strings.ToLower(text), needle) == want
			})
		case "$and", "$or":
			clauses, ok := val.([]any)
			if !ok {
				return nil, fmt.Errorf("%s expects a list", key)
			}
			sub := make([]docPredicate, 0, len(clauses))
			for _, cl := range clauses {
				m, err := toMetadata(cl)
				if err != nil {
					return nil, err
				}
				p, err := compileDocFilter(m)
				if err != nil {
					return nil, err
				}
				sub = append(sub, p)
			}
			isAnd := key == "$and"
			preds = append(preds, func(text string) bool {
				for _, p := range sub {
					if p(text) != isAnd {
						return !isAnd
					}
				}
				return isAnd
			})
		default:
			return nil, fmt.Errorf("unknown document operator %q", key)
		}
	}
	return func(text string) bool {
		for _, p := range preds {
			if !p(text) {
				return false
			}
		}
		return true
	}, nil
}

// scalarEqual compares metadata scalars with JSON-style numeric
// coercion (int vs float64 from decoded JSON).
func scalarEqual(a, b any) bool {
	if fa, ok := toFloat(a); ok {
		if fb, ok2 := toFloat(b); ok2 {
			return fa == fb
		}
		return false
	}
	return a == b
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	default:
		return 0, false
	}
}
