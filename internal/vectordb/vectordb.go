// Package vectordb implements an embedded vector database modeled on
// ChromaDB, the storage-layer component of LLM-MS.
//
// The database stores named collections of documents. Each document has a
// caller-supplied id, raw text, a dense embedding, and optional metadata.
// Collections answer top-k nearest-neighbor queries under cosine, L2, or
// inner-product distance, optionally restricted by a Chroma-style metadata
// filter ($eq/$ne/$gt/$gte/$lt/$lte/$in/$nin composed with $and/$or) and a
// document-content filter ($contains/$not_contains).
//
// Two index implementations back the search: an exact flat index and an
// HNSW (hierarchical navigable small world) graph, matching the index
// family the paper's deployment uses ("cosine similarity with an HNSW
// index", §7.1). Collections persist to and load from JSON files; the
// index is rebuilt on load.
package vectordb

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"llmms/internal/embedding"
)

// Distance identifies the metric a collection uses for nearest-neighbor
// search.
type Distance string

// Supported distance metrics.
const (
	// Cosine distance: 1 − cosine similarity. The LLM-MS default.
	Cosine Distance = "cosine"
	// L2 is squared Euclidean distance.
	L2 Distance = "l2"
	// InnerProduct distance: −⟨a,b⟩.
	InnerProduct Distance = "ip"
)

// distFunc computes a distance between two vectors. Indexes hold one so
// a collection can swap the general metric for a cheaper equivalent (the
// unit-cosine fast path) without the indexes knowing why.
type distFunc func(a, b embedding.Vector) float64

// unitCosineDistance is cosine distance specialized to unit-or-zero
// vectors: one dot product, no norm recomputation. Numerically equal to
// Distance(Cosine).distance on such vectors; collections install it only
// while every stored embedding (and the query) upholds the invariant.
func unitCosineDistance(a, b embedding.Vector) float64 {
	return 1 - embedding.CosineUnit(a, b)
}

// distance computes the configured metric between two vectors.
func (d Distance) distance(a, b embedding.Vector) float64 {
	switch d {
	case L2:
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		var s float64
		for i := 0; i < n; i++ {
			diff := float64(a[i]) - float64(b[i])
			s += diff * diff
		}
		return s
	case InnerProduct:
		return -embedding.Dot(a, b)
	default: // Cosine
		return 1 - embedding.Cosine(a, b)
	}
}

// similarity converts a distance back to a similarity score where larger
// is better, for caller convenience.
func (d Distance) similarity(dist float64) float64 {
	switch d {
	case L2:
		return -dist
	case InnerProduct:
		return -dist
	default:
		return 1 - dist
	}
}

// Metadata is the schemaless per-document annotation map. Values should
// be strings, bools, or numbers (JSON-representable scalars).
type Metadata map[string]any

// Document is a stored record.
type Document struct {
	ID        string           `json:"id"`
	Text      string           `json:"text"`
	Embedding embedding.Vector `json:"embedding"`
	Metadata  Metadata         `json:"metadata,omitempty"`
}

// Result is one query hit.
type Result struct {
	ID       string
	Text     string
	Metadata Metadata
	// Distance under the collection metric (smaller is closer).
	Distance float64
	// Similarity is the metric-appropriate "larger is better" score; for
	// cosine collections it is the cosine similarity.
	Similarity float64
}

// QueryRequest describes a search against a collection. Exactly one of
// Text or Embedding must be set.
type QueryRequest struct {
	// Text is embedded with the collection encoder.
	Text string
	// Embedding queries with a precomputed vector.
	Embedding embedding.Vector
	// TopK is the number of results; defaults to 10.
	TopK int
	// Where filters on metadata (Chroma operator syntax); nil matches all.
	Where Metadata
	// WhereDocument filters on document text, e.g.
	// {"$contains": "visa"}; nil matches all.
	WhereDocument Metadata
}

// CollectionConfig controls collection creation.
type CollectionConfig struct {
	// Metric is the distance function; defaults to Cosine.
	Metric Distance
	// Encoder embeds Text on Add/Query when no explicit embedding is
	// given; defaults to embedding.Default().
	Encoder embedding.Encoder
	// Index selects the ANN structure: "flat" (exact, default) or "hnsw".
	Index string
	// HNSW tunes the graph index when Index == "hnsw".
	HNSW HNSWConfig
}

// Collection is a named set of documents with a search index. All methods
// are safe for concurrent use.
type Collection struct {
	name string
	cfg  CollectionConfig

	mu    sync.RWMutex
	docs  map[string]*Document
	index index
	// unitCosine reports that the collection is on the cosine fast path:
	// the metric is Cosine and every stored embedding is unit or zero —
	// guaranteed by the encoder for embedded text, verified on insert for
	// explicit embeddings. One non-unit explicit embedding downgrades the
	// collection (permanently) to the norm-recomputing metric.
	unitCosine bool
}

// index is the internal ANN interface implemented by flatIndex and
// hnswIndex. Implementations are NOT thread-safe; Collection serializes
// access.
type index interface {
	add(id string, v embedding.Vector)
	remove(id string)
	// setDist replaces the index's distance function. Callers only swap
	// between functions that agree on every vector currently stored, so
	// existing structure (HNSW links) stays valid.
	setDist(distFunc)
	// search returns up to k candidate ids ordered by increasing
	// distance, considering only ids accepted by allow (nil allows all).
	// Approximate indexes may consult more than k nodes internally.
	search(q embedding.Vector, k int, allow func(string) bool) []candidate
	// len reports the number of live entries.
	len() int
}

type candidate struct {
	id   string
	dist float64
}

func newIndex(cfg CollectionConfig) index {
	if cfg.Index == "hnsw" {
		return newHNSW(cfg.Metric, cfg.HNSW)
	}
	return newFlat(cfg.Metric)
}

// newCollection builds an empty collection, normalizing config defaults.
func newCollection(name string, cfg CollectionConfig) *Collection {
	if cfg.Metric == "" {
		cfg.Metric = Cosine
	}
	if cfg.Encoder == nil {
		cfg.Encoder = embedding.Default()
	}
	if cfg.Index == "" {
		cfg.Index = "flat"
	}
	cfg.HNSW = cfg.HNSW.withDefaults()
	c := &Collection{
		name:  name,
		cfg:   cfg,
		docs:  make(map[string]*Document),
		index: newIndex(cfg),
	}
	if cfg.Metric == Cosine {
		c.unitCosine = true
		c.index.setDist(unitCosineDistance)
	}
	return c
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Metric returns the collection's distance metric.
func (c *Collection) Metric() Distance { return c.cfg.Metric }

// Count returns the number of stored documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Add inserts documents. Documents without an embedding are embedded from
// their text with the collection encoder. Adding an existing id fails;
// use Upsert to replace.
func (c *Collection) Add(docs ...Document) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range docs {
		if d.ID == "" {
			return fmt.Errorf("vectordb: document with empty id")
		}
		if _, exists := c.docs[d.ID]; exists {
			return fmt.Errorf("vectordb: duplicate id %q in collection %q", d.ID, c.name)
		}
	}
	for _, d := range docs {
		c.insertLocked(d)
	}
	return nil
}

// Upsert inserts documents, replacing any existing documents with the
// same ids.
func (c *Collection) Upsert(docs ...Document) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range docs {
		if d.ID == "" {
			return fmt.Errorf("vectordb: document with empty id")
		}
		if _, exists := c.docs[d.ID]; exists {
			c.index.remove(d.ID)
			delete(c.docs, d.ID)
		}
		c.insertLocked(d)
	}
	return nil
}

func (c *Collection) insertLocked(d Document) {
	if len(d.Embedding) == 0 {
		// Encoder output is unit (or zero) by contract — no check needed.
		d.Embedding = c.cfg.Encoder.Encode(d.Text)
	} else if c.unitCosine {
		if n := embedding.Norm(d.Embedding); n != 0 && math.Abs(n-1) > 1e-4 {
			// An explicit non-unit embedding breaks the fast path's
			// invariant for the whole collection: fall back to the
			// norm-recomputing cosine for every comparison from here on.
			c.unitCosine = false
			c.index.setDist(c.cfg.Metric.distance)
		}
	}
	stored := d
	stored.Embedding = embedding.Clone(d.Embedding)
	c.docs[d.ID] = &stored
	c.index.add(d.ID, stored.Embedding)
}

// Delete removes the given ids; missing ids are ignored. It returns the
// number of documents actually removed.
func (c *Collection) Delete(ids ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for _, id := range ids {
		if _, ok := c.docs[id]; ok {
			delete(c.docs, id)
			c.index.remove(id)
			removed++
		}
	}
	return removed
}

// DeleteWhere removes every document whose metadata matches the filter
// (the ChromaDB delete-with-where operation). It returns how many
// documents were removed; an invalid filter is an error.
func (c *Collection) DeleteWhere(where Metadata) (int, error) {
	match, err := compileFilter(where)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []string
	for id, d := range c.docs {
		if match(d.Metadata) {
			doomed = append(doomed, id)
		}
	}
	for _, id := range doomed {
		delete(c.docs, id)
		c.index.remove(id)
	}
	return len(doomed), nil
}

// Get returns the documents with the given ids, omitting missing ones.
func (c *Collection) Get(ids ...string) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Document, 0, len(ids))
	for _, id := range ids {
		if d, ok := c.docs[id]; ok {
			cp := *d
			cp.Embedding = embedding.Clone(d.Embedding)
			out = append(out, cp)
		}
	}
	return out
}

// All returns every document, ordered by id. Intended for persistence
// and small collections.
func (c *Collection) All() []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Document, 0, len(c.docs))
	for _, d := range c.docs {
		cp := *d
		cp.Embedding = embedding.Clone(d.Embedding)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Query runs a top-k nearest-neighbor search.
func (c *Collection) Query(req QueryRequest) ([]Result, error) {
	if req.TopK <= 0 {
		req.TopK = 10
	}
	q := req.Embedding
	if len(q) == 0 {
		if req.Text == "" {
			return nil, fmt.Errorf("vectordb: query needs Text or Embedding")
		}
		q = c.cfg.Encoder.Encode(req.Text)
	} else if c.cfg.Metric == Cosine {
		// The fast path needs a unit query too. Normalizing a copy is
		// exact, not approximate: cosine similarity is invariant under
		// query scaling. Checked outside the lock against the config
		// metric; whether the collection is still on the fast path is
		// re-read under the lock below, and a normalized query is equally
		// correct on the slow path.
		q = embedding.Clone(q)
		embedding.NormalizeInPlace(q)
	}

	var metaFilter filter
	if req.Where != nil {
		f, err := compileFilter(req.Where)
		if err != nil {
			return nil, fmt.Errorf("vectordb: bad Where filter: %w", err)
		}
		metaFilter = f
	}
	var docFilter docPredicate
	if req.WhereDocument != nil {
		f, err := compileDocFilter(req.WhereDocument)
		if err != nil {
			return nil, fmt.Errorf("vectordb: bad WhereDocument filter: %w", err)
		}
		docFilter = f
	}

	c.mu.RLock()
	defer c.mu.RUnlock()

	allow := func(id string) bool {
		d, ok := c.docs[id]
		if !ok {
			return false
		}
		if metaFilter != nil && !metaFilter(d.Metadata) {
			return false
		}
		if docFilter != nil && !docFilter(d.Text) {
			return false
		}
		return true
	}

	cands := c.index.search(q, req.TopK, allow)
	results := make([]Result, 0, len(cands))
	for _, cand := range cands {
		d := c.docs[cand.id]
		results = append(results, Result{
			ID:         d.ID,
			Text:       d.Text,
			Metadata:   d.Metadata,
			Distance:   cand.dist,
			Similarity: c.cfg.Metric.similarity(cand.dist),
		})
	}
	return results, nil
}

// DB is a set of named collections, the top-level handle mirroring a
// ChromaDB client. All methods are safe for concurrent use.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// New returns an empty in-memory database.
func New() *DB {
	return &DB{collections: make(map[string]*Collection)}
}

// CreateCollection creates a new collection. It fails if the name exists.
func (db *DB) CreateCollection(name string, cfg CollectionConfig) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("vectordb: empty collection name")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.collections[name]; exists {
		return nil, fmt.Errorf("vectordb: collection %q already exists", name)
	}
	c := newCollection(name, cfg)
	db.collections[name] = c
	return c, nil
}

// GetOrCreateCollection returns the named collection, creating it with
// cfg if absent.
func (db *DB) GetOrCreateCollection(name string, cfg CollectionConfig) (*Collection, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.collections[name]; ok {
		return c, nil
	}
	if name == "" {
		return nil, fmt.Errorf("vectordb: empty collection name")
	}
	c := newCollection(name, cfg)
	db.collections[name] = c
	return c, nil
}

// Collection returns the named collection.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[name]
	if !ok {
		return nil, fmt.Errorf("vectordb: no collection %q", name)
	}
	return c, nil
}

// DeleteCollection removes the named collection and all its documents.
func (db *DB) DeleteCollection(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.collections[name]; !ok {
		return fmt.Errorf("vectordb: no collection %q", name)
	}
	delete(db.collections, name)
	return nil
}

// ListCollections returns the sorted names of all collections.
func (db *DB) ListCollections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
