// Package vectordb implements an embedded vector database modeled on
// ChromaDB, the storage-layer component of LLM-MS.
//
// The database stores named collections of documents. Each document has a
// caller-supplied id, raw text, a dense embedding, and optional metadata.
// Collections answer top-k nearest-neighbor queries under cosine, L2, or
// inner-product distance, optionally restricted by a Chroma-style metadata
// filter ($eq/$ne/$gt/$gte/$lt/$lte/$in/$nin composed with $and/$or) and a
// document-content filter ($contains/$not_contains).
//
// Two index implementations back the search: an exact flat index and an
// HNSW (hierarchical navigable small world) graph, matching the index
// family the paper's deployment uses ("cosine similarity with an HNSW
// index", §7.1).
//
// Every collection is split by document-id hash into independently locked
// shards (see shard.go), so concurrent upserts and queries contend on
// 1/N of the key space instead of one collection-wide lock. Queries fan
// out across shards and k-way merge by distance after every read lock is
// released.
//
// Two persistence layers exist: Save/Load write point-in-time JSON
// snapshots (persist.go), and Open arms a durable database where every
// write is CRC-framed into a per-collection write-ahead log before it is
// acknowledged, with snapshot+truncate compaction and crash recovery
// (wal.go, durable.go).
package vectordb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"llmms/internal/embedding"
)

// Distance identifies the metric a collection uses for nearest-neighbor
// search.
type Distance string

// Supported distance metrics.
const (
	// Cosine distance: 1 − cosine similarity. The LLM-MS default.
	Cosine Distance = "cosine"
	// L2 is squared Euclidean distance.
	L2 Distance = "l2"
	// InnerProduct distance: −⟨a,b⟩.
	InnerProduct Distance = "ip"
)

// distFunc computes a distance between two vectors. Indexes hold one so
// a collection can swap the general metric for a cheaper equivalent (the
// unit-cosine fast path) without the indexes knowing why.
type distFunc func(a, b embedding.Vector) float64

// unitCosineDistance is cosine distance specialized to unit-or-zero
// vectors: one dot product, no norm recomputation. Numerically equal to
// Distance(Cosine).distance on such vectors; shards install it only
// while every stored embedding (and the query) upholds the invariant.
func unitCosineDistance(a, b embedding.Vector) float64 {
	return 1 - embedding.CosineUnit(a, b)
}

// distance computes the configured metric between two vectors.
func (d Distance) distance(a, b embedding.Vector) float64 {
	switch d {
	case L2:
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		var s float64
		for i := 0; i < n; i++ {
			diff := float64(a[i]) - float64(b[i])
			s += diff * diff
		}
		return s
	case InnerProduct:
		return -embedding.Dot(a, b)
	default: // Cosine
		return 1 - embedding.Cosine(a, b)
	}
}

// similarity converts a distance back to a similarity score where larger
// is better, for caller convenience.
func (d Distance) similarity(dist float64) float64 {
	switch d {
	case L2:
		return -dist
	case InnerProduct:
		return -dist
	default:
		return 1 - dist
	}
}

// Metadata is the schemaless per-document annotation map. Values should
// be strings, bools, or numbers (JSON-representable scalars).
type Metadata map[string]any

// Document is a stored record.
type Document struct {
	ID        string           `json:"id"`
	Text      string           `json:"text"`
	Embedding embedding.Vector `json:"embedding"`
	Metadata  Metadata         `json:"metadata,omitempty"`
}

// Result is one query hit.
type Result struct {
	ID       string
	Text     string
	Metadata Metadata
	// Distance under the collection metric (smaller is closer).
	Distance float64
	// Similarity is the metric-appropriate "larger is better" score; for
	// cosine collections it is the cosine similarity.
	Similarity float64
}

// QueryRequest describes a search against a collection. Exactly one of
// Text or Embedding must be set.
type QueryRequest struct {
	// Text is embedded with the collection encoder.
	Text string
	// Embedding queries with a precomputed vector.
	Embedding embedding.Vector
	// TopK is the number of results; defaults to 10.
	TopK int
	// Where filters on metadata (Chroma operator syntax); nil matches all.
	Where Metadata
	// WhereDocument filters on document text, e.g.
	// {"$contains": "visa"}; nil matches all.
	WhereDocument Metadata
}

// CollectionConfig controls collection creation.
type CollectionConfig struct {
	// Metric is the distance function; defaults to Cosine.
	Metric Distance
	// Encoder embeds Text on Add/Query when no explicit embedding is
	// given; defaults to embedding.Default().
	Encoder embedding.Encoder
	// Index selects the ANN structure: "flat" (exact, default) or "hnsw".
	Index string
	// HNSW tunes the graph index when Index == "hnsw".
	HNSW HNSWConfig
	// Shards is how many independently locked partitions the collection
	// is split into by document-id hash. Non-positive means DefaultShards
	// (or the owning database's OpenOptions.DefaultShards).
	Shards int
}

// Hooks lets an observer (the telemetry layer) watch substrate activity
// without vectordb importing it. Every field is optional; the zero value
// observes nothing. telemetry.RegisterVectorDBMetrics returns a struct
// whose methods match these fields one-for-one.
type Hooks struct {
	// ObserveQuery times one Query call end to end.
	ObserveQuery func(collection string, d time.Duration)
	// ObserveInsert times one Add/Upsert call, durability wait included.
	ObserveInsert func(collection string, d time.Duration)
	// AddWALBytes counts bytes appended to a collection's WAL.
	AddWALBytes func(collection string, n int)
	// IncCompaction counts completed snapshot+truncate compactions.
	IncCompaction func(collection string)
	// SetShardDocs reports a shard's live document count after a write.
	SetShardDocs func(collection, shard string, docs int)
	// ObserveRecovery reports how long Open spent rebuilding state from
	// snapshots and WAL tails.
	ObserveRecovery func(d time.Duration)
}

// Collection is a named set of documents sharded by document-id hash,
// each shard with its own search index and RWMutex. All methods are safe
// for concurrent use.
type Collection struct {
	name       string
	cfg        CollectionConfig
	shards     []*shard
	shardNames []string // per-shard metric label values, precomputed
	hooks      Hooks

	// Durability; all nil/zero for in-memory collections.
	wal          *wal
	snapFile     string // snapshot path, absolute
	compactBytes int64
	compacting   atomic.Bool
}

// index is the internal ANN interface implemented by flatIndex and
// hnswIndex. Implementations are NOT thread-safe; the owning shard
// serializes access.
type index interface {
	add(id string, v embedding.Vector)
	remove(id string)
	// setDist replaces the index's distance function. Callers only swap
	// between functions that agree on every vector currently stored, so
	// existing structure (HNSW links) stays valid.
	setDist(distFunc)
	// search returns up to k candidate ids ordered by increasing
	// distance, considering only ids accepted by allow (nil allows all).
	// Approximate indexes may consult more than k nodes internally.
	search(q embedding.Vector, k int, allow func(string) bool) []candidate
	// len reports the number of live entries.
	len() int
}

type candidate struct {
	id   string
	dist float64
}

// newCollection builds an empty collection, normalizing config defaults.
func newCollection(name string, cfg CollectionConfig) *Collection {
	if cfg.Metric == "" {
		cfg.Metric = Cosine
	}
	if cfg.Encoder == nil {
		cfg.Encoder = embedding.Default()
	}
	if cfg.Index == "" {
		cfg.Index = "flat"
	}
	cfg.HNSW = cfg.HNSW.withDefaults()
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards()
	}
	c := &Collection{
		name:       name,
		cfg:        cfg,
		shards:     make([]*shard, cfg.Shards),
		shardNames: make([]string, cfg.Shards),
	}
	for i := range c.shards {
		c.shards[i] = newShard(cfg, i)
		c.shardNames[i] = fmt.Sprintf("%d", i)
	}
	return c
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Metric returns the collection's distance metric.
func (c *Collection) Metric() Distance { return c.cfg.Metric }

// Shards returns the number of shards the collection is split into.
func (c *Collection) Shards() int { return len(c.shards) }

// Count returns the number of stored documents.
func (c *Collection) Count() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// Add inserts documents. Documents without an embedding are embedded from
// their text with the collection encoder. Adding an existing id fails;
// use Upsert to replace.
func (c *Collection) Add(docs ...Document) error {
	return c.write(docs, false, true)
}

// Upsert inserts documents, replacing any existing documents with the
// same ids.
func (c *Collection) Upsert(docs ...Document) error {
	return c.write(docs, true, true)
}

// write is the shared insert path. Embeddings are resolved outside any
// lock; the involved shards are then locked in ascending index order
// (the global order that keeps multi-shard writes deadlock-free), the
// documents applied, and — for durable collections — the WAL record
// enqueued before the locks drop, so log order always matches apply
// order for any given document. The caller then waits for the group
// commit to make the write durable before it is acknowledged.
func (c *Collection) write(docs []Document, replace, logWAL bool) error {
	if len(docs) == 0 {
		return nil
	}
	var start time.Time
	if c.hooks.ObserveInsert != nil {
		start = time.Now()
	}
	pp, err := c.prepare(docs)
	if err != nil {
		return err
	}
	idxs := shardSet(pp)
	c.lockShards(idxs)
	if !replace {
		for i := range pp {
			if _, exists := c.shards[pp[i].shard].docs[pp[i].doc.ID]; exists {
				c.unlockShards(idxs)
				return fmt.Errorf("vectordb: duplicate id %q in collection %q", pp[i].doc.ID, c.name)
			}
		}
	}
	for i := range pp {
		c.shards[pp[i].shard].insertLocked(pp[i], c.cfg.Metric)
	}
	var ack *walAck
	if logWAL && c.wal != nil {
		ack = c.wal.append(walRecord{Op: walOpUpsert, Docs: docs})
	}
	c.unlockShards(idxs)
	c.observeShardDocs(idxs)
	if ack != nil {
		err = ack.wait()
	}
	if c.hooks.ObserveInsert != nil {
		c.hooks.ObserveInsert(c.name, time.Since(start))
	}
	if err != nil {
		return fmt.Errorf("vectordb: wal append in %q: %w", c.name, err)
	}
	c.maybeCompact()
	return nil
}

// prepared is a document ready for insertion: embedding resolved and
// cloned, fast-path impact precomputed, target shard chosen.
type prepared struct {
	doc        Document
	shard      int
	breaksUnit bool
}

// prepare resolves embeddings and shard targets for a batch, outside any
// lock — text encoding is the expensive part of an insert and must not
// serialize readers.
func (c *Collection) prepare(docs []Document) ([]prepared, error) {
	pp := make([]prepared, len(docs))
	for i, d := range docs {
		if d.ID == "" {
			return nil, fmt.Errorf("vectordb: document with empty id")
		}
		breaksUnit := false
		if len(d.Embedding) == 0 {
			// Encoder output is unit (or zero) by contract — no check needed.
			d.Embedding = c.cfg.Encoder.Encode(d.Text)
		} else {
			d.Embedding = embedding.Clone(d.Embedding)
			if c.cfg.Metric == Cosine {
				if n := embedding.Norm(d.Embedding); n != 0 && math.Abs(n-1) > 1e-4 {
					// An explicit non-unit embedding breaks the fast path's
					// invariant for its shard: that shard falls back to the
					// norm-recomputing cosine for every comparison from here on.
					breaksUnit = true
				}
			}
		}
		pp[i] = prepared{doc: d, shard: c.shardIndex(d.ID), breaksUnit: breaksUnit}
	}
	return pp, nil
}

// Delete removes the given ids; missing ids are ignored. It returns the
// number of documents actually removed.
func (c *Collection) Delete(ids ...string) int {
	if len(ids) == 0 {
		return 0
	}
	idxs := shardSetIDs(c, ids)
	c.lockShards(idxs)
	var removed []string
	for _, id := range ids {
		sh := c.shards[c.shardIndex(id)]
		if _, ok := sh.docs[id]; ok {
			delete(sh.docs, id)
			sh.index.remove(id)
			removed = append(removed, id)
		}
	}
	var ack *walAck
	if c.wal != nil && len(removed) > 0 {
		ack = c.wal.append(walRecord{Op: walOpDelete, IDs: removed})
	}
	c.unlockShards(idxs)
	c.observeShardDocs(idxs)
	if ack != nil {
		// Delete's signature predates durability; a sync failure cannot
		// be reported here, but waiting still orders the acknowledgement
		// after the group commit.
		_ = ack.wait()
		c.maybeCompact()
	}
	return len(removed)
}

// DeleteWhere removes every document whose metadata matches the filter
// (the ChromaDB delete-with-where operation). It returns how many
// documents were removed; an invalid filter is an error. Unlike Query,
// it locks every shard at once so the scan is a consistent point-in-time
// cut of the collection.
func (c *Collection) DeleteWhere(where Metadata) (int, error) {
	match, err := compileFilter(where)
	if err != nil {
		return 0, err
	}
	idxs := allShards(len(c.shards))
	c.lockShards(idxs)
	var doomed []string
	for _, sh := range c.shards {
		for id, d := range sh.docs {
			if match(d.Metadata) {
				doomed = append(doomed, id)
			}
		}
	}
	for _, id := range doomed {
		sh := c.shards[c.shardIndex(id)]
		delete(sh.docs, id)
		sh.index.remove(id)
	}
	var ack *walAck
	if c.wal != nil && len(doomed) > 0 {
		ack = c.wal.append(walRecord{Op: walOpDelete, IDs: doomed})
	}
	c.unlockShards(idxs)
	c.observeShardDocs(idxs)
	if ack != nil {
		if err := ack.wait(); err != nil {
			return len(doomed), fmt.Errorf("vectordb: wal append in %q: %w", c.name, err)
		}
		c.maybeCompact()
	}
	return len(doomed), nil
}

// Get returns the documents with the given ids, omitting missing ones.
func (c *Collection) Get(ids ...string) []Document {
	out := make([]Document, 0, len(ids))
	for _, id := range ids {
		sh := c.shards[c.shardIndex(id)]
		sh.mu.RLock()
		if d, ok := sh.docs[id]; ok {
			cp := *d
			cp.Embedding = embedding.Clone(d.Embedding)
			out = append(out, cp)
		}
		sh.mu.RUnlock()
	}
	return out
}

// All returns every document, ordered by id. Intended for persistence
// and small collections. Shards are read one at a time, so concurrent
// writes to other shards may or may not be included.
func (c *Collection) All() []Document {
	var out []Document
	for _, sh := range c.shards {
		sh.mu.RLock()
		for _, d := range sh.docs {
			cp := *d
			cp.Embedding = embedding.Clone(d.Embedding)
			out = append(out, cp)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Query runs a top-k nearest-neighbor search. Each shard is searched —
// and its hits materialized — under that shard's read lock alone; every
// lock is released before the cross-shard merge, so writers never wait
// behind merge or sort work.
func (c *Collection) Query(req QueryRequest) ([]Result, error) {
	var start time.Time
	if c.hooks.ObserveQuery != nil {
		start = time.Now()
	}
	if req.TopK <= 0 {
		req.TopK = 10
	}
	q := req.Embedding
	if len(q) == 0 {
		if req.Text == "" {
			return nil, fmt.Errorf("vectordb: query needs Text or Embedding")
		}
		q = c.cfg.Encoder.Encode(req.Text)
	} else if c.cfg.Metric == Cosine {
		// The fast path needs a unit query too. Normalizing a copy is
		// exact, not approximate: cosine similarity is invariant under
		// query scaling. Checked outside the locks against the config
		// metric; whether a shard is still on the fast path is its own
		// business, and a normalized query is equally correct on the
		// slow path.
		q = embedding.Clone(q)
		embedding.NormalizeInPlace(q)
	}

	var metaFilter filter
	if req.Where != nil {
		f, err := compileFilter(req.Where)
		if err != nil {
			return nil, fmt.Errorf("vectordb: bad Where filter: %w", err)
		}
		metaFilter = f
	}
	var docFilter docPredicate
	if req.WhereDocument != nil {
		f, err := compileDocFilter(req.WhereDocument)
		if err != nil {
			return nil, fmt.Errorf("vectordb: bad WhereDocument filter: %w", err)
		}
		docFilter = f
	}

	results := make([]Result, 0, req.TopK)
	for _, sh := range c.shards {
		sh.mu.RLock()
		var allow func(string) bool
		if metaFilter != nil || docFilter != nil {
			docs := sh.docs
			allow = func(id string) bool {
				d, ok := docs[id]
				if !ok {
					return false
				}
				if metaFilter != nil && !metaFilter(d.Metadata) {
					return false
				}
				if docFilter != nil && !docFilter(d.Text) {
					return false
				}
				return true
			}
		}
		cands := sh.index.search(q, req.TopK, allow)
		for _, cand := range cands {
			d := sh.docs[cand.id]
			results = append(results, Result{
				ID:         d.ID,
				Text:       d.Text,
				Metadata:   d.Metadata,
				Distance:   cand.dist,
				Similarity: c.cfg.Metric.similarity(cand.dist),
			})
		}
		sh.mu.RUnlock()
	}
	// Merge: each shard's hits are already its local top-k; a global
	// sort of at most k·shards rows picks the collection-wide top-k with
	// the same (distance, id) order a single-shard scan would produce.
	sort.Slice(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		return results[i].ID < results[j].ID
	})
	if len(results) > req.TopK {
		results = results[:req.TopK]
	}
	if c.hooks.ObserveQuery != nil {
		c.hooks.ObserveQuery(c.name, time.Since(start))
	}
	return results, nil
}

// observeShardDocs reports the affected shards' live document counts to
// the telemetry hook after a write.
func (c *Collection) observeShardDocs(idxs []int) {
	if c.hooks.SetShardDocs == nil {
		return
	}
	for _, i := range idxs {
		sh := c.shards[i]
		sh.mu.RLock()
		n := len(sh.docs)
		sh.mu.RUnlock()
		c.hooks.SetShardDocs(c.name, c.shardNames[i], n)
	}
}

// DB is a set of named collections, the top-level handle mirroring a
// ChromaDB client. All methods are safe for concurrent use. New builds
// an in-memory database; Open (durable.go) builds one whose collections
// write ahead to disk and survive crashes.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	hooks       Hooks

	// Durability; zero for in-memory databases.
	dir  string
	opts OpenOptions
	man  manifest
}

// New returns an empty in-memory database.
func New() *DB {
	return &DB{collections: make(map[string]*Collection)}
}

// SetHooks installs observer hooks on the database. Hooks apply to
// collections created afterwards; call it before CreateCollection.
func (db *DB) SetHooks(h Hooks) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.hooks = h
}

// CreateCollection creates a new collection. It fails if the name exists.
func (db *DB) CreateCollection(name string, cfg CollectionConfig) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("vectordb: empty collection name")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.collections[name]; exists {
		return nil, fmt.Errorf("vectordb: collection %q already exists", name)
	}
	return db.createLocked(name, cfg)
}

// GetOrCreateCollection returns the named collection, creating it with
// cfg if absent.
func (db *DB) GetOrCreateCollection(name string, cfg CollectionConfig) (*Collection, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.collections[name]; ok {
		return c, nil
	}
	if name == "" {
		return nil, fmt.Errorf("vectordb: empty collection name")
	}
	return db.createLocked(name, cfg)
}

// createLocked builds a collection and, on a durable database, arms its
// WAL and registers it in the on-disk manifest. Caller holds db.mu.
func (db *DB) createLocked(name string, cfg CollectionConfig) (*Collection, error) {
	if cfg.Shards <= 0 && db.opts.DefaultShards > 0 {
		cfg.Shards = db.opts.DefaultShards
	}
	c := newCollection(name, cfg)
	c.hooks = db.hooks
	if db.dir != "" {
		if err := db.armLocked(c); err != nil {
			return nil, err
		}
	}
	db.collections[name] = c
	return c, nil
}

// Collection returns the named collection.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.collections[name]
	if !ok {
		return nil, fmt.Errorf("vectordb: no collection %q", name)
	}
	return c, nil
}

// DeleteCollection removes the named collection and all its documents,
// including its on-disk state on durable databases.
func (db *DB) DeleteCollection(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		return fmt.Errorf("vectordb: no collection %q", name)
	}
	if db.dir != "" {
		if err := db.disarmLocked(c); err != nil {
			return err
		}
	}
	delete(db.collections, name)
	return nil
}

// ListCollections returns the sorted names of all collections.
func (db *DB) ListCollections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
