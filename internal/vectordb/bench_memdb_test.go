package vectordb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llmms/internal/embedding"
)

// Memory-substrate benchmarks: concurrent mixed insert/query throughput
// of the sharded collection against a faithful replica of the pre-shard
// seed design (one RWMutex over a map-backed flat index, full-sort
// top-k), plus a single-goroutine query-latency pair guarding against
// regression on the uncontended path.
//
//	make bench-memdb    # writes BENCH_memdb.json
//
// The mixed benchmark models the serving workload: open-loop writers
// (RAG ingestion arrives on its own schedule, think time between
// upserts) next to closed-loop readers (queries issue back to back).
// Under the seed's single lock every writer convoys behind every
// reader's full-collection scan; shards bound that blast radius to
// 1/Nth of the corpus, and the heap-based top-k does its scan in
// O(n log k) instead of O(n log n).

const (
	benchCorpus = 8192
	benchTopK   = 10
	benchWindow = 250 * time.Millisecond
	benchThink  = 500 * time.Microsecond
	// benchBatch is the documents-per-Upsert of the writer goroutines,
	// matching RAG ingestion, which upserts all chunks of one file in a
	// single call.
	benchBatch = 4
)

// seedCollection replicates the pre-sharding storage design from the
// seed commit: one RWMutex serializing a map of documents and a
// map-backed flat index whose search allocates a candidate per live
// vector and fully sorts them. It is the benchmark baseline, kept
// byte-for-byte faithful in the operations that dominate cost.
type seedCollection struct {
	mu      sync.RWMutex
	docs    map[string]*Document
	entries map[string]embedding.Vector
}

func newSeedCollection() *seedCollection {
	return &seedCollection{
		docs:    make(map[string]*Document),
		entries: make(map[string]embedding.Vector),
	}
}

func (s *seedCollection) Upsert(docs ...Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range docs {
		if _, exists := s.docs[d.ID]; exists {
			delete(s.entries, d.ID)
			delete(s.docs, d.ID)
		}
		// The seed verified the fast-path invariant and cloned under the
		// exclusive lock (its insertLocked ran there).
		_ = embedding.Norm(d.Embedding)
		stored := d
		stored.Embedding = embedding.Clone(d.Embedding)
		s.docs[d.ID] = &stored
		s.entries[d.ID] = stored.Embedding
	}
	return nil
}

func (s *seedCollection) Query(req QueryRequest) ([]Result, error) {
	k := req.TopK
	s.mu.RLock()
	defer s.mu.RUnlock()
	// The seed's Collection.Query always handed the index a non-nil
	// allow closure that re-checked membership in the docs map (filter
	// hooks), so every candidate paid a second map lookup.
	allow := func(id string) bool {
		_, ok := s.docs[id]
		return ok
	}
	cands := make([]candidate, 0, len(s.entries))
	for id, v := range s.entries {
		if !allow(id) {
			continue
		}
		cands = append(cands, candidate{id: id, dist: unitCosineDistance(req.Embedding, v)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	results := make([]Result, 0, len(cands))
	for _, cand := range cands {
		d := s.docs[cand.id]
		results = append(results, Result{
			ID: d.ID, Text: d.Text, Metadata: d.Metadata,
			Distance: cand.dist, Similarity: 1 - cand.dist,
		})
	}
	return results, nil
}

// memStore is the surface both contenders expose to the workload.
type memStore interface {
	Upsert(docs ...Document) error
	Query(req QueryRequest) ([]Result, error)
}

// benchCorpusDocs builds the shared corpus once; encoding dominates
// setup, not the measured window.
var benchDocs = func() []Document {
	enc := embedding.Default()
	docs := make([]Document, benchCorpus)
	for i := range docs {
		text := fmt.Sprintf("benchmark document %d about topic %d", i, i%97)
		docs[i] = Document{
			ID:        fmt.Sprintf("doc-%04d", i),
			Text:      text,
			Embedding: enc.Encode(text),
		}
	}
	return docs
}()

func seedStore(b *testing.B, s memStore) {
	b.Helper()
	if err := s.Upsert(benchDocs...); err != nil {
		b.Fatal(err)
	}
}

func newShardedStore(b *testing.B, shards int) memStore {
	b.Helper()
	db := New()
	col, err := db.CreateCollection("bench", CollectionConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// runMixedWindow drives g goroutines against s for a fixed wall-clock
// window and returns (queries, upserts) completed. g == 1 runs one
// closed-loop goroutine alternating query and upsert; g > 1 splits into
// g/2 closed-loop readers and g/2 open-loop writers with benchThink of
// think time between upserts.
func runMixedWindow(b *testing.B, s memStore, g int) (queries, upserts int64) {
	b.Helper()
	deadline := time.Now().Add(benchWindow)
	var q, u int64
	var wg sync.WaitGroup

	queryOnce := func(i int) {
		req := QueryRequest{Embedding: benchDocs[i%benchCorpus].Embedding, TopK: benchTopK}
		if _, err := s.Query(req); err != nil {
			b.Error(err)
		}
		atomic.AddInt64(&q, 1)
	}
	upsertOnce := func(i int) {
		batch := make([]Document, benchBatch)
		for j := range batch {
			batch[j] = benchDocs[(i+j)%benchCorpus]
		}
		if err := s.Upsert(batch...); err != nil {
			b.Error(err)
		}
		atomic.AddInt64(&u, benchBatch)
	}

	if g == 1 {
		for i := 0; time.Now().Before(deadline); i++ {
			if i%2 == 0 {
				queryOnce(i)
			} else {
				upsertOnce(i)
			}
		}
		return q, u
	}
	for r := 0; r < g/2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; time.Now().Before(deadline); i += g {
				queryOnce(i)
			}
		}(r)
	}
	for w := 0; w < g/2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i += g {
				upsertOnce(i)
				time.Sleep(benchThink)
			}
		}(w)
	}
	wg.Wait()
	return q, u
}

func benchMixed(b *testing.B, mk func(b *testing.B) memStore, g int) {
	s := mk(b)
	seedStore(b, s)
	runMixedWindow(b, s, g) // warm-up window outside the timer
	var queries, upserts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, u := runMixedWindow(b, s, g)
		queries += q
		upserts += u
	}
	elapsed := benchWindow.Seconds() * float64(b.N)
	b.ReportMetric(float64(queries+upserts)/elapsed, "ops/sec")
	b.ReportMetric(float64(queries)/elapsed, "queries/sec")
	b.ReportMetric(float64(upserts)/elapsed, "upserts/sec")
}

// BenchmarkMemDBMixed is the headline sharding benchmark: mixed
// insert/query throughput at 1, 4, and 16 goroutines, seed replica vs
// sharded collection.
func BenchmarkMemDBMixed(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		g := g
		b.Run(fmt.Sprintf("baseline/g=%d", g), func(b *testing.B) {
			benchMixed(b, func(b *testing.B) memStore { return newSeedCollection() }, g)
		})
		b.Run(fmt.Sprintf("sharded/g=%d", g), func(b *testing.B) {
			benchMixed(b, func(b *testing.B) memStore { return newShardedStore(b, 16) }, g)
		})
	}
}

// BenchmarkMemDBQueryLatency pins the single-goroutine, uncontended
// query path: sharding must not tax the reader who never contends
// (acceptance bound: within 10% of the seed design).
func BenchmarkMemDBQueryLatency(b *testing.B) {
	run := func(b *testing.B, s memStore) {
		seedStore(b, s)
		req := QueryRequest{Embedding: benchDocs[0].Embedding, TopK: benchTopK}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req.Embedding = benchDocs[i%benchCorpus].Embedding
			if _, err := s.Query(req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, newSeedCollection()) })
	b.Run("sharded", func(b *testing.B) { run(b, newShardedStore(b, 16)) })
}
