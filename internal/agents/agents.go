// Package agents implements the paper's §9.5 "Multi-Agent Collaboration
// Framework" proposal: complex questions are broken into smaller tasks
// handled by different workers — "one module gathers background info,
// another figures out how to piece an answer together, and a third
// double-checks for errors. They can work in sequence or side by side."
//
// The realization here has three roles:
//
//   - the Planner decomposes a compound query into sub-questions
//     (conjunctions, multiple question marks, enumerated clauses);
//   - Workers answer every sub-question concurrently, each through the
//     full LLM-MS orchestrator (so every sub-task still benefits from
//     multi-model selection);
//   - the Checker verifies each sub-answer's semantic relevance to its
//     sub-question and sends failures back for one retry under an
//     alternate strategy before composing the final answer.
package agents

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"llmms/internal/core"
	"llmms/internal/embedding"
)

// Options tunes a Team.
type Options struct {
	// Strategy is the orchestration policy workers use. Default OUA.
	Strategy core.Strategy
	// RetryStrategy is used by the checker's second attempt. Default MAB.
	RetryStrategy core.Strategy
	// VerifyThreshold is the minimum cosine similarity between a
	// sub-answer and its sub-question for the checker to accept it.
	// Default 0.15 (the simulated encoder's relevant/irrelevant gap sits
	// well above this).
	VerifyThreshold float64
	// MaxSubtasks caps the planner's decomposition. Default 6.
	MaxSubtasks int
	// Encoder is used by the checker; nil means embedding.Default().
	Encoder embedding.Encoder
}

func (o Options) withDefaults() Options {
	if o.Strategy == "" {
		o.Strategy = core.StrategyOUA
	}
	if o.RetryStrategy == "" {
		o.RetryStrategy = core.StrategyMAB
	}
	if o.VerifyThreshold <= 0 {
		o.VerifyThreshold = 0.15
	}
	if o.MaxSubtasks <= 0 {
		o.MaxSubtasks = 6
	}
	if o.Encoder == nil {
		o.Encoder = embedding.Default()
	}
	return o
}

// Team coordinates the planner, workers, and checker over one
// orchestrator.
type Team struct {
	orch *core.Orchestrator
	opts Options
}

// NewTeam builds a team over an orchestrator.
func NewTeam(orch *core.Orchestrator, opts Options) (*Team, error) {
	if orch == nil {
		return nil, fmt.Errorf("agents: nil orchestrator")
	}
	return &Team{orch: orch, opts: opts.withDefaults()}, nil
}

// SubResult is one worker's outcome for one sub-question.
type SubResult struct {
	// Question is the planner-assigned sub-question.
	Question string `json:"question"`
	// Result is the orchestrated answer.
	Result core.Result `json:"result"`
	// Relevance is the checker's cosine score for the final answer.
	Relevance float64 `json:"relevance"`
	// Verified reports whether the checker accepted the answer.
	Verified bool `json:"verified"`
	// Retried reports whether the checker's retry produced this answer.
	Retried bool `json:"retried"`
}

// TeamResult is the composed outcome of one collaborative query.
type TeamResult struct {
	// Query is the original compound question.
	Query string `json:"query"`
	// Sub are the per-sub-question outcomes, in plan order.
	Sub []SubResult `json:"sub"`
	// Answer is the composed response.
	Answer string `json:"answer"`
	// TokensUsed is the total cost across all workers and retries.
	TokensUsed int `json:"tokens_used"`
	// Elapsed is the wall-clock time for the whole collaboration.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Answer runs the plan → work → check → compose pipeline.
func (t *Team) Answer(ctx context.Context, query string) (TeamResult, error) {
	start := time.Now()
	tasks := Decompose(query, t.opts.MaxSubtasks)
	res := TeamResult{Query: query, Sub: make([]SubResult, len(tasks))}

	// Workers run side by side, one per sub-question.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, task := range tasks {
		wg.Add(1)
		go func(i int, task string) {
			defer wg.Done()
			sub, err := t.workAndCheck(ctx, task)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			res.Sub[i] = sub
		}(i, task)
	}
	wg.Wait()
	if firstErr != nil {
		return TeamResult{}, firstErr
	}

	// Composer: stitch verified answers in plan order; a sub-answer the
	// checker could not verify is included but flagged, so the caller
	// (and the user) can see which part is weak.
	var parts []string
	for _, s := range res.Sub {
		answer := strings.TrimSpace(s.Result.Answer)
		if !s.Verified {
			answer += " (unverified)"
		}
		parts = append(parts, answer)
		res.TokensUsed += s.Result.TokensUsed
	}
	res.Answer = strings.Join(parts, " ")
	res.Elapsed = time.Since(start)
	return res, nil
}

// workAndCheck answers one sub-question and verifies it, retrying once
// under the alternate strategy when the checker rejects the answer.
func (t *Team) workAndCheck(ctx context.Context, task string) (SubResult, error) {
	result, err := t.orch.Run(ctx, t.opts.Strategy, task)
	if err != nil {
		return SubResult{}, fmt.Errorf("agents: worker %q: %w", task, err)
	}
	sub := SubResult{Question: task, Result: result}
	sub.Relevance = t.relevance(task, result.Answer)
	sub.Verified = sub.Relevance >= t.opts.VerifyThreshold
	if sub.Verified {
		return sub, nil
	}
	// Checker rejected: one retry with the alternate strategy; keep
	// whichever answer the checker scores higher.
	retry, err := t.orch.Run(ctx, t.opts.RetryStrategy, task)
	if err != nil {
		return SubResult{}, fmt.Errorf("agents: retry %q: %w", task, err)
	}
	retryRelevance := t.relevance(task, retry.Answer)
	retryTokens := sub.Result.TokensUsed + retry.TokensUsed
	if retryRelevance > sub.Relevance {
		sub.Result = retry
		sub.Relevance = retryRelevance
		sub.Retried = true
		sub.Verified = retryRelevance >= t.opts.VerifyThreshold
	}
	// Both attempts' tokens were spent regardless of which answer wins.
	sub.Result.TokensUsed = retryTokens
	return sub, nil
}

func (t *Team) relevance(question, answer string) float64 {
	if strings.TrimSpace(answer) == "" {
		return 0
	}
	return embedding.Cosine(t.opts.Encoder.Encode(question), t.opts.Encoder.Encode(answer))
}

// Decompose is the planner: it splits a compound query into at most max
// sub-questions. Boundaries are sentence-final question marks and
// top-level "and also" / "; " / ", and " conjunctions joining clauses
// that each carry their own interrogative. A query that does not
// decompose returns itself as the single task.
func Decompose(query string, max int) []string {
	query = strings.TrimSpace(query)
	if query == "" {
		return nil
	}
	if max <= 0 {
		max = 6
	}

	// Pass 1: split on question marks — "A? B? C?" is three tasks.
	var pieces []string
	rest := query
	for {
		i := strings.IndexByte(rest, '?')
		if i < 0 {
			if s := strings.TrimSpace(rest); s != "" {
				pieces = append(pieces, s)
			}
			break
		}
		pieces = append(pieces, strings.TrimSpace(rest[:i+1]))
		rest = rest[i+1:]
	}

	// Pass 2: inside each piece, split top-level conjunctions when both
	// sides look like questions ("what is X and what is Y?").
	var tasks []string
	for _, p := range pieces {
		tasks = append(tasks, splitConjunctions(p)...)
	}
	if len(tasks) > max {
		tasks = tasks[:max]
	}
	if len(tasks) == 0 {
		return []string{query}
	}
	return tasks
}

// interrogatives open a clause that can stand alone as a question.
var interrogatives = []string{
	"what ", "who ", "where ", "when ", "which ", "why ", "how ",
	"is ", "are ", "do ", "does ", "did ", "can ", "should ", "was ", "were ",
}

func splitConjunctions(piece string) []string {
	lower := strings.ToLower(piece)
	for _, sep := range []string{"; ", ", and ", " and also ", " and "} {
		idx := strings.Index(lower, sep)
		if idx < 0 {
			continue
		}
		left := strings.TrimSpace(piece[:idx])
		right := strings.TrimSpace(piece[idx+len(sep):])
		if left == "" || right == "" || !startsInterrogative(right) {
			continue
		}
		// Both sides must be askable; carry the left's terminal "?" over.
		if !strings.HasSuffix(left, "?") {
			left += "?"
		}
		if !strings.HasSuffix(right, "?") {
			right += "?"
		}
		return append(splitConjunctions(left), splitConjunctions(right)...)
	}
	if s := strings.TrimSpace(piece); s != "" {
		return []string{s}
	}
	return nil
}

func startsInterrogative(s string) bool {
	lower := strings.ToLower(s)
	for _, w := range interrogatives {
		if strings.HasPrefix(lower, w) {
			return true
		}
	}
	return false
}
