package agents

import (
	"context"
	"strings"
	"testing"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

func TestDecompose(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{
			"Are bats blind?",
			[]string{"Are bats blind?"},
		},
		{
			"Are bats blind? Do goldfish have a three-second memory?",
			[]string{"Are bats blind?", "Do goldfish have a three-second memory?"},
		},
		{
			"What is the capital of France and what is the currency of Japan?",
			[]string{"What is the capital of France?", "what is the currency of Japan?"},
		},
		{
			"Tell me about the history of tea and its ceremonies",
			[]string{"Tell me about the history of tea and its ceremonies"},
		},
		{
			"Are bats blind; do vaccines cause autism?",
			[]string{"Are bats blind?", "do vaccines cause autism?"},
		},
	}
	for _, tc := range cases {
		got := Decompose(tc.query, 6)
		if len(got) != len(tc.want) {
			t.Fatalf("Decompose(%q) = %q, want %q", tc.query, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Decompose(%q)[%d] = %q, want %q", tc.query, i, got[i], tc.want[i])
			}
		}
	}
	if got := Decompose("", 6); got != nil {
		t.Fatalf("empty query decomposed to %v", got)
	}
	// The cap truncates runaway decompositions.
	many := strings.Repeat("Are bats blind? ", 10)
	if got := Decompose(many, 3); len(got) != 3 {
		t.Fatalf("cap ignored: %d tasks", len(got))
	}
}

func newTeam(t *testing.T) *Team {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 200
	orch, err := core.New(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	team, err := NewTeam(orch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return team
}

func TestTeamAnswersCompoundQuery(t *testing.T) {
	team := newTeam(t)
	res, err := team.Answer(context.Background(),
		"Are bats blind? What happens if you swallow chewing gum?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sub) != 2 {
		t.Fatalf("%d sub-results", len(res.Sub))
	}
	lower := strings.ToLower(res.Answer)
	if !strings.Contains(lower, "bat") && !strings.Contains(lower, "blind") && !strings.Contains(lower, "see") {
		t.Fatalf("first sub-answer missing from composition: %q", res.Answer)
	}
	if !strings.Contains(lower, "gum") && !strings.Contains(lower, "digest") {
		t.Fatalf("second sub-answer missing from composition: %q", res.Answer)
	}
	total := 0
	for _, s := range res.Sub {
		if s.Question == "" || s.Result.Answer == "" {
			t.Fatalf("incomplete sub-result: %+v", s)
		}
		total += s.Result.TokensUsed
	}
	if total != res.TokensUsed {
		t.Fatalf("token accounting: %d != %d", total, res.TokensUsed)
	}
}

func TestTeamVerifiesRelevantAnswers(t *testing.T) {
	team := newTeam(t)
	res, err := team.Answer(context.Background(), "Do vaccines cause autism?")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sub) != 1 {
		t.Fatalf("%d sub-results", len(res.Sub))
	}
	if !res.Sub[0].Verified {
		t.Fatalf("checker rejected an on-topic benchmark answer: %+v", res.Sub[0])
	}
	if strings.Contains(res.Answer, "(unverified)") {
		t.Fatalf("verified answer flagged: %q", res.Answer)
	}
}

func TestTeamCheckerRetries(t *testing.T) {
	// A high threshold forces the checker to reject the first attempt
	// and retry under the alternate strategy.
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 200
	orch, err := core.New(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	team, err := NewTeam(orch, Options{VerifyThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	res, err := team.Answer(context.Background(), "Are bats blind?")
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Sub[0]
	if sub.Verified {
		t.Fatalf("0.99 threshold verified: %+v", sub)
	}
	if !strings.Contains(res.Answer, "(unverified)") {
		t.Fatalf("unverified answer not flagged: %q", res.Answer)
	}
	// Both attempts' tokens are accounted.
	if sub.Result.TokensUsed <= 200/3 {
		t.Fatalf("retry tokens unaccounted: %d", sub.Result.TokensUsed)
	}
}

func TestTeamPropagatesErrors(t *testing.T) {
	team := newTeam(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := team.Answer(ctx, "Are bats blind? Do goldfish forget?"); err == nil {
		t.Fatal("expected cancellation error")
	}
	if _, err := NewTeam(nil, Options{}); err == nil {
		t.Fatal("expected error for nil orchestrator")
	}
}

func BenchmarkTeamAnswer(b *testing.B) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 128
	orch, _ := core.New(engine, cfg)
	team, _ := NewTeam(orch, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := team.Answer(context.Background(),
			"Are bats blind? What happens if you swallow chewing gum?"); err != nil {
			b.Fatal(err)
		}
	}
}
