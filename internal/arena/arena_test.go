package arena

import (
	"context"
	"math"
	"strings"
	"testing"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

func outcome(model string, score float64, tokens int) core.ModelOutcome {
	return core.ModelOutcome{Model: model, Score: score, Tokens: tokens}
}

func result(outs ...core.ModelOutcome) core.Result {
	return core.Result{Outcomes: outs}
}

func TestObserveUpdatesRatings(t *testing.T) {
	a := New(Options{})
	a.Observe(result(
		outcome("strong", 0.8, 30),
		outcome("weak", 0.2, 30),
	))
	if a.Rating("strong") <= 1500 || a.Rating("weak") >= 1500 {
		t.Fatalf("ratings did not move: strong=%f weak=%f", a.Rating("strong"), a.Rating("weak"))
	}
	// Elo is zero-sum.
	total := a.Rating("strong") + a.Rating("weak")
	if math.Abs(total-3000) > 1e-9 {
		t.Fatalf("ratings not conserved: %f", total)
	}
}

func TestDrawMargin(t *testing.T) {
	a := New(Options{DrawMargin: 0.05})
	a.Observe(result(
		outcome("a", 0.50, 10),
		outcome("b", 0.52, 10),
	))
	standings := a.Standings()
	for _, p := range standings {
		if p.Draws != 1 || p.Wins != 0 || p.Losses != 0 {
			t.Fatalf("near-equal scores should draw: %+v", p)
		}
	}
	// Equal-rating draw moves nothing.
	if a.Rating("a") != 1500 || a.Rating("b") != 1500 {
		t.Fatalf("draw between equals moved ratings: %f %f", a.Rating("a"), a.Rating("b"))
	}
}

func TestSilentModelsSitOut(t *testing.T) {
	a := New(Options{})
	a.Observe(result(
		outcome("played", 0.7, 20),
		outcome("alsoPlayed", 0.3, 20),
		outcome("silent", 0.9, 0), // produced nothing
	))
	if a.Rating("silent") != 1500 {
		t.Fatalf("silent model rated: %f", a.Rating("silent"))
	}
	// A single-competitor round is not a game.
	b := New(Options{})
	b.Observe(result(outcome("lonely", 0.9, 10)))
	if len(b.Standings()) != 0 {
		t.Fatalf("single competitor created players: %v", b.Standings())
	}
}

func TestRatingsConvergeToQualityOrder(t *testing.T) {
	a := New(Options{})
	// Over many rounds, "best" usually outscores "mid", which outscores
	// "worst"; ratings must converge to that order.
	scores := []struct{ best, mid, worst float64 }{
		{0.8, 0.6, 0.2}, {0.7, 0.5, 0.3}, {0.9, 0.4, 0.1},
		{0.6, 0.7, 0.2}, // one upset
		{0.8, 0.5, 0.3}, {0.75, 0.55, 0.25}, {0.85, 0.65, 0.15},
	}
	for _, s := range scores {
		a.Observe(result(
			outcome("best", s.best, 10),
			outcome("mid", s.mid, 10),
			outcome("worst", s.worst, 10),
		))
	}
	st := a.Standings()
	if st[0].Model != "best" || st[1].Model != "mid" || st[2].Model != "worst" {
		t.Fatalf("standings order: %+v", st)
	}
	if st[0].Games != 2*len(scores) {
		t.Fatalf("games = %d, want %d", st[0].Games, 2*len(scores))
	}
}

func TestPriors(t *testing.T) {
	a := New(Options{})
	if p := a.Priors(0.05); len(p) != 0 {
		t.Fatalf("empty arena priors = %v", p)
	}
	for i := 0; i < 10; i++ {
		a.Observe(result(outcome("top", 0.9, 10), outcome("bottom", 0.1, 10)))
	}
	priors := a.Priors(0.05)
	if priors["top"] <= 0 || priors["bottom"] >= 0 {
		t.Fatalf("priors = %v", priors)
	}
	for _, v := range priors {
		if math.Abs(v) > 0.05+1e-12 {
			t.Fatalf("prior exceeds cap: %v", priors)
		}
	}
}

func TestStringLeaderboard(t *testing.T) {
	a := New(Options{})
	a.Observe(result(outcome("x", 0.9, 10), outcome("y", 0.1, 10)))
	s := a.String()
	if !strings.Contains(s, "Rating") || !strings.Contains(s, "x") {
		t.Fatalf("leaderboard = %q", s)
	}
	if strings.Index(s, "x") > strings.Index(s, "y") {
		t.Fatalf("winner not first:\n%s", s)
	}
}

// TestArenaOverRealOrchestration runs benchmark queries through OUA and
// feeds the results to the arena: the ratings must separate the models,
// and the leader must be one of the strong profiles (not the weakest-
// reward model, LLaMA, whose verbose style dilutes its scores).
func TestArenaOverRealOrchestration(t *testing.T) {
	ds := truthfulqa.Generate(60, 1)
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(ds)})
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 128
	orch, err := core.New(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Options{})
	for _, item := range ds {
		res, err := orch.OUA(context.Background(), item.Question)
		if err != nil {
			t.Fatal(err)
		}
		a.Observe(res)
	}
	st := a.Standings()
	if len(st) != 3 {
		t.Fatalf("standings = %+v", st)
	}
	if st[0].Rating == st[2].Rating {
		t.Fatal("ratings did not separate the models")
	}
	if st[0].Model == llm.ModelLlama3 {
		t.Fatalf("weakest-scoring model leads the arena: %+v", st)
	}
}

func BenchmarkObserve(b *testing.B) {
	a := New(Options{})
	res := result(
		outcome("m1", 0.8, 10), outcome("m2", 0.6, 10), outcome("m3", 0.4, 10),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Observe(res)
	}
}
