// Package arena implements the paper's §9.5 "Game-Theoretic Model
// Coordination" proposal: each model is a player that earns rating from
// the quality of the answers it produces. After every orchestrated
// query, the candidates' combined scores are treated as the outcomes of
// pairwise games — the higher-scoring model beats the lower-scoring one
// — and an Elo update moves the ratings. Over many queries the rating
// table becomes a long-horizon, query-independent ranking of the model
// pool that complements the orchestrator's per-query scores, and can be
// fed back as selection priors or surfaced as a leaderboard.
package arena

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"llmms/internal/core"
)

// Options tunes an Arena.
type Options struct {
	// InitialRating is every player's starting Elo. Default 1500.
	InitialRating float64
	// KFactor controls update size. Default 24.
	KFactor float64
	// DrawMargin treats score gaps at or below it as draws. Default 0.01.
	DrawMargin float64
}

func (o Options) withDefaults() Options {
	if o.InitialRating <= 0 {
		o.InitialRating = 1500
	}
	if o.KFactor <= 0 {
		o.KFactor = 24
	}
	if o.DrawMargin <= 0 {
		o.DrawMargin = 0.01
	}
	return o
}

// Player is one model's arena state.
type Player struct {
	// Model is the model tag.
	Model string `json:"model"`
	// Rating is the current Elo rating.
	Rating float64 `json:"rating"`
	// Games is how many pairwise games the player has been scored in.
	Games int `json:"games"`
	// Wins, Draws, and Losses break Games down.
	Wins   int `json:"wins"`
	Draws  int `json:"draws"`
	Losses int `json:"losses"`
}

// Arena maintains Elo ratings over orchestration outcomes. Safe for
// concurrent use.
type Arena struct {
	opts Options

	mu      sync.Mutex
	players map[string]*Player
}

// New returns an empty arena.
func New(opts Options) *Arena {
	return &Arena{opts: opts.withDefaults(), players: make(map[string]*Player)}
}

func (a *Arena) playerLocked(model string) *Player {
	p, ok := a.players[model]
	if !ok {
		p = &Player{Model: model, Rating: a.opts.InitialRating}
		a.players[model] = p
	}
	return p
}

// Observe records one orchestrated query: every pair of candidates that
// both produced output plays one game, decided by their combined scores.
// Candidates that generated nothing (never pulled, or pruned before
// producing output) sit the round out.
func (a *Arena) Observe(res core.Result) {
	var competitors []core.ModelOutcome
	for _, out := range res.Outcomes {
		if out.Tokens > 0 {
			competitors = append(competitors, out)
		}
	}
	if len(competitors) < 2 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := 0; i < len(competitors); i++ {
		for j := i + 1; j < len(competitors); j++ {
			a.gameLocked(competitors[i], competitors[j])
		}
	}
}

// gameLocked applies one Elo update between two outcomes.
func (a *Arena) gameLocked(x, y core.ModelOutcome) {
	px, py := a.playerLocked(x.Model), a.playerLocked(y.Model)
	expX := 1 / (1 + math.Pow(10, (py.Rating-px.Rating)/400))

	var scoreX float64
	switch {
	case math.Abs(x.Score-y.Score) <= a.opts.DrawMargin:
		scoreX = 0.5
		px.Draws++
		py.Draws++
	case x.Score > y.Score:
		scoreX = 1
		px.Wins++
		py.Losses++
	default:
		scoreX = 0
		px.Losses++
		py.Wins++
	}
	px.Games++
	py.Games++
	delta := a.opts.KFactor * (scoreX - expX)
	px.Rating += delta
	py.Rating -= delta
}

// Rating returns a player's current Elo (the initial rating for unknown
// models).
func (a *Arena) Rating(model string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.players[model]; ok {
		return p.Rating
	}
	return a.opts.InitialRating
}

// Standings returns the players ordered by descending rating.
func (a *Arena) Standings() []Player {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Player, 0, len(a.players))
	for _, p := range a.players {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rating != out[j].Rating {
			return out[i].Rating > out[j].Rating
		}
		return out[i].Model < out[j].Model
	})
	return out
}

// String renders the standings as a leaderboard table.
func (a *Arena) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %7s %6s %5s %5s %5s\n", "Model", "Rating", "Games", "W", "D", "L")
	for _, p := range a.Standings() {
		fmt.Fprintf(&b, "%-14s %7.0f %6d %5d %5d %5d\n",
			p.Model, p.Rating, p.Games, p.Wins, p.Draws, p.Losses)
	}
	return b.String()
}

// Priors converts ratings into capped score bonuses compatible with
// core.Config.Feedback-style biasing: the rating spread is mapped
// linearly onto [−maxBonus, +maxBonus] around the pool mean. An empty
// arena yields an empty map.
func (a *Arena) Priors(maxBonus float64) map[string]float64 {
	if maxBonus <= 0 {
		maxBonus = 0.05
	}
	standings := a.Standings()
	if len(standings) == 0 {
		return map[string]float64{}
	}
	mean := 0.0
	for _, p := range standings {
		mean += p.Rating
	}
	mean /= float64(len(standings))
	maxDev := 0.0
	for _, p := range standings {
		if d := math.Abs(p.Rating - mean); d > maxDev {
			maxDev = d
		}
	}
	out := make(map[string]float64, len(standings))
	for _, p := range standings {
		if maxDev == 0 {
			out[p.Model] = 0
			continue
		}
		out[p.Model] = (p.Rating - mean) / maxDev * maxBonus
	}
	return out
}
