package router

import (
	"testing"

	"llmms/internal/core"
	"llmms/internal/llm"
)

// FuzzParseDirectives asserts the NL configuration parser is total and
// safe on arbitrary instructions: it never panics, never produces a
// negative budget, and Apply never empties the model pool.
func FuzzParseDirectives(f *testing.F) {
	f.Add("avoid slow models, prioritize qwen")
	f.Add("keep responses under 200 words; use the bandit")
	f.Add("don't use llama and don't use mistral and don't use qwen")
	f.Add("cap at most 0 tokens")
	f.Add("prefer prefer prefer")
	f.Add("")
	profiles := llm.DefaultProfiles()
	f.Fuzz(func(t *testing.T, instruction string) {
		if len(instruction) > 4000 {
			instruction = instruction[:4000]
		}
		d := ParseDirectives(instruction)
		if d.MaxTokens < 0 {
			t.Fatalf("negative budget from %q", instruction)
		}
		if d.Strategy != "" {
			if _, err := core.ParseStrategy(string(d.Strategy)); err != nil {
				t.Fatalf("invalid strategy %q from %q", d.Strategy, instruction)
			}
		}
		cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
		applied, _ := d.Apply(cfg, profiles)
		if len(applied.Models) == 0 {
			t.Fatalf("Apply emptied the pool for %q", instruction)
		}
		if applied.MaxTokens <= 0 {
			t.Fatalf("Apply produced budget %d for %q", applied.MaxTokens, instruction)
		}
	})
}

// FuzzDetectIntent asserts intent detection is total and returns a known
// label for any input.
func FuzzDetectIntent(f *testing.F) {
	f.Add("What is 2 plus 2?")
	f.Add("summarize everything")
	f.Add("")
	known := map[Intent]bool{
		IntentMath: true, IntentSummarize: true, IntentCode: true,
		IntentTranslate: true, IntentDefinition: true, IntentYesNo: true,
		IntentFactLookup: true, IntentOpenEnded: true,
	}
	f.Fuzz(func(t *testing.T, q string) {
		if got := DetectIntent(q); !known[got] {
			t.Fatalf("unknown intent %q for %q", got, q)
		}
	})
}
