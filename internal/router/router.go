// Package router implements two of the paper's proposed extensions
// (§9.5) on top of the core orchestrator:
//
//   - Cognitive routing with semantic task indexing: queries are tagged
//     with an intent ("fact lookup" vs "math" vs "definition" …), and a
//     task index records which models historically earn the highest
//     reward per intent. Once the index is confident about an intent,
//     new queries of that kind are routed to the known-good model subset
//     instead of the full pool, saving the exploration cost; unknown or
//     low-confidence intents fall back to full orchestration, whose
//     outcomes feed the index.
//
//   - A natural-language configuration interface: plain instructions
//     ("avoid slow models", "prioritize qwen", "keep responses under 200
//     tokens", "use the bandit") are parsed into configuration changes.
//
// Both are deliberately simple, transparent mechanisms — a lookup table
// and a keyword grammar — matching the paper's framing ("a simple intent
// detector … keep a small index of which models are best at each task").
package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"llmms/internal/core"
	"llmms/internal/tokenizer"
)

// Intent is a coarse task label for a query.
type Intent string

// The detected intents, ordered from most to least specific.
const (
	IntentMath       Intent = "math"
	IntentSummarize  Intent = "summarize"
	IntentCode       Intent = "code"
	IntentTranslate  Intent = "translate"
	IntentDefinition Intent = "definition"
	IntentYesNo      Intent = "yes-no"
	IntentFactLookup Intent = "fact-lookup"
	IntentOpenEnded  Intent = "open-ended"
)

// DetectIntent tags a query with its task intent using transparent
// lexical rules (the paper's "simple intent detector, like tagging a
// request as 'summarize' versus 'fact lookup'").
func DetectIntent(query string) Intent {
	q := strings.ToLower(strings.TrimSpace(query))
	words := tokenizer.Words(q)
	has := func(ws ...string) bool {
		for _, w := range words {
			for _, want := range ws {
				if w == want {
					return true
				}
			}
		}
		return false
	}
	switch {
	case has("summarize", "summarise", "summary", "tldr", "condense"):
		return IntentSummarize
	case has("translate", "translation"):
		return IntentTranslate
	case has("code", "function", "implement", "program", "compile", "script"):
		return IntentCode
	case hasMathShape(q, words):
		return IntentMath
	case strings.HasPrefix(q, "what is ") || strings.HasPrefix(q, "what are ") ||
		strings.HasPrefix(q, "define ") || strings.HasPrefix(q, "what does ") && strings.Contains(q, "mean"):
		return IntentDefinition
	case has("do", "does", "is", "are", "can", "did", "was", "were", "will") && startsWithAny(q,
		"do ", "does ", "is ", "are ", "can ", "did ", "was ", "were ", "will "):
		return IntentYesNo
	case startsWithAny(q, "what ", "who ", "where ", "when ", "which ", "how many ", "how much "):
		return IntentFactLookup
	default:
		return IntentOpenEnded
	}
}

func startsWithAny(q string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(q, p) {
			return true
		}
	}
	return false
}

// hasMathShape detects arithmetic questions: digits plus operators or
// arithmetic vocabulary.
func hasMathShape(q string, words []string) bool {
	digits := false
	for _, r := range q {
		if r >= '0' && r <= '9' {
			digits = true
			break
		}
	}
	if strings.ContainsAny(q, "+*/%=") {
		return digits
	}
	if !digits {
		return false
	}
	for _, w := range words {
		switch w {
		case "plus", "minus", "times", "divided", "sum", "product", "multiply", "subtract", "add", "equals":
			return true
		}
	}
	return false
}

// stat accumulates reward observations for one (intent, model) cell.
type stat struct {
	n   int
	sum float64
}

func (s *stat) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// TaskIndex is the semantic task index: per-intent reward statistics per
// model. Safe for concurrent use.
type TaskIndex struct {
	mu    sync.Mutex
	cells map[Intent]map[string]*stat
}

// NewTaskIndex returns an empty index.
func NewTaskIndex() *TaskIndex {
	return &TaskIndex{cells: make(map[Intent]map[string]*stat)}
}

// Record adds one reward observation for a model on an intent.
func (ix *TaskIndex) Record(intent Intent, model string, reward float64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	byModel := ix.cells[intent]
	if byModel == nil {
		byModel = make(map[string]*stat)
		ix.cells[intent] = byModel
	}
	st := byModel[model]
	if st == nil {
		st = &stat{}
		byModel[model] = st
	}
	st.n++
	st.sum += reward
}

// Observations returns how many rewards have been recorded for an intent
// across all models.
func (ix *TaskIndex) Observations(intent Intent) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	total := 0
	for _, st := range ix.cells[intent] {
		total += st.n
	}
	return total
}

// Best returns up to k models ranked by mean reward on the intent,
// considering only models with at least minObs observations. Ties break
// on name for determinism.
func (ix *TaskIndex) Best(intent Intent, k, minObs int) []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	type ranked struct {
		model string
		mean  float64
	}
	var rs []ranked
	for m, st := range ix.cells[intent] {
		if st.n >= minObs {
			rs = append(rs, ranked{model: m, mean: st.mean()})
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].mean != rs[j].mean {
			return rs[i].mean > rs[j].mean
		}
		return rs[i].model < rs[j].model
	})
	if len(rs) > k {
		rs = rs[:k]
	}
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.model
	}
	return out
}

// Snapshot returns the index as intent → model → (observations, mean),
// the material behind the paper's "transparent orchestration logs".
func (ix *TaskIndex) Snapshot() map[Intent]map[string][2]float64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make(map[Intent]map[string][2]float64, len(ix.cells))
	for intent, byModel := range ix.cells {
		m := make(map[string][2]float64, len(byModel))
		for model, st := range byModel {
			m[model] = [2]float64{float64(st.n), st.mean()}
		}
		out[intent] = m
	}
	return out
}

// Options tunes a Router.
type Options struct {
	// Strategy is the fallback orchestration policy for unknown intents.
	// Default StrategyOUA.
	Strategy core.Strategy
	// MinObservations is how many rewards an (intent, model) cell needs
	// before the router trusts it. Default 3.
	MinObservations int
	// RouteWidth is how many indexed models a routed query uses (1 =
	// direct dispatch, 2+ = narrowed orchestration). Default 2.
	RouteWidth int
}

func (o Options) withDefaults() Options {
	if o.Strategy == "" {
		o.Strategy = core.StrategyOUA
	}
	if o.MinObservations <= 0 {
		o.MinObservations = 3
	}
	if o.RouteWidth <= 0 {
		o.RouteWidth = 2
	}
	return o
}

// Router dispatches queries by intent, learning the task index online
// from orchestration outcomes.
type Router struct {
	backend core.Backend
	base    core.Config
	opts    Options
	index   *TaskIndex
}

// New builds a router over a backend and a base orchestrator config (the
// config's Models are the full candidate pool).
func New(backend core.Backend, base core.Config, opts Options) (*Router, error) {
	if backend == nil {
		return nil, errors.New("router: nil backend")
	}
	if _, err := core.New(backend, base); err != nil {
		return nil, err
	}
	return &Router{
		backend: backend,
		base:    base,
		opts:    opts.withDefaults(),
		index:   NewTaskIndex(),
	}, nil
}

// Index exposes the task index (for persistence or transparency UIs).
func (r *Router) Index() *TaskIndex { return r.index }

// Decision records how a query was routed.
type Decision struct {
	// Intent is the detected task label.
	Intent Intent `json:"intent"`
	// Routed reports whether the task index narrowed the model pool.
	Routed bool `json:"routed"`
	// Models is the candidate pool the query ran against.
	Models []string `json:"models"`
	// Strategy is the policy used.
	Strategy core.Strategy `json:"strategy"`
}

// Route answers a query: detect the intent, narrow the pool via the task
// index when confident, orchestrate, and feed the observed per-model
// scores back into the index.
func (r *Router) Route(ctx context.Context, query string) (core.Result, Decision, error) {
	intent := DetectIntent(query)
	dec := Decision{Intent: intent, Strategy: r.opts.Strategy, Models: r.base.Models}

	pool := r.base.Models
	if best := r.index.Best(intent, r.opts.RouteWidth, r.opts.MinObservations); len(best) > 0 {
		pool = best
		dec.Routed = true
		dec.Models = best
	}

	cfg := r.base
	cfg.Models = pool
	strategy := r.opts.Strategy
	if len(pool) == 1 {
		strategy = core.StrategySingle
		dec.Strategy = core.StrategySingle
	}
	orch, err := core.New(r.backend, cfg)
	if err != nil {
		return core.Result{}, dec, fmt.Errorf("router: %w", err)
	}
	res, err := orch.Run(ctx, strategy, query)
	if err != nil {
		return core.Result{}, dec, err
	}
	// Learn: every model that produced output contributes its combined
	// score as the reward observation for this intent.
	for _, out := range res.Outcomes {
		if out.Tokens > 0 {
			r.index.Record(intent, out.Model, out.Score)
		}
	}
	return res, dec, nil
}
