package router

import (
	"context"
	"testing"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

func TestDetectIntent(t *testing.T) {
	cases := []struct {
		query string
		want  Intent
	}{
		{"What is 7 times 8?", IntentMath},
		{"Compute 12 + 30", IntentMath},
		{"Summarize this document for me", IntentSummarize},
		{"Translate this sentence to French", IntentTranslate},
		{"Write a function that reverses a list", IntentCode},
		{"What is photosynthesis?", IntentDefinition},
		{"Are bats blind?", IntentYesNo},
		{"Does sugar make children hyperactive?", IntentYesNo},
		{"Who wrote War and Peace?", IntentFactLookup},
		{"Where did fortune cookies originate?", IntentFactLookup},
		{"Tell me a story about the sea", IntentOpenEnded},
	}
	for _, tc := range cases {
		if got := DetectIntent(tc.query); got != tc.want {
			t.Errorf("DetectIntent(%q) = %s, want %s", tc.query, got, tc.want)
		}
	}
}

func TestTaskIndexBest(t *testing.T) {
	ix := NewTaskIndex()
	if best := ix.Best(IntentMath, 2, 1); len(best) != 0 {
		t.Fatalf("empty index returned %v", best)
	}
	for i := 0; i < 5; i++ {
		ix.Record(IntentMath, "qwen2:7b", 0.9)
		ix.Record(IntentMath, "llama3:8b", 0.4)
		ix.Record(IntentMath, "mistral:7b", 0.6)
	}
	best := ix.Best(IntentMath, 2, 3)
	if len(best) != 2 || best[0] != "qwen2:7b" || best[1] != "mistral:7b" {
		t.Fatalf("Best = %v", best)
	}
	// minObs gates thin cells.
	ix.Record(IntentYesNo, "llama3:8b", 1.0)
	if best := ix.Best(IntentYesNo, 2, 3); len(best) != 0 {
		t.Fatalf("thin cell trusted too early: %v", best)
	}
	if ix.Observations(IntentMath) != 15 {
		t.Fatalf("observations = %d", ix.Observations(IntentMath))
	}
	snap := ix.Snapshot()
	if cell := snap[IntentMath]["qwen2:7b"]; cell[0] != 5 || cell[1] != 0.9 {
		t.Fatalf("snapshot cell = %v", cell)
	}
}

func newRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Generate(200, 1))})
	base := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	base.MaxTokens = 128
	r, err := New(engine, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterFallsBackWhenIndexCold(t *testing.T) {
	r := newRouter(t, Options{})
	res, dec, err := r.Route(context.Background(), "Are bats blind?")
	if err != nil {
		t.Fatal(err)
	}
	if dec.Routed {
		t.Fatalf("cold index should not route: %+v", dec)
	}
	if len(dec.Models) != 3 {
		t.Fatalf("fallback pool = %v", dec.Models)
	}
	if res.Answer == "" {
		t.Fatal("empty answer")
	}
	if dec.Intent != IntentYesNo {
		t.Fatalf("intent = %s", dec.Intent)
	}
}

func TestRouterLearnsAndNarrows(t *testing.T) {
	r := newRouter(t, Options{MinObservations: 2, RouteWidth: 2})
	// Warm the index with arithmetic questions (Qwen's specialty in the
	// simulated profiles).
	warmup := []string{
		"What is 13 plus 21?",
		"What is 6 times 9?",
		"Compute 40 + 17",
	}
	for _, q := range warmup {
		if _, _, err := r.Route(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if obs := r.Index().Observations(IntentMath); obs == 0 {
		t.Fatal("index learned nothing from warmup")
	}
	_, dec, err := r.Route(context.Background(), "What is 15 plus 4?")
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Routed {
		t.Fatalf("warmed index did not route: %+v, index %v", dec, r.Index().Snapshot())
	}
	if len(dec.Models) > 2 {
		t.Fatalf("routed pool not narrowed: %v", dec.Models)
	}
}

func TestRouterSingleWidthUsesDirectDispatch(t *testing.T) {
	r := newRouter(t, Options{MinObservations: 1, RouteWidth: 1})
	if _, _, err := r.Route(context.Background(), "What is 2 plus 2?"); err != nil {
		t.Fatal(err)
	}
	_, dec, err := r.Route(context.Background(), "What is 3 plus 3?")
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Routed || dec.Strategy != core.StrategySingle || len(dec.Models) != 1 {
		t.Fatalf("width-1 routing: %+v", dec)
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := New(nil, core.DefaultConfig("a"), Options{}); err == nil {
		t.Fatal("expected error for nil backend")
	}
	engine := llm.NewEngine(llm.Options{})
	if _, err := New(engine, core.Config{}, Options{}); err == nil {
		t.Fatal("expected error for invalid base config")
	}
}

func TestParseDirectivesModels(t *testing.T) {
	d := ParseDirectives("Avoid llama, and prioritize qwen.")
	if len(d.AvoidModels) != 1 || d.AvoidModels[0] != llm.ModelLlama3 {
		t.Fatalf("avoid = %v", d.AvoidModels)
	}
	if len(d.PreferModels) != 1 || d.PreferModels[0] != llm.ModelQwen2 {
		t.Fatalf("prefer = %v", d.PreferModels)
	}
	if len(d.Notes) != 2 {
		t.Fatalf("notes = %v", d.Notes)
	}
}

func TestParseDirectivesBudgetAndStrategy(t *testing.T) {
	d := ParseDirectives("Keep responses under 200 words; use the bandit strategy.")
	if d.MaxTokens != 400 {
		t.Fatalf("budget = %d (200 words ≈ 400 tokens)", d.MaxTokens)
	}
	if d.Strategy != core.StrategyMAB {
		t.Fatalf("strategy = %s", d.Strategy)
	}
	d2 := ParseDirectives("cap output at most 150 tokens and use oua")
	if d2.MaxTokens != 150 || d2.Strategy != core.StrategyOUA {
		t.Fatalf("d2 = %+v", d2)
	}
	if ParseDirectives("hello there").MaxTokens != 0 {
		t.Fatal("budget hallucinated from no numbers")
	}
}

func TestParseDirectivesSlow(t *testing.T) {
	d := ParseDirectives("avoid slow models")
	if !d.AvoidSlow {
		t.Fatalf("d = %+v", d)
	}
}

func TestDirectivesApply(t *testing.T) {
	profiles := llm.DefaultProfiles()
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)

	d := ParseDirectives("avoid slow models, prioritize qwen, keep responses under 100 tokens")
	got, log := d.Apply(cfg, profiles)
	// llama3 is the slowest profile (95 tok/s).
	for _, m := range got.Models {
		if m == llm.ModelLlama3 {
			t.Fatalf("slowest model kept: %v", got.Models)
		}
	}
	if got.Models[0] != llm.ModelQwen2 {
		t.Fatalf("preferred model not first: %v", got.Models)
	}
	if got.MaxTokens != 100 {
		t.Fatalf("budget = %d", got.MaxTokens)
	}
	if len(log) == 0 {
		t.Fatal("no change log")
	}
}

func TestDirectivesApplyNeverEmptiesPool(t *testing.T) {
	cfg := core.DefaultConfig(llm.ModelLlama3)
	d := ParseDirectives("avoid llama")
	got, log := d.Apply(cfg, llm.DefaultProfiles())
	if len(got.Models) == 0 {
		t.Fatal("directives emptied the model pool")
	}
	found := false
	for _, l := range log {
		if l == "directives would exclude every model; keeping the original pool" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no refusal note in log: %v", log)
	}
}

func TestStrategyOr(t *testing.T) {
	if s := (Directives{}).StrategyOr(core.StrategyOUA); s != core.StrategyOUA {
		t.Fatalf("default = %s", s)
	}
	if s := (Directives{Strategy: core.StrategyMAB}).StrategyOr(core.StrategyOUA); s != core.StrategyMAB {
		t.Fatalf("override = %s", s)
	}
}

func BenchmarkDetectIntent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DetectIntent("What is the capital of France and what is 2 plus 2?")
	}
}

func BenchmarkRoute(b *testing.B) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Generate(100, 1))})
	base := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	base.MaxTokens = 128
	r, err := New(engine, base, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Route(context.Background(), "Are bats blind?"); err != nil {
			b.Fatal(err)
		}
	}
}
