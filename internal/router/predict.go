package router

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"llmms/internal/core"
	"llmms/internal/embedding"
	"llmms/internal/vectordb"
)

// Query-aware predictive routing (DESIGN.md "Predictive routing").
//
// The lexical TaskIndex above shortcuts only queries whose intent a
// keyword grammar recognizes. The Predictor generalizes it into
// embedding space, the way SelectLLM routes with a query-aware
// classifier and ORI routes across a heterogeneous fleet by vector
// similarity: every completed query is embedded and assigned to an
// online cluster (leader-style online k-means: nearest centroid if the
// cosine similarity clears a threshold, a fresh cluster otherwise), and
// each cluster accumulates decayed per-model reward statistics from
// orchestration outcomes and end-user feedback ratings.
//
// At query time Predict probes the cluster index and — when the cluster
// is confident — narrows the fan-out to the cluster's top-k models,
// handing back their historical means as warm-start priors for the
// bandit strategies. Confidence requires all of: a matching cluster
// (else fallback_cold), similarity above MinSimilarity (fallback_far),
// enough assignments and at least one observation per pool model
// (fallback_few_obs), and the worst included model separated from the
// best excluded one by more than their combined standard errors
// (fallback_variance). Any failed gate routes the full pool, whose
// outcomes keep training the index.
//
// A deterministic ε-probe keeps the index honest: every ⌈1/ε⌉-th routed
// decision of a cluster widens the subset by one excluded model, cycling
// through the exclusions round-robin, so a model that improved keeps
// getting fresh observations and can win its way back in (the
// cluster-drift property test pins this).

// Routing outcome labels, used for Prediction.Outcome and the
// llmms_route_decisions_total{outcome} counter.
const (
	// OutcomeTopK is a confident narrowed fan-out.
	OutcomeTopK = "topk"
	// OutcomeProbe is a narrowed fan-out widened by one ε-probe model.
	OutcomeProbe = "probe"
	// OutcomeFull means routing was a no-op: k covers the whole pool.
	OutcomeFull = "full"
	// OutcomeFallbackCold: no cluster matched the query at all.
	OutcomeFallbackCold = "fallback_cold"
	// OutcomeFallbackFar: the nearest centroid is below MinSimilarity.
	OutcomeFallbackFar = "fallback_far"
	// OutcomeFallbackFewObs: the cluster or a pool model lacks history.
	OutcomeFallbackFewObs = "fallback_few_obs"
	// OutcomeFallbackVariance: the top-k boundary is inside the noise.
	OutcomeFallbackVariance = "fallback_variance"
)

// PredictorOptions tunes a Predictor. The zero value of every field
// takes the documented default.
type PredictorOptions struct {
	// TopK is how many models a confidently routed query fans out to.
	// Default 2.
	TopK int
	// MinObservations is how many queries a cluster must have absorbed
	// before it may narrow the fan-out. Default 3.
	MinObservations int
	// MinSimilarity is the cosine similarity a query needs to its
	// nearest centroid — below it the query is treated as outside the
	// cluster (assignment creates a new cluster; prediction falls back).
	// The default 0.5 sits between measured same-template families
	// (≥ 0.6) and cross-family pairs (≤ 0.35) of the default encoder.
	MinSimilarity float64
	// Epsilon sets the probe cadence: every ⌈1/ε⌉-th routed decision of
	// a cluster includes one excluded model. Default 0.1; negative
	// disables probing.
	Epsilon float64
	// MaxClusters caps the index size; once full, queries that match no
	// existing cluster stop creating new ones (they still fall back to
	// the full pool). Default 512.
	MaxClusters int
	// PriorWeight is the pseudo-pull mass each warm-start prior carries
	// into the bandit (core.Config.PriorWeight). Default 2.
	PriorWeight float64
	// Decay exponentially ages the per-(cluster, model) reward stats on
	// every new observation, bounding the history a drifted model must
	// outrun. Default 0.98 (an effective window of ~50 observations).
	Decay float64
	// Encoder embeds queries. Nil means embedding.Default().
	Encoder embedding.Encoder
}

func (o PredictorOptions) withDefaults() PredictorOptions {
	if o.TopK <= 0 {
		o.TopK = 2
	}
	if o.MinObservations <= 0 {
		o.MinObservations = 3
	}
	if o.MinSimilarity <= 0 {
		o.MinSimilarity = 0.5
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.MaxClusters <= 0 {
		o.MaxClusters = 512
	}
	if o.PriorWeight <= 0 {
		o.PriorWeight = 2
	}
	if o.Decay <= 0 || o.Decay > 1 {
		o.Decay = 0.98
	}
	if o.Encoder == nil {
		o.Encoder = embedding.Default()
	}
	return o
}

// winnerBonus is added to the winning model's reward observation: the
// orchestrator's selection is a judgment the raw score does not carry.
const winnerBonus = 0.05

// modelStats holds exponentially decayed sufficient statistics of one
// model's rewards within one cluster: weight (effective observation
// count), sum, and sum of squares.
type modelStats struct {
	W     float64 `json:"w"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sumsq"`
}

func (s *modelStats) add(r, decay float64) {
	s.W = s.W*decay + 1
	s.Sum = s.Sum*decay + r
	s.SumSq = s.SumSq*decay + r*r
}

func (s *modelStats) mean() float64 {
	if s == nil || s.W == 0 {
		return 0
	}
	return s.Sum / s.W
}

// stderr is the standard error of the decayed mean: sqrt(var/W). It is
// what the variance confidence gate compares across the top-k boundary.
func (s *modelStats) stderr() float64 {
	if s == nil || s.W == 0 {
		return math.Inf(1)
	}
	mean := s.Sum / s.W
	variance := s.SumSq/s.W - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance / s.W)
}

// cluster is one online centroid with its reward history.
type cluster struct {
	id       int
	n        int       // queries assigned (raw count)
	sum      []float64 // unnormalized centroid accumulator
	centroid embedding.Vector
	stats    map[string]*modelStats
	routed   int // routed decisions served (drives the ε cadence)
	probeIdx int // round-robin cursor over the excluded models
}

// clusterRecord is the persisted form of a cluster (vectordb document
// text; the document embedding carries the normalized centroid).
type clusterRecord struct {
	N        int                    `json:"n"`
	Sum      []float64              `json:"sum"`
	Routed   int                    `json:"routed"`
	ProbeIdx int                    `json:"probe_idx"`
	Stats    map[string]*modelStats `json:"stats"`
}

// Prediction is one routing decision.
type Prediction struct {
	// Cluster is the matched cluster id, -1 when none matched.
	Cluster int `json:"cluster"`
	// Similarity is the cosine similarity to the matched centroid.
	Similarity float64 `json:"similarity"`
	// Outcome is the decision label (topk, probe, full, fallback_*).
	Outcome string `json:"outcome"`
	// Routed reports whether the model set was actually narrowed; when
	// false, Models is the caller's pool unchanged and Priors is nil.
	Routed bool `json:"routed"`
	// Models is the fan-out set to orchestrate over.
	Models []string `json:"models"`
	// Probe names the ε-probe model appended to Models, if any.
	Probe string `json:"probe,omitempty"`
	// Priors maps each predicted top-k model to its cluster-historical
	// mean reward (the warm start for core.Config.Priors). The probe
	// model gets no prior: its stale mean is exactly what the probe is
	// re-measuring.
	Priors map[string]float64 `json:"priors,omitempty"`
	// PriorWeight is the pseudo-pull mass for core.Config.PriorWeight.
	PriorWeight float64 `json:"prior_weight,omitempty"`
}

// Predictor is the query-embedding cluster index. Safe for concurrent
// use; persistence through a vectordb collection is optional.
type Predictor struct {
	opts PredictorOptions

	mu        sync.Mutex
	clusters  []*cluster
	nextID    int
	decisions map[string]uint64 // outcome label → count

	col   *vectordb.Collection // nil keeps the index in memory only
	onErr func(error)
}

// NewPredictor builds an empty index.
func NewPredictor(opts PredictorOptions) *Predictor {
	return &Predictor{opts: opts.withDefaults(), decisions: make(map[string]uint64)}
}

// Options returns the effective (defaulted) options.
func (p *Predictor) Options() PredictorOptions { return p.opts }

// SetPersistence attaches a durable collection: every cluster mutation
// is upserted as one document, and Load rebuilds the index from it.
// onErr, when non-nil, receives persistence failures (the index itself
// stays consistent in memory).
func (p *Predictor) SetPersistence(col *vectordb.Collection, onErr func(error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.col = col
	p.onErr = onErr
}

// Load rebuilds the index from the attached collection, returning the
// number of clusters restored.
func (p *Predictor) Load() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.col == nil {
		return 0, nil
	}
	p.clusters = nil
	p.nextID = 0
	for _, doc := range p.col.All() {
		id, err := strconv.Atoi(strings.TrimPrefix(doc.ID, "c"))
		if err != nil {
			return 0, fmt.Errorf("router: bad cluster doc id %q", doc.ID)
		}
		var rec clusterRecord
		if err := json.Unmarshal([]byte(doc.Text), &rec); err != nil {
			return 0, fmt.Errorf("router: parse cluster %q: %w", doc.ID, err)
		}
		c := &cluster{
			id: id, n: rec.N, sum: rec.Sum,
			centroid: normalize(rec.Sum),
			stats:    rec.Stats,
			routed:   rec.Routed, probeIdx: rec.ProbeIdx,
		}
		if c.stats == nil {
			c.stats = make(map[string]*modelStats)
		}
		p.clusters = append(p.clusters, c)
		if id >= p.nextID {
			p.nextID = id + 1
		}
	}
	sort.Slice(p.clusters, func(i, j int) bool { return p.clusters[i].id < p.clusters[j].id })
	return len(p.clusters), nil
}

// persistLocked upserts one cluster's document. Callers hold p.mu.
func (p *Predictor) persistLocked(c *cluster) {
	if p.col == nil {
		return
	}
	rec := clusterRecord{N: c.n, Sum: c.sum, Routed: c.routed, ProbeIdx: c.probeIdx, Stats: c.stats}
	data, err := json.Marshal(rec)
	if err == nil {
		err = p.col.Upsert(vectordb.Document{
			ID:        "c" + strconv.Itoa(c.id),
			Text:      string(data),
			Embedding: append(embedding.Vector(nil), c.centroid...),
		})
	}
	if err != nil && p.onErr != nil {
		p.onErr(fmt.Errorf("router: persist cluster %d: %w", c.id, err))
	}
}

// nearestLocked returns the cluster whose centroid is most similar to
// qv (ties break on lower id), or nil when the index is empty.
func (p *Predictor) nearestLocked(qv embedding.Vector) (*cluster, float64) {
	var best *cluster
	bestSim := math.Inf(-1)
	for _, c := range p.clusters {
		if sim := embedding.Dot(c.centroid, qv); sim > bestSim {
			best, bestSim = c, sim
		}
	}
	return best, bestSim
}

// Predict decides the fan-out subset for a query over the given pool.
// It never errors: every uncertain case degrades to the full pool. The
// decision is counted (Status) but only routed decisions advance the
// cluster's ε cadence.
func (p *Predictor) Predict(query string, pool []string) Prediction {
	pred := Prediction{Cluster: -1, Outcome: OutcomeFull, Models: pool}
	k := p.opts.TopK
	if k >= len(pool) {
		// Routing is a no-op: full orchestration, no priors, so the
		// k = len(models) path stays byte-identical to an unrouted run.
		p.count(OutcomeFull)
		return pred
	}
	qv := p.opts.Encoder.Encode(query)
	p.mu.Lock()
	defer p.mu.Unlock()
	c, sim := p.nearestLocked(qv)
	if c == nil || isZero(qv) {
		pred.Outcome = OutcomeFallbackCold
		p.countLocked(OutcomeFallbackCold)
		return pred
	}
	pred.Cluster = c.id
	pred.Similarity = sim
	if sim < p.opts.MinSimilarity {
		pred.Outcome = OutcomeFallbackFar
		p.countLocked(OutcomeFallbackFar)
		return pred
	}
	if c.n < p.opts.MinObservations {
		pred.Outcome = OutcomeFallbackFewObs
		p.countLocked(OutcomeFallbackFewObs)
		return pred
	}
	type ranked struct {
		model string
		stats *modelStats
	}
	rs := make([]ranked, 0, len(pool))
	for _, m := range pool {
		st := c.stats[m]
		if st == nil || st.W < 1 {
			// An unobserved pool model means the ranking is blind to it:
			// run the full pool so it gets measured.
			pred.Outcome = OutcomeFallbackFewObs
			p.countLocked(OutcomeFallbackFewObs)
			return pred
		}
		rs = append(rs, ranked{model: m, stats: st})
	}
	sort.SliceStable(rs, func(i, j int) bool {
		mi, mj := rs[i].stats.mean(), rs[j].stats.mean()
		if mi != mj {
			return mi > mj
		}
		return rs[i].model < rs[j].model
	})
	// Variance gate: the boundary between the worst included and the
	// best excluded model must be wider than their combined standard
	// errors, or the cut is noise and the full pool should decide.
	worstIn, bestOut := rs[k-1], rs[k]
	gap := worstIn.stats.mean() - bestOut.stats.mean()
	if gap < worstIn.stats.stderr()+bestOut.stats.stderr() {
		pred.Outcome = OutcomeFallbackVariance
		p.countLocked(OutcomeFallbackVariance)
		return pred
	}

	included := make(map[string]bool, k)
	pred.Priors = make(map[string]float64, k)
	for _, r := range rs[:k] {
		included[r.model] = true
		pred.Priors[r.model] = r.stats.mean()
	}
	// Keep the caller's pool order for the narrowed set: deterministic,
	// and stable against rank churn among the included models.
	models := make([]string, 0, k+1)
	for _, m := range pool {
		if included[m] {
			models = append(models, m)
		}
	}
	pred.Routed = true
	pred.Outcome = OutcomeTopK
	pred.PriorWeight = p.opts.PriorWeight

	// Deterministic ε-probe: every ⌈1/ε⌉-th routed decision widens the
	// subset by the next excluded model (name-sorted round-robin), so
	// the index keeps measuring what it excluded.
	c.routed++
	if p.opts.Epsilon > 0 {
		cadence := int(math.Ceil(1 / p.opts.Epsilon))
		if cadence > 0 && c.routed%cadence == 0 {
			excluded := make([]string, 0, len(rs)-k)
			for _, r := range rs[k:] {
				excluded = append(excluded, r.model)
			}
			sort.Strings(excluded)
			probe := excluded[c.probeIdx%len(excluded)]
			c.probeIdx++
			models = append(models, probe)
			pred.Probe = probe
			pred.Outcome = OutcomeProbe
		}
	}
	pred.Models = models
	p.countLocked(pred.Outcome)
	return pred
}

// Observe feeds one completed orchestration back into the index: the
// query is assigned to its cluster (creating one when nothing is close
// enough and the cap allows), and every model that produced output
// contributes its final score — plus a winner bonus for the selected
// model — as a reward observation.
func (p *Predictor) Observe(query string, res core.Result) {
	qv := p.opts.Encoder.Encode(query)
	if isZero(qv) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, sim := p.nearestLocked(qv)
	if c == nil || sim < p.opts.MinSimilarity {
		if len(p.clusters) >= p.opts.MaxClusters {
			return
		}
		c = &cluster{id: p.nextID, n: 1, sum: toFloat64(qv),
			centroid: append(embedding.Vector(nil), qv...),
			stats:    make(map[string]*modelStats)}
		p.nextID++
		p.clusters = append(p.clusters, c)
	} else {
		c.n++
		for i, v := range qv {
			c.sum[i] += float64(v)
		}
		c.centroid = normalize(c.sum)
	}
	for _, out := range res.Outcomes {
		if out.Failed || out.Tokens == 0 {
			continue
		}
		r := out.Score
		if out.Model == res.Model {
			r += winnerBonus
		}
		st := c.stats[out.Model]
		if st == nil {
			st = &modelStats{}
			c.stats[out.Model] = st
		}
		st.add(r, p.opts.Decay)
	}
	p.persistLocked(c)
}

// Rate feeds one end-user feedback rating (clamped to [-1, 1]) into the
// rated model's stats on the cluster of the query it answered. The
// rating maps onto the score scale as 0.5 + 0.35·rating, so a thumbs-up
// lands near a strong score and a thumbs-down near a weak one. The
// query must match an existing cluster — feedback never creates or
// moves centroids. Reports whether a cluster absorbed the rating.
func (p *Predictor) Rate(query, model string, rating float64) bool {
	if model == "" {
		return false
	}
	rating = math.Max(-1, math.Min(1, rating))
	qv := p.opts.Encoder.Encode(query)
	if isZero(qv) {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, sim := p.nearestLocked(qv)
	if c == nil || sim < p.opts.MinSimilarity {
		return false
	}
	st := c.stats[model]
	if st == nil {
		st = &modelStats{}
		c.stats[model] = st
	}
	st.add(0.5+0.35*rating, p.opts.Decay)
	p.persistLocked(c)
	return true
}

// ClusterModelStatus is one model's standing within one cluster.
type ClusterModelStatus struct {
	Model        string  `json:"model"`
	Observations float64 `json:"observations"` // decayed effective count
	Mean         float64 `json:"mean"`
	StdErr       float64 `json:"stderr"`
}

// ClusterStatus is the transparent view of one cluster.
type ClusterStatus struct {
	ID      int                  `json:"id"`
	Queries int                  `json:"queries"`
	Routed  int                  `json:"routed"`
	Models  []ClusterModelStatus `json:"models"`
}

// Status is the GET /api/router payload.
type Status struct {
	TopK            int               `json:"top_k"`
	MinObservations int               `json:"min_observations"`
	MinSimilarity   float64           `json:"min_similarity"`
	Epsilon         float64           `json:"epsilon"`
	Clusters        int               `json:"clusters"`
	Decisions       map[string]uint64 `json:"decisions"`
	Index           []ClusterStatus   `json:"index"`
}

// Status snapshots the index for the status endpoint.
func (p *Predictor) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		TopK:            p.opts.TopK,
		MinObservations: p.opts.MinObservations,
		MinSimilarity:   p.opts.MinSimilarity,
		Epsilon:         p.opts.Epsilon,
		Clusters:        len(p.clusters),
		Decisions:       make(map[string]uint64, len(p.decisions)),
		Index:           make([]ClusterStatus, 0, len(p.clusters)),
	}
	for k, v := range p.decisions {
		st.Decisions[k] = v
	}
	for _, c := range p.clusters {
		cs := ClusterStatus{ID: c.id, Queries: c.n, Routed: c.routed}
		for m, ms := range c.stats {
			cs.Models = append(cs.Models, ClusterModelStatus{
				Model: m, Observations: ms.W, Mean: ms.mean(), StdErr: ms.stderr(),
			})
		}
		sort.Slice(cs.Models, func(i, j int) bool {
			if cs.Models[i].Mean != cs.Models[j].Mean {
				return cs.Models[i].Mean > cs.Models[j].Mean
			}
			return cs.Models[i].Model < cs.Models[j].Model
		})
		st.Index = append(st.Index, cs)
	}
	return st
}

func (p *Predictor) count(outcome string) {
	p.mu.Lock()
	p.countLocked(outcome)
	p.mu.Unlock()
}

func (p *Predictor) countLocked(outcome string) { p.decisions[outcome]++ }

func toFloat64(v embedding.Vector) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func normalize(sum []float64) embedding.Vector {
	var norm float64
	for _, x := range sum {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	out := make(embedding.Vector, len(sum))
	if norm == 0 {
		return out
	}
	for i, x := range sum {
		out[i] = float32(x / norm)
	}
	return out
}

func isZero(v embedding.Vector) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
