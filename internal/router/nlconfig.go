package router

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/tokenizer"
)

// Directives are configuration changes extracted from a natural-language
// instruction — the paper's §9.5 "Natural Language Configuration
// Interface" ("avoid using slow models", "prioritize our legal model",
// "keep responses under 200 words").
type Directives struct {
	// AvoidModels are models the user excluded.
	AvoidModels []string
	// PreferModels are models the user prioritized (moved to the front
	// of the pool, or made the single-model default).
	PreferModels []string
	// MaxTokens caps the response budget when > 0.
	MaxTokens int
	// Strategy switches the orchestration policy when non-empty.
	Strategy core.Strategy
	// AvoidSlow excludes the slowest model(s) by decode speed.
	AvoidSlow bool
	// Notes explains, clause by clause, how each directive was read —
	// the transparency the paper asks for.
	Notes []string
}

// modelAliases maps the vocabulary users actually type to model tags.
var modelAliases = map[string]string{
	"llama":   llm.ModelLlama3,
	"llama3":  llm.ModelLlama3,
	"mistral": llm.ModelMistral,
	"qwen":    llm.ModelQwen2,
	"qwen2":   llm.ModelQwen2,
}

// ParseDirectives reads a plain-language instruction and extracts the
// configuration changes it implies. Unrecognized clauses are ignored —
// the Notes report exactly what was understood, so a user can see when a
// clause fell through.
func ParseDirectives(instruction string) Directives {
	var d Directives
	lower := strings.ToLower(instruction)
	// Clause-split on punctuation and connectives so each directive is
	// matched independently.
	clauses := splitClauses(lower)
	for _, clause := range clauses {
		words := tokenizer.Words(clause)
		wordSet := make(map[string]bool, len(words))
		for _, w := range words {
			wordSet[w] = true
		}
		negative := wordSet["avoid"] || wordSet["exclude"] || wordSet["skip"] || wordSet["without"] ||
			wordSet["disable"] || (wordSet["don"] || wordSet["dont"] || wordSet["not"]) && wordSet["use"]
		positive := wordSet["prioritize"] || wordSet["prioritise"] || wordSet["prefer"] ||
			wordSet["favor"] || wordSet["favour"] || (wordSet["only"] && wordSet["use"]) || wordSet["focus"]

		// Model references.
		var mentioned []string
		for alias, tag := range modelAliases {
			if wordSet[alias] {
				mentioned = append(mentioned, tag)
			}
		}
		sort.Strings(mentioned)
		mentioned = dedupe(mentioned)
		switch {
		case negative && len(mentioned) > 0:
			d.AvoidModels = append(d.AvoidModels, mentioned...)
			d.Notes = append(d.Notes, fmt.Sprintf("avoid %s (%q)", strings.Join(mentioned, ", "), strings.TrimSpace(clause)))
		case positive && len(mentioned) > 0:
			d.PreferModels = append(d.PreferModels, mentioned...)
			d.Notes = append(d.Notes, fmt.Sprintf("prefer %s (%q)", strings.Join(mentioned, ", "), strings.TrimSpace(clause)))
		}

		// Slowness.
		if negative && (wordSet["slow"] || wordSet["slowest"]) {
			d.AvoidSlow = true
			d.Notes = append(d.Notes, fmt.Sprintf("avoid slow models (%q)", strings.TrimSpace(clause)))
		}

		// Budget: "under 200 tokens/words", "at most 150 tokens",
		// "keep responses under 200 words".
		if n := extractBudget(words); n > 0 {
			d.MaxTokens = n
			d.Notes = append(d.Notes, fmt.Sprintf("cap responses at %d tokens (%q)", n, strings.TrimSpace(clause)))
		}

		// Strategy: "use the bandit", "use oua", "use the margin/pruning
		// strategy", "single model only".
		if s := extractStrategy(wordSet); s != "" {
			d.Strategy = s
			d.Notes = append(d.Notes, fmt.Sprintf("use strategy %s (%q)", s, strings.TrimSpace(clause)))
		}
	}
	d.AvoidModels = dedupe(d.AvoidModels)
	d.PreferModels = dedupe(d.PreferModels)
	return d
}

func splitClauses(s string) []string {
	s = strings.NewReplacer(",", "\n", ";", "\n", ".", "\n", " and ", "\n", " but ", "\n").Replace(s)
	var out []string
	for _, c := range strings.Split(s, "\n") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

func dedupe(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// extractBudget finds "<limit-word> N (tokens|words)" patterns. A word
// budget is converted to tokens at ~2 tokens/word (the BPE tokenizer's
// observed density on English prose).
func extractBudget(words []string) int {
	limitWords := map[string]bool{"under": true, "below": true, "within": true, "most": true, "max": true, "maximum": true, "cap": true, "limit": true}
	sawLimit := false
	for i, w := range words {
		if limitWords[w] {
			sawLimit = true
			continue
		}
		n, err := strconv.Atoi(w)
		if err != nil || n <= 0 || !sawLimit {
			continue
		}
		unit := ""
		if i+1 < len(words) {
			unit = words[i+1]
		}
		switch unit {
		case "token", "tokens":
			return n
		case "word", "words":
			return n * 2
		}
	}
	return 0
}

func extractStrategy(wordSet map[string]bool) core.Strategy {
	switch {
	case wordSet["mab"] || wordSet["bandit"] || wordSet["ucb1"] || wordSet["ucb"]:
		return core.StrategyMAB
	case wordSet["oua"] || wordSet["pruning"] || wordSet["overperformers"]:
		return core.StrategyOUA
	case wordSet["hybrid"]:
		return core.StrategyHybrid
	case wordSet["single"]:
		return core.StrategySingle
	}
	return ""
}

// Apply rewrites an orchestrator config according to the directives,
// given the model profiles (needed to resolve "slow"). It returns the
// new config and a human-readable change log.
func (d Directives) Apply(cfg core.Config, profiles []llm.Profile) (core.Config, []string) {
	log := append([]string(nil), d.Notes...)
	pool := append([]string(nil), cfg.Models...)

	if d.AvoidSlow && len(profiles) > 1 {
		slowest := profiles[0]
		for _, p := range profiles[1:] {
			if p.TokensPerSec < slowest.TokensPerSec {
				slowest = p
			}
		}
		pool = remove(pool, slowest.Name)
		log = append(log, fmt.Sprintf("removed slowest model %s (%.0f tok/s)", slowest.Name, slowest.TokensPerSec))
	}
	for _, m := range d.AvoidModels {
		pool = remove(pool, m)
	}
	// Preferred models move to the front (the front model is the
	// single-model default).
	for i := len(d.PreferModels) - 1; i >= 0; i-- {
		m := d.PreferModels[i]
		if contains(cfg.Models, m) {
			pool = append([]string{m}, remove(pool, m)...)
		}
	}
	if len(pool) == 0 {
		// Refuse to produce an unusable config; keep the original pool.
		log = append(log, "directives would exclude every model; keeping the original pool")
		pool = append([]string(nil), cfg.Models...)
	}
	cfg.Models = pool
	if d.MaxTokens > 0 {
		cfg.MaxTokens = d.MaxTokens
	}
	return cfg, log
}

// Strategy returns the directive's strategy or the given default.
func (d Directives) StrategyOr(def core.Strategy) core.Strategy {
	if d.Strategy != "" {
		return d.Strategy
	}
	return def
}

func remove(xs []string, x string) []string {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
