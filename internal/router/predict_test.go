package router

import (
	"math"
	"reflect"
	"testing"

	"llmms/internal/core"
	"llmms/internal/vectordb"
)

// Query families from the TruthfulQA templates: same-family pairs embed
// well above the default MinSimilarity, cross-family pairs well below,
// so each family trains exactly one cluster.
var (
	geoQueries = []string{
		"What is the capital of France?",
		"What is the capital of Japan?",
		"What is the capital of Brazil?",
		"What is the capital of Egypt?",
		"What is the capital of Canada?",
		"What is the capital of Kenya?",
	}
	chemQueries = []string{
		"What is the chemical symbol for gold?",
		"What is the chemical symbol for iron?",
		"What is the chemical symbol for oxygen?",
		"What is the chemical symbol for helium?",
	}
)

var testPool = []string{"llama3", "mistral", "qwen2"}

// scoredResult builds a completed orchestration where every pool model
// produced output with the given score. An empty winner avoids the
// winner bonus so cluster means equal the raw scores exactly.
func scoredResult(winner string, scores map[string]float64) core.Result {
	res := core.Result{Model: winner}
	for _, m := range testPool {
		res.Outcomes = append(res.Outcomes, core.ModelOutcome{
			Model: m, Response: "answer", Tokens: 5, Score: scores[m],
		})
	}
	return res
}

// train feeds n copies of the same per-model scores through each query
// of a family, building one well-observed cluster.
func train(p *Predictor, queries []string, scores map[string]float64) {
	for _, q := range queries {
		p.Observe(q, scoredResult("", scores))
	}
}

func TestPredictorClustersByFamily(t *testing.T) {
	p := NewPredictor(PredictorOptions{})
	train(p, geoQueries, map[string]float64{"llama3": 0.8, "mistral": 0.6, "qwen2": 0.5})
	train(p, chemQueries, map[string]float64{"llama3": 0.4, "mistral": 0.6, "qwen2": 0.9})
	st := p.Status()
	if st.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2 (one per query family): %+v", st.Clusters, st.Index)
	}
	if st.Index[0].Queries != len(geoQueries) || st.Index[1].Queries != len(chemQueries) {
		t.Fatalf("cluster sizes = %d, %d, want %d, %d",
			st.Index[0].Queries, st.Index[1].Queries, len(geoQueries), len(chemQueries))
	}
}

func TestPredictFullPoolNoOp(t *testing.T) {
	p := NewPredictor(PredictorOptions{TopK: len(testPool)})
	train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.3, "qwen2": 0.3})
	pred := p.Predict(geoQueries[0], testPool)
	if pred.Outcome != OutcomeFull || pred.Routed {
		t.Fatalf("outcome = %q routed=%v, want full no-op", pred.Outcome, pred.Routed)
	}
	if !reflect.DeepEqual(pred.Models, testPool) || pred.Priors != nil {
		t.Fatalf("full outcome must pass the pool through untouched: %+v", pred)
	}
}

func TestPredictFallbacks(t *testing.T) {
	t.Run("cold", func(t *testing.T) {
		p := NewPredictor(PredictorOptions{})
		pred := p.Predict(geoQueries[0], testPool)
		if pred.Outcome != OutcomeFallbackCold || pred.Routed || pred.Cluster != -1 {
			t.Fatalf("empty index: %+v, want fallback_cold", pred)
		}
	})
	t.Run("far", func(t *testing.T) {
		p := NewPredictor(PredictorOptions{})
		train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.5, "qwen2": 0.3})
		pred := p.Predict(chemQueries[0], testPool)
		if pred.Outcome != OutcomeFallbackFar || pred.Routed {
			t.Fatalf("cross-family query: %+v, want fallback_far", pred)
		}
	})
	t.Run("few_obs_cluster", func(t *testing.T) {
		p := NewPredictor(PredictorOptions{MinObservations: 10})
		train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.5, "qwen2": 0.3})
		pred := p.Predict(geoQueries[0], testPool)
		if pred.Outcome != OutcomeFallbackFewObs || pred.Routed {
			t.Fatalf("under-observed cluster: %+v, want fallback_few_obs", pred)
		}
	})
	t.Run("few_obs_model", func(t *testing.T) {
		p := NewPredictor(PredictorOptions{})
		train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.5, "qwen2": 0.3})
		// A pool model the cluster has never measured blinds the ranking.
		pred := p.Predict(geoQueries[0], append([]string{"phi3"}, testPool...))
		if pred.Outcome != OutcomeFallbackFewObs || pred.Routed {
			t.Fatalf("unobserved pool model: %+v, want fallback_few_obs", pred)
		}
	})
	t.Run("variance", func(t *testing.T) {
		p := NewPredictor(PredictorOptions{TopK: 2, Epsilon: -1})
		// mistral and qwen2 straddle the top-k boundary with overlapping
		// noise: alternating rewards give them equal means and wide
		// standard errors, so the cut is statistically meaningless.
		for i, q := range geoQueries {
			lo, hi := 0.3, 0.9
			if i%2 == 1 {
				lo, hi = hi, lo
			}
			p.Observe(q, scoredResult("", map[string]float64{
				"llama3": 0.95, "mistral": lo, "qwen2": hi,
			}))
		}
		pred := p.Predict(geoQueries[0], testPool)
		if pred.Outcome != OutcomeFallbackVariance || pred.Routed {
			t.Fatalf("noisy boundary: %+v, want fallback_variance", pred)
		}
	})
}

func TestPredictTopKWithPriors(t *testing.T) {
	p := NewPredictor(PredictorOptions{TopK: 2, Epsilon: -1})
	scores := map[string]float64{"llama3": 0.9, "mistral": 0.3, "qwen2": 0.7}
	train(p, geoQueries, scores)
	pred := p.Predict(geoQueries[0], testPool)
	if pred.Outcome != OutcomeTopK || !pred.Routed {
		t.Fatalf("trained cluster: %+v, want topk", pred)
	}
	// Narrowed set keeps the caller's pool order.
	if want := []string{"llama3", "qwen2"}; !reflect.DeepEqual(pred.Models, want) {
		t.Fatalf("models = %v, want %v", pred.Models, want)
	}
	if pred.PriorWeight != p.Options().PriorWeight {
		t.Fatalf("prior weight = %v, want %v", pred.PriorWeight, p.Options().PriorWeight)
	}
	for _, m := range pred.Models {
		if math.Abs(pred.Priors[m]-scores[m]) > 1e-9 {
			t.Fatalf("prior[%s] = %v, want historical mean %v", m, pred.Priors[m], scores[m])
		}
	}
	if _, ok := pred.Priors["mistral"]; ok {
		t.Fatalf("excluded model must not get a prior: %v", pred.Priors)
	}
}

func TestProbeCadence(t *testing.T) {
	p := NewPredictor(PredictorOptions{TopK: 1, Epsilon: 0.5}) // probe every 2nd routed decision
	train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.3, "qwen2": 0.5})
	var probes []string
	for i := 0; i < 6; i++ {
		pred := p.Predict(geoQueries[0], testPool)
		if !pred.Routed {
			t.Fatalf("decision %d not routed: %+v", i, pred)
		}
		probe := i%2 == 1
		if (pred.Outcome == OutcomeProbe) != probe {
			t.Fatalf("decision %d outcome = %q, want probe=%v", i, pred.Outcome, probe)
		}
		if probe {
			if n := len(pred.Models); n != 2 {
				t.Fatalf("probe decision width = %d, want 2", n)
			}
			probes = append(probes, pred.Probe)
		} else if len(pred.Models) != 1 {
			t.Fatalf("decision %d width = %d, want 1", i, len(pred.Models))
		}
	}
	// Probes cycle through the excluded models round-robin, name-sorted.
	if want := []string{"mistral", "qwen2", "mistral"}; !reflect.DeepEqual(probes, want) {
		t.Fatalf("probe cycle = %v, want %v", probes, want)
	}
}

func TestClusterDriftFlipsRouting(t *testing.T) {
	// Fast decay bounds the history a drifted model must outrun.
	p := NewPredictor(PredictorOptions{TopK: 1, Epsilon: -1, Decay: 0.8})
	train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.6, "qwen2": 0.3})
	if pred := p.Predict(geoQueries[0], testPool); !reflect.DeepEqual(pred.Models, []string{"llama3"}) {
		t.Fatalf("pre-drift models = %v, want [llama3]", pred.Models)
	}
	// The world changes: qwen2 now dominates and llama3 degrades. The
	// ε-probe (exercised above) is what feeds these observations in a
	// live system; here we inject them directly.
	for i := 0; i < 5; i++ {
		train(p, geoQueries, map[string]float64{"llama3": 0.3, "mistral": 0.6, "qwen2": 0.9})
	}
	pred := p.Predict(geoQueries[0], testPool)
	if !reflect.DeepEqual(pred.Models, []string{"qwen2"}) {
		t.Fatalf("post-drift models = %v (outcome %q), want [qwen2]", pred.Models, pred.Outcome)
	}
}

func TestObserveSkipsFailedAndEmptyOutcomes(t *testing.T) {
	p := NewPredictor(PredictorOptions{})
	res := core.Result{Model: "llama3", Outcomes: []core.ModelOutcome{
		{Model: "llama3", Response: "x", Tokens: 5, Score: 0.9},
		{Model: "mistral", Failed: true, Score: 0.7},
		{Model: "qwen2", Tokens: 0, Score: 0.6},
	}}
	for _, q := range geoQueries {
		p.Observe(q, res)
	}
	st := p.Status()
	if st.Clusters != 1 || len(st.Index[0].Models) != 1 || st.Index[0].Models[0].Model != "llama3" {
		t.Fatalf("failed and token-less outcomes must not train: %+v", st.Index)
	}
	// The winner bonus rides on the winning model's score.
	if mean := st.Index[0].Models[0].Mean; math.Abs(mean-0.95) > 1e-9 {
		t.Fatalf("winner mean = %v, want score+bonus 0.95", mean)
	}
}

func TestObserveRespectsMaxClusters(t *testing.T) {
	p := NewPredictor(PredictorOptions{MaxClusters: 1})
	train(p, geoQueries, map[string]float64{"llama3": 0.9})
	train(p, chemQueries, map[string]float64{"qwen2": 0.9})
	st := p.Status()
	if st.Clusters != 1 || st.Index[0].Queries != len(geoQueries) {
		t.Fatalf("capped index absorbed off-cluster queries: %+v", st.Index)
	}
}

func TestRateShiftsClusterStats(t *testing.T) {
	p := NewPredictor(PredictorOptions{TopK: 2, Epsilon: -1})
	train(p, geoQueries, map[string]float64{"llama3": 0.62, "mistral": 0.6, "qwen2": 0.3})
	if pred := p.Predict(geoQueries[0], testPool); pred.Outcome != OutcomeTopK {
		t.Fatalf("pre-feedback outcome = %q, want topk", pred.Outcome)
	}
	// Repeated thumbs-down on llama3 (reward 0.15 per rating) drags its
	// mean below qwen2's; thumbs-up on qwen2 (0.85) lifts it.
	for i := 0; i < 40; i++ {
		if !p.Rate(geoQueries[0], "llama3", -1) {
			t.Fatal("rating on a clustered query must land")
		}
		p.Rate(geoQueries[0], "qwen2", 1)
	}
	pred := p.Predict(geoQueries[0], testPool)
	if pred.Outcome != OutcomeTopK || !reflect.DeepEqual(pred.Models, []string{"mistral", "qwen2"}) {
		t.Fatalf("post-feedback prediction = %+v, want topk [mistral qwen2]", pred)
	}
	// Ratings on queries matching no cluster are dropped, not misfiled.
	if p.Rate("completely unrelated nonsense zzz", "llama3", 1) {
		t.Fatal("rating on an unclustered query must not land")
	}
}

func TestPredictorPersistenceRoundTrip(t *testing.T) {
	db := vectordb.New()
	col, err := db.CreateCollection("route_clusters", vectordb.CollectionConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPredictor(PredictorOptions{TopK: 2, Epsilon: -1})
	p.SetPersistence(col, func(err error) { t.Errorf("persist: %v", err) })
	train(p, geoQueries, map[string]float64{"llama3": 0.9, "mistral": 0.3, "qwen2": 0.7})
	train(p, chemQueries, map[string]float64{"llama3": 0.4, "mistral": 0.3, "qwen2": 0.9})
	want := p.Predict(geoQueries[0], testPool)

	restored := NewPredictor(PredictorOptions{TopK: 2, Epsilon: -1})
	restored.SetPersistence(col, func(err error) { t.Errorf("persist: %v", err) })
	n, err := restored.Load()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d clusters, want 2", n)
	}
	got := restored.Predict(geoQueries[0], testPool)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored prediction = %+v, want %+v", got, want)
	}
	if chem := restored.Predict(chemQueries[0], testPool); !reflect.DeepEqual(chem.Models, []string{"llama3", "qwen2"}) {
		t.Fatalf("restored chem models = %v, want [llama3 qwen2]", chem.Models)
	}
}
