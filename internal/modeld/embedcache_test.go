package modeld

import (
	"context"
	"net/http/httptest"
	"testing"

	"llmms/internal/embedding"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
	"llmms/internal/vectordb"
)

func newCachedDaemon(t *testing.T, dataDir string) *Client {
	t.Helper()
	db, err := vectordb.Open(dataDir, vectordb.OpenOptions{Sync: vectordb.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	col, err := db.GetOrCreateCollection("embeds", vectordb.CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Generate(50, 1))})
	srv := httptest.NewServer(NewServer(engine, WithEmbedCache(col)))
	t.Cleanup(srv.Close)
	return New(srv.URL, WithHTTPClient(srv.Client()))
}

// TestEmbedCacheSurvivesRestart pins the -data-dir contract on the
// daemon: an embedding computed before a restart is served from the
// durable cache after it, and the cached vector matches a fresh encode.
func TestEmbedCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	c1 := newCachedDaemon(t, dir)
	v1, err := c1.EmbedOne(ctx, embedding.ModelDefault, "the capital of france")
	if err != nil {
		t.Fatal(err)
	}

	c2 := newCachedDaemon(t, dir)
	v2, err := c2.EmbedOne(ctx, embedding.ModelDefault, "the capital of france")
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != len(v2) {
		t.Fatalf("vector dims differ across restart: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("cached vector differs at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
	local := embedding.Default().Encode("the capital of france")
	if embedding.Cosine(v2, local) < 0.999 {
		t.Fatal("cached embedding differs from local encoder")
	}
}

// TestEmbedCacheHitCounter checks the hit/miss accounting and that a
// repeat request is actually answered by the cache, not the engine.
func TestEmbedCacheHitCounter(t *testing.T) {
	db := vectordb.New()
	col, err := db.CreateCollection("embeds", vectordb.CollectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Generate(50, 1))})
	s := NewServer(engine, WithEmbedCache(col))
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := New(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	if _, err := c.EmbedOne(ctx, embedding.ModelDefault, "hello world"); err != nil {
		t.Fatal(err)
	}
	if got := col.Count(); got != 1 {
		t.Fatalf("cache holds %d entries after miss, want 1", got)
	}
	if _, err := c.EmbedOne(ctx, embedding.ModelDefault, "hello world"); err != nil {
		t.Fatal(err)
	}
	if got := col.Count(); got != 1 {
		t.Fatalf("cache holds %d entries after hit, want 1", got)
	}
	// A different model key misses even for identical text.
	if id1, id2 := embedCacheID("a", "x"), embedCacheID("b", "x"); id1 == id2 {
		t.Fatal("cache ids collide across models")
	}
}
