package modeld

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"llmms/internal/embedding"
	"llmms/internal/llm"
)

// Client speaks the daemon protocol from Go. It satisfies the
// orchestrator's Backend interface, so the core algorithms run unchanged
// against a remote daemon.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:11434"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// do issues a JSON request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
		return fmt.Errorf("modeld: %s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("modeld: %s", resp.Status)
}

// Generate streams a generation, invoking fn for every NDJSON line. The
// final line has Done == true.
func (c *Client) Generate(ctx context.Context, req GenerateRequest, fn func(GenerateResponse) error) error {
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/generate", bytes.NewReader(data))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var gr GenerateResponse
		if err := json.Unmarshal(line, &gr); err != nil {
			return fmt.Errorf("modeld: bad stream line: %w", err)
		}
		if err := fn(gr); err != nil {
			return err
		}
	}
	return sc.Err()
}

// GenerateChunk implements the orchestrator's getChunk(LLM, prompt, λ)
// primitive over the wire: it requests up to maxTokens more tokens,
// resuming from cont, and returns the aggregated chunk.
func (c *Client) GenerateChunk(ctx context.Context, model, prompt string, maxTokens int, cont []int) (llm.Chunk, error) {
	req := GenerateRequest{Model: model, Prompt: prompt, Context: cont}
	req.Options.NumPredict = maxTokens
	var text strings.Builder
	var out llm.Chunk
	err := c.Generate(ctx, req, func(gr GenerateResponse) error {
		text.WriteString(gr.Response)
		if gr.Done {
			out.Done = true
			out.DoneReason = llm.DoneReason(gr.DoneReason)
			out.Context = gr.Context
			out.EvalCount = gr.EvalCount
			out.TotalTokens = len(gr.Context)
		}
		return nil
	})
	if err != nil {
		return llm.Chunk{}, err
	}
	out.Text = text.String()
	return out, nil
}

// Embed returns embeddings for the inputs using the named encoder model.
func (c *Client) Embed(ctx context.Context, model string, inputs ...string) ([]embedding.Vector, error) {
	raw, err := json.Marshal(inputs)
	if err != nil {
		return nil, err
	}
	var resp EmbedResponse
	if err := c.do(ctx, http.MethodPost, "/api/embed", EmbedRequest{Model: model, Input: raw}, &resp); err != nil {
		return nil, err
	}
	out := make([]embedding.Vector, len(resp.Embeddings))
	for i, e := range resp.Embeddings {
		out[i] = embedding.Vector(e)
	}
	return out, nil
}

// EmbedOne embeds a single text.
func (c *Client) EmbedOne(ctx context.Context, model, text string) (embedding.Vector, error) {
	vs, err := c.Embed(ctx, model, text)
	if err != nil {
		return nil, err
	}
	if len(vs) != 1 {
		return nil, fmt.Errorf("modeld: expected 1 embedding, got %d", len(vs))
	}
	return vs[0], nil
}

// Tags lists installed models.
func (c *Client) Tags(ctx context.Context) ([]ModelInfo, error) {
	var resp TagsResponse
	if err := c.do(ctx, http.MethodGet, "/api/tags", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// Show returns one model's details.
func (c *Client) Show(ctx context.Context, model string) (ShowResponse, error) {
	var resp ShowResponse
	err := c.do(ctx, http.MethodPost, "/api/show", ShowRequest{Model: model}, &resp)
	return resp, err
}

// PS lists resident models.
func (c *Client) PS(ctx context.Context) ([]ModelInfo, error) {
	var resp TagsResponse
	if err := c.do(ctx, http.MethodGet, "/api/ps", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// Version returns the daemon version string.
func (c *Client) Version(ctx context.Context) (string, error) {
	var resp map[string]string
	if err := c.do(ctx, http.MethodGet, "/api/version", nil, &resp); err != nil {
		return "", err
	}
	return resp["version"], nil
}
