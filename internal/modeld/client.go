package modeld

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"llmms/internal/embedding"
	"llmms/internal/llm"
	"llmms/internal/telemetry"
)

// ErrTruncatedStream reports that a generation stream ended before the
// daemon sent its final Done:true line — the connection dropped or the
// daemon died mid-answer. The accumulated partial chunk is returned
// alongside it so callers can decide whether to retry or salvage.
var ErrTruncatedStream = errors.New("modeld: generation stream truncated before done")

// Client speaks the daemon protocol from Go. It satisfies the
// orchestrator's Backend interface, so the core algorithms run unchanged
// against a remote daemon.
type Client struct {
	base string
	hc   *http.Client
	tel  *telemetry.Telemetry

	// Timeout, when positive, bounds each daemon request that arrives
	// without a caller-supplied deadline. Requests whose context already
	// carries a deadline (e.g. the orchestrator's per-chunk retry
	// wrapper) are left alone.
	Timeout time.Duration
}

var (
	defaultClientOnce sync.Once
	defaultClient     *http.Client
)

// defaultHTTPClient returns the package's tuned fan-out client, built
// exactly once. http.DefaultClient keeps at most 2 idle connections per
// host (net/http's DefaultMaxIdleConnsPerHost), so an orchestrator
// fanning one chunk call per model out to a single daemon reconnects —
// TCP handshake and slow-start — on every round beyond the second model.
// The tuned transport keeps an idle connection per concurrent model
// stream so steady-state rounds reuse warm connections.
func defaultHTTPClient() *http.Client {
	defaultClientOnce.Do(func() {
		defaultClient = &http.Client{Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			// Generous per-host headroom: every configured model streams
			// over its own connection to the same daemon host.
			MaxIdleConns:          64,
			MaxIdleConnsPerHost:   32,
			IdleConnTimeout:       90 * time.Second,
			TLSHandshakeTimeout:   10 * time.Second,
			ExpectContinueTimeout: time.Second,
		}}
	})
	return defaultClient
}

// Option configures a Client at construction; see New. Options replace
// the old two-step construct-then-mutate shape (NewClient + Instrument):
// a Client is now fully configured before its first request, so no
// caller can observe a half-configured client and new knobs don't widen
// the constructor signature.
type Option func(*Client)

// WithHTTPClient overrides the package's shared fan-out-tuned HTTP
// client (see defaultHTTPClient) entirely. A nil hc keeps the default.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithTimeout sets the default per-request deadline applied to daemon
// requests whose context does not already carry one. Zero or negative
// leaves requests unbounded (the historical default).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.Timeout = d }
}

// WithTelemetry attaches a telemetry bundle: every daemon request is
// then counted in modeld_client_requests_total{op,outcome} and timed in
// modeld_client_request_duration_seconds{op}, with per-model chunk
// latency (modeld_client_chunk_duration_seconds{model}) and truncated
// streams (modeld_client_truncated_streams_total{model}) on the
// GenerateChunk path. A nil bundle leaves the client uninstrumented.
//
// Label cardinality is bounded by construction: op is one of a fixed
// set of endpoint names (generate, chat, embed, tags, show, ps,
// version), outcome is ok/error/canceled, and model is the configured
// model name. Query text, prompts, and session IDs never become labels
// — they are unbounded and would explode the series space (the
// registry's series cap would collapse them into "_other", losing the
// per-model signal too).
func WithTelemetry(tel *telemetry.Telemetry) Option {
	return func(c *Client) { c.tel = tel }
}

// New returns a client for a daemon at base (e.g.
// "http://127.0.0.1:11434"), configured by options. With no options the
// client uses the package's shared fan-out-tuned HTTP client, no default
// timeout, and no telemetry.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: defaultHTTPClient()}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewClient returns a client for a daemon at base. A nil httpClient
// selects the package's shared fan-out-tuned client.
//
// Deprecated: use New with WithHTTPClient. NewClient remains as a thin
// shim for external callers; everything in this repository constructs
// through New.
func NewClient(base string, httpClient *http.Client) *Client {
	return New(base, WithHTTPClient(httpClient))
}

// Instrument attaches a telemetry bundle after construction and returns
// the client for chaining.
//
// Deprecated: pass WithTelemetry to New instead, so the client never
// exists half-configured. Instrument remains as a shim for external
// callers and must not be called concurrently with requests.
func (c *Client) Instrument(tel *telemetry.Telemetry) *Client {
	c.tel = tel
	return c
}

// observe records one daemon request's latency and outcome under op.
func (c *Client) observe(op string, start time.Time, err error) {
	if c.tel == nil {
		return
	}
	outcome := "ok"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "canceled"
	default:
		outcome = "error"
	}
	c.tel.ClientRequests.Inc(op, outcome)
	c.tel.ClientLatency.Observe(time.Since(start).Seconds(), op)
}

// withTimeout applies the client default deadline when the caller did
// not set one. The returned cancel must always be called.
func (c *Client) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.Timeout)
		}
	}
	return ctx, func() {}
}

// do issues a JSON request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (err error) {
	start := time.Now()
	op := strings.TrimPrefix(path, "/api/")
	defer func() { c.observe(op, start, err) }()
	ctx, sp := telemetry.StartSpan(ctx, "modeld."+op)
	defer func() { sp.End(err) }()
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := sp.Traceparent(); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
		return fmt.Errorf("modeld: %s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("modeld: %s", resp.Status)
}

// Generate streams a generation, invoking fn for every NDJSON line. The
// final line has Done == true.
//
// When the context carries a span, the request is issued under a child
// "modeld.generate" span whose traceparent rides the request header;
// daemon-side spans echoed on the done line (see GenerateResponse.Spans)
// are grafted into the local trace, so client and daemon timings land
// in one tree.
func (c *Client) Generate(ctx context.Context, req GenerateRequest, fn func(GenerateResponse) error) (err error) {
	start := time.Now()
	defer func() { c.observe("generate", start, err) }()
	ctx, sp := telemetry.StartSpan(ctx, "modeld.generate")
	sp.SetAttr("model", req.Model)
	defer func() { sp.End(err) }()
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/generate", bytes.NewReader(data))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if tp := sp.Traceparent(); tp != "" {
		httpReq.Header.Set("Traceparent", tp)
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	buf := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(buf)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(*buf, maxScanLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var gr GenerateResponse
		if err := json.Unmarshal(line, &gr); err != nil {
			return fmt.Errorf("modeld: bad stream line: %w", err)
		}
		if gr.Done && len(gr.Spans) > 0 {
			sp.Adopt(gr.Spans)
		}
		if err := fn(gr); err != nil {
			return err
		}
	}
	return sc.Err()
}

// maxScanLine bounds one NDJSON stream line; the scanner grows toward it
// only for pathological lines.
const maxScanLine = 8 * 1024 * 1024

// scanBufPool recycles the 64 KiB initial scan buffers across Generate
// calls — per-chunk streaming is the orchestrator's hottest client path
// (Rounds × models buffers per query without pooling). Pointer-to-slice
// per sync.Pool guidance, so Put does not allocate.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// GenerateChunk implements the orchestrator's getChunk(LLM, prompt, λ)
// primitive over the wire: it requests up to req.MaxTokens more tokens,
// resuming from req.Cont, and returns the aggregated chunk.
//
// A stream that ends without a Done:true line (connection dropped,
// daemon died mid-answer) returns the accumulated partial chunk together
// with an error wrapping ErrTruncatedStream — never a silently
// half-empty chunk. The partial chunk carries Done == false and the
// continuation state of the request it resumed from, so a retry replays
// the same chunk.
func (c *Client) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (chunk llm.Chunk, err error) {
	start := time.Now()
	// Latency is observed with an outcome label so failed or truncated
	// calls cannot pollute the healthy-call distribution: a dead daemon
	// failing fast would otherwise drag the histogram toward zero while
	// timeouts drag it toward the deadline.
	defer func() { c.observeChunk(req.Model, start, err) }()
	wire := GenerateRequest{Model: req.Model, Prompt: req.Prompt, Context: req.Cont}
	wire.Options.NumPredict = req.MaxTokens
	var text strings.Builder
	var out llm.Chunk
	err = c.Generate(ctx, wire, func(gr GenerateResponse) error {
		text.WriteString(gr.Response)
		if gr.Done {
			out.Done = true
			out.DoneReason = llm.DoneReason(gr.DoneReason)
			out.Context = gr.Context
			out.EvalCount = gr.EvalCount
			out.TotalTokens = len(gr.Context)
		}
		return nil
	})
	out.Text = text.String()
	if err != nil {
		return llm.Chunk{}, err
	}
	if !out.Done {
		// No final line arrived: report consistent partial state and an
		// explicit error instead of a chunk that looks merely unfinished.
		if c.tel != nil {
			c.tel.ClientTruncated.Inc(req.Model)
		}
		out.DoneReason = ""
		out.Context = req.Cont
		out.EvalCount = 0
		out.TotalTokens = len(req.Cont)
		return out, fmt.Errorf("%w (got %d bytes of text)", ErrTruncatedStream, text.Len())
	}
	return out, nil
}

// observeChunk records one GenerateChunk call's latency under the
// bounded outcome label set (ok, error, canceled).
func (c *Client) observeChunk(model string, start time.Time, err error) {
	if c.tel == nil {
		return
	}
	outcome := "ok"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "canceled"
	default:
		outcome = "error"
	}
	c.tel.ClientChunkLat.Observe(time.Since(start).Seconds(), model, outcome)
}

// OpenStream implements llm.StreamingBackend over the wire: it POSTs
// one /api/generate covering the session's whole token budget with the
// stream_tokens extension on, holds the NDJSON stream open, and buffers
// delivered tokens client-side; each ChunkStream.Next then slices the
// next per-round chunk off the buffer with synthesized continuation
// state, so the daemon ingests the prompt once per query instead of
// once per round.
//
// The client's default Timeout deliberately does NOT apply: a session
// legitimately lives for the whole query. Cancellation is the caller's
// ctx or Close. A daemon that does not echo token ids (a stock Ollama)
// fails the stream with llm.ErrStreamUnsupported before any text is
// handed out, so callers can fall back to per-round GenerateChunk
// without duplicating output.
func (c *Client) OpenStream(ctx context.Context, req llm.ChunkRequest) (llm.ChunkStream, error) {
	wire := GenerateRequest{Model: req.Model, Prompt: req.Prompt, Context: req.Cont}
	wire.Options.NumPredict = req.MaxTokens
	wire.Options.StreamTokens = true
	data, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	// The stream span covers the whole session: opened here, ended by
	// the pump on the done line (or failure), with the daemon's echoed
	// spans grafted in before it closes. The span must not come from
	// sctx — Close cancels sctx, but the span belongs to the query's
	// still-live trace.
	ctx, sp := telemetry.StartSpan(ctx, "modeld.stream")
	sp.SetAttr("model", req.Model)
	sctx, cancel := context.WithCancel(ctx)
	httpReq, err := http.NewRequestWithContext(sctx, http.MethodPost, c.base+"/api/generate", bytes.NewReader(data))
	if err != nil {
		cancel()
		sp.End(err)
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if tp := sp.Traceparent(); tp != "" {
		httpReq.Header.Set("Traceparent", tp)
	}
	start := time.Now()
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		cancel()
		sp.End(err)
		c.observe("generate_stream", start, err)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := decodeError(resp)
		resp.Body.Close()
		cancel()
		sp.End(err)
		c.observe("generate_stream", start, err)
		return nil, err
	}
	s := &clientStream{buf: llm.NewStreamBuffer(req.Cont), cancel: cancel}
	go c.pumpStream(resp, s.buf, req.Model, start, sp)
	return s, nil
}

// pumpStream drains one open generation stream into its client-side
// buffer until the done line, a protocol error, or cancellation.
func (c *Client) pumpStream(resp *http.Response, buf *llm.StreamBuffer, model string, start time.Time, sp *telemetry.Span) {
	defer resp.Body.Close()
	scanBuf := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(scanBuf)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(*scanBuf, maxScanLine)
	finished := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var gr GenerateResponse
		if err := json.Unmarshal(line, &gr); err != nil {
			buf.Fail(fmt.Errorf("modeld: bad stream line: %w", err))
			sp.End(err)
			c.observe("generate_stream", start, err)
			return
		}
		if gr.Done {
			if len(gr.Spans) > 0 {
				sp.Adopt(gr.Spans)
			}
			buf.Finish(llm.Chunk{
				Done: true, DoneReason: llm.DoneReason(gr.DoneReason),
				Context: gr.Context, EvalCount: gr.EvalCount, TotalTokens: len(gr.Context),
			})
			finished = true
			continue
		}
		if gr.Response == "" && len(gr.Tokens) == 0 {
			continue
		}
		if len(gr.Tokens) == 0 {
			// The daemon ignored stream_tokens (e.g. a stock Ollama):
			// without per-line ids the buffer cannot synthesize resume
			// state, so refuse the session before any text leaks out.
			buf.Fail(fmt.Errorf("modeld: daemon does not echo stream tokens: %w", llm.ErrStreamUnsupported))
			sp.End(llm.ErrStreamUnsupported)
			c.observe("generate_stream", start, nil)
			return
		}
		buf.Push(gr.Response, gr.Tokens)
	}
	switch {
	case finished:
		sp.End(nil)
		c.observe("generate_stream", start, nil)
	case sc.Err() != nil:
		buf.Fail(fmt.Errorf("%w: %v", ErrTruncatedStream, sc.Err()))
		sp.End(sc.Err())
		c.observe("generate_stream", start, sc.Err())
	default:
		if c.tel != nil {
			c.tel.ClientTruncated.Inc(model)
		}
		buf.Fail(ErrTruncatedStream)
		sp.End(ErrTruncatedStream)
		c.observe("generate_stream", start, ErrTruncatedStream)
	}
}

// clientStream adapts a pumped HTTP generation stream to llm.ChunkStream.
type clientStream struct {
	buf    *llm.StreamBuffer
	cancel context.CancelFunc
}

// Next implements llm.ChunkStream.
func (s *clientStream) Next(ctx context.Context, maxTokens int) (llm.Chunk, error) {
	return s.buf.Drain(ctx, maxTokens)
}

// Buffered implements llm.BufferedStream.
func (s *clientStream) Buffered() int { return s.buf.Buffered() }

// Close implements llm.ChunkStream: it aborts the HTTP request (the
// daemon sees the disconnect and stops generating) and poisons the
// buffer.
func (s *clientStream) Close() error {
	s.cancel()
	s.buf.Close()
	return nil
}

// Embed returns embeddings for the inputs using the named encoder model.
func (c *Client) Embed(ctx context.Context, model string, inputs ...string) ([]embedding.Vector, error) {
	raw, err := json.Marshal(inputs)
	if err != nil {
		return nil, err
	}
	var resp EmbedResponse
	if err := c.do(ctx, http.MethodPost, "/api/embed", EmbedRequest{Model: model, Input: raw}, &resp); err != nil {
		return nil, err
	}
	out := make([]embedding.Vector, len(resp.Embeddings))
	for i, e := range resp.Embeddings {
		out[i] = embedding.Vector(e)
	}
	return out, nil
}

// EmbedOne embeds a single text.
func (c *Client) EmbedOne(ctx context.Context, model, text string) (embedding.Vector, error) {
	vs, err := c.Embed(ctx, model, text)
	if err != nil {
		return nil, err
	}
	if len(vs) != 1 {
		return nil, fmt.Errorf("modeld: expected 1 embedding, got %d", len(vs))
	}
	return vs[0], nil
}

// Tags lists installed models.
func (c *Client) Tags(ctx context.Context) ([]ModelInfo, error) {
	var resp TagsResponse
	if err := c.do(ctx, http.MethodGet, "/api/tags", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// Show returns one model's details.
func (c *Client) Show(ctx context.Context, model string) (ShowResponse, error) {
	var resp ShowResponse
	err := c.do(ctx, http.MethodPost, "/api/show", ShowRequest{Model: model}, &resp)
	return resp, err
}

// PS lists resident models.
func (c *Client) PS(ctx context.Context) ([]ModelInfo, error) {
	var resp TagsResponse
	if err := c.do(ctx, http.MethodGet, "/api/ps", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Models, nil
}

// Version returns the daemon version string.
func (c *Client) Version(ctx context.Context) (string, error) {
	var resp map[string]string
	if err := c.do(ctx, http.MethodGet, "/api/version", nil, &resp); err != nil {
		return "", err
	}
	return resp["version"], nil
}
