package modeld

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"llmms/internal/llm"
)

// ChatMessage is one turn of an /api/chat conversation, matching
// Ollama's message schema.
type ChatMessage struct {
	// Role is "system", "user", or "assistant".
	Role string `json:"role"`
	// Content is the message text.
	Content string `json:"content"`
}

// ChatRequest is the wire form of a chat call (Ollama /api/chat).
type ChatRequest struct {
	Model    string        `json:"model"`
	Messages []ChatMessage `json:"messages"`
	Stream   *bool         `json:"stream,omitempty"`
	Options  struct {
		NumPredict int `json:"num_predict,omitempty"`
	} `json:"options,omitempty"`
}

// ChatResponse is one NDJSON line of a chat stream (or the whole reply
// when stream=false).
type ChatResponse struct {
	Model      string      `json:"model"`
	CreatedAt  string      `json:"created_at"`
	Message    ChatMessage `json:"message"`
	Done       bool        `json:"done"`
	DoneReason string      `json:"done_reason,omitempty"`
	EvalCount  int         `json:"eval_count,omitempty"`
}

// chatPrompt flattens a message history into the prompt layout the
// engine parses: system and prior turns become the conversation
// preamble, the final user message becomes the question.
func chatPrompt(messages []ChatMessage) (string, error) {
	if len(messages) == 0 {
		return "", fmt.Errorf("messages are required")
	}
	last := messages[len(messages)-1]
	if last.Role != "user" {
		return "", fmt.Errorf("last message must have role \"user\", got %q", last.Role)
	}
	var b strings.Builder
	if len(messages) > 1 {
		b.WriteString("Summary of earlier conversation:\n")
		for _, m := range messages[:len(messages)-1] {
			fmt.Fprintf(&b, "%s: %s\n", m.Role, strings.TrimSpace(m.Content))
		}
		b.WriteString("\n")
	}
	b.WriteString("Question: ")
	b.WriteString(strings.TrimSpace(last.Content))
	b.WriteString("\nAnswer:")
	return b.String(), nil
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Model == "" {
		writeErr(w, http.StatusBadRequest, "model is required")
		return
	}
	prompt, err := chatPrompt(req.Messages)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream := req.Stream == nil || *req.Stream

	chunks, err := s.engine.Generate(r.Context(), llm.GenRequest{
		Model:     req.Model,
		Prompt:    prompt,
		MaxTokens: req.Options.NumPredict,
	})
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}

	if !stream {
		var text string
		var last llm.Chunk
		for c := range chunks {
			text += c.Text
			if c.Done {
				last = c
			}
		}
		writeJSON(w, http.StatusOK, ChatResponse{
			Model: req.Model, CreatedAt: now(),
			Message: ChatMessage{Role: "assistant", Content: text},
			Done:    true, DoneReason: string(last.DoneReason), EvalCount: last.EvalCount,
		})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for c := range chunks {
		resp := ChatResponse{
			Model: req.Model, CreatedAt: now(),
			Message: ChatMessage{Role: "assistant", Content: c.Text},
			Done:    c.Done,
		}
		if c.Done {
			resp.DoneReason = string(c.DoneReason)
			resp.EvalCount = c.EvalCount
		}
		if err := enc.Encode(resp); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// Chat runs a non-streaming chat call through the daemon, returning the
// assistant message. For streaming, use ChatStream.
func (c *Client) Chat(ctx context.Context, model string, messages []ChatMessage, maxTokens int) (ChatResponse, error) {
	req := ChatRequest{Model: model, Messages: messages}
	noStream := false
	req.Stream = &noStream
	req.Options.NumPredict = maxTokens
	var out ChatResponse
	if err := c.do(ctx, http.MethodPost, "/api/chat", req, &out); err != nil {
		return ChatResponse{}, err
	}
	return out, nil
}

// ChatStream runs a streaming chat call, invoking fn for every NDJSON
// line including the final (Done) message.
func (c *Client) ChatStream(ctx context.Context, req ChatRequest, fn func(ChatResponse) error) error {
	streaming := true
	req.Stream = &streaming
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/chat", bytes.NewReader(data))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var cr ChatResponse
		if err := json.Unmarshal(line, &cr); err != nil {
			return fmt.Errorf("modeld: bad chat stream line: %w", err)
		}
		if err := fn(cr); err != nil {
			return err
		}
	}
	return sc.Err()
}
