package modeld

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// TestPSBatchOccupancy checks that /api/ps surfaces the batch-scheduler
// snapshot and that /metrics carries the llmms_batch_* series the
// daemon wires into the engine.
func TestPSBatchOccupancy(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	defer engine.Close()
	srv := httptest.NewServer(NewServer(engine))
	defer srv.Close()
	c := New(srv.URL, WithHTTPClient(srv.Client()))

	if _, err := c.GenerateChunk(context.Background(), llm.ChunkRequest{
		Model: llm.ModelLlama3, Prompt: "Are bats blind?",
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/api/ps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ps TagsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ps.Models {
		if m.Name != llm.ModelLlama3 {
			continue
		}
		found = true
		if m.Batch == nil {
			t.Fatal("/api/ps model entry has no batch snapshot")
		}
		if m.Batch.Steps == 0 || m.Batch.Decoded == 0 {
			t.Fatalf("batch snapshot recorded no work: %+v", m.Batch)
		}
		if m.Batch.Active != 0 || m.Batch.Pending != 0 {
			t.Fatalf("idle model reports occupancy: %+v", m.Batch)
		}
	}
	if !found {
		t.Fatal("generated model missing from /api/ps")
	}

	mr, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"llmms_batch_occupancy{model=\"llama3:8b\"}",
		"llmms_batch_steps_total{model=\"llama3:8b\"}",
		"llmms_batch_step_seconds_count{model=\"llama3:8b\"}",
		"llmms_batch_admission_wait_seconds_count{model=\"llama3:8b\"}",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
}

// TestPSBatchAbsentWhenDisabled pins the -batch=false shape: no batch
// object in /api/ps.
func TestPSBatchAbsentWhenDisabled(t *testing.T) {
	engine := llm.NewEngine(llm.Options{
		Knowledge:       llm.NewKnowledge(truthfulqa.Seed()),
		DisableBatching: true,
	})
	srv := httptest.NewServer(NewServer(engine))
	defer srv.Close()
	c := New(srv.URL, WithHTTPClient(srv.Client()))

	if _, err := c.GenerateChunk(context.Background(), llm.ChunkRequest{
		Model: llm.ModelLlama3, Prompt: "Are bats blind?",
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/api/ps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/ps status = %d", resp.StatusCode)
	}
	var ps TagsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	for _, m := range ps.Models {
		if m.Batch != nil {
			t.Fatalf("batching disabled but /api/ps carries batch info: %+v", m.Batch)
		}
	}
}
