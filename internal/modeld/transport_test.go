package modeld

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDefaultClientSharedOnce pins the New(base) contract: the tuned
// default client is built exactly once and shared across clients, and
// WithHTTPClient overrides it.
func TestDefaultClientSharedOnce(t *testing.T) {
	a := New("http://127.0.0.1:1")
	b := New("http://127.0.0.1:2")
	if a.hc != b.hc {
		t.Fatal("option-less clients must share one default client")
	}
	if a.hc == http.DefaultClient {
		t.Fatal("default client must be the tuned transport, not http.DefaultClient")
	}
	tr, ok := a.hc.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default transport is %T, want *http.Transport", a.hc.Transport)
	}
	if tr.MaxIdleConnsPerHost <= http.DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConnsPerHost = %d, want more than net/http's default %d",
			tr.MaxIdleConnsPerHost, http.DefaultMaxIdleConnsPerHost)
	}
	own := &http.Client{}
	if c := New("http://127.0.0.1:3", WithHTTPClient(own)); c.hc != own {
		t.Fatal("WithHTTPClient must be used as-is")
	}
	// A nil override keeps the default rather than nil-ing the client.
	if c := New("http://127.0.0.1:4", WithHTTPClient(nil)); c.hc != a.hc {
		t.Fatal("WithHTTPClient(nil) must keep the shared default")
	}
}

// TestClientOptions covers the remaining construction options and the
// deprecated shims external callers may still use.
func TestClientOptions(t *testing.T) {
	if c := New("http://127.0.0.1:1/", WithTimeout(3*time.Second)); c.Timeout != 3*time.Second {
		t.Fatalf("WithTimeout not applied: %v", c.Timeout)
	}
	// Deprecated shims must keep their historical behavior.
	own := &http.Client{}
	c := NewClient("http://127.0.0.1:1", own)
	if c.hc != own {
		t.Fatal("NewClient shim must honor its httpClient argument")
	}
	if got := NewClient("http://127.0.0.1:1", nil); got.hc != defaultHTTPClient() {
		t.Fatal("NewClient(base, nil) shim must select the shared default client")
	}
	if c.Instrument(nil) != c {
		t.Fatal("Instrument shim must return the client for chaining")
	}
}

// TestDefaultClientReusesConnections proves the fan-out tuning end to
// end: a wave of concurrent requests — one per simulated model, more
// than http.DefaultClient's 2 idle connections per host — is followed by
// a second wave that dials NO new TCP connections, because the tuned
// transport kept every stream's connection idle for reuse. Dials are
// counted by wrapping DialContext on a clone of the tuned transport, so
// the assertion is race-free against server-side keep-alive state.
func TestDefaultClientReusesConnections(t *testing.T) {
	const models = 6
	var wave sync.WaitGroup
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hold every request of a wave open until all have connected, so
		// the wave genuinely occupies `models` distinct connections.
		wave.Done()
		wave.Wait()
		w.Write([]byte(`{"version":"test"}`))
	}))
	defer srv.Close()

	var dials atomic.Int64
	counting := defaultHTTPClient().Transport.(*http.Transport).Clone()
	dialer := &net.Dialer{Timeout: 10 * time.Second}
	counting.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		dials.Add(1)
		return dialer.DialContext(ctx, network, addr)
	}
	client := NewClient(srv.URL, &http.Client{Transport: counting})

	runWave := func() {
		wave.Add(models)
		var wg sync.WaitGroup
		for i := 0; i < models; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := client.Version(context.Background()); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	runWave()
	opened := dials.Load()
	if opened < models {
		t.Fatalf("first wave dialed %d connections, want %d concurrent", opened, models)
	}
	// Let the transport park the wave's connections in the idle pool.
	time.Sleep(50 * time.Millisecond)
	runWave()
	if after := dials.Load(); after != opened {
		t.Fatalf("second wave dialed %d new connections; tuned transport should reuse all %d idle ones",
			after-opened, opened)
	}
}
