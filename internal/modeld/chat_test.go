package modeld_test

import (
	"context"
	"strings"
	"testing"

	"llmms/internal/llm"
	"llmms/internal/modeld"
	"llmms/internal/truthfulqa"
)

func TestChatNonStreaming(t *testing.T) {
	_, client := wireStack(t, truthfulqa.Seed())
	resp, err := client.Chat(context.Background(), llm.ModelMistral, []modeld.ChatMessage{
		{Role: "user", Content: "Are bats blind?"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Message.Role != "assistant" || resp.Message.Content == "" {
		t.Fatalf("chat response = %+v", resp)
	}
	if !resp.Done || resp.DoneReason != "stop" || resp.EvalCount == 0 {
		t.Fatalf("chat completion state = %+v", resp)
	}
	lower := strings.ToLower(resp.Message.Content)
	if !strings.Contains(lower, "blind") && !strings.Contains(lower, "see") && !strings.Contains(lower, "echolocation") {
		t.Fatalf("off-topic chat answer: %q", resp.Message.Content)
	}
}

func TestChatHistoryInfluencesPrompt(t *testing.T) {
	_, client := wireStack(t, truthfulqa.Seed())
	// The history is flattened into the prompt; the last user message is
	// the question the engine resolves.
	resp, err := client.Chat(context.Background(), llm.ModelQwen2, []modeld.ChatMessage{
		{Role: "system", Content: "You answer factual questions."},
		{Role: "user", Content: "Are bats blind?"},
		{Role: "assistant", Content: "No, bats can see."},
		{Role: "user", Content: "Do goldfish really have a three-second memory?"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lower := strings.ToLower(resp.Message.Content)
	if !strings.Contains(lower, "goldfish") && !strings.Contains(lower, "month") && !strings.Contains(lower, "memor") {
		t.Fatalf("chat did not answer the final question: %q", resp.Message.Content)
	}
}

func TestChatStreaming(t *testing.T) {
	_, client := wireStack(t, truthfulqa.Seed())
	var pieces []string
	var final modeld.ChatResponse
	err := client.ChatStream(context.Background(), modeld.ChatRequest{
		Model: llm.ModelMistral,
		Messages: []modeld.ChatMessage{
			{Role: "user", Content: "Are bats blind?"},
		},
	}, func(resp modeld.ChatResponse) error {
		pieces = append(pieces, resp.Message.Content)
		if resp.Done {
			final = resp
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) < 2 {
		t.Fatalf("stream produced %d pieces", len(pieces))
	}
	if !final.Done || final.EvalCount == 0 {
		t.Fatalf("final = %+v", final)
	}
	joined := strings.Join(pieces, "")
	// The stream must equal the non-streaming answer.
	whole, err := client.Chat(context.Background(), llm.ModelMistral, []modeld.ChatMessage{
		{Role: "user", Content: "Are bats blind?"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if joined != whole.Message.Content {
		t.Fatalf("stream diverged:\n%q\n%q", joined, whole.Message.Content)
	}
}

func TestChatValidation(t *testing.T) {
	_, client := wireStack(t, truthfulqa.Seed().Head(2))
	ctx := context.Background()
	if _, err := client.Chat(ctx, llm.ModelMistral, nil, 0); err == nil {
		t.Fatal("expected error for empty messages")
	}
	if _, err := client.Chat(ctx, llm.ModelMistral, []modeld.ChatMessage{
		{Role: "assistant", Content: "I speak first"},
	}, 0); err == nil {
		t.Fatal("expected error when last message is not from the user")
	}
	if _, err := client.Chat(ctx, "", []modeld.ChatMessage{{Role: "user", Content: "q"}}, 0); err == nil {
		t.Fatal("expected error for missing model")
	}
	if _, err := client.Chat(ctx, "phantom:1b", []modeld.ChatMessage{{Role: "user", Content: "q"}}, 0); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestChatBudget(t *testing.T) {
	_, client := wireStack(t, truthfulqa.Seed())
	resp, err := client.Chat(context.Background(), llm.ModelLlama3, []modeld.ChatMessage{
		{Role: "user", Content: "Are bats blind?"},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.EvalCount != 5 || resp.DoneReason != "length" {
		t.Fatalf("budgeted chat = %+v", resp)
	}
}
