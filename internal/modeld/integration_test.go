package modeld_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"llmms/internal/bench"
	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/modeld"
	"llmms/internal/truthfulqa"
)

// These tests exercise the full distributed stack of the paper's
// computation layer: orchestrator → HTTP client → Ollama-compatible
// daemon → inference engine. The orchestration algorithms must behave
// identically whether the backend is in-process or over the wire.

func wireStack(t *testing.T, ds truthfulqa.Dataset) (*llm.Engine, *modeld.Client) {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(ds)})
	srv := httptest.NewServer(modeld.NewServer(engine))
	t.Cleanup(srv.Close)
	return engine, modeld.New(srv.URL, modeld.WithHTTPClient(srv.Client()))
}

func TestOrchestrationOverHTTP(t *testing.T) {
	ds := truthfulqa.Seed()
	_, client := wireStack(t, ds)
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 256
	orch, err := core.New(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []core.Strategy{core.StrategyOUA, core.StrategyMAB, core.StrategyHybrid} {
		res, err := orch.Run(context.Background(), strategy, "Are bats blind?")
		if err != nil {
			t.Fatalf("%s over HTTP: %v", strategy, err)
		}
		if res.Answer == "" || res.TokensUsed == 0 || res.TokensUsed > 256 {
			t.Fatalf("%s: result = %+v", strategy, res)
		}
		lower := strings.ToLower(res.Answer)
		if !strings.Contains(lower, "blind") && !strings.Contains(lower, "see") && !strings.Contains(lower, "echolocation") {
			t.Fatalf("%s: off-topic answer %q", strategy, res.Answer)
		}
	}
}

// TestHTTPBackendMatchesInProcess verifies the wire protocol is lossless:
// the same orchestrated query against the same engine must select the
// same model, produce the same answer, and account the same tokens
// whether driven in-process or through the daemon.
func TestHTTPBackendMatchesInProcess(t *testing.T) {
	ds := truthfulqa.Seed()
	engine, client := wireStack(t, ds)

	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 200
	direct, err := core.New(engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	overHTTP, err := core.New(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"What happens if you swallow chewing gum?",
		"Do goldfish really have a three-second memory?",
		"Does cracking your knuckles cause arthritis?",
	} {
		for _, strategy := range []core.Strategy{core.StrategyOUA, core.StrategyMAB} {
			a, err := direct.Run(context.Background(), strategy, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := overHTTP.Run(context.Background(), strategy, q)
			if err != nil {
				t.Fatal(err)
			}
			if a.Model != b.Model || a.Answer != b.Answer || a.TokensUsed != b.TokensUsed {
				t.Fatalf("%s %q diverged over HTTP:\n direct: %s %d %q\n http:   %s %d %q",
					strategy, q, a.Model, a.TokensUsed, a.Answer, b.Model, b.TokensUsed, b.Answer)
			}
		}
	}
}

// TestEvaluationHarnessOverHTTP runs a slice of the paper's evaluation
// through the daemon, proving the harness is backend-agnostic.
func TestEvaluationHarnessOverHTTP(t *testing.T) {
	ds := truthfulqa.Generate(12, 1)
	_, client := wireStack(t, ds)
	rep, err := bench.Run(context.Background(), client, bench.Config{
		Dataset:     ds,
		MaxTokens:   128,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 5*12 {
		t.Fatalf("records = %d", len(rep.Records))
	}
	for _, res := range rep.Results {
		if res.AvgReward == 0 && res.AvgF1 == 0 {
			t.Fatalf("system %s produced nothing over HTTP: %+v", res.System, res)
		}
	}
}

// TestFederatedOrchestration spans two daemons: each model is served by
// its own HTTP endpoint, and the orchestrator coordinates them through a
// core.MultiBackend — the §9.5 federated-integration proposal.
func TestFederatedOrchestration(t *testing.T) {
	ds := truthfulqa.Seed()
	// Two independent engines, each hosting the full profile set but
	// reachable on different endpoints.
	_, siteA := wireStack(t, ds)
	_, siteB := wireStack(t, ds)

	mb := core.NewMultiBackend(nil)
	if err := mb.Register(llm.ModelLlama3, siteA); err != nil {
		t.Fatal(err)
	}
	if err := mb.Register(llm.ModelMistral, siteB); err != nil {
		t.Fatal(err)
	}
	if err := mb.Register(llm.ModelQwen2, siteB); err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 200
	orch, err := core.New(mb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := orch.MAB(context.Background(), "Does sugar make children hyperactive?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == "" || res.TokensUsed == 0 {
		t.Fatalf("federated result = %+v", res)
	}
	// All three models contributed (UCB1 pulls every arm at least once).
	for _, out := range res.Outcomes {
		if out.Pulls == 0 {
			t.Fatalf("model %s never pulled across daemons: %+v", out.Model, res.Outcomes)
		}
	}
}

func TestClientErrorPaths(t *testing.T) {
	ds := truthfulqa.Seed().Head(3)
	_, client := wireStack(t, ds)
	ctx := context.Background()

	if _, err := client.GenerateChunk(ctx, llm.ChunkRequest{Model: "phantom:70b", Prompt: "q", MaxTokens: 8}); err == nil {
		t.Fatal("expected error for unknown model")
	}
	if _, err := client.EmbedOne(ctx, "phantom-embed", "text"); err == nil {
		t.Fatal("expected error for unknown embedding model")
	}
	if _, err := client.Show(ctx, "phantom:70b"); err == nil {
		t.Fatal("expected error for unknown model in show")
	}
	if v, err := client.Version(ctx); err != nil || v == "" {
		t.Fatalf("version = %q, %v", v, err)
	}
	if _, err := client.PS(ctx); err != nil {
		t.Fatal(err)
	}
	// A client pointed at a dead endpoint surfaces transport errors.
	dead := modeld.New("http://127.0.0.1:1")
	if _, err := dead.Tags(ctx); err == nil {
		t.Fatal("expected transport error")
	}
}

func TestClientEmbedBatch(t *testing.T) {
	ds := truthfulqa.Seed().Head(3)
	_, client := wireStack(t, ds)
	vs, err := client.Embed(context.Background(), "mxbai-embed-large", "first text", "second text")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || len(vs[0]) == 0 {
		t.Fatalf("embed batch = %d vectors", len(vs))
	}
	one, err := client.EmbedOne(context.Background(), "mxbai-embed-large", "first text")
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != vs[0][i] {
			t.Fatal("EmbedOne diverged from batch Embed")
		}
	}
}
