// Package modeld implements the model daemon of LLM-MS: an HTTP server
// and client pair speaking an Ollama-compatible REST protocol over the
// simulated inference engine.
//
// The paper's computation layer talks to the Ollama daemon (v0.4.5): it
// POSTs /api/generate with a num_predict budget, consumes a streaming
// NDJSON response token batch by token batch, reads the final object's
// done_reason ("stop" vs "length") and opaque context for continuation,
// and uses the daemon's embedding endpoint for all vector encoding. This
// package reproduces that wire contract:
//
//	POST /api/generate  — streaming NDJSON generation (num_predict, context)
//	POST /api/embed     — embeddings for one input or a batch
//	GET  /api/tags      — installed models
//	POST /api/show      — model details
//	GET  /api/ps        — loaded (resident) models
//	GET  /api/version   — daemon version (reports the simulated 0.4.5)
//	GET  /api/gpu       — hardware telemetry (LLM-MS extension)
//	GET  /metrics       — Prometheus text-format daemon metrics (LLM-MS extension)
//
// The Client type wraps the protocol for Go callers and satisfies the
// orchestrator's Backend interface, so LLM-MS runs identically against an
// in-process engine or a daemon across the network.
package modeld

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"llmms/internal/llm"
	"llmms/internal/telemetry"
	"llmms/internal/vectordb"
)

// Version is the protocol version the daemon reports, matching the
// Ollama release the paper deployed.
const Version = "0.4.5-sim"

// GenerateRequest is the wire form of a generation call.
type GenerateRequest struct {
	Model   string `json:"model"`
	Prompt  string `json:"prompt"`
	Stream  *bool  `json:"stream,omitempty"`
	Context []int  `json:"context,omitempty"`
	Options struct {
		NumPredict int `json:"num_predict,omitempty"`
		// StreamTokens is an LLM-MS extension: when true, every
		// streamed NDJSON line echoes the ids of the tokens it carries
		// (GenerateResponse.Tokens), so a client holding the stream
		// open across orchestration rounds can synthesize per-slice
		// continuation state without waiting for the final line. A
		// daemon that does not understand the option simply omits the
		// field, which the client detects and treats as
		// stream-unsupported.
		StreamTokens bool `json:"stream_tokens,omitempty"`
	} `json:"options,omitempty"`
}

// GenerateResponse is one NDJSON line of a generation stream (or the
// whole reply when stream=false).
type GenerateResponse struct {
	Model      string `json:"model"`
	CreatedAt  string `json:"created_at"`
	Response   string `json:"response"`
	Done       bool   `json:"done"`
	DoneReason string `json:"done_reason,omitempty"`
	Context    []int  `json:"context,omitempty"`
	EvalCount  int    `json:"eval_count,omitempty"`
	// Tokens carries the ids of this line's tokens when the request set
	// Options.StreamTokens (LLM-MS extension; see GenerateRequest).
	Tokens []int `json:"tokens,omitempty"`
	// Spans carries the daemon-side span records of this generation on
	// the final (Done) line when the request arrived with a traceparent
	// header (LLM-MS extension). The client grafts them into its local
	// trace, so one query's span tree crosses the process boundary. A
	// daemon that does not understand tracing simply omits the field.
	Spans []telemetry.SpanRecord `json:"spans,omitempty"`
}

// EmbedRequest is the wire form of an embedding call. Input accepts a
// string or an array of strings, like Ollama.
type EmbedRequest struct {
	Model string          `json:"model"`
	Input json.RawMessage `json:"input"`
}

// EmbedResponse carries one embedding per input.
type EmbedResponse struct {
	Model      string      `json:"model"`
	Embeddings [][]float32 `json:"embeddings"`
}

// TagsResponse lists installed models.
type TagsResponse struct {
	Models []ModelInfo `json:"models"`
}

// ModelInfo describes one installed model.
type ModelInfo struct {
	Name    string       `json:"name"`
	Size    uint64       `json:"size"`
	Details ModelDetails `json:"details"`
	// Batch is the model's continuous-batch scheduler snapshot, set on
	// /api/ps replies when the engine has a scheduler for the model.
	Batch *BatchInfo `json:"batch,omitempty"`
}

// BatchInfo surfaces one model's batch-scheduler occupancy and
// cumulative step accounting in /api/ps.
type BatchInfo struct {
	// Active is the current batch occupancy (sequences decoding).
	Active int `json:"active"`
	// Pending is the number of sequences queued for admission.
	Pending int `json:"pending"`
	// Steps is the cumulative decode-step count.
	Steps uint64 `json:"steps"`
	// Decoded is the cumulative token count those steps produced.
	Decoded uint64 `json:"decoded"`
}

// ModelDetails mirrors the nested details object of Ollama's tags reply.
type ModelDetails struct {
	Family            string `json:"family"`
	ParameterSize     string `json:"parameter_size"`
	QuantizationLevel string `json:"quantization_level"`
}

// ShowRequest asks for one model's details.
type ShowRequest struct {
	Model string `json:"model"`
}

// ShowResponse returns the full profile of a model.
type ShowResponse struct {
	Name          string       `json:"name"`
	Details       ModelDetails `json:"details"`
	ContextWindow int          `json:"context_window"`
	TokensPerSec  float64      `json:"tokens_per_sec"`
	Loaded        bool         `json:"loaded"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the HTTP daemon.
type Server struct {
	engine     *llm.Engine
	mux        *http.ServeMux
	reg        *telemetry.Registry
	tracer     *telemetry.Tracer
	log        *slog.Logger
	pprof      bool
	embedCache *vectordb.Collection // nil disables the cache
	requests   telemetry.Counter
	latency    telemetry.Histogram
	genTok     telemetry.Counter
	embedHits  telemetry.Counter
}

// ServerOption configures the daemon at construction; see NewServer.
type ServerOption func(*Server)

// WithLogger attaches a structured logger; generation requests log at
// debug level (stamped with the propagated trace ID when the caller
// sent one) and failures at warn. Nil keeps the default no-op logger.
func WithLogger(log *slog.Logger) ServerOption {
	return func(s *Server) {
		if log != nil {
			s.log = log
		}
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the daemon
// mux — the same flag-gated profiling surface the platform server has.
func WithPprof(enabled bool) ServerOption {
	return func(s *Server) { s.pprof = enabled }
}

// WithEmbedCache memoizes /api/embed through col, keyed on
// hash(model, input) with the vector stored as the document embedding.
// Backed by a durable collection (the -data-dir flag on cmd/modeld),
// embeddings computed before a restart are served without recomputation
// after it. Nil disables the cache.
func WithEmbedCache(col *vectordb.Collection) ServerOption {
	return func(s *Server) { s.embedCache = col }
}

// embedCacheID keys one (model, input) pair. FNV-1a over both parts
// with a NUL separator; collisions would need identical 64-bit hashes
// across the daemon's model set, acceptable for a cache.
func embedCacheID(model, input string) string {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(input))
	return strconv.FormatUint(h.Sum64(), 16)
}

// NewServer wraps an engine in the daemon protocol. The daemon carries
// its own metrics registry (modeld_requests_total{route,code},
// modeld_request_duration_seconds{route},
// modeld_generate_tokens_total{model}, the engine's llmms_batch_*
// scheduler series, plus llmms_go_* runtime gauges
// and llmms_build_info) exposed on GET /metrics; route labels are the
// registration patterns and model labels the engine's model names, so
// cardinality stays bounded.
func NewServer(engine *llm.Engine, opts ...ServerOption) *Server {
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	telemetry.RegisterBuildInfo(reg, Version)
	s := &Server{
		engine: engine,
		mux:    http.NewServeMux(),
		reg:    reg,
		tracer: telemetry.NewTracer("modeld"),
		log:    telemetry.NopLogger(),
		requests: reg.Counter("modeld_requests_total",
			"Daemon HTTP requests by route pattern and status code.", "route", "code"),
		latency: reg.Histogram("modeld_request_duration_seconds",
			"Daemon HTTP request latency by route pattern.", nil, "route"),
		genTok: reg.Counter("modeld_generate_tokens_total",
			"Tokens generated by the daemon, per model.", "model"),
		embedHits: reg.Counter("modeld_embed_cache_total",
			"Embed requests served from or missed in the embed cache.", "result"),
	}
	// The engine's batch schedulers report into the daemon's registry
	// (llmms_batch_occupancy, llmms_batch_step_seconds,
	// llmms_batch_admission_wait_seconds, llmms_batch_steps_total).
	bm := telemetry.RegisterBatchMetrics(reg)
	engine.SetBatchHooks(llm.BatchHooks{
		Step: bm.ObserveStep, Admit: bm.ObserveAdmission, Idle: bm.MarkIdle,
	})
	for _, opt := range opts {
		opt(s)
	}
	s.handle("POST /api/generate", s.handleGenerate)
	s.handle("POST /api/chat", s.handleChat)
	s.handle("POST /api/embed", s.handleEmbed)
	s.handle("GET /api/tags", s.handleTags)
	s.handle("POST /api/show", s.handleShow)
	s.handle("GET /api/ps", s.handlePS)
	s.handle("GET /api/version", s.handleVersion)
	s.handle("GET /api/gpu", s.handleGPU)
	s.mux.Handle("GET /metrics", reg.Handler())
	if s.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Registry exposes the daemon's metrics registry so embedding processes
// can add their own series to the same /metrics page.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// handle registers a handler wrapped with per-route request counting
// and latency observation, labeled by the registration pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := telemetry.NewResponseRecorder(w)
		h(rec, r)
		s.requests.Inc(pattern, strconv.Itoa(rec.Status))
		s.latency.Observe(time.Since(start).Seconds(), pattern)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func now() string { return time.Now().UTC().Format(time.RFC3339Nano) }

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Model == "" {
		writeErr(w, http.StatusBadRequest, "model is required")
		return
	}
	stream := req.Stream == nil || *req.Stream

	// Join the caller's trace when a valid traceparent header arrived; a
	// malformed or absent header gets a fresh daemon-local root instead.
	// The finished daemon-side spans ride back on the final NDJSON line
	// whenever the caller sent any traceparent at all — the client's
	// Adopt discards records whose trace ID does not match its own, so
	// echoing after a malformed header is harmless.
	tp := r.Header.Get("Traceparent")
	ctx := r.Context()
	var root *telemetry.Span
	if tid, sid, ok := telemetry.ParseTraceparent(tp); ok {
		ctx, root = s.tracer.StartRootFrom(ctx, "modeld.handle_generate", tid, sid)
	} else {
		ctx, root = s.tracer.StartRoot(ctx, "modeld.handle_generate")
	}
	root.SetAttr("model", req.Model)
	start := time.Now()

	// The engine returns its channel immediately; decoding happens while
	// the drain loop below runs, so the engine.generate span wraps the
	// drain, not the call.
	gen := root.Child("engine.generate")
	chunks, err := s.engine.Generate(ctx, llm.GenRequest{
		Model:     req.Model,
		Prompt:    req.Prompt,
		MaxTokens: req.Options.NumPredict,
		Context:   req.Context,
	})
	if err != nil {
		gen.End(err)
		root.End(err)
		s.log.Warn("generate failed", "model", req.Model, "trace_id", root.TraceID(), "err", err)
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	// Occupancy the moment this request joined the model's batch
	// (active plus queued, including this one); absent when batching is
	// disabled.
	if st, ok := s.engine.BatchStats(req.Model); ok {
		gen.SetAttr("batch_occupancy", strconv.Itoa(st.Active+st.Pending))
	}

	if !stream {
		var text string
		var last llm.Chunk
		for c := range chunks {
			text += c.Text
			if c.Done {
				last = c
			}
		}
		s.genTok.Add(float64(last.EvalCount), req.Model)
		gen.SetAttr("tokens", strconv.Itoa(last.EvalCount))
		gen.End(nil)
		root.End(nil)
		out := GenerateResponse{
			Model: req.Model, CreatedAt: now(), Response: text,
			Done: true, DoneReason: string(last.DoneReason),
			Context: last.Context, EvalCount: last.EvalCount,
		}
		if tp != "" {
			out.Spans = root.Records()
		}
		s.logGenerate(root, req.Model, last.EvalCount, start)
		writeJSON(w, http.StatusOK, out)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	lines := 0
	for c := range chunks {
		resp := GenerateResponse{Model: req.Model, CreatedAt: now(), Response: c.Text, Done: c.Done}
		if req.Options.StreamTokens {
			resp.Tokens = c.Tokens
		}
		if c.Done {
			resp.DoneReason = string(c.DoneReason)
			resp.Context = c.Context
			resp.EvalCount = c.EvalCount
			s.genTok.Add(float64(c.EvalCount), req.Model)
			gen.SetAttr("tokens", strconv.Itoa(c.EvalCount))
			gen.SetAttr("lines", strconv.Itoa(lines))
			gen.End(nil)
			root.End(nil)
			if tp != "" {
				resp.Spans = root.Records()
			}
			s.logGenerate(root, req.Model, c.EvalCount, start)
		}
		lines++
		if err := enc.Encode(resp); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// logGenerate emits the per-generation debug line, stamped with the
// (possibly propagated) trace ID.
func (s *Server) logGenerate(root *telemetry.Span, model string, tokens int, start time.Time) {
	s.log.Debug("generate",
		"model", model, "tokens", tokens,
		"trace_id", root.TraceID(), "elapsed", time.Since(start))
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req EmbedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var inputs []string
	var single string
	if err := json.Unmarshal(req.Input, &single); err == nil {
		inputs = []string{single}
	} else if err := json.Unmarshal(req.Input, &inputs); err != nil {
		writeErr(w, http.StatusBadRequest, "input must be a string or array of strings")
		return
	}
	resp := EmbedResponse{Model: req.Model}
	for _, in := range inputs {
		if v, ok := s.cachedEmbedding(req.Model, in); ok {
			resp.Embeddings = append(resp.Embeddings, v)
			continue
		}
		v, err := s.engine.Embed(req.Model, in)
		if err != nil {
			writeErr(w, http.StatusNotFound, "%v", err)
			return
		}
		s.storeEmbedding(req.Model, in, v)
		resp.Embeddings = append(resp.Embeddings, v)
	}
	writeJSON(w, http.StatusOK, resp)
}

// cachedEmbedding probes the embed cache. Hash collisions are guarded by
// comparing the stored text, so a false hit can't hand back another
// input's vector.
func (s *Server) cachedEmbedding(model, input string) ([]float32, bool) {
	if s.embedCache == nil {
		return nil, false
	}
	docs := s.embedCache.Get(embedCacheID(model, input))
	if len(docs) == 1 && docs[0].Text == input {
		s.embedHits.Inc("hit")
		return docs[0].Embedding, true
	}
	s.embedHits.Inc("miss")
	return nil, false
}

func (s *Server) storeEmbedding(model, input string, v []float32) {
	if s.embedCache == nil {
		return
	}
	err := s.embedCache.Upsert(vectordb.Document{
		ID:        embedCacheID(model, input),
		Text:      input,
		Embedding: v,
		Metadata:  map[string]any{"model": model},
	})
	if err != nil {
		s.log.Warn("embed cache store failed", "err", err)
	}
}

func (s *Server) handleTags(w http.ResponseWriter, _ *http.Request) {
	var resp TagsResponse
	for _, p := range s.engine.Profiles() {
		resp.Models = append(resp.Models, ModelInfo{
			Name: p.Name, Size: p.SizeBytes,
			Details: ModelDetails{
				Family:            p.Family,
				ParameterSize:     p.Parameters,
				QuantizationLevel: p.Quantization,
			},
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShow(w http.ResponseWriter, r *http.Request) {
	var req ShowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p, err := s.engine.Profile(req.Model)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ShowResponse{
		Name: p.Name,
		Details: ModelDetails{
			Family:            p.Family,
			ParameterSize:     p.Parameters,
			QuantizationLevel: p.Quantization,
		},
		ContextWindow: p.ContextWindow,
		TokensPerSec:  p.TokensPerSec,
		Loaded:        s.engine.Loaded(p.Name),
	})
}

func (s *Server) handlePS(w http.ResponseWriter, _ *http.Request) {
	var resp TagsResponse
	for _, p := range s.engine.Profiles() {
		if s.engine.Loaded(p.Name) {
			info := ModelInfo{
				Name: p.Name, Size: p.SizeBytes,
				Details: ModelDetails{
					Family:            p.Family,
					ParameterSize:     p.Parameters,
					QuantizationLevel: p.Quantization,
				},
			}
			if st, ok := s.engine.BatchStats(p.Name); ok {
				info.Batch = &BatchInfo{
					Active: st.Active, Pending: st.Pending,
					Steps: st.Steps, Decoded: st.Decoded,
				}
			}
			resp.Models = append(resp.Models, info)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": Version})
}

func (s *Server) handleGPU(w http.ResponseWriter, _ *http.Request) {
	snap := s.engine.Cluster().Stats()
	type dev struct {
		Index       int     `json:"index"`
		Name        string  `json:"name"`
		MemoryUsed  uint64  `json:"memory_used"`
		MemoryTotal uint64  `json:"memory_total"`
		Utilization float64 `json:"utilization"`
		Temperature float64 `json:"temperature"`
	}
	out := struct {
		Devices []dev  `json:"devices"`
		Render  string `json:"render"`
	}{Render: snap.String()}
	for _, d := range snap.Devices {
		out.Devices = append(out.Devices, dev{
			Index: d.Index, Name: d.Name, MemoryUsed: d.MemoryUsed,
			MemoryTotal: d.MemoryTotal, Utilization: d.Utilization,
			Temperature: d.Temperature,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
