package modeld_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"llmms/internal/llm"
	"llmms/internal/modeld"
	"llmms/internal/telemetry"
	"llmms/internal/truthfulqa"
)

// TestTraceRoundTripOverWire proves the W3C traceparent propagation
// end to end: the client injects the header, the daemon parses it and
// joins the same trace, and the daemon-side spans ship back on the
// done line and graft into the client's span tree — one trace ID
// across both processes.
func TestTraceRoundTripOverWire(t *testing.T) {
	_, client := wireStack(t, truthfulqa.Seed())
	tracer := telemetry.NewTracer("llmms")
	ctx, root := tracer.StartRoot(context.Background(), "query")

	if _, err := client.GenerateChunk(ctx, llm.ChunkRequest{
		Model: llm.ModelLlama3, Prompt: "Are bats blind?", MaxTokens: 16,
	}); err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	recs := root.Records()
	byName := map[string]telemetry.SpanRecord{}
	for _, r := range recs {
		if r.TraceID != root.TraceID() {
			t.Errorf("span %s/%s trace = %q, want %q", r.Service, r.Name, r.TraceID, root.TraceID())
		}
		byName[r.Name] = r
	}
	clientSpan, ok := byName["modeld.generate"]
	if !ok {
		t.Fatalf("no client-side modeld.generate span in %d records", len(recs))
	}
	daemonRoot, ok := byName["modeld.handle_generate"]
	if !ok {
		t.Fatalf("daemon spans not grafted into client trace: %v", names(recs))
	}
	if daemonRoot.Service != "modeld" {
		t.Errorf("daemon span service = %q, want modeld", daemonRoot.Service)
	}
	if daemonRoot.ParentID != clientSpan.SpanID {
		t.Errorf("daemon root parent = %q, want client span %q", daemonRoot.ParentID, clientSpan.SpanID)
	}
	engine, ok := byName["engine.generate"]
	if !ok {
		t.Fatalf("daemon engine.generate span missing: %v", names(recs))
	}
	if engine.ParentID != daemonRoot.SpanID {
		t.Errorf("engine span parent = %q, want daemon root %q", engine.ParentID, daemonRoot.SpanID)
	}
}

// TestMalformedTraceparentFreshRoot proves the daemon treats a
// malformed traceparent as absent for joining purposes: it starts a
// fresh root trace rather than propagating garbage, but still returns
// its spans (the client's Adopt drops mismatched trace IDs, so a
// confused sender cannot pollute anyone's tree).
func TestMalformedTraceparentFreshRoot(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	srv := httptest.NewServer(modeld.NewServer(engine))
	defer srv.Close()

	spans := generateWithHeader(t, srv, "not-a-traceparent")
	if len(spans) == 0 {
		t.Fatal("daemon returned no spans despite a traceparent header")
	}
	fresh := spans[0].TraceID
	if len(fresh) != 32 {
		t.Fatalf("fresh root trace ID = %q, want 32 hex chars", fresh)
	}
	for _, sp := range spans {
		if sp.TraceID != fresh {
			t.Errorf("daemon spans disagree on trace ID: %q vs %q", sp.TraceID, fresh)
		}
		if sp.Name == "modeld.handle_generate" && sp.ParentID != "" {
			t.Errorf("fresh root has parent %q, want none", sp.ParentID)
		}
	}

	// Sanity check the inverse: a well-formed header joins its trace.
	const tid = "0123456789abcdef0123456789abcdef"
	const sid = "0123456789abcdef"
	joined := generateWithHeader(t, srv, "00-"+tid+"-"+sid+"-01")
	for _, sp := range joined {
		if sp.TraceID != tid {
			t.Errorf("span %q trace = %q, want upstream %q", sp.Name, sp.TraceID, tid)
		}
		if sp.Name == "modeld.handle_generate" && sp.ParentID != sid {
			t.Errorf("daemon root parent = %q, want upstream %q", sp.ParentID, sid)
		}
	}
}

// generateWithHeader posts a raw /api/generate request with the given
// Traceparent header and returns the spans from the final done line.
func generateWithHeader(t *testing.T, srv *httptest.Server, traceparent string) []telemetry.SpanRecord {
	t.Helper()
	var reqBody modeld.GenerateRequest
	reqBody.Model = llm.ModelLlama3
	reqBody.Prompt = "Are bats blind?"
	reqBody.Options.NumPredict = 16
	data, err := json.Marshal(reqBody)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/generate", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", traceparent)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var spans []telemetry.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var gr modeld.GenerateResponse
		if err := json.Unmarshal(sc.Bytes(), &gr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if gr.Done {
			spans = gr.Spans
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

func names(recs []telemetry.SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Service + "/" + r.Name
	}
	return out
}
