package modeld

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llmms/internal/embedding"
	"llmms/internal/llm"
	"llmms/internal/telemetry"
)

// TestClientInstrumentation drives every client operation against a
// live daemon and checks the request counters, latency histograms, and
// per-model chunk latency land in the shared telemetry bundle.
func TestClientInstrumentation(t *testing.T) {
	c, engine := newTestDaemon(t)
	tel := telemetry.New(telemetry.Options{})
	c.Instrument(tel) // deprecated shim, pinned working here
	ctx := context.Background()
	model := engine.Profiles()[0].Name

	if _, err := c.GenerateChunk(ctx, llm.ChunkRequest{Model: model, Prompt: "What color is the sky?", MaxTokens: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tags(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Version(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EmbedOne(ctx, embedding.ModelDefault, "hello"); err != nil {
		t.Fatal(err)
	}
	// An error outcome: unknown model.
	if _, err := c.Show(ctx, "no-such-model"); err == nil {
		t.Fatal("expected error for unknown model")
	}

	for _, check := range []struct {
		op, outcome string
		want        float64
	}{
		{"generate", "ok", 1},
		{"tags", "ok", 1},
		{"version", "ok", 1},
		{"embed", "ok", 1},
		{"show", "error", 1},
	} {
		if got := tel.ClientRequests.Value(check.op, check.outcome); got != check.want {
			t.Errorf("requests{%s,%s} = %v, want %v", check.op, check.outcome, got, check.want)
		}
	}
	if got := tel.ClientLatency.Count("generate"); got != 1 {
		t.Errorf("latency count{generate} = %v, want 1", got)
	}
	if got := tel.ClientChunkLat.Count(model, "ok"); got != 1 {
		t.Errorf("chunk latency count{%s,ok} = %v, want 1", model, got)
	}
	if got := tel.ClientTruncated.Value(model); got != 0 {
		t.Errorf("truncated{%s} = %v, want 0", model, got)
	}
}

// TestClientTruncatedStreamCounter checks a stream that dies before its
// done:true line increments the truncation counter for the model.
func TestClientTruncatedStreamCounter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"model":"m","response":"partial"}`+"\n")
	}))
	defer srv.Close()
	tel := telemetry.New(telemetry.Options{})
	c := New(srv.URL, WithHTTPClient(srv.Client()), WithTelemetry(tel))
	if _, err := c.GenerateChunk(context.Background(), llm.ChunkRequest{Model: "m", Prompt: "q", MaxTokens: 8}); err == nil {
		t.Fatal("expected truncation error")
	}
	if got := tel.ClientTruncated.Value("m"); got != 1 {
		t.Errorf("truncated{m} = %v, want 1", got)
	}
	// The underlying generate request itself completed at the HTTP
	// level, so it counts as ok — truncation is its own signal.
	if got := tel.ClientRequests.Value("generate", "error"); got != 0 {
		t.Errorf("requests{generate,error} = %v, want 0", got)
	}
	// Regression: the chunk latency observation must see the truncation
	// error and land under the error outcome — an earlier version
	// observed latency before the truncation check and filed dead-daemon
	// calls as healthy, dragging the ok histogram toward zero.
	if got := tel.ClientChunkLat.Count("m", "error"); got != 1 {
		t.Errorf("chunk latency count{m,error} = %v, want 1", got)
	}
	if got := tel.ClientChunkLat.Count("m", "ok"); got != 0 {
		t.Errorf("chunk latency count{m,ok} = %v, want 0", got)
	}
}

// TestClientCanceledOutcome checks deadline expiry maps to the bounded
// "canceled" outcome label, not "error".
func TestClientCanceledOutcome(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	tel := telemetry.New(telemetry.Options{})
	c := New(srv.URL, WithHTTPClient(srv.Client()), WithTelemetry(tel))
	c.Timeout = 20 * time.Millisecond
	if _, err := c.Tags(context.Background()); err == nil {
		t.Fatal("expected timeout")
	}
	if got := tel.ClientRequests.Value("tags", "canceled"); got != 1 {
		t.Errorf("requests{tags,canceled} = %v, want 1", got)
	}
}

// TestDaemonMetricsEndpoint checks the daemon's own /metrics page
// counts requests by route pattern and generated tokens by model.
func TestDaemonMetricsEndpoint(t *testing.T) {
	c, engine := newTestDaemon(t)
	ctx := context.Background()
	model := engine.Profiles()[0].Name
	if _, err := c.GenerateChunk(ctx, llm.ChunkRequest{Model: model, Prompt: "What color is the sky?", MaxTokens: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tags(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`modeld_requests_total{route="POST /api/generate",code="200"} 1`,
		`modeld_requests_total{route="GET /api/tags",code="200"} 1`,
		`modeld_request_duration_seconds_count{route="POST /api/generate"} 1`,
		`modeld_generate_tokens_total{model="` + model + `"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("daemon metrics missing %q in:\n%s", want, out)
		}
	}
}
