package modeld

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llmms/internal/embedding"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

func newTestDaemon(t *testing.T) (*Client, *llm.Engine) {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Generate(100, 1))})
	srv := httptest.NewServer(NewServer(engine))
	t.Cleanup(srv.Close)
	return New(srv.URL, WithHTTPClient(srv.Client())), engine
}

func TestGenerateStreaming(t *testing.T) {
	c, _ := newTestDaemon(t)
	var lines int
	var text strings.Builder
	var final GenerateResponse
	err := c.Generate(context.Background(), GenerateRequest{
		Model: llm.ModelLlama3, Prompt: "Are bats blind?",
	}, func(gr GenerateResponse) error {
		lines++
		text.WriteString(gr.Response)
		if gr.Done {
			final = gr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines < 2 {
		t.Fatalf("expected streamed lines, got %d", lines)
	}
	if final.DoneReason != "stop" || final.EvalCount == 0 || len(final.Context) == 0 {
		t.Fatalf("bad final line: %+v", final)
	}
	if !strings.Contains(strings.ToLower(text.String()), "bat") {
		t.Fatalf("answer off-topic: %q", text.String())
	}
}

func TestGenerateNonStreaming(t *testing.T) {
	c, _ := newTestDaemon(t)
	stream := false
	req := GenerateRequest{Model: llm.ModelMistral, Prompt: "What is the capital of France?", Stream: &stream}
	var got []GenerateResponse
	err := c.Generate(context.Background(), req, func(gr GenerateResponse) error {
		got = append(got, gr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Done || got[0].Response == "" {
		t.Fatalf("non-streaming reply wrong: %+v", got)
	}
}

func TestGenerateChunkContinuation(t *testing.T) {
	c, _ := newTestDaemon(t)
	ctx := context.Background()
	first, err := c.GenerateChunk(ctx, llm.ChunkRequest{Model: llm.ModelQwen2, Prompt: "What is the capital of France?", MaxTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	if first.DoneReason != llm.DoneLength || first.EvalCount != 4 {
		t.Fatalf("first chunk: %+v", first)
	}
	full, err := c.GenerateChunk(ctx, llm.ChunkRequest{Model: llm.ModelQwen2, Prompt: "What is the capital of France?"})
	if err != nil {
		t.Fatal(err)
	}
	text := first.Text
	cont := first.Context
	for i := 0; i < 200 && len(text) < len(full.Text); i++ {
		next, err := c.GenerateChunk(ctx, llm.ChunkRequest{Model: llm.ModelQwen2, Prompt: "What is the capital of France?", MaxTokens: 6, Cont: cont})
		if err != nil {
			t.Fatal(err)
		}
		text += next.Text
		cont = next.Context
		if next.DoneReason == llm.DoneStop {
			break
		}
	}
	if text != full.Text {
		t.Fatalf("chunked text != full text:\n%q\n%q", text, full.Text)
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	c, _ := newTestDaemon(t)
	err := c.Generate(context.Background(), GenerateRequest{Model: "nope", Prompt: "hi"},
		func(GenerateResponse) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("expected unknown-model error, got %v", err)
	}
}

func TestEmbed(t *testing.T) {
	c, _ := newTestDaemon(t)
	vs, err := c.Embed(context.Background(), embedding.ModelDefault,
		"the capital of france", "an unrelated sentence about volcanoes")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d embeddings, want 2", len(vs))
	}
	local := embedding.Default().Encode("the capital of france")
	if embedding.Cosine(vs[0], local) < 0.999 {
		t.Fatal("daemon embedding differs from local encoder")
	}
	if _, err := c.Embed(context.Background(), "no-such-encoder", "x"); err == nil {
		t.Fatal("expected error for unknown encoder")
	}
	one, err := c.EmbedOne(context.Background(), embedding.ModelDefault, "hello world")
	if err != nil || len(one) == 0 {
		t.Fatalf("EmbedOne: %v %v", one, err)
	}
}

func TestTagsShowPSVersion(t *testing.T) {
	c, engine := newTestDaemon(t)
	ctx := context.Background()

	tags, err := c.Tags(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 3 {
		t.Fatalf("tags = %d models, want 3", len(tags))
	}
	names := map[string]bool{}
	for _, m := range tags {
		names[m.Name] = true
		if m.Details.Family == "" || m.Details.ParameterSize == "" {
			t.Fatalf("incomplete details: %+v", m)
		}
	}
	if !names[llm.ModelLlama3] || !names[llm.ModelMistral] || !names[llm.ModelQwen2] {
		t.Fatalf("missing default models: %v", names)
	}

	show, err := c.Show(ctx, llm.ModelLlama3)
	if err != nil {
		t.Fatal(err)
	}
	if show.ContextWindow == 0 || show.Details.Family != "llama" {
		t.Fatalf("show: %+v", show)
	}
	if _, err := c.Show(ctx, "nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}

	ps, err := c.PS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatalf("expected no resident models, got %v", ps)
	}
	if err := engine.Load(llm.ModelMistral); err != nil {
		t.Fatal(err)
	}
	ps, err = c.PS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Name != llm.ModelMistral {
		t.Fatalf("ps after load: %+v", ps)
	}

	v, err := c.Version(ctx)
	if err != nil || v != Version {
		t.Fatalf("version = %q %v", v, err)
	}
}

func TestEmbedSingleStringInput(t *testing.T) {
	// The wire protocol accepts a bare string for input, like Ollama.
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(nil)})
	srv := httptest.NewServer(NewServer(engine))
	defer srv.Close()

	body := strings.NewReader(`{"model":"` + embedding.ModelDefault + `","input":"hello"}`)
	resp, err := srv.Client().Post(srv.URL+"/api/embed", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestGPUEndpoint(t *testing.T) {
	c, engine := newTestDaemon(t)
	if err := engine.Load(llm.ModelLlama3); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Devices []struct {
			Name       string `json:"name"`
			MemoryUsed uint64 `json:"memory_used"`
		} `json:"devices"`
		Render string `json:"render"`
	}
	if err := c.do(context.Background(), "GET", "/api/gpu", nil, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Devices) != 1 || out.Devices[0].MemoryUsed == 0 {
		t.Fatalf("gpu telemetry: %+v", out)
	}
	if !strings.Contains(out.Render, "Tesla") {
		t.Fatalf("render missing device name:\n%s", out.Render)
	}
}

// TestGenerateChunkTruncatedStream simulates a daemon that dies
// mid-stream: NDJSON lines arrive but the done:true line never does. The
// client must return the partial text with consistent token accounting
// and an explicit ErrTruncatedStream, never a silently half-empty chunk.
func TestGenerateChunkTruncatedStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"model":"m","response":"partial "}`+"\n")
		io.WriteString(w, `{"model":"m","response":"answer"}`+"\n")
	}))
	defer srv.Close()
	c := New(srv.URL, WithHTTPClient(srv.Client()))
	cont := []int{7, 9}
	chunk, err := c.GenerateChunk(context.Background(),
		llm.ChunkRequest{Model: "m", Prompt: "q", MaxTokens: 8, Cont: cont})
	if !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("err = %v, want ErrTruncatedStream", err)
	}
	if chunk.Text != "partial answer" || chunk.Done || chunk.DoneReason != "" {
		t.Fatalf("chunk = %+v", chunk)
	}
	if chunk.TotalTokens != len(cont) || chunk.EvalCount != 0 {
		t.Fatalf("token accounting on truncation: %+v", chunk)
	}
}

// TestClientTimeout proves the client-level default deadline fires when
// the caller's context has none — the hung-daemon guard behind the core
// retry loop's per-attempt timeout.
func TestClientTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hang until the client gives up
	}))
	defer srv.Close()
	c := New(srv.URL, WithHTTPClient(srv.Client()))
	c.Timeout = 30 * time.Millisecond
	start := time.Now()
	if _, err := c.Tags(context.Background()); err == nil {
		t.Fatal("expected timeout error from a hung daemon")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("client deadline was not applied")
	}
}
