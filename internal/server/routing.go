package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"llmms/internal/core"
	"llmms/internal/router"
	"llmms/internal/session"
	"llmms/internal/telemetry"
)

// Predictive routing (DESIGN.md "Predictive routing"): with
// Options.Routing.TopK set, the server keeps a router.Predictor — an
// online query-embedding cluster index with per-(cluster, model) reward
// history — and consults it on every multi-model query before admission.
// A confident prediction narrows the fan-out to the top-k models (plus
// the occasional ε-probe), and the narrowed width is what the Gate
// acquires, so admission capacity gains are actually realized. Every
// completed orchestration and every user feedback rating trains the
// index; with Options.DataDir the cluster collection is durable.

// RoutingOptions configures query-aware predictive routing. The zero
// value disables the layer entirely.
type RoutingOptions struct {
	// TopK enables routing when positive: confidently clustered queries
	// fan out to only the predicted top-k models (the -router-topk flag
	// on cmd/llmms). Zero disables predictive routing.
	TopK int
	// MinObservations is how many queries a cluster needs before it may
	// narrow the fan-out (non-positive takes the predictor default, 3).
	MinObservations int
	// MinSimilarity is the centroid cosine similarity below which a
	// query falls back to the full pool (non-positive takes the
	// predictor default, 0.5).
	MinSimilarity float64
	// Epsilon sets the ε-probe cadence: every ⌈1/ε⌉-th routed decision
	// of a cluster includes one excluded model (zero takes the
	// predictor default 0.1; negative disables probing).
	Epsilon float64
	// MaxClusters caps the cluster index size (non-positive takes the
	// predictor default, 512).
	MaxClusters int
}

// newPredictor builds the routing predictor from options, or nil when
// routing is disabled.
func newPredictor(opts Options) *router.Predictor {
	if opts.Routing.TopK <= 0 {
		return nil
	}
	return router.NewPredictor(router.PredictorOptions{
		TopK:            opts.Routing.TopK,
		MinObservations: opts.Routing.MinObservations,
		MinSimilarity:   opts.Routing.MinSimilarity,
		Epsilon:         opts.Routing.Epsilon,
		MaxClusters:     opts.Routing.MaxClusters,
	})
}

// Router exposes the routing predictor (nil when routing is disabled);
// tests and embedding apps use it to inspect or pre-train the index.
func (s *Server) Router() *router.Predictor { return s.predictor }

// predictRoute consults the cluster index for a query's fan-out subset.
// It returns nil when routing is off or the query is single-model (the
// pool is already one model — nothing to narrow). The decision is
// traced (route.predict span), counted
// (llmms_route_decisions_total{outcome}, llmms_route_width,
// llmms_route_probes_total{model}), and echoed in the X-Route response
// header as "<outcome>:<width>".
func (s *Server) predictRoute(ctx context.Context, query string, strategy core.Strategy, pool []string) *router.Prediction {
	if s.predictor == nil || strategy == core.StrategySingle {
		return nil
	}
	_, span := telemetry.StartSpan(ctx, "route.predict")
	pred := s.predictor.Predict(query, pool)
	span.SetAttr("outcome", pred.Outcome)
	span.SetAttr("cluster", fmt.Sprintf("%d", pred.Cluster))
	span.SetAttr("similarity", fmt.Sprintf("%.3f", pred.Similarity))
	span.SetAttr("models", strings.Join(pred.Models, ","))
	span.End(nil)
	s.tel.RouteDecisions.Inc(pred.Outcome)
	s.tel.RouteWidth.Observe(float64(len(pred.Models)))
	if pred.Probe != "" {
		s.tel.RouteProbes.Inc(pred.Probe)
	}
	return &pred
}

// observeRoute feeds a completed orchestration back into the cluster
// index (no-op when routing is off).
func (s *Server) observeRoute(query string, res core.Result) {
	if s.predictor != nil {
		s.predictor.Observe(query, res)
	}
}

// rateRoute forwards a user feedback rating to the cluster of the
// session's last question, so feedback sharpens the routing index as
// well as the global FeedbackStore. Feedback never creates clusters.
func (s *Server) rateRoute(sessionID, model string, rating float64) {
	if s.predictor == nil || sessionID == "" {
		return
	}
	sess, err := s.sessions.Get(sessionID)
	if err != nil {
		return
	}
	for i := len(sess.Messages) - 1; i >= 0; i-- {
		if sess.Messages[i].Role == session.RoleUser {
			s.predictor.Rate(sess.Messages[i].Content, model, rating)
			return
		}
	}
}

// handleRouter reports the routing index: options, per-outcome decision
// counts, and the transparent per-cluster model standings.
func (s *Server) handleRouter(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.predictor.Status())
}
