// Package server implements the LLM-MS application layer (Chapter 5 and
// §7.2): the web-facing coordination hub that accepts queries, streams
// orchestration events to the browser, manages sessions and settings,
// ingests documents for retrieval-augmented generation, and exposes model
// and GPU telemetry.
//
// The paper's stack is Flask + Apache/mod_wsgi streaming Server-Sent
// Events from the Ollama daemon; this package reproduces the same REST
// surface on net/http:
//
//	GET  /                     embedded chat UI
//	POST /api/query            SSE stream of orchestration events
//	POST /api/upload           document ingestion (RAG)
//	GET  /api/documents        ingested document inventory
//	DELETE /api/documents/{id} remove an ingested document
//	GET/POST /api/sessions     session list / create
//	GET/DELETE /api/sessions/{id}
//	DELETE /api/sessions       clear history
//	GET  /api/models           model inventory
//	GET/PUT /api/settings      orchestration settings
//	POST /api/configure        natural-language settings changes (§9.5)
//	POST/GET /api/feedback     answer ratings / learned priors (§9.5)
//	GET  /api/arena            pairwise-game Elo standings (§9.5)
//	GET  /api/recall           contextual memory-graph recall (§9.5)
//	GET  /api/gpu              hardware telemetry
//	GET  /api/fleet            per-replica fleet status (only with Options.Fleet)
//	GET  /api/router           predictive-routing index status (only with Options.Routing)
//	GET  /api/traces           recent completed query traces (newest first, ?limit=)
//	GET  /api/traces/{id}      one query's full trace (rounds, chunks, scores, span tree)
//	GET  /metrics              Prometheus text-format metrics exposition
//	GET  /healthz              liveness (always ok while the process serves)
//	GET  /readyz               readiness with per-dependency check status
//	GET  /api/version
//	GET  /debug/pprof/...      runtime profiles (only with Options.EnablePprof)
//
// Every route is instrumented: per-endpoint request counters
// (llmms_http_requests_total{route,code}) and latency histograms
// (llmms_http_request_duration_seconds{route}), with SSE stream/frame
// counters on /api/query; see internal/telemetry for the full metric
// catalogue. Each /api/query run is assigned a query ID (returned in
// the X-Query-ID header and the final "result" frame) under which its
// completed trace is retrievable from /api/traces/{id}.
//
// Every non-2xx response — and the SSE "error" event on /api/query —
// carries the uniform JSON envelope
//
//	{"error": {"code": "unknown_session", "message": "session abc not found"}}
//
// where code is a stable machine-readable identifier (invalid_json,
// missing_field, invalid_strategy, unknown_session, unknown_document,
// unknown_model, unknown_trace, invalid_settings, invalid_rating,
// body_too_large, request_too_large, overloaded, ingest_failed,
// retrieval_failed, ephemeral_context, invalid_config,
// all_models_failed, query_failed) and message is the human-readable
// detail. The one exception is GET /readyz, whose 503 body is the
// per-dependency check report itself. The /api/query stream also
// forwards core orchestration events verbatim, including "model_failed"
// frames when a model is dropped after retry exhaustion while the query
// continues on the survivors.
//
// With Options.Serving configured, a cross-query serving layer sits in
// front of orchestration (see ServingOptions and DESIGN.md "Serving
// layer"): /api/query responses then carry an X-Cache header — MISS
// (full orchestration ran), HIT (exact answer-cache replay), SEMANTIC
// (near-duplicate query's answer replayed), or COALESCED (an identical
// in-flight query's stream was shared) — and requests beyond the
// admission bound are shed with 429, an "overloaded" envelope, and a
// Retry-After header. /api/query request bodies are capped at 1 MiB
// (413 + request_too_large beyond it).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"llmms/internal/arena"
	"llmms/internal/core"
	"llmms/internal/fleet"
	"llmms/internal/llm"
	"llmms/internal/qcache"
	"llmms/internal/rag"
	"llmms/internal/router"
	"llmms/internal/session"
	"llmms/internal/telemetry"
	"llmms/internal/vectordb"
)

// Version is reported by /api/version.
const Version = "1.0.0"

// Settings are the user-tunable orchestration parameters (the paper's
// settings panel, §5.3).
type Settings struct {
	// Strategy is the default policy: "oua", "mab", "hybrid", or "single".
	Strategy string `json:"strategy"`
	// Model is the default model for single-model queries.
	Model string `json:"model"`
	// MaxTokens is λ_max per query.
	MaxTokens int `json:"max_tokens"`
	// Alpha and Beta weight the scoring terms.
	Alpha float64 `json:"alpha"`
	// Beta is the inter-model agreement weight.
	Beta float64 `json:"beta"`
	// EnabledModels are the candidate models for orchestration.
	EnabledModels []string `json:"enabled_models"`
	// RAGTopK is how many retrieved chunks augment each prompt.
	RAGTopK int `json:"rag_top_k"`
}

// Validate rejects unusable settings.
func (s Settings) Validate() error {
	if _, err := core.ParseStrategy(s.Strategy); err != nil {
		return err
	}
	if s.MaxTokens < 1 {
		return errors.New("max_tokens must be positive")
	}
	if s.Alpha < 0 || s.Beta < 0 {
		return errors.New("alpha and beta must be non-negative")
	}
	if len(s.EnabledModels) == 0 {
		return errors.New("at least one model must be enabled")
	}
	if s.RAGTopK < 1 {
		return errors.New("rag_top_k must be positive")
	}
	return nil
}

// DefaultSettings matches the paper's evaluation defaults.
func DefaultSettings() Settings {
	return Settings{
		Strategy:      string(core.StrategyOUA),
		Model:         llm.ModelLlama3,
		MaxTokens:     2048,
		Alpha:         0.7,
		Beta:          0.3,
		EnabledModels: []string{llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2},
		RAGTopK:       3,
	}
}

// Options configures a Server.
type Options struct {
	// Engine is the inference backend. Required: it serves the model
	// inventory, embeddings, and GPU telemetry even when Backend
	// overrides generation.
	Engine *llm.Engine
	// Backend, when non-nil, overrides the generation backend the
	// orchestrator calls (default: Engine). Deployments point it at a
	// modeld.Client to orchestrate across remote daemons; tests and
	// benchmarks inject fault/latency backends.
	Backend core.Backend
	// Fleet, when non-nil, is the replicated model-fleet layer. It
	// becomes the generation backend when Backend is nil, every fleet
	// model gains a per-model /readyz check named "fleet:<model>" (ready
	// iff at least one replica is healthy with a closed breaker), and
	// GET /api/fleet exposes the per-replica status snapshot. The caller
	// owns the pool's lifecycle (Start/Close).
	Fleet *fleet.Pool
	// Serving configures the cross-query serving layer (answer cache,
	// in-flight coalescing, admission control). The zero value disables
	// all three.
	Serving ServingOptions
	// Routing configures query-aware predictive routing (see
	// RoutingOptions and DESIGN.md "Predictive routing"). The zero
	// value disables it.
	Routing RoutingOptions
	// Settings overrides DefaultSettings (zero value keeps the default).
	Settings Settings
	// SessionOptions tunes the session store.
	SessionOptions session.Options
	// Telemetry is the metrics registry and trace store the server
	// instruments itself into. Nil constructs a fresh default bundle, so
	// embedding apps that want to share one registry across components
	// (e.g. with a modeld.Client) pass theirs here.
	Telemetry *telemetry.Telemetry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU, so production
	// deployments opt in explicitly (the -pprof flag on cmd/llmms).
	EnablePprof bool
	// DisableStreaming forces per-round generation calls even when the
	// backend can hold persistent generation streams (the -stream-sessions
	// flag on cmd/llmms; see core.Config.DisableStreaming).
	DisableStreaming bool
	// ReadyChecks are the dependency probes behind GET /readyz, in
	// addition to the built-in "models" check (model inventory
	// non-empty). Each check gets a bounded context; a non-nil error
	// marks the whole server unready (503).
	ReadyChecks []ReadyCheck
	// Logger receives structured request/query logs (log/slog). Every
	// query-scoped line carries query_id and trace_id. Nil discards all
	// output (the -log-level/-log-format flags on cmd/llmms build one).
	Logger *slog.Logger
	// DisableTracing turns off distributed span collection entirely:
	// /api/query stops opening root spans, traces store no span trees,
	// and no traceparent headers reach the daemons. Tracing is on by
	// default — BENCH_trace.json documents its overhead.
	DisableTracing bool
	// SlowQueryThreshold is the elapsed time past which a completed
	// query logs at warn ("slow query") with its span statistics. Zero
	// means DefaultSlowQueryThreshold; negative disables the slow log.
	SlowQueryThreshold time.Duration
	// DataDir, when set, makes the memory substrate durable: the vector
	// database (RAG chunks, sessions) lives under <DataDir>/vectordb with
	// write-ahead logging and crash recovery, and the answer cache warm-
	// starts from <DataDir>/qcache.json. Call Close on shutdown to cut
	// final snapshots. Empty keeps everything in memory (the -data-dir
	// flag on cmd/llmms).
	DataDir string
	// WALSync is the WAL durability policy under DataDir: "batch"
	// (group-committed fsync, default), "always", or "none" (the
	// -wal-sync flag on cmd/llmms).
	WALSync vectordb.SyncPolicy
	// VectorDBShards overrides the per-collection shard count
	// (non-positive means one shard per CPU; the -vectordb-shards flag
	// on cmd/llmms).
	VectorDBShards int
}

// DefaultSlowQueryThreshold is the slow-query log cutoff when
// Options.SlowQueryThreshold is zero.
const DefaultSlowQueryThreshold = 2 * time.Second

// ReadyCheck is one named readiness probe for /readyz.
type ReadyCheck struct {
	// Name identifies the dependency in the /readyz report.
	Name string
	// Check returns nil when the dependency is usable. The context
	// carries the probe deadline.
	Check func(ctx context.Context) error
}

// Server is the application layer. Construct with NewServer; it
// implements http.Handler.
type Server struct {
	engine      *llm.Engine
	backend     core.Backend
	sessions    *session.Store
	docs        *vectordb.Collection
	ingestor    *rag.Ingestor
	feedback    *core.FeedbackStore
	arena       *arena.Arena
	memory      *session.MemoryGraph
	tel         *telemetry.Telemetry
	cache       *qcache.Cache     // nil when the answer cache is disabled
	flights     *qcache.Group     // nil when coalescing is disabled
	gate        *qcache.Gate      // nil when admission is unbounded
	fleet       *fleet.Pool       // nil without Options.Fleet
	predictor   *router.Predictor // nil when predictive routing is disabled
	tracer      *telemetry.Tracer // nil when tracing is disabled
	logger      *slog.Logger
	slowQuery   time.Duration
	readyChecks []ReadyCheck
	pprofOn     bool
	noStreaming bool
	mux         *http.ServeMux

	// Persistence (see persistence.go); dataDir empty means in-memory.
	db      *vectordb.DB
	dataDir string
	sessCol *vectordb.Collection // durable session-state slot, nil in memory
	fbCol   *vectordb.Collection // durable feedback-ratings slot, nil in memory

	mu       sync.Mutex
	settings Settings
	docIDs   map[string]docInfo
	ragRev   int // document-set revision; bumped on upload/delete
}

type docInfo struct {
	Name   string `json:"name"`
	Chunks int    `json:"chunks"`
}

// NewServer wires the application layer together.
func NewServer(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	st := opts.Settings
	if st.Strategy == "" {
		st = DefaultSettings()
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.New(telemetry.Options{})
	}
	// The in-process engine's batch schedulers report into the server's
	// registry (llmms_batch_* series; see telemetry.RegisterBatchMetrics).
	bm := telemetry.RegisterBatchMetrics(tel.Registry)
	opts.Engine.SetBatchHooks(llm.BatchHooks{
		Step: bm.ObserveStep, Admit: bm.ObserveAdmission, Idle: bm.MarkIdle,
	})
	backend := opts.Backend
	if backend == nil {
		if opts.Fleet != nil {
			backend = opts.Fleet
		} else {
			backend = opts.Engine
		}
	}
	logger := opts.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	var tracer *telemetry.Tracer
	if !opts.DisableTracing {
		tracer = telemetry.NewTracer("llmms")
	}
	slowQuery := opts.SlowQueryThreshold
	if slowQuery == 0 {
		slowQuery = DefaultSlowQueryThreshold
	}
	db, col, err := openSubstrate(opts, tel, tracer, logger)
	if err != nil {
		return nil, fmt.Errorf("server: open memory substrate: %w", err)
	}
	s := &Server{
		engine:      opts.Engine,
		backend:     backend,
		fleet:       opts.Fleet,
		predictor:   newPredictor(opts),
		tracer:      tracer,
		logger:      logger,
		slowQuery:   slowQuery,
		sessions:    session.NewStore(opts.SessionOptions),
		docs:        col,
		ingestor:    rag.NewIngestor(col, rag.ChunkOptions{}),
		feedback:    core.NewFeedbackStore(),
		arena:       arena.New(arena.Options{}),
		memory:      session.NewMemoryGraph(session.MemoryGraphOptions{}),
		tel:         tel,
		pprofOn:     opts.EnablePprof,
		noStreaming: opts.DisableStreaming,
		settings:    st,
		docIDs:      make(map[string]docInfo),
		mux:         http.NewServeMux(),
		db:          db,
		dataDir:     opts.DataDir,
	}
	if sv := opts.Serving; sv.CacheTTL > 0 {
		s.cache = qcache.New(qcache.Options{
			Capacity:          sv.CacheCapacity,
			TTL:               sv.CacheTTL,
			SemanticThreshold: sv.SemanticThreshold,
		})
	}
	if opts.Serving.Coalesce {
		s.flights = qcache.NewGroup(opts.Serving.CoalesceBuffer)
	}
	// NewGate returns nil for a non-positive bound, so the unlimited
	// default stays a nil no-op gate.
	s.gate = qcache.NewGate(opts.Serving.MaxInflight, opts.Serving.MaxQueue,
		func(depth int) { s.tel.QueueDepth.Set(float64(depth)) })
	// The built-in readiness probe: the backend must expose at least one
	// model, or every query is doomed to fail.
	s.readyChecks = append([]ReadyCheck{{
		Name: "models",
		Check: func(context.Context) error {
			if len(s.engine.Profiles()) == 0 {
				return errors.New("model inventory is empty")
			}
			return nil
		},
	}}, opts.ReadyChecks...)
	// Per-model fleet readiness: a model with every replica ejected
	// (open breaker or prober-marked unhealthy) makes the server unready
	// even though the process is alive and other models still serve.
	if s.fleet != nil {
		for _, model := range s.fleet.Models() {
			m := model
			s.readyChecks = append(s.readyChecks, ReadyCheck{
				Name:  "fleet:" + m,
				Check: func(context.Context) error { return s.fleet.Ready(m) },
			})
		}
	}
	if err := s.restoreState(); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.handle("GET /", s.handleUI)
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /readyz", s.handleReady)
	s.handle("GET /metrics", s.tel.Handler().ServeHTTP)
	s.handle("GET /api/version", s.handleVersion)
	s.handle("POST /api/query", s.handleQuery)
	s.handle("POST /api/upload", s.handleUpload)
	s.handle("GET /api/documents", s.handleDocuments)
	s.handle("DELETE /api/documents/{id}", s.handleDeleteDocument)
	s.handle("GET /api/sessions", s.handleListSessions)
	s.handle("POST /api/sessions", s.handleCreateSession)
	s.handle("DELETE /api/sessions", s.handleClearSessions)
	s.handle("GET /api/sessions/{id}", s.handleGetSession)
	s.handle("DELETE /api/sessions/{id}", s.handleDeleteSession)
	s.handle("GET /api/models", s.handleModels)
	s.handle("GET /api/settings", s.handleGetSettings)
	s.handle("PUT /api/settings", s.handlePutSettings)
	s.handle("POST /api/configure", s.handleConfigure)
	s.handle("POST /api/feedback", s.handleFeedback)
	s.handle("GET /api/feedback", s.handleFeedbackBoard)
	s.handle("GET /api/arena", s.handleArena)
	s.handle("GET /api/recall", s.handleRecall)
	s.handle("GET /api/gpu", s.handleGPU)
	if s.fleet != nil {
		s.handle("GET /api/fleet", s.handleFleet)
	}
	if s.predictor != nil {
		s.handle("GET /api/router", s.handleRouter)
	}
	s.handle("GET /api/traces", s.handleTraces)
	s.handle("GET /api/traces/{id}", s.handleTrace)
	if s.pprofOn {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// handle registers a handler wrapped with per-route instrumentation:
// llmms_http_requests_total{route,code} and
// llmms_http_request_duration_seconds{route}. The registration pattern
// itself is the route label — never a concrete path, so /api/sessions/{id}
// stays one series no matter how many sessions exist (bounded
// cardinality, same rule as internal/telemetry documents for models).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := telemetry.NewResponseRecorder(w)
		h(rec, r)
		s.tel.HTTPRequests.Inc(pattern, strconv.Itoa(rec.Status))
		s.tel.HTTPLatency.Observe(time.Since(start).Seconds(), pattern)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Sessions exposes the session store (used by tests and embedding apps).
func (s *Server) Sessions() *session.Store { return s.sessions }

// Telemetry exposes the server's metrics registry and trace store (used
// by tests and embedding apps that register their own metrics).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// Settings returns the current settings snapshot.
func (s *Server) Settings() Settings {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.settings
	st.EnabledModels = append([]string(nil), st.EnabledModels...)
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the body of the uniform error envelope; see the package
// comment for the catalogue of codes.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errBody(code, format string, args ...any) map[string]apiError {
	return map[string]apiError{"error": {Code: code, Message: fmt.Sprintf(format, args...)}}
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errBody(code, format, args...))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"models":   len(s.engine.Profiles()),
		"sessions": s.sessions.Len(),
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": Version})
}

// readyReport is the GET /readyz body: overall status plus one row per
// dependency check. Unlike every other non-2xx response, a 503 here
// carries this report rather than the error envelope — the report is the
// diagnosis, an envelope would just wrap it.
type readyReport struct {
	Status string       `json:"status"` // "ready" or "unready"
	Checks []checkState `json:"checks"`
}

type checkState struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// handleReady runs every readiness probe with a bounded deadline.
// Liveness (/healthz) answers "is the process serving"; readiness
// answers "can it do useful work" — a server whose backend lost its
// model inventory is alive but unready, and a load balancer should stop
// routing queries to it without restarting it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	report := readyReport{Status: "ready", Checks: make([]checkState, 0, len(s.readyChecks))}
	for _, c := range s.readyChecks {
		st := checkState{Name: c.Name, OK: true}
		if err := c.Check(ctx); err != nil {
			st.OK = false
			st.Error = err.Error()
			report.Status = "unready"
		}
		report.Checks = append(report.Checks, st)
	}
	status := http.StatusOK
	if report.Status != "ready" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, report)
}

// handleFleet reports the replica pool's per-replica state — the
// operator view behind the llmms_fleet_* metrics: which replicas serve,
// which breakers are open, who carries how much in-flight load.
func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet.Status())
}

// handleTraces lists recent completed query traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 1000 {
			limit = n
		}
	}
	out := s.tel.Traces.List(limit)
	if out == nil {
		out = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace returns one query's full trace: per-round wall clock,
// per-chunk generation latency with attempt counts, score trajectory,
// prunes, failures — and, when tracing is enabled, the distributed
// span tree (trace_id + spans) covering cache lookup, gate wait,
// orchestration rounds, fleet replica calls, and daemon-side spans
// grafted back over the modeld wire protocol.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.tel.Traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_trace", "unknown trace %q (the store keeps the most recent %d)", id, s.tel.Traces.Cap())
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// QueryRequest is the /api/query payload.
type QueryRequest struct {
	// Query is the user's question. Required.
	Query string `json:"query"`
	// SessionID continues an existing session; empty creates a fresh one.
	SessionID string `json:"session_id,omitempty"`
	// Strategy overrides the default ("oua", "mab", "hybrid", "single").
	Strategy string `json:"strategy,omitempty"`
	// Model overrides the single-model default.
	Model string `json:"model,omitempty"`
	// MaxTokens overrides λ_max for this query.
	MaxTokens int `json:"max_tokens,omitempty"`
	// UseRAG augments the prompt with retrieved document chunks.
	UseRAG bool `json:"use_rag,omitempty"`
	// DocID restricts retrieval to one uploaded document.
	DocID string `json:"doc_id,omitempty"`
	// EphemeralContext is document text that exists solely for this
	// query-response cycle (§6.5's privacy posture): it is chunked,
	// embedded, and retrieved against in a throwaway in-memory
	// collection that is discarded when the response is delivered —
	// nothing is retained server-side.
	EphemeralContext string `json:"ephemeral_context,omitempty"`
}

// maxQueryBody caps the /api/query request body. Queries are a question
// plus at most one ephemeral document; anything past a megabyte is a
// mistake or an attack, and decoding it unbounded would let one request
// balloon the heap.
const maxQueryBody = 1 << 20

// handleQuery runs one orchestrated query and streams core events as SSE
// frames. The final frame is event "result" with the full core.Result.
// When the serving layer is configured, the query may instead be
// answered from the cache (X-Cache: HIT/SEMANTIC), by replaying an
// identical in-flight leader (COALESCED), or shed with 429 when the
// admission queue is full.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request_too_large",
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "query is required")
		return
	}
	st := s.Settings()
	strategy := core.Strategy(st.Strategy)
	if req.Strategy != "" {
		var err error
		strategy, err = core.ParseStrategy(req.Strategy)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_strategy", "%v", err)
			return
		}
	}
	maxTokens := st.MaxTokens
	if req.MaxTokens > 0 {
		maxTokens = req.MaxTokens
	}
	model := st.Model
	if req.Model != "" {
		model = req.Model
	}
	models := st.EnabledModels
	if strategy == core.StrategySingle {
		models = []string{model}
	}

	// Resolve or create the session.
	sessID := req.SessionID
	if sessID == "" {
		sessID = s.sessions.Create("").ID
	}
	summary, _, err := s.sessions.Context(sessID, 0)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
		return
	}

	// The query's root span opens before the serving-layer probe so the
	// trace times cache lookup and admission wait, not just
	// orchestration. Cache-hit and coalesced replays end the root and
	// discard it (they store no trace today either); only the full
	// orchestration path binds the span tree into a stored QueryTrace.
	rctx, root := s.tracer.StartRoot(r.Context(), "query")
	root.SetAttr("strategy", string(strategy))
	if root != nil {
		w.Header().Set("X-Trace-ID", root.TraceID())
	}

	// ---- Serving layer (DESIGN.md "Serving layer") ----
	// The cache probe runs before retrieval and prompt assembly: a hit
	// skips every per-query cost, not just generation.
	key, servable := s.servingKey(req, strategy, models, maxTokens, st, summary)
	if servable && s.cache != nil {
		_, cs := telemetry.StartSpan(rctx, "cache.lookup")
		lookupStart := time.Now()
		v, kind := s.cache.Get(key)
		s.tel.CacheLookupLat.Observe(time.Since(lookupStart).Seconds())
		cs.SetAttr("tier", cacheTierLabel(kind))
		cs.End(nil)
		if kind != qcache.Miss {
			root.SetAttr("cache", cacheTierLabel(kind))
			root.End(nil)
			s.serveCached(w, r, v.(*cachedAnswer), kind, sessID, req.Query)
			return
		}
		s.tel.CacheMisses.Inc()
	}
	var flight *qcache.Flight
	if servable && s.flights != nil {
		var role qcache.Role
		flight, role = s.flights.Join(key.ID())
		if role == qcache.RoleFollower {
			s.tel.Coalesced.Inc()
			root.SetAttr("coalesce_role", "follower")
			root.End(nil)
			s.followFlight(w, r, flight, sessID, req.Query)
			return
		}
		if role == qcache.RoleBypass {
			flight = nil
		}
		if flight != nil {
			root.SetAttr("coalesce_role", "leader")
		}
	}
	// From here on this request is a leader (or uncoalesced): every exit
	// must finish the flight exactly once so followers are released.
	flightDone := false
	finishFlight := func(out flightOutcome) {
		if flight != nil && !flightDone {
			flightDone = true
			flight.Finish(out)
		}
	}
	defer finishFlight(flightOutcome{})

	// Predictive routing: a confident cluster match narrows the fan-out
	// to the predicted top-k models before admission, so the Gate
	// acquires the narrowed width — the capacity the query actually
	// uses — not the configured full width. Unconfident predictions
	// fall back to the full pool (X-Route reports the outcome either
	// way). The serving-layer key above is deliberately computed on the
	// configured pool: cache keys must stay stable while routing state
	// evolves.
	routed := models
	pred := s.predictRoute(rctx, req.Query, strategy, models)
	if pred != nil {
		w.Header().Set("X-Route", fmt.Sprintf("%s:%d", pred.Outcome, len(pred.Models)))
		if pred.Routed {
			routed = pred.Models
		}
	}

	// Admission control: orchestration fans out one generation stream
	// per candidate model, so the query weighs its model count.
	if s.gate != nil {
		_, gs := telemetry.StartSpan(rctx, "gate.wait")
		gs.SetAttr("weight", strconv.Itoa(len(routed)))
		waitStart := time.Now()
		err := s.gate.Acquire(r.Context(), len(routed))
		s.tel.QueueWait.Observe(time.Since(waitStart).Seconds())
		gs.End(err)
		if err != nil {
			root.End(err)
			if errors.Is(err, qcache.ErrOverloaded) {
				s.tel.Rejected.Inc()
				body := errBody("overloaded", "server at orchestration capacity; retry shortly")
				finishFlight(flightOutcome{status: http.StatusTooManyRequests, errBody: body, retryAfter: retryAfterSeconds})
				w.Header().Set("Retry-After", retryAfterSeconds)
				writeJSON(w, http.StatusTooManyRequests, body)
				return
			}
			// The client gave up while queued; the condition the followers
			// inherit is transient load, not a failed query, so release
			// them with the retryable overloaded envelope and write
			// nothing to the dead connection.
			finishFlight(flightOutcome{
				status:     http.StatusServiceUnavailable,
				errBody:    errBody("overloaded", "coalesced leader canceled while queued; retry shortly"),
				retryAfter: retryAfterSeconds,
			})
			return
		}
		defer s.gate.Release(len(routed))
	}

	// Build the contextual prompt.
	var chunks []string
	if req.UseRAG && s.docs.Count() > 0 {
		_, rs := telemetry.StartSpan(rctx, "retrieve")
		results, err := rag.Retrieve(s.docs, req.Query, st.RAGTopK, req.DocID)
		rs.SetAttr("chunks", strconv.Itoa(len(results)))
		rs.End(err)
		if err != nil {
			root.End(err)
			body := errBody("retrieval_failed", "retrieval: %v", err)
			finishFlight(flightOutcome{status: http.StatusInternalServerError, errBody: body})
			writeJSON(w, http.StatusInternalServerError, body)
			return
		}
		for _, res := range results {
			chunks = append(chunks, res.Text)
		}
	}
	if strings.TrimSpace(req.EphemeralContext) != "" {
		ephemeral, err := retrieveEphemeral(req.EphemeralContext, req.Query, st.RAGTopK)
		if err != nil {
			root.End(err)
			writeErr(w, http.StatusUnprocessableEntity, "ephemeral_context", "ephemeral context: %v", err)
			return
		}
		chunks = append(chunks, ephemeral...)
	}
	prompt := rag.BuildPrompt(rag.PromptParts{Summary: summary, Chunks: chunks, Question: req.Query})

	queryID := telemetry.NewQueryID()
	// The stream context is cancelable independently of the request: a
	// write failure (dead client) cancels it so the orchestration stops
	// instead of generating into a closed socket. A coalescing leader is
	// additionally detached from its own connection — followers with
	// healthy clients must not inherit a failure because the leader hung
	// up — so its disconnect aborts the orchestration only when nobody
	// is drafting behind it.
	// rctx (not r.Context()) so the stream context carries the root
	// span; WithoutCancel keeps context values, so a detached leader's
	// spans still join the trace.
	base := rctx
	if flight != nil {
		base = context.WithoutCancel(rctx)
	}
	ctx, cancelStream := context.WithCancel(base)
	defer cancelStream()
	if flight != nil {
		stopWatch := context.AfterFunc(r.Context(), func() {
			if flight.Followers() == 0 {
				cancelStream()
			}
		})
		defer stopWatch()
	}
	flusher, canStream := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Session-ID", sessID)
	w.Header().Set("X-Query-ID", queryID)
	if s.cache != nil || s.flights != nil || s.gate != nil {
		w.Header().Set("X-Cache", "MISS")
	}
	w.WriteHeader(http.StatusOK)

	s.tel.SSEStreams.Inc()
	defer func() {
		// A stream whose client context ended mid-query was dropped: the
		// browser navigated away or the connection broke before "result".
		if r.Context().Err() != nil {
			s.tel.SSEDropped.Inc()
		}
	}()
	cacheable := servable && s.cache != nil
	var recorded []qcache.Frame
	streamDead := false
	writeEvent := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			s.tel.SSEEncodeErrors.Inc()
			return
		}
		// Followers and the cache consume the frame even when the
		// leader's own client is gone. The result frame is excluded from
		// both: it carries the leader's session/query identity, so the
		// cache and the coalesced path each rebuild it per requester.
		if flight != nil && event != "result" {
			flight.Publish(qcache.Frame{Event: event, Data: data})
		}
		if cacheable && event != "result" {
			recorded = append(recorded, qcache.Frame{Event: event, Data: data})
		}
		if streamDead {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			s.tel.SSEEncodeErrors.Inc()
			streamDead = true
			// Abandon the orchestration only when no follower is waiting
			// on it — a coalesced flight keeps running for the healthy
			// duplicates (and the answer is still cacheable).
			if flight == nil || flight.Followers() == 0 {
				cancelStream()
			}
			return
		}
		s.tel.SSEFrames.Inc()
		if canStream {
			flusher.Flush()
		}
	}

	obs := s.tel.StartQuery(queryID, string(strategy), req.Query)
	octx, orch := telemetry.StartSpan(ctx, "orchestrate")
	obs.BindSpans(root, orch)
	cfg := core.DefaultConfig(routed...)
	cfg.MaxTokens = maxTokens
	cfg.Alpha = st.Alpha
	cfg.Beta = st.Beta
	cfg.Feedback = s.feedback
	if pred != nil && pred.Routed {
		// Warm-start the bandit from the cluster's reward history; the
		// priors compensate for the exploration the narrowed pool skips.
		cfg.Priors = pred.Priors
		cfg.PriorWeight = pred.PriorWeight
	}
	cfg.DisableStreaming = s.noStreaming
	cfg.OnEvent = func(ev core.Event) { writeEvent(string(ev.Type), ev) }
	cfg.Recorder = obs
	if root != nil {
		cfg.Logger = s.logger.With("query_id", queryID, "trace_id", root.TraceID())
	} else {
		cfg.Logger = s.logger.With("query_id", queryID)
	}
	oc, err := core.New(s.backend, cfg)
	if err != nil {
		orch.End(err)
		root.End(err)
		s.logQuery(obs.Finish(err))
		writeEvent("error", errBody("invalid_config", "%v", err))
		return
	}

	res, err := oc.Run(octx, strategy, prompt)
	orch.End(err)
	root.End(err)
	s.logQuery(obs.Finish(err))
	if err != nil {
		code := "query_failed"
		if errors.Is(err, core.ErrAllModelsFailed) {
			code = "all_models_failed"
		}
		writeEvent("error", errBody(code, "%v", err))
		return
	}
	// Feed the arena: every orchestrated query is a round of pairwise
	// games between the candidates (§9.5 game-theoretic coordination).
	s.arena.Observe(res)
	// Train the routing index on the outcome (routed or not — fallback
	// runs are exactly what builds a cluster toward confidence).
	if pred != nil {
		s.observeRoute(req.Query, res)
	}

	// Persist the exchange for session continuity and cross-session
	// recall (§9.5 contextual memory graphs).
	s.appendExchange(sessID, req.Query, res)
	s.memory.Add(session.Exchange{
		SessionID: sessID, Question: req.Query, Answer: res.Answer,
		Model: res.Model, Time: time.Now(),
	})
	writeEvent("result", map[string]any{"session_id": sessID, "query_id": queryID, "result": res})
	if cacheable {
		s.cache.Put(key, &cachedAnswer{frames: recorded, result: res})
	}
	finishFlight(flightOutcome{result: &res})
}

// cacheTierLabel maps a lookup result to its span/log label.
func cacheTierLabel(kind qcache.HitKind) string {
	switch kind {
	case qcache.Exact:
		return "exact"
	case qcache.Semantic:
		return "semantic"
	default:
		return "miss"
	}
}

// logQuery emits the per-query structured log line: Info for normal
// completions, Warn for failures and for queries whose span tree
// exceeded the slow-query threshold.
func (s *Server) logQuery(tr telemetry.QueryTrace) {
	attrs := []any{
		"query_id", tr.ID,
		"trace_id", tr.TraceID,
		"strategy", tr.Strategy,
		"outcome", tr.Outcome,
		"elapsed", tr.Elapsed,
		"winner", tr.Winner,
		"tokens", tr.TokensUsed,
		"spans", len(tr.Spans),
	}
	switch {
	case tr.Outcome != "ok":
		s.logger.Warn("query failed", append(attrs, "err", tr.Error)...)
	case s.slowQuery > 0 && tr.Elapsed >= s.slowQuery:
		s.logger.Warn("slow query", attrs...)
	default:
		s.logger.Info("query", attrs...)
	}
}

// uploadRequest is the JSON /api/upload payload (the browser reads the
// file client-side and posts its text, mirroring the paper's client-side
// parsing note in §7.3).
type uploadRequest struct {
	Filename string `json:"filename"`
	Content  string `json:"content"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large", "body too large or unreadable: %v", err)
		return
	}
	var req uploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if req.Filename == "" || strings.TrimSpace(req.Content) == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "filename and content are required")
		return
	}
	docID := fmt.Sprintf("doc-%d", time.Now().UnixNano())
	n, err := s.ingestor.IngestFile(docID, req.Filename, []byte(req.Content))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "ingest_failed", "ingest: %v", err)
		return
	}
	s.mu.Lock()
	s.docIDs[docID] = docInfo{Name: req.Filename, Chunks: n}
	s.ragRev++
	s.mu.Unlock()
	// RAG-grounded cached answers may now be stale.
	s.invalidateCache()
	writeJSON(w, http.StatusCreated, map[string]any{"doc_id": docID, "chunks": n})
}

func (s *Server) handleDocuments(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	type doc struct {
		ID     string `json:"id"`
		Name   string `json:"name"`
		Chunks int    `json:"chunks"`
	}
	out := make([]doc, 0, len(s.docIDs))
	for id, info := range s.docIDs {
		out = append(out, doc{ID: id, Name: info.Name, Chunks: info.Chunks})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.docIDs[id]
	delete(s.docIDs, id)
	if ok {
		s.ragRev++
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_document", "unknown document %q", id)
		return
	}
	removed := s.ingestor.DeleteDocument(id)
	s.invalidateCache()
	writeJSON(w, http.StatusOK, map[string]any{"deleted_chunks": removed})
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sessions.List())
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Title string `json:"title"`
	}
	_ = json.NewDecoder(r.Body).Decode(&req)
	writeJSON(w, http.StatusCreated, s.sessions.Create(req.Title))
}

func (s *Server) handleClearSessions(w http.ResponseWriter, _ *http.Request) {
	s.sessions.Clear()
	writeJSON(w, http.StatusOK, map[string]string{"status": "cleared"})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sess)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.Delete(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	type model struct {
		llm.Profile
		Loaded bool `json:"loaded"`
	}
	profiles := s.engine.Profiles()
	out := make([]model, len(profiles))
	for i, p := range profiles {
		out[i] = model{Profile: p, Loaded: s.engine.Loaded(p.Name)}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSettings(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Settings())
}

func (s *Server) handlePutSettings(w http.ResponseWriter, r *http.Request) {
	var st Settings
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if err := st.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "invalid_settings", "%v", err)
		return
	}
	known := make(map[string]bool)
	for _, p := range s.engine.Profiles() {
		known[p.Name] = true
	}
	for _, m := range st.EnabledModels {
		if !known[m] {
			writeErr(w, http.StatusUnprocessableEntity, "unknown_model", "unknown model %q", m)
			return
		}
	}
	s.mu.Lock()
	s.settings = st
	s.mu.Unlock()
	// Cached answers are keyed on the settings that produced them.
	s.invalidateCache()
	writeJSON(w, http.StatusOK, st)
}

// handleConfigure implements the paper's §9.5 natural-language
// configuration interface: a plain instruction ("avoid slow models,
// prioritize qwen, keep responses under 200 words, use the bandit") is
// parsed into settings changes, applied, and echoed back with a
// clause-by-clause change log.
func (s *Server) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Instruction string `json:"instruction"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Instruction) == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "instruction is required")
		return
	}
	d := router.ParseDirectives(req.Instruction)

	st := s.Settings()
	cfg := core.DefaultConfig(st.EnabledModels...)
	cfg.MaxTokens = st.MaxTokens
	applied, changeLog := d.Apply(cfg, s.engine.Profiles())

	st.EnabledModels = applied.Models
	st.MaxTokens = applied.MaxTokens
	st.Strategy = string(d.StrategyOr(core.Strategy(st.Strategy)))
	if len(applied.Models) > 0 {
		st.Model = applied.Models[0]
	}
	if err := st.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "invalid_settings", "instruction produced invalid settings: %v", err)
		return
	}
	s.mu.Lock()
	s.settings = st
	s.mu.Unlock()
	s.invalidateCache()
	writeJSON(w, http.StatusOK, map[string]any{
		"settings":   st,
		"changes":    changeLog,
		"understood": len(changeLog) > 0,
	})
}

// handleFeedback records one user rating of an answer (§9.5
// "Self-Improving Orchestration"): either on an explicit model, or on
// the model that produced the latest assistant message of a session.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Model     string  `json:"model,omitempty"`
		SessionID string  `json:"session_id,omitempty"`
		Rating    float64 `json:"rating"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if req.Rating < -1 || req.Rating > 1 {
		writeErr(w, http.StatusBadRequest, "invalid_rating", "rating must be in [-1, 1]")
		return
	}
	model := req.Model
	if model == "" && req.SessionID != "" {
		sess, err := s.sessions.Get(req.SessionID)
		if err != nil {
			writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
			return
		}
		for i := len(sess.Messages) - 1; i >= 0; i-- {
			if sess.Messages[i].Role == session.RoleAssistant && sess.Messages[i].Model != "" {
				model = sess.Messages[i].Model
				break
			}
		}
	}
	if model == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "model or session_id with an answered turn is required")
		return
	}
	s.feedback.Rate(model, req.Rating)
	s.persistFeedback()
	// Sharpen the routing index too: the rating lands on the cluster of
	// the session's last question (explicit-model ratings without a
	// session have no query to attribute, so only the global store moves).
	s.rateRoute(req.SessionID, model, req.Rating)
	writeJSON(w, http.StatusOK, map[string]any{
		"model": model,
		"prior": s.feedback.Prior(model),
	})
}

// handleFeedbackBoard exposes the learned priors as a leaderboard.
func (s *Server) handleFeedbackBoard(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		Model   string  `json:"model"`
		Ratings float64 `json:"ratings"`
		Mean    float64 `json:"mean"`
		Prior   float64 `json:"prior"`
	}
	var rows []row
	for m, cell := range s.feedback.Ratings() {
		rows = append(rows, row{Model: m, Ratings: cell[0], Mean: cell[1], Prior: s.feedback.Prior(m)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Mean != rows[j].Mean {
			return rows[i].Mean > rows[j].Mean
		}
		return rows[i].Model < rows[j].Model
	})
	writeJSON(w, http.StatusOK, rows)
}

// handleArena exposes the pairwise-game Elo standings accumulated over
// the server's orchestrated queries.
func (s *Server) handleArena(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.arena.Standings())
}

// handleRecall exposes the contextual memory graph (§9.5): the past
// exchanges — across all sessions — most relevant to ?q=, including
// one-hop graph neighbors.
func (s *Server) handleRecall(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "q parameter is required")
		return
	}
	k := 5
	if v := r.URL.Query().Get("k"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 50 {
			k = n
		}
	}
	hits := s.memory.Recall(q, k)
	if hits == nil {
		hits = []session.Recalled{}
	}
	writeJSON(w, http.StatusOK, hits)
}

// retrieveEphemeral chunks and embeds text in a throwaway collection,
// retrieves the top-k chunks for the query, and lets the collection go
// out of scope — the §6.5 "discarded immediately after response
// delivery" contract, enforced structurally rather than by cleanup code.
func retrieveEphemeral(text, query string, topK int) ([]string, error) {
	db := vectordb.New()
	col, err := db.CreateCollection("ephemeral", vectordb.CollectionConfig{})
	if err != nil {
		return nil, err
	}
	ingestor := rag.NewIngestor(col, rag.ChunkOptions{})
	if _, err := ingestor.IngestText("ephemeral", "ephemeral", text); err != nil {
		return nil, err
	}
	results, err := rag.Retrieve(col, query, topK, "")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Text
	}
	return out, nil
}

func (s *Server) handleGPU(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Cluster().Stats())
}

// ListenAndServe runs the application layer on addr until ctx ends.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		return err
	}
}
