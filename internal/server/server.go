// Package server implements the LLM-MS application layer (Chapter 5 and
// §7.2): the web-facing coordination hub that accepts queries, streams
// orchestration events to the browser, manages sessions and settings,
// ingests documents for retrieval-augmented generation, and exposes model
// and GPU telemetry.
//
// The paper's stack is Flask + Apache/mod_wsgi streaming Server-Sent
// Events from the Ollama daemon; this package reproduces the same REST
// surface on net/http:
//
//	GET  /                     embedded chat UI
//	POST /api/query            SSE stream of orchestration events
//	POST /api/upload           document ingestion (RAG)
//	GET  /api/documents        ingested document inventory
//	DELETE /api/documents/{id} remove an ingested document
//	GET/POST /api/sessions     session list / create
//	GET/DELETE /api/sessions/{id}
//	DELETE /api/sessions       clear history
//	GET  /api/models           model inventory
//	GET/PUT /api/settings      orchestration settings
//	POST /api/configure        natural-language settings changes (§9.5)
//	POST/GET /api/feedback     answer ratings / learned priors (§9.5)
//	GET  /api/arena            pairwise-game Elo standings (§9.5)
//	GET  /api/recall           contextual memory-graph recall (§9.5)
//	GET  /api/gpu              hardware telemetry
//	GET  /api/traces           recent completed query traces (newest first, ?limit=)
//	GET  /api/traces/{id}      one query's span timings (rounds, chunks, scores)
//	GET  /metrics              Prometheus text-format metrics exposition
//	GET  /healthz              liveness (always ok while the process serves)
//	GET  /readyz               readiness with per-dependency check status
//	GET  /api/version
//	GET  /debug/pprof/...      runtime profiles (only with Options.EnablePprof)
//
// Every route is instrumented: per-endpoint request counters
// (llmms_http_requests_total{route,code}) and latency histograms
// (llmms_http_request_duration_seconds{route}), with SSE stream/frame
// counters on /api/query; see internal/telemetry for the full metric
// catalogue. Each /api/query run is assigned a query ID (returned in
// the X-Query-ID header and the final "result" frame) under which its
// completed trace is retrievable from /api/traces/{id}.
//
// Every non-2xx response — and the SSE "error" event on /api/query —
// carries the uniform JSON envelope
//
//	{"error": {"code": "unknown_session", "message": "session abc not found"}}
//
// where code is a stable machine-readable identifier (invalid_json,
// missing_field, invalid_strategy, unknown_session, unknown_document,
// unknown_model, unknown_trace, invalid_settings, invalid_rating,
// body_too_large, ingest_failed, retrieval_failed, ephemeral_context,
// invalid_config, all_models_failed, query_failed) and message is the
// human-readable detail. The one exception is GET /readyz, whose 503
// body is the per-dependency check report itself. The /api/query stream
// also forwards core orchestration events verbatim, including
// "model_failed" frames when a model is dropped after retry exhaustion
// while the query continues on the survivors.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"llmms/internal/arena"
	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/rag"
	"llmms/internal/router"
	"llmms/internal/session"
	"llmms/internal/telemetry"
	"llmms/internal/vectordb"
)

// Version is reported by /api/version.
const Version = "1.0.0"

// Settings are the user-tunable orchestration parameters (the paper's
// settings panel, §5.3).
type Settings struct {
	// Strategy is the default policy: "oua", "mab", "hybrid", or "single".
	Strategy string `json:"strategy"`
	// Model is the default model for single-model queries.
	Model string `json:"model"`
	// MaxTokens is λ_max per query.
	MaxTokens int `json:"max_tokens"`
	// Alpha and Beta weight the scoring terms.
	Alpha float64 `json:"alpha"`
	// Beta is the inter-model agreement weight.
	Beta float64 `json:"beta"`
	// EnabledModels are the candidate models for orchestration.
	EnabledModels []string `json:"enabled_models"`
	// RAGTopK is how many retrieved chunks augment each prompt.
	RAGTopK int `json:"rag_top_k"`
}

// Validate rejects unusable settings.
func (s Settings) Validate() error {
	if _, err := core.ParseStrategy(s.Strategy); err != nil {
		return err
	}
	if s.MaxTokens < 1 {
		return errors.New("max_tokens must be positive")
	}
	if s.Alpha < 0 || s.Beta < 0 {
		return errors.New("alpha and beta must be non-negative")
	}
	if len(s.EnabledModels) == 0 {
		return errors.New("at least one model must be enabled")
	}
	if s.RAGTopK < 1 {
		return errors.New("rag_top_k must be positive")
	}
	return nil
}

// DefaultSettings matches the paper's evaluation defaults.
func DefaultSettings() Settings {
	return Settings{
		Strategy:      string(core.StrategyOUA),
		Model:         llm.ModelLlama3,
		MaxTokens:     2048,
		Alpha:         0.7,
		Beta:          0.3,
		EnabledModels: []string{llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2},
		RAGTopK:       3,
	}
}

// Options configures a Server.
type Options struct {
	// Engine is the inference backend. Required.
	Engine *llm.Engine
	// Settings overrides DefaultSettings (zero value keeps the default).
	Settings Settings
	// SessionOptions tunes the session store.
	SessionOptions session.Options
	// Telemetry is the metrics registry and trace store the server
	// instruments itself into. Nil constructs a fresh default bundle, so
	// embedding apps that want to share one registry across components
	// (e.g. with a modeld.Client) pass theirs here.
	Telemetry *telemetry.Telemetry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU, so production
	// deployments opt in explicitly (the -pprof flag on cmd/llmms).
	EnablePprof bool
	// ReadyChecks are the dependency probes behind GET /readyz, in
	// addition to the built-in "models" check (model inventory
	// non-empty). Each check gets a bounded context; a non-nil error
	// marks the whole server unready (503).
	ReadyChecks []ReadyCheck
}

// ReadyCheck is one named readiness probe for /readyz.
type ReadyCheck struct {
	// Name identifies the dependency in the /readyz report.
	Name string
	// Check returns nil when the dependency is usable. The context
	// carries the probe deadline.
	Check func(ctx context.Context) error
}

// Server is the application layer. Construct with NewServer; it
// implements http.Handler.
type Server struct {
	engine      *llm.Engine
	sessions    *session.Store
	docs        *vectordb.Collection
	ingestor    *rag.Ingestor
	feedback    *core.FeedbackStore
	arena       *arena.Arena
	memory      *session.MemoryGraph
	tel         *telemetry.Telemetry
	readyChecks []ReadyCheck
	pprofOn     bool
	mux         *http.ServeMux

	mu       sync.Mutex
	settings Settings
	docIDs   map[string]docInfo
}

type docInfo struct {
	Name   string `json:"name"`
	Chunks int    `json:"chunks"`
}

// NewServer wires the application layer together.
func NewServer(opts Options) (*Server, error) {
	if opts.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	st := opts.Settings
	if st.Strategy == "" {
		st = DefaultSettings()
	}
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	db := vectordb.New()
	col, err := db.CreateCollection("documents", vectordb.CollectionConfig{})
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.New(telemetry.Options{})
	}
	s := &Server{
		engine:   opts.Engine,
		sessions: session.NewStore(opts.SessionOptions),
		docs:     col,
		ingestor: rag.NewIngestor(col, rag.ChunkOptions{}),
		feedback: core.NewFeedbackStore(),
		arena:    arena.New(arena.Options{}),
		memory:   session.NewMemoryGraph(session.MemoryGraphOptions{}),
		tel:      tel,
		pprofOn:  opts.EnablePprof,
		settings: st,
		docIDs:   make(map[string]docInfo),
		mux:      http.NewServeMux(),
	}
	// The built-in readiness probe: the backend must expose at least one
	// model, or every query is doomed to fail.
	s.readyChecks = append([]ReadyCheck{{
		Name: "models",
		Check: func(context.Context) error {
			if len(s.engine.Profiles()) == 0 {
				return errors.New("model inventory is empty")
			}
			return nil
		},
	}}, opts.ReadyChecks...)
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.handle("GET /", s.handleUI)
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /readyz", s.handleReady)
	s.handle("GET /metrics", s.tel.Handler().ServeHTTP)
	s.handle("GET /api/version", s.handleVersion)
	s.handle("POST /api/query", s.handleQuery)
	s.handle("POST /api/upload", s.handleUpload)
	s.handle("GET /api/documents", s.handleDocuments)
	s.handle("DELETE /api/documents/{id}", s.handleDeleteDocument)
	s.handle("GET /api/sessions", s.handleListSessions)
	s.handle("POST /api/sessions", s.handleCreateSession)
	s.handle("DELETE /api/sessions", s.handleClearSessions)
	s.handle("GET /api/sessions/{id}", s.handleGetSession)
	s.handle("DELETE /api/sessions/{id}", s.handleDeleteSession)
	s.handle("GET /api/models", s.handleModels)
	s.handle("GET /api/settings", s.handleGetSettings)
	s.handle("PUT /api/settings", s.handlePutSettings)
	s.handle("POST /api/configure", s.handleConfigure)
	s.handle("POST /api/feedback", s.handleFeedback)
	s.handle("GET /api/feedback", s.handleFeedbackBoard)
	s.handle("GET /api/arena", s.handleArena)
	s.handle("GET /api/recall", s.handleRecall)
	s.handle("GET /api/gpu", s.handleGPU)
	s.handle("GET /api/traces", s.handleTraces)
	s.handle("GET /api/traces/{id}", s.handleTrace)
	if s.pprofOn {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// handle registers a handler wrapped with per-route instrumentation:
// llmms_http_requests_total{route,code} and
// llmms_http_request_duration_seconds{route}. The registration pattern
// itself is the route label — never a concrete path, so /api/sessions/{id}
// stays one series no matter how many sessions exist (bounded
// cardinality, same rule as internal/telemetry documents for models).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := telemetry.NewResponseRecorder(w)
		h(rec, r)
		s.tel.HTTPRequests.Inc(pattern, strconv.Itoa(rec.Status))
		s.tel.HTTPLatency.Observe(time.Since(start).Seconds(), pattern)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Sessions exposes the session store (used by tests and embedding apps).
func (s *Server) Sessions() *session.Store { return s.sessions }

// Telemetry exposes the server's metrics registry and trace store (used
// by tests and embedding apps that register their own metrics).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// Settings returns the current settings snapshot.
func (s *Server) Settings() Settings {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.settings
	st.EnabledModels = append([]string(nil), st.EnabledModels...)
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the body of the uniform error envelope; see the package
// comment for the catalogue of codes.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errBody(code, format string, args ...any) map[string]apiError {
	return map[string]apiError{"error": {Code: code, Message: fmt.Sprintf(format, args...)}}
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errBody(code, format, args...))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"models":   len(s.engine.Profiles()),
		"sessions": s.sessions.Len(),
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"version": Version})
}

// readyReport is the GET /readyz body: overall status plus one row per
// dependency check. Unlike every other non-2xx response, a 503 here
// carries this report rather than the error envelope — the report is the
// diagnosis, an envelope would just wrap it.
type readyReport struct {
	Status string       `json:"status"` // "ready" or "unready"
	Checks []checkState `json:"checks"`
}

type checkState struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// handleReady runs every readiness probe with a bounded deadline.
// Liveness (/healthz) answers "is the process serving"; readiness
// answers "can it do useful work" — a server whose backend lost its
// model inventory is alive but unready, and a load balancer should stop
// routing queries to it without restarting it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	report := readyReport{Status: "ready", Checks: make([]checkState, 0, len(s.readyChecks))}
	for _, c := range s.readyChecks {
		st := checkState{Name: c.Name, OK: true}
		if err := c.Check(ctx); err != nil {
			st.OK = false
			st.Error = err.Error()
			report.Status = "unready"
		}
		report.Checks = append(report.Checks, st)
	}
	status := http.StatusOK
	if report.Status != "ready" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, report)
}

// handleTraces lists recent completed query traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 1000 {
			limit = n
		}
	}
	out := s.tel.Traces.List(limit)
	if out == nil {
		out = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace returns one query's full trace: per-round wall clock,
// per-chunk generation latency with attempt counts, score trajectory,
// prunes, and failures.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.tel.Traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_trace", "unknown trace %q (the store keeps the most recent %d)", id, s.tel.Traces.Cap())
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// QueryRequest is the /api/query payload.
type QueryRequest struct {
	// Query is the user's question. Required.
	Query string `json:"query"`
	// SessionID continues an existing session; empty creates a fresh one.
	SessionID string `json:"session_id,omitempty"`
	// Strategy overrides the default ("oua", "mab", "hybrid", "single").
	Strategy string `json:"strategy,omitempty"`
	// Model overrides the single-model default.
	Model string `json:"model,omitempty"`
	// MaxTokens overrides λ_max for this query.
	MaxTokens int `json:"max_tokens,omitempty"`
	// UseRAG augments the prompt with retrieved document chunks.
	UseRAG bool `json:"use_rag,omitempty"`
	// DocID restricts retrieval to one uploaded document.
	DocID string `json:"doc_id,omitempty"`
	// EphemeralContext is document text that exists solely for this
	// query-response cycle (§6.5's privacy posture): it is chunked,
	// embedded, and retrieved against in a throwaway in-memory
	// collection that is discarded when the response is delivered —
	// nothing is retained server-side.
	EphemeralContext string `json:"ephemeral_context,omitempty"`
}

// handleQuery runs one orchestrated query and streams core events as SSE
// frames. The final frame is event "result" with the full core.Result.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "query is required")
		return
	}
	st := s.Settings()
	strategy := core.Strategy(st.Strategy)
	if req.Strategy != "" {
		var err error
		strategy, err = core.ParseStrategy(req.Strategy)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_strategy", "%v", err)
			return
		}
	}
	maxTokens := st.MaxTokens
	if req.MaxTokens > 0 {
		maxTokens = req.MaxTokens
	}
	model := st.Model
	if req.Model != "" {
		model = req.Model
	}

	// Resolve or create the session and build the contextual prompt.
	sessID := req.SessionID
	if sessID == "" {
		sessID = s.sessions.Create("").ID
	}
	summary, _, err := s.sessions.Context(sessID, 0)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
		return
	}
	var chunks []string
	if req.UseRAG && s.docs.Count() > 0 {
		results, err := rag.Retrieve(s.docs, req.Query, st.RAGTopK, req.DocID)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "retrieval_failed", "retrieval: %v", err)
			return
		}
		for _, res := range results {
			chunks = append(chunks, res.Text)
		}
	}
	if strings.TrimSpace(req.EphemeralContext) != "" {
		ephemeral, err := retrieveEphemeral(req.EphemeralContext, req.Query, st.RAGTopK)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "ephemeral_context", "ephemeral context: %v", err)
			return
		}
		chunks = append(chunks, ephemeral...)
	}
	prompt := rag.BuildPrompt(rag.PromptParts{Summary: summary, Chunks: chunks, Question: req.Query})

	queryID := telemetry.NewQueryID()
	flusher, canStream := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Session-ID", sessID)
	w.Header().Set("X-Query-ID", queryID)
	w.WriteHeader(http.StatusOK)

	s.tel.SSEStreams.Inc()
	defer func() {
		// A stream whose client context ended mid-query was dropped: the
		// browser navigated away or the connection broke before "result".
		if r.Context().Err() != nil {
			s.tel.SSEDropped.Inc()
		}
	}()
	writeEvent := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		s.tel.SSEFrames.Inc()
		if canStream {
			flusher.Flush()
		}
	}

	models := st.EnabledModels
	if strategy == core.StrategySingle {
		models = []string{model}
	}
	obs := s.tel.StartQuery(queryID, string(strategy), req.Query)
	cfg := core.DefaultConfig(models...)
	cfg.MaxTokens = maxTokens
	cfg.Alpha = st.Alpha
	cfg.Beta = st.Beta
	cfg.Feedback = s.feedback
	cfg.OnEvent = func(ev core.Event) { writeEvent(string(ev.Type), ev) }
	cfg.Recorder = obs
	oc, err := core.New(s.engine, cfg)
	if err != nil {
		obs.Finish(err)
		writeEvent("error", errBody("invalid_config", "%v", err))
		return
	}

	res, err := oc.Run(r.Context(), strategy, prompt)
	obs.Finish(err)
	if err != nil {
		code := "query_failed"
		if errors.Is(err, core.ErrAllModelsFailed) {
			code = "all_models_failed"
		}
		writeEvent("error", errBody(code, "%v", err))
		return
	}
	// Feed the arena: every orchestrated query is a round of pairwise
	// games between the candidates (§9.5 game-theoretic coordination).
	s.arena.Observe(res)

	// Persist the exchange for session continuity and cross-session
	// recall (§9.5 contextual memory graphs).
	if _, err := s.sessions.Append(sessID, session.Message{Role: session.RoleUser, Content: req.Query}); err == nil {
		_, _ = s.sessions.Append(sessID, session.Message{
			Role: session.RoleAssistant, Content: res.Answer, Model: res.Model,
		})
	}
	s.memory.Add(session.Exchange{
		SessionID: sessID, Question: req.Query, Answer: res.Answer,
		Model: res.Model, Time: time.Now(),
	})
	writeEvent("result", map[string]any{"session_id": sessID, "query_id": queryID, "result": res})
}

// uploadRequest is the JSON /api/upload payload (the browser reads the
// file client-side and posts its text, mirroring the paper's client-side
// parsing note in §7.3).
type uploadRequest struct {
	Filename string `json:"filename"`
	Content  string `json:"content"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large", "body too large or unreadable: %v", err)
		return
	}
	var req uploadRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if req.Filename == "" || strings.TrimSpace(req.Content) == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "filename and content are required")
		return
	}
	docID := fmt.Sprintf("doc-%d", time.Now().UnixNano())
	n, err := s.ingestor.IngestFile(docID, req.Filename, []byte(req.Content))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "ingest_failed", "ingest: %v", err)
		return
	}
	s.mu.Lock()
	s.docIDs[docID] = docInfo{Name: req.Filename, Chunks: n}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"doc_id": docID, "chunks": n})
}

func (s *Server) handleDocuments(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	type doc struct {
		ID     string `json:"id"`
		Name   string `json:"name"`
		Chunks int    `json:"chunks"`
	}
	out := make([]doc, 0, len(s.docIDs))
	for id, info := range s.docIDs {
		out = append(out, doc{ID: id, Name: info.Name, Chunks: info.Chunks})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.docIDs[id]
	delete(s.docIDs, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_document", "unknown document %q", id)
		return
	}
	removed := s.ingestor.DeleteDocument(id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted_chunks": removed})
}

func (s *Server) handleListSessions(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sessions.List())
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Title string `json:"title"`
	}
	_ = json.NewDecoder(r.Body).Decode(&req)
	writeJSON(w, http.StatusCreated, s.sessions.Create(req.Title))
}

func (s *Server) handleClearSessions(w http.ResponseWriter, _ *http.Request) {
	s.sessions.Clear()
	writeJSON(w, http.StatusOK, map[string]string{"status": "cleared"})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sess)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.Delete(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	type model struct {
		llm.Profile
		Loaded bool `json:"loaded"`
	}
	profiles := s.engine.Profiles()
	out := make([]model, len(profiles))
	for i, p := range profiles {
		out[i] = model{Profile: p, Loaded: s.engine.Loaded(p.Name)}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSettings(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Settings())
}

func (s *Server) handlePutSettings(w http.ResponseWriter, r *http.Request) {
	var st Settings
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if err := st.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "invalid_settings", "%v", err)
		return
	}
	known := make(map[string]bool)
	for _, p := range s.engine.Profiles() {
		known[p.Name] = true
	}
	for _, m := range st.EnabledModels {
		if !known[m] {
			writeErr(w, http.StatusUnprocessableEntity, "unknown_model", "unknown model %q", m)
			return
		}
	}
	s.mu.Lock()
	s.settings = st
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleConfigure implements the paper's §9.5 natural-language
// configuration interface: a plain instruction ("avoid slow models,
// prioritize qwen, keep responses under 200 words, use the bandit") is
// parsed into settings changes, applied, and echoed back with a
// clause-by-clause change log.
func (s *Server) handleConfigure(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Instruction string `json:"instruction"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if strings.TrimSpace(req.Instruction) == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "instruction is required")
		return
	}
	d := router.ParseDirectives(req.Instruction)

	st := s.Settings()
	cfg := core.DefaultConfig(st.EnabledModels...)
	cfg.MaxTokens = st.MaxTokens
	applied, changeLog := d.Apply(cfg, s.engine.Profiles())

	st.EnabledModels = applied.Models
	st.MaxTokens = applied.MaxTokens
	st.Strategy = string(d.StrategyOr(core.Strategy(st.Strategy)))
	if len(applied.Models) > 0 {
		st.Model = applied.Models[0]
	}
	if err := st.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "invalid_settings", "instruction produced invalid settings: %v", err)
		return
	}
	s.mu.Lock()
	s.settings = st
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"settings":   st,
		"changes":    changeLog,
		"understood": len(changeLog) > 0,
	})
}

// handleFeedback records one user rating of an answer (§9.5
// "Self-Improving Orchestration"): either on an explicit model, or on
// the model that produced the latest assistant message of a session.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Model     string  `json:"model,omitempty"`
		SessionID string  `json:"session_id,omitempty"`
		Rating    float64 `json:"rating"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_json", "invalid JSON: %v", err)
		return
	}
	if req.Rating < -1 || req.Rating > 1 {
		writeErr(w, http.StatusBadRequest, "invalid_rating", "rating must be in [-1, 1]")
		return
	}
	model := req.Model
	if model == "" && req.SessionID != "" {
		sess, err := s.sessions.Get(req.SessionID)
		if err != nil {
			writeErr(w, http.StatusNotFound, "unknown_session", "%v", err)
			return
		}
		for i := len(sess.Messages) - 1; i >= 0; i-- {
			if sess.Messages[i].Role == session.RoleAssistant && sess.Messages[i].Model != "" {
				model = sess.Messages[i].Model
				break
			}
		}
	}
	if model == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "model or session_id with an answered turn is required")
		return
	}
	s.feedback.Rate(model, req.Rating)
	writeJSON(w, http.StatusOK, map[string]any{
		"model": model,
		"prior": s.feedback.Prior(model),
	})
}

// handleFeedbackBoard exposes the learned priors as a leaderboard.
func (s *Server) handleFeedbackBoard(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		Model   string  `json:"model"`
		Ratings float64 `json:"ratings"`
		Mean    float64 `json:"mean"`
		Prior   float64 `json:"prior"`
	}
	var rows []row
	for m, cell := range s.feedback.Ratings() {
		rows = append(rows, row{Model: m, Ratings: cell[0], Mean: cell[1], Prior: s.feedback.Prior(m)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Mean != rows[j].Mean {
			return rows[i].Mean > rows[j].Mean
		}
		return rows[i].Model < rows[j].Model
	})
	writeJSON(w, http.StatusOK, rows)
}

// handleArena exposes the pairwise-game Elo standings accumulated over
// the server's orchestrated queries.
func (s *Server) handleArena(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.arena.Standings())
}

// handleRecall exposes the contextual memory graph (§9.5): the past
// exchanges — across all sessions — most relevant to ?q=, including
// one-hop graph neighbors.
func (s *Server) handleRecall(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		writeErr(w, http.StatusBadRequest, "missing_field", "q parameter is required")
		return
	}
	k := 5
	if v := r.URL.Query().Get("k"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 50 {
			k = n
		}
	}
	hits := s.memory.Recall(q, k)
	if hits == nil {
		hits = []session.Recalled{}
	}
	writeJSON(w, http.StatusOK, hits)
}

// retrieveEphemeral chunks and embeds text in a throwaway collection,
// retrieves the top-k chunks for the query, and lets the collection go
// out of scope — the §6.5 "discarded immediately after response
// delivery" contract, enforced structurally rather than by cleanup code.
func retrieveEphemeral(text, query string, topK int) ([]string, error) {
	db := vectordb.New()
	col, err := db.CreateCollection("ephemeral", vectordb.CollectionConfig{})
	if err != nil {
		return nil, err
	}
	ingestor := rag.NewIngestor(col, rag.ChunkOptions{})
	if _, err := ingestor.IngestText("ephemeral", "ephemeral", text); err != nil {
		return nil, err
	}
	results, err := rag.Retrieve(col, query, topK, "")
	if err != nil {
		return nil, err
	}
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Text
	}
	return out, nil
}

func (s *Server) handleGPU(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Cluster().Stats())
}

// ListenAndServe runs the application layer on addr until ctx ends.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		return err
	}
}
