package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"llmms/internal/fleet"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// newFleetServer builds a server whose generation backend is a
// two-replica-per-model fleet over one engine, with a controllable
// probe: fail(model) makes that model's replicas flunk every probe.
func newFleetServer(t *testing.T) (*Server, *httptest.Server, *fleet.Pool, func(model string, down bool)) {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	var downModel atomic.Value
	downModel.Store("")
	replicas := make(map[string][]fleet.Replica)
	for _, p := range engine.Profiles() {
		replicas[p.Name] = []fleet.Replica{
			{ID: "r0", Backend: engine}, {ID: "r1", Backend: engine},
		}
	}
	pool, err := fleet.New(fleet.Config{
		Replicas:      replicas,
		ProbeFailures: 1,
		Probe: func(ctx context.Context, model string, r fleet.Replica) error {
			if downModel.Load().(string) == model {
				return errors.New("probe refused")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	s, err := NewServer(Options{Engine: engine, Fleet: pool})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, pool, func(model string, down bool) {
		if down {
			downModel.Store(model)
		} else {
			downModel.Store("")
		}
	}
}

// TestQueryThroughFleet runs a full orchestration query with the fleet
// pool as the backend — the drop-in contract the redesign promises.
func TestQueryThroughFleet(t *testing.T) {
	_, ts, _, _ := newFleetServer(t)
	payload, _ := json.Marshal(QueryRequest{
		Query: truthfulqa.Seed()[0].Question, Strategy: "oua", MaxTokens: 256,
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d\n%s", resp.StatusCode, buf.String())
	}
	gotResult := false
	for _, f := range sseFrames(t, buf.String()) {
		if f.Event == "error" {
			t.Fatalf("query errored through the fleet: %s", f.Data)
		}
		if f.Event == "result" {
			gotResult = true
		}
	}
	if !gotResult {
		t.Fatalf("no result frame:\n%s", buf.String())
	}
}

// TestFleetStatusEndpoint: /api/fleet exposes per-replica state, and is
// absent entirely without a configured fleet.
func TestFleetStatusEndpoint(t *testing.T) {
	_, ts, pool, _ := newFleetServer(t)
	var out []fleet.ModelStatus
	resp := doJSON(t, http.MethodGet, ts.URL+"/api/fleet", nil, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out) != len(pool.Models()) {
		t.Fatalf("models reported = %d, want %d", len(out), len(pool.Models()))
	}
	for _, ms := range out {
		if !ms.Ready || len(ms.Replicas) != 2 {
			t.Fatalf("fresh fleet not fully ready: %+v", ms)
		}
		for _, rs := range ms.Replicas {
			if rs.State != "serving" {
				t.Fatalf("fresh replica state = %+v", rs)
			}
		}
	}

	_, plain := newTestServer(t)
	if resp, err := http.Get(plain.URL + "/api/fleet"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fleet endpoint without a fleet = %d, want 404", resp.StatusCode)
	}
}

// TestReadyzPerModelFleetChecks: ejecting every replica of one model
// flips /readyz to 503 with exactly that model's check failing; probe
// recovery flips it back.
func TestReadyzPerModelFleetChecks(t *testing.T) {
	_, ts, pool, setDown := newFleetServer(t)
	model := pool.Models()[0]

	report := struct {
		Status string `json:"status"`
		Checks []struct {
			Name  string `json:"name"`
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		} `json:"checks"`
	}{}
	resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &report)
	if resp.StatusCode != http.StatusOK || report.Status != "ready" {
		t.Fatalf("fresh fleet unready: %d %+v", resp.StatusCode, report)
	}
	found := 0
	for _, c := range report.Checks {
		if c.Name == "fleet:"+model {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("per-model fleet check missing from /readyz: %+v", report.Checks)
	}

	setDown(model, true)
	pool.ProbeNow(context.Background())
	report.Checks = nil
	resp = doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &report)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ejected model left readyz at %d", resp.StatusCode)
	}
	for _, c := range report.Checks {
		switch {
		case c.Name == "fleet:"+model:
			if c.OK || c.Error == "" {
				t.Fatalf("dead model's check = %+v", c)
			}
		case !c.OK:
			t.Fatalf("unrelated check failed: %+v", c)
		}
	}

	setDown(model, false)
	pool.ProbeNow(context.Background())
	resp = doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered fleet still unready: %d", resp.StatusCode)
	}
}
