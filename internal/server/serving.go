package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"llmms/internal/core"
	"llmms/internal/qcache"
	"llmms/internal/session"
	"llmms/internal/telemetry"
)

// ServingOptions configures the cross-query serving layer between the
// HTTP surface and the orchestrator: the answer cache, in-flight
// coalescing, and admission control. The zero value disables all three,
// leaving /api/query behavior-identical to a server without the layer.
type ServingOptions struct {
	// CacheTTL enables the two-tier answer cache when positive: exact
	// hits on the normalized (query, strategy, models, budget, RAG
	// fingerprint) key and semantic hits on near-duplicate queries are
	// replayed without orchestrating. Entries expire after this TTL and
	// the whole cache is flushed on settings changes and document
	// upload/delete.
	CacheTTL time.Duration
	// CacheCapacity bounds the cache entries (non-positive means
	// qcache.DefaultCapacity).
	CacheCapacity int
	// SemanticThreshold is the cosine similarity above which two
	// distinct queries share a cached answer (zero means
	// qcache.DefaultSemanticThreshold; > 1 disables the semantic tier).
	SemanticThreshold float64
	// Coalesce enables singleflight-style deduplication: identical
	// queries arriving while one is already orchestrating replay the
	// leader's SSE stream instead of fanning out again.
	Coalesce bool
	// CoalesceBuffer bounds the buffered frame history per flight in
	// bytes (non-positive means qcache.DefaultFlightBuffer); past the
	// bound a flight stops admitting new followers.
	CoalesceBuffer int
	// MaxInflight, when positive, bounds the total concurrent
	// orchestration weight (each query weighs its fan-out width, i.e.
	// its candidate model count). Requests beyond the bound wait in a
	// FIFO queue; beyond the queue they are shed with 429.
	MaxInflight int
	// MaxQueue bounds the admission wait queue (non-positive means
	// 2×MaxInflight).
	MaxQueue int
}

// retryAfterSeconds is the Retry-After hint on 429 responses. The queue
// drains at orchestration speed (hundreds of milliseconds to seconds),
// so a one-second backoff is the shortest honest hint.
const retryAfterSeconds = "1"

// cachedAnswer is the cache entry value: the leader's recorded
// orchestration frames (everything except the final result frame, which
// is rebuilt per requester) plus the final result.
type cachedAnswer struct {
	frames []qcache.Frame
	result core.Result
}

// flightOutcome is what a coalescing leader hands its followers at
// Finish: the orchestration result on success, or the HTTP error it
// answered with when it never started streaming (admission shed,
// retrieval failure).
type flightOutcome struct {
	result     *core.Result
	status     int
	errBody    map[string]apiError
	retryAfter string
}

// servingKey derives the cache/coalescing key for a query, reporting
// whether the query is shareable at all. Context-dependent queries — a
// session with history, or an ephemeral document — produce prompts no
// other request reproduces, so they always bypass the serving layer.
func (s *Server) servingKey(req QueryRequest, strategy core.Strategy, models []string, maxTokens int, st Settings, summary string) (qcache.Key, bool) {
	if s.cache == nil && s.flights == nil {
		return qcache.Key{}, false
	}
	if summary != "" || strings.TrimSpace(req.EphemeralContext) != "" {
		return qcache.Key{}, false
	}
	ragFP := "-"
	if req.UseRAG {
		// The revision counter ties RAG-grounded answers to the document
		// set that produced them; upload/delete bumps it (and flushes the
		// cache outright — the counter additionally keeps stale keys from
		// ever colliding with fresh ones).
		ragFP = fmt.Sprintf("rag:%d:%s:%d", s.ragRevision(), req.DocID, st.RAGTopK)
	}
	scope := fmt.Sprintf("%s|%s|%d|%g|%g|%s",
		strategy, strings.Join(models, ","), maxTokens, st.Alpha, st.Beta, ragFP)
	return qcache.Key{Query: req.Query, Scope: scope}, true
}

// ragRevision returns the document-set revision (bumped on every upload
// and delete).
func (s *Server) ragRevision() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ragRev
}

// invalidateCache drops every cached answer — called whenever settings
// or the document set change, since either can change what any query
// would answer.
func (s *Server) invalidateCache() {
	s.cache.Flush()
}

// appendExchange persists one question/answer pair to a session (shared
// by the fresh, cached, and coalesced paths).
func (s *Server) appendExchange(sessID, query string, res core.Result) {
	if _, err := s.sessions.Append(sessID, session.Message{Role: session.RoleUser, Content: query}); err == nil {
		_, _ = s.sessions.Append(sessID, session.Message{
			Role: session.RoleAssistant, Content: res.Answer, Model: res.Model,
		})
	}
}

// serveCached answers a query from a cache entry: the recorded
// orchestration frames are replayed verbatim, then a fresh result frame
// is built so the requester keeps its own session and query identity.
// Cached replays do not feed the arena or the memory graph (they carry
// no new orchestration evidence) and produce no trace.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, ca *cachedAnswer, kind qcache.HitKind, sessID, query string) {
	tier, label := "exact", "HIT"
	if kind == qcache.Semantic {
		tier, label = "semantic", "SEMANTIC"
	}
	s.tel.CacheHits.Inc(tier)

	queryID := telemetry.NewQueryID()
	flusher, canStream := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Session-ID", sessID)
	w.Header().Set("X-Query-ID", queryID)
	w.Header().Set("X-Cache", label)
	w.WriteHeader(http.StatusOK)
	s.tel.SSEStreams.Inc()
	defer func() {
		if r.Context().Err() != nil {
			s.tel.SSEDropped.Inc()
		}
	}()

	writeFrame := func(event string, data []byte) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			s.tel.SSEEncodeErrors.Inc()
			return false
		}
		s.tel.SSEFrames.Inc()
		if canStream {
			flusher.Flush()
		}
		return true
	}
	for _, fr := range ca.frames {
		if !writeFrame(fr.Event, fr.Data) {
			return
		}
	}
	data, err := json.Marshal(map[string]any{"session_id": sessID, "query_id": queryID, "result": ca.result})
	if err != nil {
		s.tel.SSEEncodeErrors.Inc()
		return
	}
	if !writeFrame("result", data) {
		return
	}
	s.appendExchange(sessID, query, ca.result)
}

// followFlight serves a coalesced follower: the leader's orchestration
// frames are replayed verbatim as they arrive — event-for-event
// identical to the leader's stream — then a fresh "result" frame is
// built from the shared outcome so the follower keeps its own session
// and query identity (mirroring serveCached), and the shared answer is
// appended to the follower's own session. When the leader failed before
// streaming anything, its HTTP error response is reproduced instead.
func (s *Server) followFlight(w http.ResponseWriter, r *http.Request, f *qcache.Flight, sessID, query string) {
	queryID := telemetry.NewQueryID()
	flusher, canStream := w.(http.Flusher)
	headersSent := false
	writeFrame := func(fr qcache.Frame) error {
		if !headersSent {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.Header().Set("X-Session-ID", sessID)
			w.Header().Set("X-Query-ID", queryID)
			w.Header().Set("X-Cache", "COALESCED")
			w.WriteHeader(http.StatusOK)
			headersSent = true
			s.tel.SSEStreams.Inc()
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", fr.Event, fr.Data); err != nil {
			s.tel.SSEEncodeErrors.Inc()
			return err
		}
		s.tel.SSEFrames.Inc()
		if canStream {
			flusher.Flush()
		}
		return nil
	}

	v, completed := f.Replay(r.Context(), writeFrame)
	if headersSent && r.Context().Err() != nil {
		s.tel.SSEDropped.Inc()
	}
	if !completed {
		return // follower's client left, or its write failed mid-replay
	}
	out, _ := v.(flightOutcome)
	if out.result != nil {
		data, err := json.Marshal(map[string]any{"session_id": sessID, "query_id": queryID, "result": *out.result})
		if err != nil {
			s.tel.SSEEncodeErrors.Inc()
			return
		}
		if writeFrame(qcache.Frame{Event: "result", Data: data}) != nil {
			return
		}
		s.appendExchange(sessID, query, *out.result)
		return
	}
	if headersSent {
		return // the leader's error frame was already replayed
	}
	// The leader never streamed (shed by admission, retrieval failure):
	// reproduce its plain HTTP error.
	status, body := out.status, out.errBody
	if status == 0 {
		status, body = http.StatusInternalServerError, errBody("query_failed", "coalesced leader produced no response")
	}
	if out.retryAfter != "" {
		w.Header().Set("Retry-After", out.retryAfter)
	}
	writeJSON(w, status, body)
}
