package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// newRoutingServer builds a server over the seed knowledge base with the
// given routing/serving/persistence options.
func newRoutingServer(t *testing.T, mutate func(*Options)) *Server {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	opts := Options{Engine: engine}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// geoTraining are same-family queries that train one routing cluster.
var geoTraining = []string{
	"What is the capital of France?",
	"What is the capital of Japan?",
	"What is the capital of Brazil?",
	"What is the capital of Egypt?",
	"What is the capital of Canada?",
	"What is the capital of Kenya?",
}

// trainGeoCluster feeds the predictor synthetic completed orchestrations
// with cleanly separated per-model scores, so qwen2 is the family's
// confident best model.
func trainGeoCluster(t *testing.T, s *Server) {
	t.Helper()
	for _, q := range geoTraining {
		s.Router().Observe(q, core.Result{
			Model: llm.ModelQwen2,
			Outcomes: []core.ModelOutcome{
				{Model: llm.ModelLlama3, Response: "a", Tokens: 5, Score: 0.3},
				{Model: llm.ModelMistral, Response: "b", Tokens: 5, Score: 0.5},
				{Model: llm.ModelQwen2, Response: "c", Tokens: 5, Score: 0.9},
			},
		})
	}
}

// postQuery runs one /api/query request directly against the handler and
// returns the recorder and the final core.Result from the SSE stream.
func postRouteQuery(t *testing.T, s *Server, body map[string]any) (*httptest.ResponseRecorder, core.Result) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/api/query", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("query status = %d: %s", rec.Code, rec.Body.String())
	}
	var result core.Result
	found := false
	for _, f := range sseFrames(t, rec.Body.String()) {
		if f.Event != "result" {
			continue
		}
		var env struct {
			Result core.Result `json:"result"`
		}
		if err := json.Unmarshal([]byte(f.Data), &env); err != nil {
			t.Fatalf("parse result frame: %v", err)
		}
		result, found = env.Result, true
	}
	if !found {
		t.Fatalf("no result frame in stream:\n%s", rec.Body.String())
	}
	return rec, result
}

func TestQueryRouteIdentityAtFullK(t *testing.T) {
	// k = len(enabled models) makes routing a declared no-op: the result
	// must be byte-identical to an unrouted server's, for every strategy.
	plain := newRoutingServer(t, nil)
	routed := newRoutingServer(t, func(o *Options) {
		o.Routing = RoutingOptions{TopK: len(DefaultSettings().EnabledModels)}
	})
	for _, strat := range []string{"oua", "mab", "hybrid"} {
		body := map[string]any{"query": "What is the capital of France?", "strategy": strat}
		_, want := postRouteQuery(t, plain, body)
		rec, got := postRouteQuery(t, routed, body)
		if h := rec.Header().Get("X-Route"); h != "full:3" {
			t.Fatalf("%s: X-Route = %q, want full:3", strat, h)
		}
		// Elapsed is wall clock, the only legitimately varying field.
		want.Elapsed, got.Elapsed = 0, 0
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("%s: routed result diverged from unrouted:\n got %s\nwant %s", strat, gotJSON, wantJSON)
		}
	}
}

func TestQueryRouteFallbackColdRunsFullPool(t *testing.T) {
	s := newRoutingServer(t, func(o *Options) {
		o.Routing = RoutingOptions{TopK: 1}
	})
	rec, res := postRouteQuery(t, s, map[string]any{"query": "What is the capital of France?", "strategy": "mab"})
	if h := rec.Header().Get("X-Route"); h != "fallback_cold:3" {
		t.Fatalf("X-Route = %q, want fallback_cold:3 (empty index must route the full pool)", h)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("fallback query fanned out to %d models, want 3", len(res.Outcomes))
	}
}

func TestQueryRouteNarrowsAfterTraining(t *testing.T) {
	s := newRoutingServer(t, func(o *Options) {
		o.Routing = RoutingOptions{TopK: 1, Epsilon: -1}
	})
	trainGeoCluster(t, s)
	// An unseen query of the trained family routes to the cluster's best.
	rec, res := postRouteQuery(t, s, map[string]any{"query": "What is the capital of Norway?", "strategy": "mab"})
	if h := rec.Header().Get("X-Route"); h != "topk:1" {
		t.Fatalf("X-Route = %q, want topk:1", h)
	}
	if res.Model != llm.ModelQwen2 || len(res.Outcomes) != 1 {
		t.Fatalf("routed to %q over %d models, want qwen2 over 1", res.Model, len(res.Outcomes))
	}
	// The status endpoint reports the decision and the cluster standings.
	srec := httptest.NewRecorder()
	s.ServeHTTP(srec, httptest.NewRequest("GET", "/api/router", nil))
	var status struct {
		Clusters  int               `json:"clusters"`
		Decisions map[string]uint64 `json:"decisions"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &status); err != nil {
		t.Fatalf("parse /api/router: %v", err)
	}
	if status.Clusters != 1 || status.Decisions["topk"] != 1 {
		t.Fatalf("router status = %+v, want 1 cluster and 1 topk decision", status)
	}
}

func TestQueryRouteGateAcquiresNarrowedWidth(t *testing.T) {
	// The perf win only exists if admission charges the narrowed width:
	// the gate.wait span must record weight 1, not the configured 3.
	s := newRoutingServer(t, func(o *Options) {
		o.Routing = RoutingOptions{TopK: 1, Epsilon: -1}
		o.Serving = ServingOptions{MaxInflight: 4}
	})
	trainGeoCluster(t, s)
	rec, _ := postRouteQuery(t, s, map[string]any{"query": "What is the capital of Norway?", "strategy": "mab"})
	if h := rec.Header().Get("X-Route"); h != "topk:1" {
		t.Fatalf("X-Route = %q, want topk:1", h)
	}
	queryID := rec.Header().Get("X-Query-ID")
	tr, ok := s.tel.Traces.Get(queryID)
	if !ok {
		t.Fatalf("trace for query %q not stored", queryID)
	}
	weight := ""
	for _, span := range tr.Spans {
		if span.Name == "gate.wait" {
			weight = span.Attrs["weight"]
		}
	}
	if weight != "1" {
		t.Fatalf("gate.wait weight = %q, want 1 (the narrowed width)", weight)
	}
}

func TestRouteAndFeedbackPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	durable := func(o *Options) {
		o.Routing = RoutingOptions{TopK: 1, Epsilon: -1}
		o.DataDir = dir
	}
	s1 := newRoutingServer(t, durable)
	trainGeoCluster(t, s1)
	// Feedback flows through the HTTP handler so the durable snapshot
	// path is the one exercised.
	req := httptest.NewRequest("POST", "/api/feedback",
		bytes.NewReader([]byte(fmt.Sprintf(`{"model":%q,"rating":1}`, llm.ModelQwen2))))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s1.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("feedback status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newRoutingServer(t, durable)
	defer s2.Close()
	if n := s2.Router().Status().Clusters; n != 1 {
		t.Fatalf("restored %d clusters, want 1", n)
	}
	pred := s2.Router().Predict("What is the capital of Norway?", DefaultSettings().EnabledModels)
	if pred.Outcome != "topk" || len(pred.Models) != 1 || pred.Models[0] != llm.ModelQwen2 {
		t.Fatalf("restored prediction = %+v, want topk [qwen2]", pred)
	}
	ratings := s2.feedback.Ratings()
	if r, ok := ratings[llm.ModelQwen2]; !ok || r[0] != 1 {
		t.Fatalf("restored feedback ratings = %v, want 1 rating for qwen2", ratings)
	}
}
