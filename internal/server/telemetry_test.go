package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"llmms/internal/llm"
	"llmms/internal/telemetry"
	"llmms/internal/truthfulqa"
)

// runQuery posts one /api/query and returns the response plus the SSE
// body, fully read.
func runQuery(t *testing.T, url string, body any) (*http.Response, string) {
	t.Helper()
	resp := doJSON(t, http.MethodPost, url+"/api/query", body, nil)
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// metricsLine matches one sample line of the 0.0.4 text format.
var metricsLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestMetricsEndpoint runs real queries (one success, one failure) and
// asserts GET /metrics is Prometheus-parseable and carries every family
// the platform promises, with the expected counts.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	if _, body := runQuery(t, ts.URL, map[string]any{"query": "What color is the sky?", "strategy": "oua"}); !strings.Contains(body, "event: result") {
		t.Fatalf("oua query did not complete:\n%s", body)
	}
	if _, body := runQuery(t, ts.URL, map[string]any{"query": "What color is the sky?", "strategy": "single", "model": "no-such-model"}); !strings.Contains(body, "event: error") {
		t.Fatalf("doomed query did not error:\n%s", body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	// Every line parses as a comment or a sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !metricsLine.MatchString(line) {
			t.Errorf("unparseable metrics line %q", line)
		}
	}

	// The acceptance set: query counts by strategy/outcome, latency
	// histograms, retry/failure/prune counters, SSE counters, and the
	// modeld client families (present even with zero series — the server
	// runs on the in-process engine here).
	for _, want := range []string{
		`llmms_queries_total{strategy="oua",outcome="ok"} 1`,
		`llmms_queries_total{strategy="single",outcome="error"} 1`,
		`llmms_query_duration_seconds_count{strategy="oua"} 1`,
		`llmms_chunk_duration_seconds_bucket{model="llama3:8b"`,
		`llmms_tokens_generated_total{model="llama3:8b"}`,
		`llmms_http_requests_total{route="POST /api/query",code="200"} 2`,
		`llmms_http_request_duration_seconds_count{route="POST /api/query"} 2`,
		`llmms_sse_streams_started_total 2`,
		`llmms_sse_streams_dropped_total 0`,
		`llmms_sse_frames_written_total`,
		`llmms_query_traces 2`,
		"# TYPE llmms_chunk_retries_total counter",
		"# TYPE llmms_model_failures_total counter",
		"# TYPE llmms_prunes_total counter",
		"# TYPE modeld_client_requests_total counter",
		"# TYPE modeld_client_request_duration_seconds histogram",
		"# TYPE modeld_client_chunk_duration_seconds histogram",
		"# TYPE modeld_client_truncated_streams_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestQueryTraceRetrievable completes a query and fetches its trace by
// the ID from the X-Query-ID header, checking per-round and per-chunk
// timings arrived.
func TestQueryTraceRetrievable(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := runQuery(t, ts.URL, map[string]any{"query": "What color is the sky?", "strategy": "oua"})
	id := resp.Header.Get("X-Query-ID")
	if id == "" {
		t.Fatal("no X-Query-ID header")
	}
	if !strings.Contains(body, `"query_id":"`+id+`"`) {
		t.Errorf("result frame does not echo the query ID:\n%s", body)
	}

	var tr telemetry.QueryTrace
	if resp := doJSON(t, http.MethodGet, ts.URL+"/api/traces/"+id, nil, &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	if tr.ID != id || tr.Strategy != "oua" || tr.Outcome != "ok" {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if tr.Winner == "" || tr.Elapsed <= 0 {
		t.Errorf("trace missing winner/elapsed: winner=%q elapsed=%v", tr.Winner, tr.Elapsed)
	}
	if len(tr.Rounds) == 0 || len(tr.Chunks) == 0 || len(tr.Scores) == 0 {
		t.Fatalf("trace missing spans: rounds=%d chunks=%d scores=%d",
			len(tr.Rounds), len(tr.Chunks), len(tr.Scores))
	}
	for _, r := range tr.Rounds {
		if r.Elapsed <= 0 {
			t.Errorf("round %d has no wall clock: %+v", r.Round, r)
		}
	}
	for _, c := range tr.Chunks {
		if c.Model == "" || c.Tokens <= 0 {
			t.Errorf("malformed chunk span: %+v", c)
		}
	}

	// The listing shows it, newest first.
	var list []telemetry.TraceSummary
	doJSON(t, http.MethodGet, ts.URL+"/api/traces", nil, &list)
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("trace listing = %+v", list)
	}

	// Unknown IDs get the uniform envelope with the documented code.
	var envelope map[string]struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/api/traces/qdeadbeef", nil, &envelope); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %d", resp.StatusCode)
	}
	if envelope["error"].Code != "unknown_trace" {
		t.Errorf("error code = %q, want unknown_trace", envelope["error"].Code)
	}
}

// TestReadyz exercises both readiness outcomes: the default server is
// ready; a failing custom dependency flips it to 503 with the failing
// check named in the body.
func TestReadyz(t *testing.T) {
	_, ts := newTestServer(t)
	var report struct {
		Status string `json:"status"`
		Checks []struct {
			Name  string `json:"name"`
			OK    bool   `json:"ok"`
			Error string `json:"error,omitempty"`
		} `json:"checks"`
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &report); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
	if report.Status != "ready" || len(report.Checks) != 1 || report.Checks[0].Name != "models" || !report.Checks[0].OK {
		t.Fatalf("ready report = %+v", report)
	}

	engine := llm.NewEngine(llm.Options{})
	s, err := NewServer(Options{Engine: engine, ReadyChecks: []ReadyCheck{
		{Name: "daemon", Check: func(context.Context) error { return errors.New("connection refused") }},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s)
	t.Cleanup(ts2.Close)
	report.Checks = nil
	if resp := doJSON(t, http.MethodGet, ts2.URL+"/readyz", nil, &report); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready readyz: %d", resp.StatusCode)
	}
	if report.Status != "unready" || len(report.Checks) != 2 {
		t.Fatalf("unready report = %+v", report)
	}
	for _, c := range report.Checks {
		switch c.Name {
		case "models":
			if !c.OK {
				t.Errorf("models check should pass: %+v", c)
			}
		case "daemon":
			if c.OK || c.Error != "connection refused" {
				t.Errorf("daemon check should fail with its error: %+v", c)
			}
		default:
			t.Errorf("unexpected check %+v", c)
		}
	}

	// Liveness stays independent: /healthz is 200 on the unready server.
	if resp := doJSON(t, http.MethodGet, ts2.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz on unready server: %d", resp.StatusCode)
	}
}

// TestTraceStoreEvictionOverHTTP proves the /api/traces bound end to
// end: with capacity 2, a third query evicts the first.
func TestTraceStoreEvictionOverHTTP(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{
		Engine:    engine,
		Telemetry: telemetry.New(telemetry.Options{TraceCapacity: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var ids []string
	for i := 0; i < 3; i++ {
		resp, body := runQuery(t, ts.URL, map[string]any{"query": "What color is the sky?", "strategy": "single"})
		if !strings.Contains(body, "event: result") {
			t.Fatalf("query %d failed:\n%s", i, body)
		}
		ids = append(ids, resp.Header.Get("X-Query-ID"))
	}
	var list []telemetry.TraceSummary
	doJSON(t, http.MethodGet, ts.URL+"/api/traces", nil, &list)
	if len(list) != 2 {
		t.Fatalf("listing kept %d traces, want 2", len(list))
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/api/traces/"+ids[0], nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest trace should be evicted, got %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/api/traces/"+ids[2], nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("newest trace should be retained, got %d", resp.StatusCode)
	}
}

// TestPprofGating: /debug/pprof is absent by default and served when
// Options.EnablePprof is set.
func TestPprofGating(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof served without opt-in: %d", resp.StatusCode)
	}

	engine := llm.NewEngine(llm.Options{})
	s, err := NewServer(Options{Engine: engine, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s)
	t.Cleanup(ts2.Close)
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index with opt-in: %d", resp2.StatusCode)
	}
}

// TestHTTPStatusLabels checks the middleware records non-200 statuses
// under the registration pattern, not the concrete URL.
func TestHTTPStatusLabels(t *testing.T) {
	s, ts := newTestServer(t)
	doJSON(t, http.MethodGet, ts.URL+"/api/sessions/nope-1", nil, nil)
	doJSON(t, http.MethodGet, ts.URL+"/api/sessions/nope-2", nil, nil)
	tel := s.Telemetry()
	if got := tel.HTTPRequests.Value("GET /api/sessions/{id}", "404"); got != 2 {
		t.Errorf("pattern-labeled 404 count = %v, want 2", got)
	}
}
