package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return resp
}

// sseFrames parses an SSE stream into (event, data) pairs.
func sseFrames(t *testing.T, body string) []struct{ Event, Data string } {
	t.Helper()
	var frames []struct{ Event, Data string }
	for _, frame := range strings.Split(body, "\n\n") {
		var ev, data string
		for _, line := range strings.Split(frame, "\n") {
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				ev = v
			}
			if v, ok := strings.CutPrefix(line, "data: "); ok {
				data = v
			}
		}
		if ev != "" {
			frames = append(frames, struct{ Event, Data string }{ev, data})
		}
	}
	return frames
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Options{}); err == nil {
		t.Fatal("expected error for nil engine")
	}
	engine := llm.NewEngine(llm.Options{})
	bad := DefaultSettings()
	bad.MaxTokens = -5
	if _, err := NewServer(Options{Engine: engine, Settings: bad}); err == nil {
		t.Fatal("expected error for invalid settings")
	}
}

func TestHealthVersionUI(t *testing.T) {
	_, ts := newTestServer(t)
	var health map[string]any
	resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	if resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("health = %d %v", resp.StatusCode, health)
	}
	var ver map[string]string
	doJSON(t, "GET", ts.URL+"/api/version", nil, &ver)
	if ver["version"] != Version {
		t.Fatalf("version = %v", ver)
	}
	resp2, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sb strings.Builder
	if _, err := bytes.NewBuffer(nil).ReadFrom(resp2.Body); err != nil {
		_ = sb
	}
	if ct := resp2.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("UI content type = %q", ct)
	}
	resp3, err := http.Get(ts.URL + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d", resp3.StatusCode)
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var models []map[string]any
	doJSON(t, "GET", ts.URL+"/api/models", nil, &models)
	if len(models) != 3 {
		t.Fatalf("%d models", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		names[m["name"].(string)] = true
	}
	for _, want := range []string{llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2} {
		if !names[want] {
			t.Fatalf("missing model %s in %v", want, names)
		}
	}
}

func TestQuerySSE(t *testing.T) {
	_, ts := newTestServer(t)
	payload := QueryRequest{Query: "What happens if you swallow chewing gum?", Strategy: "oua", MaxTokens: 256}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	if resp.Header.Get("X-Session-ID") == "" {
		t.Fatal("no session id header")
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	frames := sseFrames(t, buf.String())
	if len(frames) < 3 {
		t.Fatalf("only %d SSE frames:\n%s", len(frames), buf.String())
	}
	kinds := map[string]int{}
	for _, f := range frames {
		kinds[f.Event]++
	}
	for _, want := range []string{"start", "chunk", "score", "winner", "result"} {
		if kinds[want] == 0 {
			t.Fatalf("no %q frames; got %v", want, kinds)
		}
	}
	// The result frame carries the full core.Result.
	last := frames[len(frames)-1]
	if last.Event != "result" {
		t.Fatalf("last frame = %s", last.Event)
	}
	var result struct {
		SessionID string `json:"session_id"`
		Result    struct {
			Answer     string `json:"answer"`
			Model      string `json:"model"`
			TokensUsed int    `json:"tokens_used"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(last.Data), &result); err != nil {
		t.Fatal(err)
	}
	if result.Result.Answer == "" || result.Result.TokensUsed == 0 || result.SessionID == "" {
		t.Fatalf("result = %+v", result)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp := doJSON(t, "POST", ts.URL+"/api/query", QueryRequest{Query: "   "}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query = %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", ts.URL+"/api/query", QueryRequest{Query: "q", Strategy: "wat"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy = %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", ts.URL+"/api/query", QueryRequest{Query: "q", SessionID: "nope"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session = %d", resp.StatusCode)
	}
}

func TestQueryAppendsToSession(t *testing.T) {
	_, ts := newTestServer(t)
	var sess struct {
		ID string `json:"id"`
	}
	doJSON(t, "POST", ts.URL+"/api/sessions", map[string]string{"title": "chat"}, &sess)

	payload := QueryRequest{Query: "Are bats blind?", SessionID: sess.ID, Strategy: "single", Model: llm.ModelMistral}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
	resp.Body.Close()

	var got struct {
		Messages []struct {
			Role    string `json:"role"`
			Content string `json:"content"`
			Model   string `json:"model"`
		} `json:"messages"`
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/"+sess.ID, nil, &got)
	if len(got.Messages) != 2 {
		t.Fatalf("%d messages in session", len(got.Messages))
	}
	if got.Messages[0].Role != "user" || got.Messages[1].Role != "assistant" {
		t.Fatalf("roles = %+v", got.Messages)
	}
	if got.Messages[1].Model != llm.ModelMistral {
		t.Fatalf("assistant model = %q", got.Messages[1].Model)
	}
}

func TestSessionCRUD(t *testing.T) {
	_, ts := newTestServer(t)
	var created struct {
		ID string `json:"id"`
	}
	resp := doJSON(t, "POST", ts.URL+"/api/sessions", map[string]string{"title": "t1"}, &created)
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create = %d %+v", resp.StatusCode, created)
	}
	var list []map[string]any
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, &list)
	if len(list) != 1 {
		t.Fatalf("list = %v", list)
	}
	resp = doJSON(t, "DELETE", ts.URL+"/api/sessions/"+created.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	resp = doJSON(t, "GET", ts.URL+"/api/sessions/"+created.ID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get deleted = %d", resp.StatusCode)
	}
	doJSON(t, "POST", ts.URL+"/api/sessions", nil, nil)
	doJSON(t, "POST", ts.URL+"/api/sessions", nil, nil)
	doJSON(t, "DELETE", ts.URL+"/api/sessions", nil, nil)
	var after []map[string]any
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, &after)
	if len(after) != 0 {
		t.Fatalf("clear left %d sessions", len(after))
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	var st Settings
	doJSON(t, "GET", ts.URL+"/api/settings", nil, &st)
	if st.Strategy != "oua" || st.MaxTokens != 2048 {
		t.Fatalf("defaults = %+v", st)
	}
	st.Strategy = "mab"
	st.MaxTokens = 512
	st.EnabledModels = []string{llm.ModelMistral, llm.ModelQwen2}
	resp := doJSON(t, "PUT", ts.URL+"/api/settings", st, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put = %d", resp.StatusCode)
	}
	var got Settings
	doJSON(t, "GET", ts.URL+"/api/settings", nil, &got)
	if got.Strategy != "mab" || got.MaxTokens != 512 || len(got.EnabledModels) != 2 {
		t.Fatalf("settings = %+v", got)
	}
	// Invalid updates are rejected without mutating state.
	bad := got
	bad.EnabledModels = []string{"phantom:13b"}
	resp = doJSON(t, "PUT", ts.URL+"/api/settings", bad, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown model accepted: %d", resp.StatusCode)
	}
	bad2 := got
	bad2.MaxTokens = 0
	resp = doJSON(t, "PUT", ts.URL+"/api/settings", bad2, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("zero budget accepted: %d", resp.StatusCode)
	}
}

func TestUploadRetrieveAndRAGQuery(t *testing.T) {
	_, ts := newTestServer(t)
	content := strings.Join([]string{
		"The research cluster hosts a DGX node with eight H200 accelerators.",
		"Each accelerator provides one hundred forty one gigabytes of memory.",
		"Node maintenance happens on the first Monday of every month.",
	}, " ")
	var up struct {
		DocID  string `json:"doc_id"`
		Chunks int    `json:"chunks"`
	}
	resp := doJSON(t, "POST", ts.URL+"/api/upload",
		uploadRequest{Filename: "cluster.txt", Content: content}, &up)
	if resp.StatusCode != http.StatusCreated || up.Chunks == 0 {
		t.Fatalf("upload = %d %+v", resp.StatusCode, up)
	}

	var docs []map[string]any
	doJSON(t, "GET", ts.URL+"/api/documents", nil, &docs)
	if len(docs) != 1 || docs[0]["name"] != "cluster.txt" {
		t.Fatalf("documents = %v", docs)
	}

	// A RAG query must ground its answer in the uploaded content.
	payload := QueryRequest{Query: "How many H200 accelerators does the DGX node have?", UseRAG: true, MaxTokens: 256}
	body, _ := json.Marshal(payload)
	qresp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(qresp.Body)
	qresp.Body.Close()
	if !strings.Contains(buf.String(), "H200") && !strings.Contains(buf.String(), "eight") {
		t.Fatalf("RAG answer not grounded in document:\n%s", buf.String())
	}

	resp = doJSON(t, "DELETE", ts.URL+"/api/documents/"+up.DocID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("doc delete = %d", resp.StatusCode)
	}
	resp = doJSON(t, "DELETE", ts.URL+"/api/documents/"+up.DocID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d", resp.StatusCode)
	}
}

func TestUploadValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp := doJSON(t, "POST", ts.URL+"/api/upload", uploadRequest{Filename: "x.txt"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty content = %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", ts.URL+"/api/upload", uploadRequest{Filename: "x.exe", Content: "bytes"}, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unsupported type = %d", resp.StatusCode)
	}
}

func TestGPUEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var snap map[string]any
	resp := doJSON(t, "GET", ts.URL+"/api/gpu", nil, &snap)
	if resp.StatusCode != 200 {
		t.Fatalf("gpu = %d", resp.StatusCode)
	}
}

func TestSessionContinuityAcrossQueries(t *testing.T) {
	_, ts := newTestServer(t)
	ask := func(q, sessID string) string {
		t.Helper()
		body, _ := json.Marshal(QueryRequest{Query: q, SessionID: sessID, Strategy: "single", Model: llm.ModelMistral, MaxTokens: 256})
		resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.Header.Get("X-Session-ID")
	}
	id := ask("Are bats blind?", "")
	if id == "" {
		t.Fatal("no session created")
	}
	if got := ask("What about owls?", id); got != id {
		t.Fatalf("session id changed: %s -> %s", id, got)
	}
	var sess struct {
		TurnCount int `json:"turn_count"`
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/"+id, nil, &sess)
	if sess.TurnCount != 4 {
		t.Fatalf("turn count = %d, want 4", sess.TurnCount)
	}
}

func BenchmarkQueryEndpoint(b *testing.B) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{Engine: engine})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(QueryRequest{
			Query: fmt.Sprintf("Benchmark question %d: are bats blind?", i), Strategy: "oua", MaxTokens: 128,
		})
		resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
	}
}

func TestConfigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var resp struct {
		Settings   Settings `json:"settings"`
		Changes    []string `json:"changes"`
		Understood bool     `json:"understood"`
	}
	r := doJSON(t, "POST", ts.URL+"/api/configure", map[string]string{
		"instruction": "avoid slow models, prioritize qwen, keep responses under 100 tokens, use the bandit",
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("configure = %d", r.StatusCode)
	}
	if !resp.Understood || len(resp.Changes) == 0 {
		t.Fatalf("no changes parsed: %+v", resp)
	}
	if resp.Settings.Strategy != "mab" {
		t.Fatalf("strategy = %s", resp.Settings.Strategy)
	}
	if resp.Settings.MaxTokens != 100 {
		t.Fatalf("max tokens = %d", resp.Settings.MaxTokens)
	}
	// llama3 is the slowest profile and must be excluded; qwen first.
	for _, m := range resp.Settings.EnabledModels {
		if m == llm.ModelLlama3 {
			t.Fatalf("slow model kept: %v", resp.Settings.EnabledModels)
		}
	}
	if resp.Settings.EnabledModels[0] != llm.ModelQwen2 || resp.Settings.Model != llm.ModelQwen2 {
		t.Fatalf("preference not applied: %+v", resp.Settings)
	}
	// The change persists in /api/settings.
	var st Settings
	doJSON(t, "GET", ts.URL+"/api/settings", nil, &st)
	if st.MaxTokens != 100 || st.Strategy != "mab" {
		t.Fatalf("settings not persisted: %+v", st)
	}
}

func TestConfigureValidation(t *testing.T) {
	_, ts := newTestServer(t)
	r := doJSON(t, "POST", ts.URL+"/api/configure", map[string]string{"instruction": "  "}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty instruction = %d", r.StatusCode)
	}
	// An instruction with no recognized clauses is a no-op, not an error.
	var resp struct {
		Understood bool `json:"understood"`
	}
	r = doJSON(t, "POST", ts.URL+"/api/configure", map[string]string{"instruction": "please be excellent"}, &resp)
	if r.StatusCode != http.StatusOK || resp.Understood {
		t.Fatalf("no-op instruction: %d %+v", r.StatusCode, resp)
	}
}

func TestQueryHybridStrategy(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(QueryRequest{Query: "Are bats blind?", Strategy: "hybrid", MaxTokens: 128})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	frames := sseFrames(t, buf.String())
	if len(frames) == 0 || frames[len(frames)-1].Event != "result" {
		t.Fatalf("hybrid query did not complete:\n%s", buf.String())
	}
}

func TestFeedbackEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Rate an explicit model.
	var out struct {
		Model string  `json:"model"`
		Prior float64 `json:"prior"`
	}
	r := doJSON(t, "POST", ts.URL+"/api/feedback",
		map[string]any{"model": llm.ModelQwen2, "rating": 1.0}, &out)
	if r.StatusCode != http.StatusOK || out.Model != llm.ModelQwen2 || out.Prior <= 0 {
		t.Fatalf("feedback = %d %+v", r.StatusCode, out)
	}
	// Out-of-range ratings are rejected.
	r = doJSON(t, "POST", ts.URL+"/api/feedback", map[string]any{"model": "x", "rating": 2.0}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("rating 2.0 accepted: %d", r.StatusCode)
	}
	// Missing model and session is rejected.
	r = doJSON(t, "POST", ts.URL+"/api/feedback", map[string]any{"rating": 1.0}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("targetless rating accepted: %d", r.StatusCode)
	}
	// Leaderboard lists the rated model.
	var board []struct {
		Model string  `json:"model"`
		Mean  float64 `json:"mean"`
	}
	doJSON(t, "GET", ts.URL+"/api/feedback", nil, &board)
	if len(board) != 1 || board[0].Model != llm.ModelQwen2 {
		t.Fatalf("board = %v", board)
	}
}

func TestFeedbackBySession(t *testing.T) {
	_, ts := newTestServer(t)
	// Run a single-model query so the session's last answer has a model.
	body, _ := json.Marshal(QueryRequest{Query: "Are bats blind?", Strategy: "single", Model: llm.ModelMistral, MaxTokens: 128})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	sessID := resp.Header.Get("X-Session-ID")

	var out struct {
		Model string `json:"model"`
	}
	r := doJSON(t, "POST", ts.URL+"/api/feedback", map[string]any{"session_id": sessID, "rating": -1.0}, &out)
	if r.StatusCode != http.StatusOK || out.Model != llm.ModelMistral {
		t.Fatalf("session feedback = %d %+v", r.StatusCode, out)
	}
	// Unknown session.
	r = doJSON(t, "POST", ts.URL+"/api/feedback", map[string]any{"session_id": "ghost", "rating": 1.0}, nil)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session = %d", r.StatusCode)
	}
}

func TestArenaEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// An orchestrated query feeds the arena.
	body, _ := json.Marshal(QueryRequest{Query: "Are bats blind?", Strategy: "oua", MaxTokens: 128})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()

	var standings []struct {
		Model  string  `json:"model"`
		Rating float64 `json:"rating"`
		Games  int     `json:"games"`
	}
	doJSON(t, "GET", ts.URL+"/api/arena", nil, &standings)
	if len(standings) < 2 {
		t.Fatalf("standings = %v", standings)
	}
	games := 0
	for _, p := range standings {
		games += p.Games
	}
	if games == 0 {
		t.Fatal("no arena games recorded")
	}
}

func TestRecallEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Two queries in different sessions populate the memory graph.
	for _, q := range []string{"Are bats blind?", "Do goldfish really have a three-second memory?"} {
		body, _ := json.Marshal(QueryRequest{Query: q, Strategy: "single", Model: llm.ModelMistral, MaxTokens: 128})
		resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
	}
	var hits []struct {
		Exchange struct {
			Question string `json:"question"`
			Answer   string `json:"answer"`
		} `json:"exchange"`
		Score float64 `json:"score"`
	}
	doJSON(t, "GET", ts.URL+"/api/recall?q=tell+me+about+bats+and+blindness&k=1", nil, &hits)
	if len(hits) != 1 {
		t.Fatalf("recall = %v", hits)
	}
	if !strings.Contains(hits[0].Exchange.Question, "bats") {
		t.Fatalf("recall missed the bat exchange: %+v", hits)
	}
	// Missing q is rejected.
	resp := doJSON(t, "GET", ts.URL+"/api/recall", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q = %d", resp.StatusCode)
	}
}

func TestSettingsValidateRejections(t *testing.T) {
	base := DefaultSettings()
	cases := []func(*Settings){
		func(s *Settings) { s.Strategy = "invalid" },
		func(s *Settings) { s.MaxTokens = 0 },
		func(s *Settings) { s.Alpha = -1 },
		func(s *Settings) { s.Beta = -0.1 },
		func(s *Settings) { s.EnabledModels = nil },
		func(s *Settings) { s.RAGTopK = 0 },
	}
	for i, mutate := range cases {
		st := base
		st.EnabledModels = append([]string(nil), base.EnabledModels...)
		mutate(&st)
		if err := st.Validate(); err == nil {
			t.Errorf("case %d: invalid settings accepted: %+v", i, st)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestSessionsAccessorAndDeleteMissing(t *testing.T) {
	s, ts := newTestServer(t)
	if s.Sessions() == nil {
		t.Fatal("nil session store")
	}
	resp := doJSON(t, "DELETE", ts.URL+"/api/sessions/ghost", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete missing session = %d", resp.StatusCode)
	}
}

func TestListenAndServe(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed().Head(3))})
	s, err := NewServer(Options{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for the server

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, addr) }()

	// Wait for the server to come up, then exercise it and shut down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	// A doomed address errors immediately.
	if err := s.ListenAndServe(context.Background(), "256.0.0.1:0"); err == nil {
		t.Fatal("expected listen error for bad address")
	}
}

func TestEphemeralContextQuery(t *testing.T) {
	_, ts := newTestServer(t)
	payload := QueryRequest{
		Query:     "How many accelerators are installed in the private cluster?",
		MaxTokens: 256,
		EphemeralContext: "The private cluster has sixteen H200 accelerators installed. " +
			"Access requires security clearance. Maintenance is on Fridays.",
	}
	body, _ := json.Marshal(payload)
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "sixteen") && !strings.Contains(buf.String(), "H200") {
		t.Fatalf("answer not grounded in ephemeral context:\n%s", buf.String())
	}
	// Nothing was retained: no documents are listed afterwards.
	var docs []map[string]any
	doJSON(t, "GET", ts.URL+"/api/documents", nil, &docs)
	if len(docs) != 0 {
		t.Fatalf("ephemeral context leaked into stored documents: %v", docs)
	}
	// Malformed (empty after trim) ephemeral context is ignored, not an error.
	payload.EphemeralContext = "   "
	body, _ = json.Marshal(payload)
	resp2, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("blank ephemeral context = %d", resp2.StatusCode)
	}
}

func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	var out struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	resp := doJSON(t, "GET", ts.URL+"/api/sessions/nope", nil, &out)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Error.Code != "unknown_session" || out.Error.Message == "" {
		t.Fatalf("envelope = %+v", out)
	}

	// Validation failures use the same shape with their own codes.
	out.Error.Code, out.Error.Message = "", ""
	resp = doJSON(t, "POST", ts.URL+"/api/query", map[string]string{"query": " "}, &out)
	if resp.StatusCode != http.StatusBadRequest || out.Error.Code != "missing_field" {
		t.Fatalf("status %d envelope %+v", resp.StatusCode, out)
	}

	out.Error.Code, out.Error.Message = "", ""
	resp = doJSON(t, "POST", ts.URL+"/api/query", map[string]string{"query": "q", "strategy": "nope"}, &out)
	if resp.StatusCode != http.StatusBadRequest || out.Error.Code != "invalid_strategy" {
		t.Fatalf("status %d envelope %+v", resp.StatusCode, out)
	}
}
