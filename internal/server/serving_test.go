package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/session"
	"llmms/internal/truthfulqa"
)

// newServingServer builds a test server with the serving layer on.
func newServingServer(t *testing.T, sv ServingOptions, backend core.Backend) (*Server, *httptest.Server) {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{Engine: engine, Backend: backend, Serving: sv})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery runs one /api/query and returns the response with its full
// body read (so SSE frames are complete).
func postQuery(t *testing.T, url string, body map[string]any) (*http.Response, string) {
	t.Helper()
	resp := doJSON(t, "POST", url+"/api/query", body, nil)
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// blockingBackend parks every GenerateChunk call until released, so
// tests can hold a query in flight deterministically.
type blockingBackend struct {
	inner   core.Backend
	once    sync.Once
	started chan struct{} // closed on the first call
	release chan struct{} // close to let all calls proceed
}

func newBlockingBackend(inner core.Backend) *blockingBackend {
	return &blockingBackend{inner: inner, started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingBackend) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (llm.Chunk, error) {
	b.once.Do(func() { close(b.started) })
	select {
	case <-b.release:
	case <-ctx.Done():
		return llm.Chunk{}, ctx.Err()
	}
	return b.inner.GenerateChunk(ctx, req)
}

func TestQueryCacheExactHit(t *testing.T) {
	s, ts := newServingServer(t, ServingOptions{CacheTTL: time.Minute}, nil)
	q := map[string]any{"query": "What is the capital of France?"}

	resp1, body1 := postQuery(t, ts.URL, q)
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first query X-Cache = %q, want MISS", got)
	}
	resp2, body2 := postQuery(t, ts.URL, q)
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat query X-Cache = %q, want HIT", got)
	}
	if s.tel.CacheHits.Value("exact") != 1 {
		t.Fatalf("cache_hits{exact} = %v, want 1", s.tel.CacheHits.Value("exact"))
	}
	// The replay carries the same orchestration frames and a result with
	// the same answer (identities differ: fresh session and query IDs).
	f1, f2 := sseFrames(t, body1), sseFrames(t, body2)
	if len(f1) != len(f2) {
		t.Fatalf("frame counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Event != f2[i].Event {
			t.Fatalf("frame %d event %q vs %q", i, f1[i].Event, f2[i].Event)
		}
		if f1[i].Event != "result" && f1[i].Data != f2[i].Data {
			t.Fatalf("frame %d (%s) data differs", i, f1[i].Event)
		}
	}
	// A whitespace/case reformatting still hits the exact tier.
	resp3, _ := postQuery(t, ts.URL, map[string]any{"query": "  what is THE capital   of france? "})
	if got := resp3.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("normalized repeat X-Cache = %q, want HIT", got)
	}
}

func TestQueryCacheSemanticHit(t *testing.T) {
	// The hashing encoder's similarity between rephrasings is far below
	// the production 0.97 default, so the test lowers the bar — the point
	// is the tier's mechanics, not the encoder's quality.
	s, ts := newServingServer(t, ServingOptions{CacheTTL: time.Minute, SemanticThreshold: 0.3}, nil)
	postQuery(t, ts.URL, map[string]any{"query": "What is the capital of France?"})
	resp, body := postQuery(t, ts.URL, map[string]any{"query": "What is the capital city of France?"})
	if got := resp.Header.Get("X-Cache"); got != "SEMANTIC" {
		t.Fatalf("rephrased query X-Cache = %q, want SEMANTIC", got)
	}
	if s.tel.CacheHits.Value("semantic") != 1 {
		t.Fatalf("cache_hits{semantic} = %v, want 1", s.tel.CacheHits.Value("semantic"))
	}
	frames := sseFrames(t, body)
	if len(frames) == 0 || frames[len(frames)-1].Event != "result" {
		t.Fatal("semantic replay did not end in a result frame")
	}
}

func TestQueryCacheTTLExpiry(t *testing.T) {
	_, ts := newServingServer(t, ServingOptions{CacheTTL: 50 * time.Millisecond}, nil)
	q := map[string]any{"query": "What is the capital of France?"}
	postQuery(t, ts.URL, q)
	resp, _ := postQuery(t, ts.URL, q)
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("within-TTL repeat X-Cache = %q, want HIT", got)
	}
	time.Sleep(80 * time.Millisecond)
	resp2, _ := postQuery(t, ts.URL, q)
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-TTL repeat X-Cache = %q, want MISS", got)
	}
}

func TestQueryCacheInvalidatedByUploadAndSettings(t *testing.T) {
	s, ts := newServingServer(t, ServingOptions{CacheTTL: time.Minute}, nil)
	q := map[string]any{"query": "What is the capital of France?"}
	postQuery(t, ts.URL, q)
	if resp, _ := postQuery(t, ts.URL, q); resp.Header.Get("X-Cache") != "HIT" {
		t.Fatal("warmup repeat was not a HIT")
	}

	// Uploading a document flushes the cache: any answer might now be
	// grounded differently.
	up := doJSON(t, "POST", ts.URL+"/api/upload", map[string]any{
		"filename": "facts.txt", "content": "Paris is the capital of France.",
	}, nil)
	if up.StatusCode != http.StatusCreated {
		t.Fatalf("upload = %d", up.StatusCode)
	}
	if resp, _ := postQuery(t, ts.URL, q); resp.Header.Get("X-Cache") != "MISS" {
		t.Fatal("cache survived a document upload")
	}

	// Refill, then change settings: flushed again.
	if resp, _ := postQuery(t, ts.URL, q); resp.Header.Get("X-Cache") != "HIT" {
		t.Fatal("refill repeat was not a HIT")
	}
	st := s.Settings()
	st.MaxTokens = 1024
	if resp := doJSON(t, "PUT", ts.URL+"/api/settings", st, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("settings update = %d", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts.URL, q); resp.Header.Get("X-Cache") != "MISS" {
		t.Fatal("cache survived a settings change")
	}
}

func TestQueryContextBypassesCache(t *testing.T) {
	s, ts := newServingServer(t, ServingOptions{CacheTTL: time.Minute}, nil)

	// Ephemeral context makes the prompt request-specific: repeats must
	// never hit (or populate) the cache.
	qe := map[string]any{
		"query":             "What is the capital of France?",
		"ephemeral_context": "France moved its capital to Lyon in this alternate history.",
	}
	postQuery(t, ts.URL, qe)
	resp, _ := postQuery(t, ts.URL, qe)
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("ephemeral repeat X-Cache = %q, want MISS (bypass)", got)
	}

	// A session whose history has been folded into a summary also feeds
	// the prompt, so those queries bypass too.
	sessID := s.sessions.Create("long chat").ID
	for i := 0; i < 12; i++ {
		if _, err := s.sessions.Append(sessID, session.Message{Role: session.RoleUser, Content: "turn content"}); err != nil {
			t.Fatal(err)
		}
	}
	if summary, _, _ := s.sessions.Context(sessID, 0); summary == "" {
		t.Skip("session store did not summarize; bypass branch unreachable")
	}
	qs := map[string]any{"query": "What is the capital of France?", "session_id": sessID}
	postQuery(t, ts.URL, qs)
	resp2, _ := postQuery(t, ts.URL, qs)
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("summarized-session repeat X-Cache = %q, want MISS (bypass)", got)
	}
}

func TestQueryCoalescedFollowerReplay(t *testing.T) {
	backend := newBlockingBackend(llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())}))
	s, ts := newServingServer(t, ServingOptions{Coalesce: true}, backend)
	q := map[string]any{"query": "What is the capital of France?"}

	type outcome struct {
		resp *http.Response
		body string
	}
	leader := make(chan outcome, 1)
	go func() {
		resp, body := postQuery(t, ts.URL, q)
		leader <- outcome{resp, body}
	}()
	<-backend.started // the leader is inside orchestration, held open

	follower := make(chan outcome, 1)
	go func() {
		resp, body := postQuery(t, ts.URL, q)
		follower <- outcome{resp, body}
	}()
	// Wait until the second request has actually joined the flight, then
	// let the leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for s.tel.Coalesced.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(backend.release)

	lo, fo := <-leader, <-follower
	if got := lo.resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("leader X-Cache = %q, want MISS", got)
	}
	if got := fo.resp.Header.Get("X-Cache"); got != "COALESCED" {
		t.Fatalf("follower X-Cache = %q, want COALESCED", got)
	}
	// The acceptance bar: the follower's stream is event-for-event
	// identical to the leader's — orchestration frames byte-for-byte,
	// the result frame rebuilt with the follower's own identity.
	lf, ff := sseFrames(t, lo.body), sseFrames(t, fo.body)
	if len(lf) != len(ff) {
		t.Fatalf("frame counts differ: leader %d vs follower %d", len(lf), len(ff))
	}
	for i := range lf {
		if lf[i].Event != ff[i].Event {
			t.Fatalf("frame %d event %q vs %q", i, lf[i].Event, ff[i].Event)
		}
		if lf[i].Event != "result" && lf[i].Data != ff[i].Data {
			t.Fatalf("frame %d (%s) data differs:\nleader:   %s\nfollower: %s", i, lf[i].Event, lf[i].Data, ff[i].Data)
		}
	}
	if len(lf) == 0 || lf[len(lf)-1].Event != "result" {
		t.Fatal("leader stream has no result frame")
	}
	// The follower's result frame must carry the follower's own session,
	// not the leader's — otherwise two distinct clients end up appending
	// to one session.
	var lres, fres struct {
		SessionID string          `json:"session_id"`
		Result    json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(lf[len(lf)-1].Data), &lres); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(ff[len(ff)-1].Data), &fres); err != nil {
		t.Fatal(err)
	}
	if fres.SessionID == lres.SessionID {
		t.Fatalf("follower result carries the leader's session %q", lres.SessionID)
	}
	if got := fo.resp.Header.Get("X-Session-ID"); fres.SessionID != got {
		t.Fatalf("follower result session %q != its X-Session-ID header %q", fres.SessionID, got)
	}
	if !bytes.Equal(lres.Result, fres.Result) {
		t.Fatal("follower result payload differs from the leader's")
	}
}

// TestQueryLeaderDisconnectKeepsFollower covers the fault-tolerance half
// of coalescing: the leader's client hanging up mid-orchestration must
// not fail the followers drafting behind it — the orchestration runs to
// completion for them.
func TestQueryLeaderDisconnectKeepsFollower(t *testing.T) {
	backend := newBlockingBackend(llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())}))
	s, ts := newServingServer(t, ServingOptions{Coalesce: true}, backend)
	body := `{"query":"What is the capital of France?"}`

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, err := http.NewRequestWithContext(leaderCtx, "POST", ts.URL+"/api/query", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return // canceled mid-stream, as intended
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	<-backend.started

	follower := make(chan outcomePair, 1)
	go func() {
		resp, fbody := postQuery(t, ts.URL, map[string]any{"query": "What is the capital of France?"})
		follower <- outcomePair{resp, fbody}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.tel.Coalesced.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the leader's client while the orchestration is parked, give
	// the server a beat to observe the disconnect, then let it finish.
	cancelLeader()
	<-leaderDone
	time.Sleep(50 * time.Millisecond)
	close(backend.release)

	fo := <-follower
	if fo.resp.StatusCode != http.StatusOK {
		t.Fatalf("follower status = %d, want 200", fo.resp.StatusCode)
	}
	frames := sseFrames(t, fo.body)
	if len(frames) == 0 || frames[len(frames)-1].Event != "result" {
		t.Fatalf("follower of a disconnected leader got no result; events: %v", frames)
	}
	for _, fr := range frames {
		if fr.Event == "error" {
			t.Fatalf("follower inherited the dead leader's error: %s", fr.Data)
		}
	}
}

// TestQueryQueuedLeaderCanceledShedsFollowersRetryably covers the gate/
// coalescing seam: a leader canceled while parked in the admission queue
// never produced an answer, so its followers are released with the
// retryable overloaded envelope, not a query failure.
func TestQueryQueuedLeaderCanceledShedsFollowersRetryably(t *testing.T) {
	backend := newBlockingBackend(llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())}))
	s, ts := newServingServer(t, ServingOptions{Coalesce: true, MaxInflight: 1, MaxQueue: 1}, backend)

	first := make(chan outcomePair, 1)
	go func() {
		resp, body := postQuery(t, ts.URL, map[string]any{"query": "first long question"})
		first <- outcomePair{resp, body}
	}()
	<-backend.started // query 1 holds the only slot

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, err := http.NewRequestWithContext(leaderCtx, "POST", ts.URL+"/api/query",
			strings.NewReader(`{"query":"second long question"}`))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.QueueDepth() != 1 { // query 2's leader parked in the wait queue
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	follower := make(chan outcomePair, 1)
	go func() {
		resp, body := postQuery(t, ts.URL, map[string]any{"query": "second long question"})
		follower <- outcomePair{resp, body}
	}()
	for s.tel.Coalesced.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	<-leaderDone

	fo := <-follower
	if fo.resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower status = %d, want 503", fo.resp.StatusCode)
	}
	if fo.resp.Header.Get("Retry-After") == "" {
		t.Fatal("queued-leader-canceled follower got no Retry-After hint")
	}
	var envelope map[string]apiError
	if err := json.Unmarshal([]byte(fo.body), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope["error"].Code != "overloaded" {
		t.Fatalf("follower error code = %q, want overloaded", envelope["error"].Code)
	}

	close(backend.release)
	if out := <-first; out.resp.StatusCode != http.StatusOK {
		t.Fatalf("first query status = %d, want 200", out.resp.StatusCode)
	}
}

func TestQueryAdmissionSheds429(t *testing.T) {
	backend := newBlockingBackend(llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())}))
	s, ts := newServingServer(t, ServingOptions{MaxInflight: 1, MaxQueue: 1}, backend)

	running := make(chan outcomePair, 2)
	go func() {
		resp, body := postQuery(t, ts.URL, map[string]any{"query": "first long question"})
		running <- outcomePair{resp, body}
	}()
	<-backend.started // query 1 holds the only slot

	go func() {
		resp, body := postQuery(t, ts.URL, map[string]any{"query": "second long question"})
		running <- outcomePair{resp, body}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.QueueDepth() != 1 { // query 2 parked in the wait queue
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: query 3 is shed with 429 + Retry-After in the envelope.
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	resp := doJSON(t, "POST", ts.URL+"/api/query", map[string]any{"query": "third long question"}, &envelope)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if envelope.Error.Code != "overloaded" {
		t.Fatalf("429 code = %q, want overloaded", envelope.Error.Code)
	}
	if s.tel.Rejected.Value() != 1 {
		t.Fatalf("admission_rejected_total = %v, want 1", s.tel.Rejected.Value())
	}

	close(backend.release)
	for i := 0; i < 2; i++ {
		out := <-running
		if out.resp.StatusCode != http.StatusOK {
			t.Fatalf("admitted query %d status = %d, want 200", i, out.resp.StatusCode)
		}
		if !strings.Contains(out.body, "event: result") {
			t.Fatalf("admitted query %d stream has no result frame", i)
		}
	}
}

type outcomePair struct {
	resp *http.Response
	body string
}

func TestQueryBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t)
	big := strings.Repeat("x", maxQueryBody+1)
	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"query":"`+big+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	var envelope map[string]apiError
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope["error"].Code != "request_too_large" {
		t.Fatalf("413 code = %q, want request_too_large", envelope["error"].Code)
	}
}

// deadWriter accepts headers but fails every body write, simulating a
// client that disconnected before the stream started.
type deadWriter struct {
	header http.Header
}

func (w *deadWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *deadWriter) WriteHeader(int)           {}
func (w *deadWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

func TestQuerySSEWriteErrorStopsStream(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/api/query",
		strings.NewReader(`{"query":"What is the capital of France?"}`))
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(&deadWriter{}, req)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler kept streaming to a dead client")
	}
	if got := s.tel.SSEEncodeErrors.Value(); got < 1 {
		t.Fatalf("sse_encode_errors_total = %v, want >= 1", got)
	}
	// Exactly one failed frame: the stream was abandoned at the first
	// write error instead of burning through the rest of the events.
	if got := s.tel.SSEFrames.Value(); got != 0 {
		t.Fatalf("sse_frames_written_total = %v, want 0 on a dead client", got)
	}
}
