package server

import "net/http"

// handleUI serves the embedded single-page chat interface — a compact
// rendition of the paper's Flask frontend (Chapter 5): the landing page
// with query input and strategy selection (Fig. 5.1), the sessions
// sidebar (Fig. 5.2), the settings panel (Fig. 5.3), the model dropdown
// (Fig. 5.4), the chat stream with multi-model transparency overlay
// (Figs. 5.5–5.8), document upload for RAG (Fig. 5.7), answer feedback
// (§9.5 self-improving orchestration), a natural-language configuration
// box (§9.5), and a responsive layout for small screens (Fig. 5.10).
func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>LLM-MS — Multi-Model LLM Search</title>
<style>
  :root { --bg:#0f1117; --panel:#181b24; --text:#e6e8ee; --dim:#8b90a0; --accent:#4f8cff; --ok:#7ee2a8; --bad:#ff7e7e; }
  * { box-sizing: border-box; }
  body { margin:0; font:15px/1.5 system-ui,sans-serif; background:var(--bg); color:var(--text); }
  header { padding:12px 20px; border-bottom:1px solid #262a36; display:flex; gap:14px; align-items:center; flex-wrap:wrap; }
  header h1 { font-size:17px; margin:0 8px 0 0; }
  .layout { display:flex; min-height:calc(100vh - 57px); }
  aside { width:230px; border-right:1px solid #262a36; padding:14px; }
  aside h2, section.settings h2 { font-size:13px; text-transform:uppercase; color:var(--dim); margin:0 0 8px; }
  .sess { padding:6px 8px; border-radius:6px; cursor:pointer; font-size:13px; overflow:hidden; text-overflow:ellipsis; white-space:nowrap; }
  .sess:hover { background:var(--panel); }
  .sess.active { background:var(--panel); border-left:2px solid var(--accent); }
  main { flex:1; max-width:860px; padding:20px; }
  select,input,button,textarea { background:var(--panel); color:var(--text); border:1px solid #2c3040; border-radius:6px; padding:8px 10px; font:inherit; }
  button { cursor:pointer; background:var(--accent); border:none; color:#fff; }
  button.ghost { background:var(--panel); color:var(--text); border:1px solid #2c3040; }
  #ask { display:flex; gap:8px; margin-bottom:14px; }
  #ask textarea { flex:1; resize:vertical; min-height:56px; }
  .msg { background:var(--panel); border-radius:10px; padding:12px 14px; margin:10px 0; white-space:pre-wrap; }
  .msg .who { color:var(--dim); font-size:12px; margin-bottom:4px; display:flex; gap:8px; align-items:center; }
  .rate { font-size:12px; }
  #events { font:12px/1.5 ui-monospace,monospace; color:var(--dim); background:var(--panel);
            border-radius:10px; padding:10px 12px; max-height:220px; overflow-y:auto; margin-top:14px; }
  .score { color:var(--ok); } .prune { color:var(--bad); } .winner { color:var(--accent); font-weight:600; }
  section.settings { border-top:1px solid #262a36; margin-top:18px; padding-top:12px; font-size:13px; }
  section.settings .row { display:flex; gap:8px; margin:6px 0; align-items:center; flex-wrap:wrap; }
  #nlbox { width:100%; }
  #uploadStatus, #nlStatus { color:var(--dim); font-size:12px; }
  @media (max-width:720px) { .layout { flex-direction:column; } aside { width:auto; border-right:none; border-bottom:1px solid #262a36; } }
</style>
</head>
<body>
<header>
  <h1>LLM-MS</h1>
  <label>Strategy
    <select id="strategy">
      <option value="oua">LLM-MS OUA</option>
      <option value="mab">LLM-MS MAB</option>
      <option value="hybrid">LLM-MS Hybrid</option>
      <option value="single">Single model</option>
    </select>
  </label>
  <label id="modelWrap" style="display:none">Model <select id="model"></select></label>
  <label>λ<sub>max</sub> <input id="budget" type="number" value="2048" min="16" style="width:90px"></label>
  <label><input id="useRag" type="checkbox"> use documents</label>
</header>
<div class="layout">
<aside>
  <h2>Sessions</h2>
  <div id="sessions"></div>
  <div style="margin-top:10px; display:flex; gap:6px;">
    <button class="ghost" id="newSess">New</button>
    <button class="ghost" id="clearSess">Clear all</button>
  </div>
  <section class="settings">
    <h2>Documents (RAG)</h2>
    <div class="row">
      <input type="file" id="file" accept=".txt,.md,.markdown">
      <button class="ghost" id="upload">Upload</button>
    </div>
    <div id="uploadStatus"></div>
  </section>
  <section class="settings">
    <h2>Configure in plain language</h2>
    <input id="nlbox" placeholder='e.g. "avoid slow models, use the bandit"'>
    <div class="row"><button class="ghost" id="nlgo">Apply</button></div>
    <div id="nlStatus"></div>
  </section>
</aside>
<main>
  <div id="ask">
    <textarea id="q" placeholder="Ask all models at once…"></textarea>
    <button id="go">Ask</button>
  </div>
  <div id="chat"></div>
  <div id="events" hidden></div>
</main>
</div>
<script>
const $ = id => document.getElementById(id);
let sessionID = "";

fetch("/api/models").then(r => r.json()).then(models => {
  $("model").innerHTML = models.map(m => '<option>'+m.name+'</option>').join("");
});
$("strategy").onchange = () => {
  $("modelWrap").style.display = $("strategy").value === "single" ? "" : "none";
};

async function refreshSessions() {
  const sessions = await fetch("/api/sessions").then(r => r.json());
  const box = $("sessions");
  box.innerHTML = "";
  for (const s of sessions) {
    const div = document.createElement("div");
    div.className = "sess" + (s.id === sessionID ? " active" : "");
    div.textContent = s.title || s.id;
    div.onclick = () => loadSession(s.id);
    box.appendChild(div);
  }
}
async function loadSession(id) {
  sessionID = id;
  const s = await fetch("/api/sessions/" + id).then(r => r.json());
  $("chat").innerHTML = "";
  for (const m of s.messages || []) {
    addMsg(m.role === "assistant" ? (m.model || "assistant") : "you", m.content);
  }
  refreshSessions();
}
$("newSess").onclick = () => { sessionID = ""; $("chat").innerHTML = ""; refreshSessions(); };
$("clearSess").onclick = async () => {
  await fetch("/api/sessions", {method: "DELETE"});
  sessionID = ""; $("chat").innerHTML = ""; refreshSessions();
};

$("upload").onclick = () => {
  const f = $("file").files[0];
  if (!f) return;
  const reader = new FileReader();
  reader.onload = async () => {
    const resp = await fetch("/api/upload", {
      method: "POST", headers: {"Content-Type": "application/json"},
      body: JSON.stringify({filename: f.name, content: reader.result}),
    });
    const out = await resp.json();
    $("uploadStatus").textContent = resp.ok
      ? f.name + " → " + out.chunks + " chunks indexed"
      : "upload failed: " + out.error.message;
    if (resp.ok) $("useRag").checked = true;
  };
  reader.readAsText(f);
};

$("nlgo").onclick = async () => {
  const resp = await fetch("/api/configure", {
    method: "POST", headers: {"Content-Type": "application/json"},
    body: JSON.stringify({instruction: $("nlbox").value}),
  });
  const out = await resp.json();
  $("nlStatus").textContent = resp.ok
    ? (out.understood ? out.changes.join("; ") : "no directives recognized")
    : "error: " + out.error.message;
  if (resp.ok && out.settings) {
    $("budget").value = out.settings.max_tokens;
    $("strategy").value = out.settings.strategy;
    $("strategy").onchange();
  }
};

function addMsg(who, text, model) {
  const d = document.createElement("div");
  d.className = "msg";
  d.innerHTML = '<div class="who"></div><div class="body"></div>';
  d.querySelector(".who").textContent = who;
  d.querySelector(".body").textContent = text;
  if (model) {
    const rate = document.createElement("span");
    rate.className = "rate";
    rate.innerHTML = ' <a href="#">👍</a> <a href="#">👎</a>';
    const [up, down] = rate.querySelectorAll("a");
    const send = r => e => {
      e.preventDefault();
      fetch("/api/feedback", {method: "POST", headers: {"Content-Type": "application/json"},
        body: JSON.stringify({model, rating: r})});
      rate.textContent = r > 0 ? " rated 👍" : " rated 👎";
    };
    up.onclick = send(1); down.onclick = send(-1);
    d.querySelector(".who").appendChild(rate);
  }
  $("chat").appendChild(d);
  return d.querySelector(".body");
}
function logEvent(cls, text) {
  const e = $("events");
  e.hidden = false;
  const line = document.createElement("div");
  line.className = cls;
  line.textContent = text;
  e.appendChild(line);
  e.scrollTop = e.scrollHeight;
}

$("go").onclick = async () => {
  const query = $("q").value.trim();
  if (!query) return;
  $("q").value = "";
  addMsg("you", query);
  $("events").innerHTML = "";
  const body = {
    query, session_id: sessionID,
    strategy: $("strategy").value,
    model: $("model").value,
    max_tokens: parseInt($("budget").value, 10) || 2048,
    use_rag: $("useRag").checked,
  };
  const resp = await fetch("/api/query", {
    method: "POST", headers: {"Content-Type": "application/json"},
    body: JSON.stringify(body),
  });
  sessionID = resp.headers.get("X-Session-ID") || sessionID;
  const reader = resp.body.getReader();
  const dec = new TextDecoder();
  let buf = "", answer = null;
  for (;;) {
    const {done, value} = await reader.read();
    if (done) break;
    buf += dec.decode(value, {stream: true});
    let idx;
    while ((idx = buf.indexOf("\n\n")) >= 0) {
      const frame = buf.slice(0, idx); buf = buf.slice(idx + 2);
      const ev = (frame.match(/^event: (.*)$/m) || [])[1];
      const data = (frame.match(/^data: (.*)$/m) || [])[1];
      if (!ev || !data) continue;
      const d = JSON.parse(data);
      if (ev === "chunk") logEvent("", d.model + " +" + d.tokens + "tok");
      else if (ev === "score") logEvent("score", d.model + " score " + d.score.toFixed(3));
      else if (ev === "prune") logEvent("prune", "pruned " + d.model + " (" + d.reason + ")");
      else if (ev === "winner") logEvent("winner", "winner " + d.model);
      else if (ev === "model_failed") logEvent("prune", "lost " + d.model + " after " + d.attempts + " attempts (" + d.reason + ")");
      else if (ev === "error") logEvent("prune", "error: " + d.error.message);
      else if (ev === "result") answer = d.result;
    }
  }
  if (answer) {
    addMsg(answer.model + " · " + answer.strategy + " · " + answer.tokens_used + " tokens",
      answer.answer, answer.model);
  }
  refreshSessions();
};
refreshSessions();
</script>
</body>
</html>
`
