package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"llmms/internal/core"
	"llmms/internal/embedding"
	"llmms/internal/qcache"
	"llmms/internal/session"
	"llmms/internal/telemetry"
	"llmms/internal/vectordb"
)

// Server-side persistence over the memory substrate. With Options.DataDir
// set, the server's state survives restarts:
//
//	<data-dir>/vectordb/     durable vector database (documents, sessions)
//	<data-dir>/qcache.json   answer-cache warm-start snapshot
//	<data-dir>/state.json    small scalar state (the RAG revision counter)
//
// The RAG chunk collection is recovered by the database itself (snapshot
// + WAL replay); the upload registry is rebuilt from chunk metadata.
// Sessions snapshot into a document of the durable "sessions" collection
// at Close. The answer cache reloads both tiers at boot, gated on a
// settings fingerprint so answers produced under different settings —
// or a different document set — are never served.

// Data directory layout.
const (
	vectordbSubdir = "vectordb"
	qcacheFile     = "qcache.json"
	stateFile      = "state.json"
)

// sessionStateDoc is the id of the "sessions" collection document
// holding the session.State snapshot. The zero-vector explicit embedding
// skips text encoding — the collection is a durable key-value slot here,
// never queried by similarity.
const sessionStateDoc = "state"

// feedbackStateDoc is the id of the "feedback" collection document
// holding the core.FeedbackState snapshot (same key-value-slot pattern
// as sessions), so learned answer-rating priors survive restarts.
const feedbackStateDoc = "state"

// routeClustersCollection is the durable collection behind the
// predictive-routing cluster index: one document per cluster, centroid
// as the embedding, reward stats in the JSON text.
const routeClustersCollection = "route_clusters"

// serverState is the scalar state state.json carries across restarts.
type serverState struct {
	// RagRev keeps cached-answer scopes ("rag:<rev>:...") comparable
	// across restarts: without it a restarted server would reset the
	// revision counter and collide fresh keys with pre-upload answers.
	RagRev int `json:"rag_rev"`
}

// openSubstrate builds the server's vector database: durable under
// Options.DataDir (recovered inside a vectordb.recover span), in-memory
// otherwise. Either way the llmms_vectordb_* series observe it.
func openSubstrate(opts Options, tel *telemetry.Telemetry, tracer *telemetry.Tracer, logger *slog.Logger) (*vectordb.DB, *vectordb.Collection, error) {
	vm := telemetry.RegisterVectorDBMetrics(tel.Registry)
	hooks := vectordb.Hooks{
		ObserveQuery:    vm.ObserveQuery,
		ObserveInsert:   vm.ObserveInsert,
		AddWALBytes:     vm.AddWALBytes,
		IncCompaction:   vm.IncCompaction,
		SetShardDocs:    vm.SetShardDocs,
		ObserveRecovery: vm.ObserveRecovery,
	}
	docsCfg := vectordb.CollectionConfig{Shards: opts.VectorDBShards}
	if opts.DataDir == "" {
		db := vectordb.New()
		db.SetHooks(hooks)
		col, err := db.CreateCollection("documents", docsCfg)
		if err != nil {
			return nil, nil, err
		}
		return db, col, nil
	}

	dir := filepath.Join(opts.DataDir, vectordbSubdir)
	start := time.Now()
	_, span := tracer.StartRoot(context.Background(), "vectordb.recover")
	span.SetAttr("dir", dir)
	db, err := vectordb.Open(dir, vectordb.OpenOptions{
		Sync:          opts.WALSync,
		DefaultShards: opts.VectorDBShards,
		Hooks:         hooks,
	})
	span.End(err)
	if err != nil {
		return nil, nil, err
	}
	col, err := db.GetOrCreateCollection("documents", docsCfg)
	if err != nil {
		return nil, nil, err
	}
	elapsed := time.Since(start)
	logger.Info("memory substrate recovered",
		"dir", dir,
		"collections", len(db.ListCollections()),
		"documents", col.Count(),
		"elapsed", elapsed)
	if span != nil {
		// A synthetic boot trace makes recovery inspectable at
		// /api/traces alongside query traces.
		tel.Traces.Put(telemetry.QueryTrace{
			ID:       telemetry.NewQueryID(),
			TraceID:  span.TraceID(),
			Strategy: "boot",
			Query:    "vectordb.recover",
			Start:    start,
			Elapsed:  elapsed,
			Outcome:  "ok",
			Spans:    span.Records(),
		})
	}
	return db, col, nil
}

// restoreState rebuilds the server's in-memory registries from the data
// directory during construction (before any request is served, so no
// locking is needed beyond what the substrate does itself).
func (s *Server) restoreState() error {
	if s.dataDir == "" {
		return nil
	}
	raw, err := os.ReadFile(filepath.Join(s.dataDir, stateFile))
	if err == nil {
		var st serverState
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("server: parse %s: %w", stateFile, err)
		}
		s.ragRev = st.RagRev
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("server: read %s: %w", stateFile, err)
	}

	// The upload registry is derived state: every recovered chunk names
	// its document and source file in metadata.
	for _, d := range s.docs.All() {
		docID, _ := d.Metadata["doc_id"].(string)
		if docID == "" {
			continue
		}
		info := s.docIDs[docID]
		if src, ok := d.Metadata["source"].(string); ok && info.Name == "" {
			info.Name = src
		}
		info.Chunks++
		s.docIDs[docID] = info
	}

	sessCol, err := s.db.GetOrCreateCollection("sessions", vectordb.CollectionConfig{Shards: 1})
	if err != nil {
		return err
	}
	s.sessCol = sessCol
	if docs := sessCol.Get(sessionStateDoc); len(docs) == 1 {
		var st session.State
		if err := json.Unmarshal([]byte(docs[0].Text), &st); err != nil {
			return fmt.Errorf("server: parse session state: %w", err)
		}
		n := s.sessions.Restore(st)
		s.logger.Info("sessions restored", "count", n)
	}

	fbCol, err := s.db.GetOrCreateCollection("feedback", vectordb.CollectionConfig{Shards: 1})
	if err != nil {
		return err
	}
	s.fbCol = fbCol
	if docs := fbCol.Get(feedbackStateDoc); len(docs) == 1 {
		var st core.FeedbackState
		if err := json.Unmarshal([]byte(docs[0].Text), &st); err != nil {
			return fmt.Errorf("server: parse feedback state: %w", err)
		}
		n := s.feedback.Restore(st)
		s.logger.Info("feedback priors restored", "models", n)
	}

	if s.predictor != nil {
		col, err := s.db.GetOrCreateCollection(routeClustersCollection, vectordb.CollectionConfig{Shards: 1})
		if err != nil {
			return err
		}
		s.predictor.SetPersistence(col, func(err error) {
			s.logger.Warn("route cluster persist failed", "err", err)
		})
		n, err := s.predictor.Load()
		if err != nil {
			return fmt.Errorf("server: restore route clusters: %w", err)
		}
		s.logger.Info("route clusters restored", "clusters", n)
	}

	if s.cache != nil {
		ws, err := qcache.ReadWarmState(filepath.Join(s.dataDir, qcacheFile))
		if err != nil {
			return err
		}
		n := s.cache.WarmStart(ws, s.cacheFingerprint(), decodeCachedAnswer)
		s.logger.Info("answer cache warmed", "entries", n, "snapshot_entries", len(ws.Entries))
	}
	return nil
}

// persistFeedback snapshots the feedback store into its durable slot.
// Ratings arrive at human cadence, so one synchronous upsert per rating
// is cheap and keeps the snapshot always current (Close needs no extra
// pass). No-op in memory-only mode.
func (s *Server) persistFeedback() {
	if s.fbCol == nil {
		return
	}
	data, err := json.Marshal(s.feedback.Snapshot())
	if err == nil {
		err = s.fbCol.Upsert(vectordb.Document{
			ID:        feedbackStateDoc,
			Text:      string(data),
			Embedding: embedding.Vector{0},
		})
	}
	if err != nil {
		s.logger.Warn("feedback persist failed", "err", err)
	}
}

// Close persists the server's state and releases the substrate: the
// session store snapshots into its durable collection, the answer cache
// writes its warm-start file, and the database cuts final snapshots and
// closes its WALs. Without a data directory it is a no-op. The server
// must not serve requests afterwards.
func (s *Server) Close() error {
	if s.dataDir == "" {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.sessCol != nil {
		data, err := json.Marshal(s.sessions.Snapshot())
		if err == nil {
			err = s.sessCol.Upsert(vectordb.Document{
				ID:        sessionStateDoc,
				Text:      string(data),
				Embedding: embedding.Vector{0},
			})
		}
		keep(err)
	}
	if s.cache != nil {
		ws := s.cache.Snapshot(s.cacheFingerprint(), encodeCachedAnswer)
		keep(ws.WriteFile(filepath.Join(s.dataDir, qcacheFile)))
	}
	data, err := json.Marshal(serverState{RagRev: s.ragRevision()})
	keep(err)
	if err == nil {
		keep(os.WriteFile(filepath.Join(s.dataDir, stateFile), data, 0o644))
	}
	keep(s.db.Close())
	return firstErr
}

// cacheFingerprint identifies the serving settings cached answers were
// produced under. A warm-start snapshot whose fingerprint differs —
// other strategy, model set, budget, weights, RAG parameters, or
// document-set revision — is discarded at boot, the restart analogue of
// the flush-on-settings-change rule.
func (s *Server) cacheFingerprint() string {
	s.mu.Lock()
	st := s.settings
	rev := s.ragRev
	s.mu.Unlock()
	return fmt.Sprintf("v1|%s|%s|%d|%g|%g|%d|rag%d",
		st.Strategy, strings.Join(st.EnabledModels, ","), st.MaxTokens,
		st.Alpha, st.Beta, st.RAGTopK, rev)
}

// cachedAnswerJSON is the persisted form of a cachedAnswer. Frames and
// core.Result are plain data, so the round trip is lossless.
type cachedAnswerJSON struct {
	Frames []qcache.Frame `json:"frames"`
	Result core.Result    `json:"result"`
}

func encodeCachedAnswer(v any) ([]byte, error) {
	ca, ok := v.(*cachedAnswer)
	if !ok {
		return nil, fmt.Errorf("server: unexpected cache value %T", v)
	}
	return json.Marshal(cachedAnswerJSON{Frames: ca.frames, Result: ca.result})
}

func decodeCachedAnswer(raw []byte) (any, error) {
	var cj cachedAnswerJSON
	if err := json.Unmarshal(raw, &cj); err != nil {
		return nil, err
	}
	return &cachedAnswer{frames: cj.Frames, result: cj.Result}, nil
}
