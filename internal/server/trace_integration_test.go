package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"llmms/internal/fleet"
	"llmms/internal/llm"
	"llmms/internal/modeld"
	"llmms/internal/telemetry"
	"llmms/internal/truthfulqa"
)

// TestQuerySpanTreeAcrossStack is the PR's acceptance scenario: one
// /api/query against a fleet-backed server whose replicas call a real
// modeld daemon over HTTP must produce a single trace whose span tree
// covers the serving layer (cache lookup, gate wait), orchestration
// (rounds, chunks), the fleet (replica calls), and the daemon side —
// all sharing one trace ID, retrievable from /api/traces/{id}.
func TestQuerySpanTreeAcrossStack(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	daemon := httptest.NewServer(modeld.NewServer(engine))
	defer daemon.Close()
	client := modeld.New(daemon.URL, modeld.WithHTTPClient(daemon.Client()))

	replicas := make(map[string][]fleet.Replica)
	for _, p := range engine.Profiles() {
		replicas[p.Name] = []fleet.Replica{
			{ID: "r0", Backend: client}, {ID: "r1", Backend: client},
		}
	}
	pool, err := fleet.New(fleet.Config{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	s, err := NewServer(Options{
		Engine: engine,
		Fleet:  pool,
		// Per-round generation keeps the daemon span graft synchronous:
		// each round's done line (carrying the daemon spans) is consumed
		// before the round returns, so the tree is complete when the
		// trace is stored.
		DisableStreaming: true,
		Serving:          ServingOptions{CacheTTL: time.Minute, MaxInflight: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	payload, _ := json.Marshal(QueryRequest{
		Query: truthfulqa.Seed()[0].Question, Strategy: "oua", MaxTokens: 256,
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d\n%s", resp.StatusCode, body.String())
	}
	queryID := resp.Header.Get("X-Query-ID")
	traceID := resp.Header.Get("X-Trace-ID")
	if queryID == "" || len(traceID) != 32 {
		t.Fatalf("headers missing: X-Query-ID=%q X-Trace-ID=%q", queryID, traceID)
	}

	var tr telemetry.QueryTrace
	tResp := doJSON(t, http.MethodGet, ts.URL+"/api/traces/"+queryID, nil, &tr)
	if tResp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status = %d", tResp.StatusCode)
	}
	if tr.TraceID != traceID {
		t.Fatalf("stored trace ID %q != X-Trace-ID %q", tr.TraceID, traceID)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}

	spansByName := map[string][]telemetry.SpanRecord{}
	for _, sp := range tr.Spans {
		if sp.TraceID != traceID {
			t.Errorf("span %s/%s trace = %q, want %q", sp.Service, sp.Name, sp.TraceID, traceID)
		}
		spansByName[sp.Name] = append(spansByName[sp.Name], sp)
	}
	for _, want := range []string{
		"query",                  // root
		"cache.lookup",           // serving layer
		"gate.wait",              // admission
		"orchestrate",            // orchestration umbrella
		"round",                  // per-round (observer-synthesized)
		"chunk",                  // per-candidate slice
		"fleet.call",             // replica pick
		"modeld.generate",        // client-side HTTP call
		"modeld.handle_generate", // daemon side, grafted over the wire
	} {
		if len(spansByName[want]) == 0 {
			t.Errorf("span tree missing %q; have %v", want, names(tr.Spans))
		}
	}
	for _, sp := range spansByName["fleet.call"] {
		if sp.Attrs["replica"] == "" {
			t.Errorf("fleet.call span missing replica attr: %+v", sp.Attrs)
		}
	}
	for _, sp := range spansByName["modeld.handle_generate"] {
		if sp.Service != "modeld" {
			t.Errorf("daemon span service = %q, want modeld", sp.Service)
		}
	}

	// A cache-hit replay of the same query must not disturb the stored
	// trace: it serves from the cache without orchestrating.
	resp2, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second query X-Cache = %q, want HIT", got)
	}
}

// TestTracingDisabled: with Options.DisableTracing the query path runs
// entirely on nil no-op spans — no X-Trace-ID header, no span tree in
// the stored trace, everything else unchanged.
func TestTracingDisabled(t *testing.T) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{Engine: engine, DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	payload, _ := json.Marshal(QueryRequest{
		Query: truthfulqa.Seed()[0].Question, Strategy: "oua", MaxTokens: 128,
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d\n%s", resp.StatusCode, body.String())
	}
	if got := resp.Header.Get("X-Trace-ID"); got != "" {
		t.Fatalf("X-Trace-ID = %q with tracing disabled", got)
	}
	queryID := resp.Header.Get("X-Query-ID")
	var tr telemetry.QueryTrace
	if r := doJSON(t, http.MethodGet, ts.URL+"/api/traces/"+queryID, nil, &tr); r.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status = %d", r.StatusCode)
	}
	if tr.TraceID != "" || len(tr.Spans) != 0 {
		t.Fatalf("disabled tracing still produced trace %q with %d spans", tr.TraceID, len(tr.Spans))
	}
}

func names(recs []telemetry.SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Service + "/" + r.Name
	}
	return out
}
