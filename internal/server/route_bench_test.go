package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llmms/internal/core"
	"llmms/internal/embedding"
	"llmms/internal/llm"
	"llmms/internal/metrics"
	"llmms/internal/truthfulqa"
)

// routeFamilies are the question categories whose templated queries
// embed into tight clusters AND whose simulated model skills genuinely
// diverge — the traffic shape predictive routing exploits. (A family
// whose models are near-tied, like Economics, correctly keeps falling
// back through the variance gate: there is no signal to route on.)
var routeFamilies = []string{"Geography", "Chemistry", "Arithmetic"}

// benchmarkRoute drives the full HTTP stack with family-clustered
// traffic over a fixed-latency backend and a MaxInflight gate, with
// predictive routing configured by the caller. It reports avg_width
// (mean fan-out width per query), qps, p50_ms, and quality_pct (the
// TruthfulQA truthfulness rate of the answers), so the routing win —
// narrower fan-out, more admitted concurrency — and its quality cost
// are measured together.
func benchmarkRoute(b *testing.B, routing RoutingOptions) {
	ds := truthfulqa.Generate(200, 1)
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(ds)})
	backend := core.NewFaultBackend(engine)
	fullWidth := len(DefaultSettings().EnabledModels)
	for _, m := range DefaultSettings().EnabledModels {
		backend.SetLatency(m, perModelLatency)
	}
	s, err := NewServer(Options{
		Engine:  engine,
		Backend: backend,
		Serving: ServingOptions{MaxInflight: 12},
		Routing: routing,
	})
	if err != nil {
		b.Fatal(err)
	}

	var work []truthfulqa.Item
	for _, it := range ds {
		for _, fam := range routeFamilies {
			if it.Category == fam {
				work = append(work, it)
			}
		}
	}
	if len(work) < 30 {
		b.Fatalf("only %d family questions in the dataset", len(work))
	}

	// post runs one query and returns the fan-out width the server
	// reported (X-Route; the configured full width when routing is off)
	// and the selected answer from the SSE result frame.
	post := func(q string) (int, string) {
		req := httptest.NewRequest("POST", "/api/query",
			strings.NewReader(fmt.Sprintf(`{"query":%q,"strategy":"mab"}`, q)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Errorf("query status = %d", w.Code)
			return 0, ""
		}
		width := fullWidth
		if h := w.Header().Get("X-Route"); h != "" {
			if _, ws, ok := strings.Cut(h, ":"); ok {
				if n, err := strconv.Atoi(ws); err == nil {
					width = n
				}
			}
		}
		answer := ""
		for _, frame := range strings.Split(w.Body.String(), "\n\n") {
			data, ok := strings.CutPrefix(frame, "event: result\ndata: ")
			if !ok {
				continue
			}
			var env struct {
				Result core.Result `json:"result"`
			}
			if json.Unmarshal([]byte(data), &env) == nil {
				answer = env.Result.Answer
			}
		}
		return width, answer
	}

	// Warmup trains the cluster index: the first passes run full-pool
	// fallbacks whose outcomes build each family's reward history toward
	// confidence. With routing off this is plain cache-less warmup, so
	// both variants measure the same steady state.
	for pass := 0; pass < 3; pass++ {
		for _, it := range work {
			post(it.Question)
		}
	}

	scorer := metrics.NewScorer(embedding.Default(), metrics.RewardWeights{})
	var seq atomic.Int64
	var widthSum, truthful, answered atomic.Int64
	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			it := work[int(seq.Add(1))%len(work)]
			t0 := time.Now()
			width, answer := post(it.Question)
			d := time.Since(t0)
			if width == 0 {
				return
			}
			widthSum.Add(int64(width))
			answered.Add(1)
			if scorer.Truthful(answer, it) {
				truthful.Add(1)
			}
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if b.Failed() || answered.Load() == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	b.ReportMetric(float64(widthSum.Load())/float64(answered.Load()), "avg_width")
	b.ReportMetric(float64(truthful.Load())/float64(answered.Load())*100, "quality_pct")
	b.ReportMetric(float64(lats[len(lats)/2])/float64(time.Millisecond), "p50_ms")
	b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "qps")
}

// BenchmarkServeRoute is the predictive-routing benchmark behind `make
// bench-route` (BENCH_route.json): the same family-clustered workload
// with routing off (every query fans out to the full pool) and on
// (confident clusters narrow to top-1 plus ε-probes). The acceptance
// bounds: avg_width down ≥40%, qps up ≥1.5x, quality_pct within 2
// points.
func BenchmarkServeRoute(b *testing.B) {
	b.Run("route_off", func(b *testing.B) { benchmarkRoute(b, RoutingOptions{}) })
	b.Run("route_on", func(b *testing.B) { benchmarkRoute(b, RoutingOptions{TopK: 1}) })
}
