package server

import (
	"net/http/httptest"
	"testing"
	"time"

	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// newDurableServer builds a server rooted at dataDir. Closing the
// returned httptest server does NOT call Server.Close — tests decide
// whether the shutdown is clean (Close) or a crash (nothing).
func newDurableServer(t *testing.T, dataDir string) (*Server, *httptest.Server) {
	t.Helper()
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	s, err := NewServer(Options{
		Engine:  engine,
		Serving: ServingOptions{CacheTTL: time.Minute},
		DataDir: dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestRestartRecoversStateAndServesWarmHit is the acceptance-criteria
// integration test: a restart with -data-dir set recovers every
// acknowledged document, restores sessions, and serves a qcache HIT on
// the first repeated query after boot.
func TestRestartRecoversStateAndServesWarmHit(t *testing.T) {
	dataDir := t.TempDir()
	s1, ts1 := newDurableServer(t, dataDir)

	var up struct {
		DocID  string `json:"doc_id"`
		Chunks int    `json:"chunks"`
	}
	resp := doJSON(t, "POST", ts1.URL+"/api/upload", map[string]any{
		"filename": "facts.txt",
		"content":  "The capital of France is Paris. Goldfish have months-long memories.",
	}, &up)
	if resp.StatusCode != 201 || up.Chunks == 0 {
		t.Fatalf("upload: status %d, %+v", resp.StatusCode, up)
	}

	q := map[string]any{"query": "What is the capital of France?"}
	if r, _ := postQuery(t, ts1.URL, q); r.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first query X-Cache = %q, want MISS", r.Header.Get("X-Cache"))
	}
	var sess struct {
		ID string `json:"id"`
	}
	doJSON(t, "POST", ts1.URL+"/api/sessions", map[string]any{"title": "durable session"}, &sess)
	if sess.ID == "" {
		t.Fatal("no session id")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dataDir)
	defer s2.Close()
	// First repeated query after boot: served from the warmed cache.
	r, body := postQuery(t, ts2.URL, q)
	if got := r.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("first repeat after restart X-Cache = %q, want HIT (body %s)", got, body)
	}
	// Every acknowledged RAG chunk is back and the registry rebuilt.
	if got := s2.docs.Count(); got != up.Chunks {
		t.Fatalf("recovered %d chunks, want %d", got, up.Chunks)
	}
	var docs []struct {
		ID     string `json:"id"`
		Name   string `json:"name"`
		Chunks int    `json:"chunks"`
	}
	doJSON(t, "GET", ts2.URL+"/api/documents", nil, &docs)
	if len(docs) != 1 || docs[0].ID != up.DocID || docs[0].Name != "facts.txt" || docs[0].Chunks != up.Chunks {
		t.Fatalf("document registry after restart: %+v", docs)
	}
	// Sessions survive too.
	if _, err := s2.sessions.Get(sess.ID); err != nil {
		t.Fatalf("session %s lost across restart: %v", sess.ID, err)
	}
	// A RAG-grounded query still works against recovered chunks.
	rr, body := postQuery(t, ts2.URL, map[string]any{
		"query": "Which city is the capital of France?", "use_rag": true,
	})
	if rr.StatusCode != 200 {
		t.Fatalf("RAG query after restart: %d %s", rr.StatusCode, body)
	}
}

// TestWarmStartRejectedAcrossSettingsChange pins the invalidation rule:
// a cache snapshot saved under one model set must not serve after a
// reboot with different settings.
func TestWarmStartRejectedAcrossSettingsChange(t *testing.T) {
	dataDir := t.TempDir()
	s1, ts1 := newDurableServer(t, dataDir)
	q := map[string]any{"query": "What is the capital of France?"}
	postQuery(t, ts1.URL, q)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	st := DefaultSettings()
	st.EnabledModels = st.EnabledModels[:2] // the fleet shrank across the restart
	s2, err := NewServer(Options{
		Engine:   engine,
		Serving:  ServingOptions{CacheTTL: time.Minute},
		Settings: st,
		DataDir:  dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.cache.Len(); got != 0 {
		t.Fatalf("cache warmed %d entries across a settings change, want 0", got)
	}
}

// TestCrashRestartKeepsAcknowledgedUploads simulates an unclean exit:
// no Close, so recovery runs purely from the WAL.
func TestCrashRestartKeepsAcknowledgedUploads(t *testing.T) {
	dataDir := t.TempDir()
	_, ts1 := newDurableServer(t, dataDir)
	var up struct {
		Chunks int `json:"chunks"`
	}
	doJSON(t, "POST", ts1.URL+"/api/upload", map[string]any{
		"filename": "notes.txt",
		"content":  "Lightning can strike the same place twice. Rayleigh scattering makes the sky blue.",
	}, &up)
	if up.Chunks == 0 {
		t.Fatal("upload produced no chunks")
	}
	// No Close: the first server just stops serving.
	s2, _ := newDurableServer(t, dataDir)
	defer s2.Close()
	if got := s2.docs.Count(); got != up.Chunks {
		t.Fatalf("recovered %d chunks after crash, want %d", got, up.Chunks)
	}
}
