package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// hotQueries is the repeated-traffic working set for the serve
// benchmark: the queries that real users keep asking.
var hotQueries = []string{
	"What is the capital of France?",
	"How do neural networks learn?",
	"What causes the seasons to change?",
	"Who wrote the theory of relativity?",
	"What is the speed of light in a vacuum?",
	"How does photosynthesis work?",
	"What is the largest planet in the solar system?",
	"Why is the sky blue during the day?",
}

// perModelLatency is the simulated transport+decode delay per generation
// call, roughly a small local model's chunk latency. It is what makes
// the uncached path expensive enough for cache effects to be measured in
// milliseconds rather than noise.
const perModelLatency = 2 * time.Millisecond

// benchmarkServe drives the full HTTP stack (s.ServeHTTP, SSE streaming
// and all) with a mixed workload: hotPct percent of requests come from
// the fixed hot set, the rest are unique. It reports p50_ms, p99_ms, and
// qps alongside the standard ns/op.
func benchmarkServe(b *testing.B, sv ServingOptions, hotPct int, mod ...func(*Options)) {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	backend := core.NewFaultBackend(engine)
	for _, m := range DefaultSettings().EnabledModels {
		backend.SetLatency(m, perModelLatency)
	}
	opts := Options{Engine: engine, Backend: backend, Serving: sv}
	for _, fn := range mod {
		fn(&opts)
	}
	s, err := NewServer(opts)
	if err != nil {
		b.Fatal(err)
	}

	post := func(q string) int {
		req := httptest.NewRequest("POST", "/api/query",
			strings.NewReader(fmt.Sprintf(`{"query":%q}`, q)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w.Code
	}
	// Warm the hot set so the measured loop sees the steady state (the
	// first-ever occurrence of each hot query is unavoidably a miss and
	// belongs to warmup, not to the workload under study).
	for _, q := range hotQueries {
		if code := post(q); code != http.StatusOK {
			b.Fatalf("warmup query status = %d", code)
		}
	}

	var seq atomic.Int64
	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			var q string
			if int(n%100) < hotPct {
				q = hotQueries[int(n)%len(hotQueries)]
			} else {
				q = fmt.Sprintf("unique question number %d with no repeat value", n)
			}
			t0 := time.Now()
			code := post(q)
			d := time.Since(t0)
			if code != http.StatusOK {
				b.Errorf("query status = %d", code)
				return
			}
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if b.Failed() || len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	b.ReportMetric(pct(0.50), "p50_ms")
	b.ReportMetric(pct(0.99), "p99_ms")
	b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "qps")
}

// BenchmarkServeMix is the serving-layer load benchmark behind `make
// bench-serve` (BENCH_serve.json). The cached-vs-uncached pair at the
// same repeat rate isolates the serving layer's contribution; the
// repeat-90 variant shows the ceiling as traffic concentrates.
func BenchmarkServeMix(b *testing.B) {
	caching := ServingOptions{CacheTTL: 10 * time.Minute, Coalesce: true}
	b.Run("uncached_repeat50", func(b *testing.B) { benchmarkServe(b, ServingOptions{}, 50) })
	b.Run("cached_repeat50", func(b *testing.B) { benchmarkServe(b, caching, 50) })
	b.Run("cached_repeat90", func(b *testing.B) { benchmarkServe(b, caching, 90) })
}

// BenchmarkServeTrace measures the span layer's overhead on the
// uncached full-orchestration path (`make bench-trace`,
// BENCH_trace.json): the same repeat-50 mix with tracing on (every
// query builds its span tree) versus off (Options.DisableTracing, all
// span calls hit the nil no-op path). The acceptance bound is a ≤5%
// p50 delta between the two.
func BenchmarkServeTrace(b *testing.B) {
	b.Run("trace_on", func(b *testing.B) { benchmarkServe(b, ServingOptions{}, 50) })
	b.Run("trace_off", func(b *testing.B) {
		benchmarkServe(b, ServingOptions{}, 50, func(o *Options) { o.DisableTracing = true })
	})
}
