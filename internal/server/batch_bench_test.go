package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// benchmarkServeBatch drives the full HTTP stack with a high-concurrency
// single-model mix — every request targets the same model, the
// worst-case fan-in for the decode clock — with the engine itself as the
// backend so the continuous batch scheduler (or its absence) is what's
// being measured. It reports p50_ms, p99_ms, and qps.
func benchmarkServeBatch(b *testing.B, disable bool) {
	engine := llm.NewEngine(llm.Options{
		Knowledge:       llm.NewKnowledge(truthfulqa.Seed()),
		LatencyScale:    0.05,
		DisableBatching: disable,
	})
	defer engine.Close()
	s, err := NewServer(Options{
		Engine: engine,
		Settings: Settings{
			Strategy: "single", Model: llm.ModelLlama3, MaxTokens: 24,
			Alpha: 0.7, Beta: 0.3,
			EnabledModels: []string{llm.ModelLlama3},
			RAGTopK:       1,
		},
	})
	if err != nil {
		b.Fatal(err)
	}

	post := func(q string) int {
		req := httptest.NewRequest("POST", "/api/query",
			strings.NewReader(fmt.Sprintf(`{"query":%q,"max_tokens":24}`, q)))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w.Code
	}
	if code := post("warmup question before measurement"); code != http.StatusOK {
		b.Fatalf("warmup status = %d", code)
	}

	// Hold at least 8 requests in flight on the one model regardless of
	// GOMAXPROCS, the acceptance scenario for the batch win.
	par := (8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(par)
	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N)
	var n int
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			n++
			q := fmt.Sprintf("unique question number %d with no repeat value", n)
			mu.Unlock()
			t0 := time.Now()
			code := post(q)
			d := time.Since(t0)
			if code != http.StatusOK {
				b.Errorf("query status = %d", code)
				return
			}
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if b.Failed() || len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx]) / float64(time.Millisecond)
	}
	b.ReportMetric(pct(0.50), "p50_ms")
	b.ReportMetric(pct(0.99), "p99_ms")
	b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "qps")
}

// BenchmarkServeBatch is the serving-layer half of `make bench-batch`
// (BENCH_batch.json): ≥8 concurrent single-model queries through the
// whole stack with the engine's continuous batching on versus off.
func BenchmarkServeBatch(b *testing.B) {
	b.Run("batch_on", func(b *testing.B) { benchmarkServeBatch(b, false) })
	b.Run("batch_off", func(b *testing.B) { benchmarkServeBatch(b, true) })
}
