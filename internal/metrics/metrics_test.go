package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"llmms/internal/truthfulqa"
)

var testItem = truthfulqa.Item{
	Category:   "Misconceptions",
	Question:   "What happens if you swallow chewing gum?",
	BestAnswer: "Nothing in particular happens; the gum passes through your digestive system and is excreted.",
	CorrectAnswers: []string{
		"The gum passes through your digestive system.",
	},
	IncorrectAnswers: []string{
		"The gum stays in your stomach for seven years.",
	},
}

func TestRewardOrdersTruthfulAboveFalse(t *testing.T) {
	s := NewScorer(nil, RewardWeights{})
	truthful := s.Reward("The gum simply passes through your digestive system and is excreted.", testItem)
	false_ := s.Reward("The gum stays in your stomach for seven years.", testItem)
	if truthful <= false_ {
		t.Fatalf("reward(truthful)=%v <= reward(false)=%v", truthful, false_)
	}
}

func TestRewardGoldenIsHigh(t *testing.T) {
	s := NewScorer(nil, RewardWeights{})
	r := s.Reward(testItem.BestAnswer, testItem)
	// Echoing the golden answer: sim(golden)=1, so reward >= w1 - w3.
	if r < 0.5 {
		t.Fatalf("golden self-reward = %v, want >= 0.5", r)
	}
}

func TestRewardBounds(t *testing.T) {
	s := NewScorer(nil, RewardWeights{})
	f := func(resp string) bool {
		r := s.Reward(resp, testItem)
		return r >= -0.5-1e-9 && r <= 1.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTruthful(t *testing.T) {
	s := NewScorer(nil, RewardWeights{})
	if !s.Truthful("It passes through the digestive system without harm.", testItem) {
		t.Fatal("truthful answer judged untruthful")
	}
	if s.Truthful("It stays in your stomach for seven years.", testItem) {
		t.Fatal("false answer judged truthful")
	}
}

func TestF1ExactMatch(t *testing.T) {
	if f := F1(testItem.BestAnswer, testItem); math.Abs(f-1) > 1e-9 {
		t.Fatalf("F1 of exact golden = %v, want 1", f)
	}
}

func TestF1PartialAndZero(t *testing.T) {
	partial := F1("The gum passes through.", testItem)
	if partial <= 0 || partial >= 1 {
		t.Fatalf("partial overlap F1 = %v, want in (0,1)", partial)
	}
	if f := F1("quantum chromodynamics lagrangian", testItem); f != 0 {
		t.Fatalf("disjoint F1 = %v, want 0", f)
	}
	if f := F1("", testItem); f != 0 {
		t.Fatalf("empty F1 = %v, want 0", f)
	}
}

func TestF1Bounds(t *testing.T) {
	f := func(resp string) bool {
		v := F1(resp, testItem)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestF1MaxOverReferences(t *testing.T) {
	// Matching a non-golden correct answer exactly must yield F1 = 1.
	if f := F1(testItem.CorrectAnswers[0], testItem); math.Abs(f-1) > 1e-9 {
		t.Fatalf("F1 vs secondary reference = %v, want 1", f)
	}
}

func TestF1Normalization(t *testing.T) {
	// Case and punctuation must not matter.
	a := F1("the GUM passes through your digestive system!!!", testItem)
	b := F1("The gum passes through your digestive system.", testItem)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("normalization broken: %v vs %v", a, b)
	}
}

func TestCustomWeights(t *testing.T) {
	heavy := NewScorer(nil, RewardWeights{Golden: 2, Correct: 0, Incorrect: 0})
	r := heavy.Reward(testItem.BestAnswer, testItem)
	if math.Abs(r-2) > 1e-6 {
		t.Fatalf("custom-weight reward = %v, want 2", r)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip values whose squares overflow float64; Summarize is
			// specified for finite, representable statistics.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Fatal("ratio by zero should be 0")
	}
}

func BenchmarkReward(b *testing.B) {
	s := NewScorer(nil, RewardWeights{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reward("The gum passes harmlessly through your digestive tract.", testItem)
	}
}

func BenchmarkF1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		F1("The gum passes harmlessly through your digestive tract.", testItem)
	}
}
