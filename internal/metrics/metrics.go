// Package metrics implements the evaluation metrics of the LLM-MS paper
// (§8.2): token-overlap F1 against the TruthfulQA reference answers,
// the embedding-based reward of Eq. 8.1, truthfulness accuracy, and the
// aggregation helpers the experiment harness reports with.
package metrics

import (
	"math"
	"sort"

	"llmms/internal/embedding"
	"llmms/internal/tokenizer"
	"llmms/internal/truthfulqa"
)

// RewardWeights are the coefficients of Eq. 8.1:
//
//	Reward = w1·sim(resp, golden) + w2·sim(resp, correct) − w3·sim(resp, incorrect)
type RewardWeights struct {
	Golden    float64 // w1
	Correct   float64 // w2
	Incorrect float64 // w3
}

// PaperWeights are the values the paper fixes: w1=1, w2=0.5, w3=0.5.
var PaperWeights = RewardWeights{Golden: 1, Correct: 0.5, Incorrect: 0.5}

// Scorer evaluates responses against TruthfulQA items. It caches nothing
// across calls and is safe for concurrent use.
type Scorer struct {
	enc     embedding.Encoder
	weights RewardWeights
}

// NewScorer builds a scorer with the given encoder (nil means the default
// encoder) and weights (zero value means PaperWeights).
func NewScorer(enc embedding.Encoder, w RewardWeights) *Scorer {
	if enc == nil {
		enc = embedding.Default()
	}
	if w == (RewardWeights{}) {
		w = PaperWeights
	}
	return &Scorer{enc: enc, weights: w}
}

// Reward computes Eq. 8.1 for a response against an item. The "correct"
// term is the maximum similarity over the non-golden correct references;
// the "incorrect" term is the maximum over the incorrect references.
// The result lies in [−w3, w1+w2] for unit-norm embeddings.
func (s *Scorer) Reward(response string, it truthfulqa.Item) float64 {
	rv := s.enc.Encode(response)
	simGolden := embedding.Cosine(rv, s.enc.Encode(it.BestAnswer))
	simCorrect := s.maxSim(rv, it.CorrectAnswers)
	simIncorrect := s.maxSim(rv, it.IncorrectAnswers)
	return s.weights.Golden*simGolden + s.weights.Correct*simCorrect - s.weights.Incorrect*simIncorrect
}

// Truthful reports whether the response sits closer to the correct
// reference set than to the incorrect one — the automatic accuracy
// criterion used alongside F1.
func (s *Scorer) Truthful(response string, it truthfulqa.Item) bool {
	rv := s.enc.Encode(response)
	best := s.maxSim(rv, it.AllCorrect())
	worst := s.maxSim(rv, it.IncorrectAnswers)
	return best > worst
}

func (s *Scorer) maxSim(rv embedding.Vector, refs []string) float64 {
	best := 0.0
	for _, r := range refs {
		if sim := embedding.Cosine(rv, s.enc.Encode(r)); sim > best {
			best = sim
		}
	}
	return best
}

// F1 returns the SQuAD-style token-overlap F1 between a response and an
// item's correct references: per-reference precision/recall on normalized
// word multisets, maximized over the references (golden included).
func F1(response string, it truthfulqa.Item) float64 {
	best := 0.0
	for _, ref := range it.AllCorrect() {
		if f := f1Pair(response, ref); f > best {
			best = f
		}
	}
	return best
}

// f1Pair computes token F1 between two strings.
func f1Pair(a, b string) float64 {
	wa, wb := tokenizer.Words(a), tokenizer.Words(b)
	if len(wa) == 0 || len(wb) == 0 {
		return 0
	}
	counts := map[string]int{}
	for _, w := range wb {
		counts[w]++
	}
	overlap := 0
	for _, w := range wa {
		if counts[w] > 0 {
			counts[w]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	precision := float64(overlap) / float64(len(wa))
	recall := float64(overlap) / float64(len(wb))
	return 2 * precision * recall / (precision + recall)
}

// Summary aggregates a series of per-query observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
}

// Summarize computes a Summary over xs. An empty input yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = sorted[len(sorted)/2]
	return s
}

// Ratio returns a/b, or 0 when b is 0 — the safe division used for the
// reward-to-tokens figures.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
