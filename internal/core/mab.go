package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"llmms/internal/llm"
)

// MAB runs the Multi-Armed Bandit algorithm (Algorithm 2). Each model is
// an arm with an unknown reward distribution. Tokens are not
// pre-allocated: every pull grants the next Config.MABChunk tokens to the
// arm with the highest UCB1 index
//
//	UCB_i = rewards_i/pulls_i + γ·sqrt(2·ln(totalPulls)/pulls_i)
//
// where the exploration coefficient decays with budget consumption:
// γ = Gamma0·(1 − usedTokens/λ_max). The pull's reward is
// α·cos(resp_i, prompt) + β·avgInterModelSim, so arms that answer
// relevantly and agree with their peers accumulate reward and attract
// further tokens, while persistently low-reward arms are naturally phased
// out. The loop terminates when the budget is spent or every arm has
// finished; the response of the arm with the highest mean reward wins.
//
// The UCB1 initialization round — every arm must be pulled once before
// any exploitation — fans its chunk calls out concurrently, collected in
// arm order; the adaptive pulls that follow are inherently sequential
// (each pull's arm choice depends on the previous pull's reward). An arm
// whose backend keeps failing past Config.Retry is retired with an
// EventModelFailed instead of aborting the query; the query errors only
// when every arm has failed (ErrAllModelsFailed).
func (o *Orchestrator) MAB(ctx context.Context, prompt string) (Result, error) {
	start := time.Now()
	cfg := o.cfg
	cands := make([]*candidate, len(cfg.Models))
	for i, m := range cfg.Models {
		cands[i] = o.newCandidate(m)
	}
	qv := cfg.Encoder.Encode(prompt)
	sc := o.newScorer(qv)
	o.emit(Event{Type: EventStart, Strategy: StrategyMAB})

	// Concurrent initialization: grant each arm its first chunk up
	// front. Per-arm takes are fixed before launching so the shared
	// budget split is deterministic; arms the budget cannot cover stay
	// unpulled (the loop's budget check stops before they would matter).
	used := 0
	totalPulls := 0
	// The budget is shared, so any single arm could in principle win all
	// of it — each session's stream is opened for the full λ_max and the
	// unclaimed tail is cancelled at close.
	o.attachSessions(cands, prompt)
	defer func() { o.closeAllSessions(StrategyMAB, totalPulls, cands, "query_end") }()
	var jobs []fanJob
	remaining := cfg.MaxTokens
	for _, c := range cands {
		take := cfg.MABChunk
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			break
		}
		remaining -= take
		jobs = append(jobs, fanJob{cand: c, take: take, hint: cfg.MaxTokens})
	}
	results := o.fanOut(ctx, prompt, jobs)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	for i, r := range results {
		arm := jobs[i].cand
		totalPulls++
		o.emit(Event{Type: EventRound, Strategy: StrategyMAB, Round: totalPulls, Model: arm.model,
			Elapsed: time.Since(start)})
		o.emitStreamEvents(StrategyMAB, totalPulls, arm, r)
		if r.err != nil {
			o.failCandidate(StrategyMAB, totalPulls, arm, r.attempts, r.err)
			continue
		}
		chunk := r.chunk
		arm.response += chunk.Text
		arm.cont = chunk.Context
		arm.tokens += chunk.EvalCount
		arm.pulls++
		arm.reason = chunk.DoneReason
		used += chunk.EvalCount
		switch chunk.DoneReason {
		case llm.DoneStop:
			arm.done = true
		case llm.DoneCancel:
			return Result{}, cancelErr(ctx)
		}
		if chunk.EvalCount > 0 {
			o.emit(Event{Type: EventChunk, Strategy: StrategyMAB, Round: totalPulls,
				Model: arm.model, Text: chunk.Text, Tokens: chunk.EvalCount,
				Elapsed: r.elapsed, Attempts: r.attempts, Prefetched: r.prefetched})
		}
	}
	o.emitRoundStall(StrategyMAB, totalPulls, results)
	if allFailed(cands) {
		return Result{}, allModelsFailedError(StrategyMAB, cands)
	}
	// Seed every initialized arm's reward with its first-chunk score.
	o.scorePass(sc, StrategyMAB, totalPulls, surviving(cands))
	for _, arm := range cands {
		if arm.failed || arm.pulls == 0 {
			continue
		}
		arm.rewardSum += arm.score
		o.emit(Event{Type: EventScore, Strategy: StrategyMAB, Round: totalPulls,
			Model: arm.model, Score: arm.score, QuerySim: arm.querySim, InterSim: arm.interSim})
	}

	for used < cfg.MaxTokens {
		gamma := cfg.Gamma0 * (1 - float64(used)/float64(cfg.MaxTokens))
		arm := o.selectArm(cands, gamma, totalPulls)
		if arm == nil {
			break // every arm has finished its answer or failed
		}
		take := cfg.MABChunk
		if rem := cfg.MaxTokens - used; take > rem {
			take = rem
		}
		totalPulls++
		o.emit(Event{Type: EventRound, Strategy: StrategyMAB, Round: totalPulls, Model: arm.model,
			Elapsed: time.Since(start)})

		r := o.pull(ctx, arm, prompt, take, cfg.MaxTokens-used)
		o.emitStreamEvents(StrategyMAB, totalPulls, arm, r)
		if r.err != nil {
			if ctx.Err() != nil {
				return Result{}, ctx.Err()
			}
			o.failCandidate(StrategyMAB, totalPulls, arm, r.attempts, r.err)
			if allFailed(cands) {
				return Result{}, allModelsFailedError(StrategyMAB, cands)
			}
			continue
		}
		chunk := r.chunk
		arm.response += chunk.Text
		arm.cont = chunk.Context
		arm.tokens += chunk.EvalCount
		arm.pulls++
		arm.reason = chunk.DoneReason
		used += chunk.EvalCount
		switch chunk.DoneReason {
		case llm.DoneStop:
			arm.done = true
		case llm.DoneCancel:
			return Result{}, cancelErr(ctx)
		}
		if chunk.EvalCount > 0 {
			o.emit(Event{Type: EventChunk, Strategy: StrategyMAB, Round: totalPulls,
				Model: arm.model, Text: chunk.Text, Tokens: chunk.EvalCount,
				Elapsed: r.elapsed, Attempts: r.attempts, Prefetched: r.prefetched})
		}
		if r.streamed {
			o.emit(Event{Type: EventRoundStall, Strategy: StrategyMAB, Round: totalPulls,
				Elapsed: r.elapsed})
		}

		// Reward the pull (line 9): relevance plus consensus, computed on
		// the arm's whole accumulated response so far.
		o.scorePass(sc, StrategyMAB, totalPulls, surviving(cands))
		arm.rewardSum += arm.score
		o.emit(Event{Type: EventScore, Strategy: StrategyMAB, Round: totalPulls,
			Model: arm.model, Score: arm.score, QuerySim: arm.querySim, InterSim: arm.interSim})

		// Termination condition (line 12): the budget loop header handles
		// exhaustion; stop early when every arm has completed its answer.
		if allDone(cands) {
			break
		}
		// A finished arm whose mean reward already dominates every
		// possible rival bound cannot be overtaken — further pulls would
		// only spend budget on losers.
		if leaderLocked(cands, gamma, totalPulls) {
			break
		}
	}

	final := surviving(cands)
	if len(final) == 0 {
		return Result{}, allModelsFailedError(StrategyMAB, cands)
	}
	o.scorePass(sc, StrategyMAB, totalPulls, final)
	best := argmaxFinalReward(final)
	elapsed := time.Since(start)
	o.emit(Event{Type: EventWinner, Strategy: StrategyMAB, Model: best.model,
		Text: best.response, Tokens: used, Score: best.score, Elapsed: elapsed,
		Reason: fmt.Sprintf("highest final reward %.3f over %d pulls", best.score, best.pulls)})
	return Result{
		Strategy: StrategyMAB, Answer: best.response, Model: best.model,
		TokensUsed: used, Rounds: totalPulls,
		Outcomes: outcomes(cands), Elapsed: elapsed,
	}, nil
}

// selectArm returns the unfinished, unfailed arm with the highest UCB1
// index. An arm that has never been pulled has an infinite index, so
// every arm is tried once before any exploitation (standard UCB1
// initialization). Returns nil when every arm has finished or failed.
func (o *Orchestrator) selectArm(cands []*candidate, gamma float64, totalPulls int) *candidate {
	var best *candidate
	bestIdx := math.Inf(-1)
	for _, c := range cands {
		if c.done || c.failed {
			continue
		}
		idx := ucb1(c, gamma, totalPulls)
		if best == nil || idx > bestIdx || (idx == bestIdx && c.model < best.model) {
			best, bestIdx = c, idx
		}
	}
	return best
}

// ucb1 computes the arm's index (Algorithm 2 line 4). Arms without any
// history — real or prior — get +Inf so they are explored first. A
// warm-start prior (Config.Priors) enters as priorPulls pseudo-pulls at
// the prior mean: the arm's effective mean starts at its historical
// value and washes out under real observations, and the shrunken
// exploration bonus reflects that the arm is not actually unknown.
func ucb1(c *candidate, gamma float64, totalPulls int) float64 {
	eff := float64(c.pulls) + c.priorPulls
	if eff == 0 {
		return math.Inf(1)
	}
	mean := (c.rewardSum + c.priorSum) / eff
	if totalPulls < 1 {
		totalPulls = 1
	}
	return mean + gamma*math.Sqrt(2*math.Log(float64(totalPulls))/eff)
}

func meanReward(c *candidate) float64 {
	eff := float64(c.pulls) + c.priorPulls
	if eff == 0 {
		return 0
	}
	return (c.rewardSum + c.priorSum) / eff
}

// allDone reports whether every arm has settled — finished its answer or
// been retired by failure.
func allDone(cands []*candidate) bool {
	for _, c := range cands {
		if !c.done && !c.failed {
			return false
		}
	}
	return true
}

// leaderLocked reports whether a finished arm's mean reward exceeds every
// unfinished arm's optimistic UCB bound — at that point continued
// exploration cannot change the winner, so stopping saves tokens.
func leaderLocked(cands []*candidate, gamma float64, totalPulls int) bool {
	var leader *candidate
	for _, c := range cands {
		if c.done && c.pulls > 0 && (leader == nil || meanReward(c) > meanReward(leader)) {
			leader = c
		}
	}
	if leader == nil {
		return false
	}
	lead := meanReward(leader)
	for _, c := range cands {
		if c.failed {
			continue
		}
		if c.done {
			if meanReward(c) > lead {
				return false
			}
			continue
		}
		if ucb1(c, gamma, totalPulls) >= lead {
			return false
		}
	}
	return true
}

// argmaxFinalReward selects the final winner (Algorithm 2 line 16): the
// arm whose response has the highest reward at termination, i.e. the
// current value of r = α·sim(query, response) + β·avgInterModelSim for
// each arm's accumulated response. Selecting on the final state rather
// than the pull history avoids two pathologies: a historical mean
// underrates arms that improved as their answer completed, and a
// cumulative sum overrates verbose arms that simply needed more pulls.
// Ties break on name for determinism.
func argmaxFinalReward(cands []*candidate) *candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if better(c, best) {
			best = c
		}
	}
	return best
}
