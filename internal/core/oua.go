package core

import (
	"context"
	"fmt"
	"time"

	"llmms/internal/llm"
)

// OUA runs the Overperformers–Underperformers Algorithm (Algorithm 1).
//
// The budget λ_max is split evenly: each of the N models may generate at
// most λ_max/N tokens, spread over Config.Rounds round-robin chunks. After
// every round each active model's accumulated partial response is scored
// α·cos(resp, prompt) + β·avgInterModelSim, then:
//
//   - if the best model leads the second-best score by more than
//     LeadMargin and has finished naturally ("stop"), its answer is
//     returned immediately (line 17);
//   - if the worst model trails the second-worst score by more than
//     PruneMargin, it is pruned and its unspent allowance is
//     redistributed over the surviving models (line 21) — "allocate them
//     to rest beyond each model's maximum allowance".
//
// The loop ends when every surviving model has finished or spent its
// allowance; the highest-scoring response wins (line 25).
//
// Each round's chunk calls fan out concurrently (one goroutine per
// active model, collected deterministically in model order), so a round
// costs the slowest model's latency rather than the sum. A model whose
// backend keeps failing past Config.Retry is pruned with an
// EventModelFailed and its allowance redistributed; the query errors
// only when every model has failed (ErrAllModelsFailed).
func (o *Orchestrator) OUA(ctx context.Context, prompt string) (Result, error) {
	start := time.Now()
	cfg := o.cfg
	n := len(cfg.Models)
	perModel := cfg.MaxTokens / n
	if perModel < 1 {
		perModel = 1
	}
	chunkSize := perModel / cfg.Rounds
	if chunkSize < 1 {
		chunkSize = 1
	}

	cands := make([]*candidate, n)
	for i, m := range cfg.Models {
		cands[i] = &candidate{model: m, remaining: perModel}
	}
	qv := cfg.Encoder.Encode(prompt)
	sc := o.newScorer(qv)
	o.emit(Event{Type: EventStart, Strategy: StrategyOUA})

	totalTokens := 0
	round := 0
	// Pipelined generation: with a streaming backend each candidate holds
	// one open generation session; the sweep closes whatever is still
	// open when the query ends, however it ends.
	o.attachSessions(cands, prompt)
	defer func() { o.closeAllSessions(StrategyOUA, round, cands, "query_end") }()
	for {
		round++
		o.emit(Event{Type: EventRound, Strategy: StrategyOUA, Round: round, Elapsed: time.Since(start)})

		// Generation pass: every active model with budget left and an
		// unfinished answer receives its next chunk. The calls run
		// concurrently — one goroutine per model — and the results are
		// collected in model-index order, so the round costs the slowest
		// model's latency while scoring, pruning, and event order stay
		// identical to the sequential pass.
		var jobs []fanJob
		for _, c := range cands {
			if c.pruned || c.done || c.remaining <= 0 {
				continue
			}
			take := chunkSize
			if take > c.remaining {
				take = c.remaining
			}
			jobs = append(jobs, fanJob{cand: c, take: take, hint: c.remaining})
		}
		results := o.fanOut(ctx, prompt, jobs)
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		progressed := false
		for i, r := range results {
			c := jobs[i].cand
			o.emitStreamEvents(StrategyOUA, round, c, r)
			if r.err != nil {
				o.failCandidate(StrategyOUA, round, c, r.attempts, r.err)
				redistribute(c, cands)
				continue
			}
			chunk := r.chunk
			c.response += chunk.Text
			c.cont = chunk.Context
			c.tokens += chunk.EvalCount
			c.remaining -= chunk.EvalCount
			c.pulls++
			c.reason = chunk.DoneReason
			totalTokens += chunk.EvalCount
			switch chunk.DoneReason {
			case llm.DoneStop:
				c.done = true
			case llm.DoneCancel:
				return Result{}, cancelErr(ctx)
			}
			if chunk.EvalCount > 0 {
				progressed = true
				o.emit(Event{Type: EventChunk, Strategy: StrategyOUA, Round: round,
					Model: c.model, Text: chunk.Text, Tokens: chunk.EvalCount,
					Elapsed: r.elapsed, Attempts: r.attempts, Prefetched: r.prefetched})
			}
		}
		o.emitRoundStall(StrategyOUA, round, results)
		if allFailed(cands) {
			return Result{}, allModelsFailedError(StrategyOUA, cands)
		}

		// Scoring pass over all unpruned candidates (finished models keep
		// competing on their final answers; line 10 iterates activeModels).
		active := activeCandidates(cands)
		if len(active) == 0 {
			break
		}
		o.scorePass(sc, StrategyOUA, round, active)
		for _, c := range active {
			o.emit(Event{Type: EventScore, Strategy: StrategyOUA, Round: round,
				Model: c.model, Score: c.score, QuerySim: c.querySim, InterSim: c.interSim})
		}

		// Early exit (line 17): a clear, finished leader wins outright.
		if len(active) >= 2 {
			best, second := topTwo(active)
			if best.done && best.score > second.score+cfg.LeadMargin {
				// The losers' streams are still generating; cancel them now
				// rather than at the deferred query_end sweep so the early
				// return actually releases backend capacity early.
				o.closeAllSessions(StrategyOUA, round, cands, "early_exit")
				return o.finishOUA(cands, best, totalTokens, round, true, start,
					fmt.Sprintf("early exit: leads by %.3f", best.score-second.score)), nil
			}
		}

		// Pruning (line 21): drop a clearly trailing model and hand its
		// unspent allowance to the survivors.
		if len(active) >= 2 {
			worst, secondWorst := bottomTwo(active)
			if secondWorst.score-worst.score > cfg.PruneMargin {
				worst.pruned = true
				o.closeSession(StrategyOUA, round, worst, "pruned")
				o.emit(Event{Type: EventPrune, Strategy: StrategyOUA, Round: round,
					Model: worst.model, Score: worst.score,
					Reason: fmt.Sprintf("trailing by %.3f", secondWorst.score-worst.score)})
				redistribute(worst, cands)
			}
		}

		// Termination: all survivors finished or out of budget, or this
		// round produced nothing (everyone done/spent).
		if !progressed || allSettled(cands) {
			break
		}
	}

	active := activeCandidates(cands)
	if len(active) == 0 {
		// Everything was pruned — fall back to the best surviving
		// (non-failed) candidate so the query still gets an answer.
		active = surviving(cands)
		if len(active) == 0 {
			return Result{}, allModelsFailedError(StrategyOUA, cands)
		}
		o.scorePass(sc, StrategyOUA, round, active)
	}
	best := argmaxScore(active)
	return o.finishOUA(cands, best, totalTokens, round, false, start, "budget settled"), nil
}

func (o *Orchestrator) finishOUA(cands []*candidate, best *candidate, tokens, rounds int, early bool, start time.Time, reason string) Result {
	elapsed := time.Since(start)
	o.emit(Event{Type: EventWinner, Strategy: StrategyOUA, Model: best.model,
		Text: best.response, Tokens: tokens, Score: best.score, Reason: reason, Elapsed: elapsed})
	return Result{
		Strategy: StrategyOUA, Answer: best.response, Model: best.model,
		TokensUsed: tokens, Rounds: rounds, EarlyExit: early,
		Outcomes: outcomes(cands), Elapsed: elapsed,
	}
}

// activeCandidates returns the unpruned candidates.
func activeCandidates(cands []*candidate) []*candidate {
	var out []*candidate
	for _, c := range cands {
		if !c.pruned {
			out = append(out, c)
		}
	}
	return out
}

// allSettled reports whether every unpruned candidate has either finished
// naturally or exhausted its allowance.
func allSettled(cands []*candidate) bool {
	for _, c := range cands {
		if c.pruned {
			continue
		}
		if !c.done && c.remaining > 0 {
			return false
		}
	}
	return true
}

// redistribute splits the pruned model's unspent allowance evenly across
// the surviving candidates; the remainder goes to the first survivors.
func redistribute(pruned *candidate, cands []*candidate) {
	freed := pruned.remaining
	pruned.remaining = 0
	var survivors []*candidate
	for _, c := range cands {
		if !c.pruned && !c.done {
			survivors = append(survivors, c)
		}
	}
	if freed <= 0 || len(survivors) == 0 {
		return
	}
	share := freed / len(survivors)
	extra := freed % len(survivors)
	for i, c := range survivors {
		c.remaining += share
		if i < extra {
			c.remaining++
		}
	}
}

// topTwo returns the best- and second-best-scoring candidates; callers
// guarantee len(cands) >= 2. Ties break on model name for determinism.
func topTwo(cands []*candidate) (best, second *candidate) {
	for _, c := range cands {
		switch {
		case best == nil || better(c, best):
			best, second = c, best
		case second == nil || better(c, second):
			second = c
		}
	}
	return best, second
}

// bottomTwo returns the worst- and second-worst-scoring candidates.
func bottomTwo(cands []*candidate) (worst, secondWorst *candidate) {
	for _, c := range cands {
		switch {
		case worst == nil || better(worst, c):
			worst, secondWorst = c, worst
		case secondWorst == nil || better(secondWorst, c):
			secondWorst = c
		}
	}
	return worst, secondWorst
}

func better(a, b *candidate) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.model < b.model
}

func argmaxScore(cands []*candidate) *candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		if better(c, best) {
			best = c
		}
	}
	return best
}
