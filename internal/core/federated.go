package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"llmms/internal/llm"
)

// MultiBackend realizes the paper's §9.5 "Federated and Secure Model
// Integration" proposal: candidate models may live on different
// inference daemons — an on-premise server for a sensitive model, a
// shared lab daemon for the open ones — and the orchestrator spans all
// of them transparently. Each model tag is registered against the
// backend that serves it; GenerateChunk dispatches by tag, so OUA, MAB,
// and Hybrid work unchanged across daemon boundaries.
//
// MultiBackend is safe for concurrent use once built; Register calls
// must finish before orchestration starts (the usual pattern: register
// everything, then construct the Orchestrator).
type MultiBackend struct {
	mu       sync.RWMutex
	routes   map[string]Backend
	fallback Backend
}

// NewMultiBackend returns an empty registry. The optional fallback
// serves any model without an explicit route (nil means unrouted models
// are an error).
func NewMultiBackend(fallback Backend) *MultiBackend {
	return &MultiBackend{routes: make(map[string]Backend), fallback: fallback}
}

// Register binds one model tag to the backend that serves it,
// replacing any previous binding.
func (m *MultiBackend) Register(model string, backend Backend) error {
	if model == "" {
		return errors.New("core: empty model tag")
	}
	if backend == nil {
		return errors.New("core: nil backend")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[model] = backend
	return nil
}

// Models returns the explicitly routed model tags, sorted.
func (m *MultiBackend) Models() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.routes))
	for tag := range m.routes {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// GenerateChunk implements Backend by dispatching on the model tag.
func (m *MultiBackend) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (llm.Chunk, error) {
	m.mu.RLock()
	backend, ok := m.routes[req.Model]
	if !ok {
		backend = m.fallback
	}
	m.mu.RUnlock()
	if backend == nil {
		return llm.Chunk{}, fmt.Errorf("core: no backend serves model %q", req.Model)
	}
	return backend.GenerateChunk(ctx, req)
}
