package core

import (
	"fmt"
	"strings"
	"testing"

	"llmms/internal/embedding"
)

// benchChunk is one round's worth of freshly generated answer text —
// roughly the size of an OUA chunk under the repository's scaled budget.
const benchChunk = "the great wall of china is not visible from low earth orbit " +
	"with the naked eye because its width is far below the resolving power " +
	"of human vision at that distance "

// benchScoreRounds is how many score-and-reallocate rounds one simulated
// query runs in BenchmarkScoreAll.
const benchScoreRounds = 8

// BenchmarkScoreAll measures the full per-query scoring cost: N
// candidates each receive a fresh chunk per round and the whole pool is
// re-scored (α·qSim + β·interSim) after every round, exactly as the OUA
// loop does. This is the hot path the scoring fast path optimizes; the
// pre-change numbers are recorded in BENCH_score.json history.
func BenchmarkScoreAll(b *testing.B) {
	enc := embedding.Default()
	qv := enc.Encode("is the great wall of china visible from space")
	const n = 4
	models := make([]string, n)
	for i := range models {
		models[i] = fmt.Sprintf("model-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := newScorer(enc, qv, 0.7, 0.3)
		cands := make([]*candidate, n)
		for j := range cands {
			cands[j] = &candidate{model: models[j]}
		}
		for r := 0; r < benchScoreRounds; r++ {
			for _, c := range cands {
				c.response += benchChunk
			}
			sc.pass(cands)
		}
	}
}

// BenchmarkScoreAllSkewed is BenchmarkScoreAll with only one candidate
// changing per round (the MAB pull pattern): the other candidates'
// embeddings and similarities are reusable, which the unchanged-candidate
// cache exploits.
func BenchmarkScoreAllSkewed(b *testing.B) {
	enc := embedding.Default()
	qv := enc.Encode("is the great wall of china visible from space")
	const n = 4
	seed := strings.Repeat(benchChunk, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := newScorer(enc, qv, 0.7, 0.3)
		cands := make([]*candidate, n)
		for j := range cands {
			cands[j] = &candidate{model: fmt.Sprintf("model-%d", j), response: seed}
		}
		for r := 0; r < benchScoreRounds; r++ {
			c := cands[r%n]
			c.response += benchChunk
			sc.pass(cands)
		}
	}
}
