package core

import "time"

// EventType labels an orchestration event.
type EventType string

// Orchestration event types, in the order a client typically sees them.
const (
	// EventStart opens a query; Model is set for single-model runs.
	EventStart EventType = "start"
	// EventRound opens an OUA round or a MAB pull; Round counts from 1.
	EventRound EventType = "round"
	// EventChunk reports freshly generated text for one model.
	EventChunk EventType = "chunk"
	// EventScore reports a model's updated combined score.
	EventScore EventType = "score"
	// EventPrune reports that OUA removed a trailing model.
	EventPrune EventType = "prune"
	// EventModelFailed reports that a model's backend kept erroring past
	// the per-chunk retry budget and was dropped from the query; the
	// survivors keep competing (graceful degradation). Reason carries the
	// final error, Attempts the tries spent.
	EventModelFailed EventType = "model_failed"
	// EventWinner closes the query with the selected answer.
	EventWinner EventType = "winner"
)

// Event is one step of an orchestrated query, delivered synchronously to
// Config.OnEvent. The application layer serializes events as SSE frames,
// which is how the paper's UI shows parallel model progress, scores, and
// token allocations in real time (§7.3 "Model Routing Transparency").
type Event struct {
	// Type discriminates the payload fields below.
	Type EventType `json:"type"`
	// Strategy is the policy emitting the event.
	Strategy Strategy `json:"strategy"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Round is the OUA round or MAB pull number (from 1), on round,
	// chunk, score, and prune events.
	Round int `json:"round,omitempty"`
	// Model is the model the event concerns, when applicable.
	Model string `json:"model,omitempty"`
	// Text is the new chunk text (chunk) or the final answer (winner).
	Text string `json:"text,omitempty"`
	// Tokens is the chunk token count (chunk) or total usage (winner).
	Tokens int `json:"tokens,omitempty"`
	// Score is the model's combined score on score and prune events.
	Score float64 `json:"score,omitempty"`
	// QuerySim and InterSim break the score into its two terms.
	QuerySim float64 `json:"query_sim,omitempty"`
	InterSim float64 `json:"inter_sim,omitempty"`
	// Reason explains prune, model_failed, and winner events ("pruned:
	// trailing by 0.12", "early exit", the final backend error, …).
	Reason string `json:"reason,omitempty"`
	// Attempts is how many generation tries were spent before a
	// model_failed event.
	Attempts int `json:"attempts,omitempty"`
}
