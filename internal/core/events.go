package core

import "time"

// EventType labels an orchestration event.
type EventType string

// Orchestration event types, in the order a client typically sees them.
const (
	// EventStart opens a query; Model is set for single-model runs.
	EventStart EventType = "start"
	// EventRound opens an OUA round or a MAB pull; Round counts from 1.
	EventRound EventType = "round"
	// EventChunk reports freshly generated text for one model.
	EventChunk EventType = "chunk"
	// EventScore reports a model's updated combined score.
	EventScore EventType = "score"
	// EventPrune reports that OUA removed a trailing model.
	EventPrune EventType = "prune"
	// EventModelFailed reports that a model's backend kept erroring past
	// the per-chunk retry budget and was dropped from the query; the
	// survivors keep competing (graceful degradation). Reason carries the
	// final error, Attempts the tries spent.
	EventModelFailed EventType = "model_failed"
	// EventScorePass reports one completed scoring pass (embed + score of
	// the active candidates); Elapsed is the pass's compute time. Feeds
	// the llmms_score_duration_seconds latency budget histogram.
	EventScorePass EventType = "score_pass"
	// EventStreamOpen reports that a model's persistent generation stream
	// was opened (once per session, lazily on the model's first drain).
	EventStreamOpen EventType = "stream_open"
	// EventStreamClose reports that a model's generation stream ended;
	// Reason says why (done, pruned, early_exit, failed, query_end,
	// error).
	EventStreamClose EventType = "stream_close"
	// EventStreamFallback reports that a model's stream broke mid-query
	// and the session degraded to per-round chunk calls, resuming from
	// the last good continuation state. Reason carries the stream error.
	EventStreamFallback EventType = "stream_fallback"
	// EventRoundStall reports how long a round's slowest streamed drain
	// waited on generation (Elapsed). A pipelined query stalls near zero
	// after round one because round r+1's tokens decode while round r is
	// being scored.
	EventRoundStall EventType = "round_stall"
	// EventWinner closes the query with the selected answer.
	EventWinner EventType = "winner"
)

// Event is one step of an orchestrated query, delivered synchronously to
// Config.OnEvent. The application layer serializes events as SSE frames,
// which is how the paper's UI shows parallel model progress, scores, and
// token allocations in real time (§7.3 "Model Routing Transparency").
type Event struct {
	// Type discriminates the payload fields below.
	Type EventType `json:"type"`
	// Strategy is the policy emitting the event.
	Strategy Strategy `json:"strategy"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Round is the OUA round or MAB pull number (from 1), on round,
	// chunk, score, and prune events.
	Round int `json:"round,omitempty"`
	// Model is the model the event concerns, when applicable.
	Model string `json:"model,omitempty"`
	// Text is the new chunk text (chunk) or the final answer (winner).
	Text string `json:"text,omitempty"`
	// Tokens is the chunk token count (chunk) or total usage (winner).
	Tokens int `json:"tokens,omitempty"`
	// Score is the model's combined score on score and prune events.
	Score float64 `json:"score,omitempty"`
	// QuerySim and InterSim break the score into its two terms.
	QuerySim float64 `json:"query_sim,omitempty"`
	InterSim float64 `json:"inter_sim,omitempty"`
	// Reason explains prune, model_failed, and winner events ("pruned:
	// trailing by 0.12", "early exit", the final backend error, …).
	Reason string `json:"reason,omitempty"`
	// Attempts is how many generation tries were spent: on chunk events,
	// the tries the chunk took (1 = no retries); on model_failed events,
	// the tries exhausted before the model was dropped.
	Attempts int `json:"attempts,omitempty"`
	// Prefetched is, on chunk events from a streamed drain, how many of
	// the chunk's tokens were already buffered client-side when the round
	// asked for them — the generation/scoring overlap made visible.
	Prefetched int `json:"prefetched,omitempty"`
	// Elapsed is a wall-clock duration (integer nanoseconds on the wire)
	// whose reference depends on Type: on chunk events it is the cost of
	// the generation call that produced the chunk, retries included; on
	// round events it is the offset from query start at which the round
	// opened; on score_pass events it is the scoring pass's compute time;
	// on winner events it is the total orchestration time. Zero (and
	// omitted) elsewhere.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
}

// Recorder is the measurement tap on the orchestration event stream.
// Where Config.OnEvent is the application-facing streaming hook (SSE
// frames to a browser), a Recorder feeds metrics and trace aggregation:
// the orchestrator invokes it synchronously for every emitted event,
// after OnEvent. Implementations must be fast, must not block, and must
// be safe for concurrent use — one Orchestrator may serve several
// queries at once, and each query emits its events independently.
// internal/telemetry.QueryObserver is the canonical implementation.
type Recorder interface {
	RecordEvent(Event)
}
