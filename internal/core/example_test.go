package core_test

import (
	"context"
	"fmt"

	"llmms/internal/core"
	"llmms/internal/llm"
	"llmms/internal/truthfulqa"
)

// ExampleOrchestrator_OUA shows the minimal end-to-end use of the
// orchestration API: build the engine, configure the candidate pool, run
// one query under the Overperformers–Underperformers Algorithm.
func ExampleOrchestrator_OUA() {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	cfg := core.DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 256
	orch, err := core.New(engine, cfg)
	if err != nil {
		panic(err)
	}
	res, err := orch.OUA(context.Background(), "Do antibiotics work against viruses?")
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", res.Strategy)
	fmt.Println("candidates:", len(res.Outcomes))
	fmt.Println("within budget:", res.TokensUsed <= cfg.MaxTokens)
	// Output:
	// strategy: oua
	// candidates: 3
	// within budget: true
}

// ExampleTrace shows the transparent orchestration log: record events
// during a query, then render the plain-English decision trail.
func ExampleTrace() {
	engine := llm.NewEngine(llm.Options{Knowledge: llm.NewKnowledge(truthfulqa.Seed())})
	trace := core.NewTrace()
	cfg := core.DefaultConfig(llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 128
	cfg.OnEvent = trace.Record
	orch, err := core.New(engine, cfg)
	if err != nil {
		panic(err)
	}
	if _, err := orch.MAB(context.Background(), "Are bats blind?"); err != nil {
		panic(err)
	}
	fmt.Println("events recorded:", len(trace.Events()) > 0)
	fmt.Println("log lines:", len(trace.Lines()) > 0)
	// Output:
	// events recorded: true
	// log lines: true
}

// ExampleFeedbackStore shows self-improving orchestration: ratings
// accumulate into priors that bias future model selection.
func ExampleFeedbackStore() {
	fb := core.NewFeedbackStore()
	fb.Rate(llm.ModelQwen2, 1)   // good answer
	fb.Rate(llm.ModelQwen2, 1)   // again
	fb.Rate(llm.ModelLlama3, -1) // bad answer
	fmt.Println("qwen prior positive:", fb.Prior(llm.ModelQwen2) > 0)
	fmt.Println("llama prior negative:", fb.Prior(llm.ModelLlama3) < 0)
	// Output:
	// qwen prior positive: true
	// llama prior negative: true
}
