package core

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

// Warm-start priors (Config.Priors): the routing layer hands the bandit
// per-arm historical means as pseudo-pulls, so exploitation starts from
// the cluster's history instead of from scratch. The safety properties
// pinned here: priors steer budget, never selection (the winner is
// always chosen on this query's final scores), and a config without
// priors is byte-for-byte the unrouted bandit.

func TestNewCandidatePriors(t *testing.T) {
	o := mustNew(t, threeModels(), Config{
		Models:      []string{"good", "okay"},
		Priors:      map[string]float64{"good": 0.8},
		PriorWeight: 3,
	})
	c := o.newCandidate("good")
	if math.Abs(c.priorSum-2.4) > 1e-9 || c.priorPulls != 3 {
		t.Fatalf("prior mass = (%v, %v), want (2.4, 3)", c.priorSum, c.priorPulls)
	}
	if c := o.newCandidate("okay"); c.priorSum != 0 || c.priorPulls != 0 {
		t.Fatalf("un-priored arm got mass: %+v", c)
	}
}

func TestUCB1WithPriors(t *testing.T) {
	// An unpulled arm without a prior is infinitely optimistic; with a
	// prior it starts at the prior mean plus the exploration bonus.
	bare := &candidate{}
	if !math.IsInf(ucb1(bare, 1, 1), 1) {
		t.Fatal("unpulled arm without prior must be +Inf")
	}
	warm := &candidate{priorSum: 1.8, priorPulls: 2}
	got := ucb1(warm, 1, 4)
	want := 0.9 + math.Sqrt(2*math.Log(4)/2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("warm ucb1 = %v, want %v", got, want)
	}
	if m := meanReward(warm); math.Abs(m-0.9) > 1e-9 {
		t.Fatalf("warm mean = %v, want prior mean 0.9", m)
	}
	// Real pulls blend with — and eventually wash out — the prior.
	warm.pulls, warm.rewardSum = 8, 8*0.3
	if m := meanReward(warm); math.Abs(m-(1.8+2.4)/10) > 1e-9 {
		t.Fatalf("blended mean = %v, want 0.42", m)
	}
}

func TestPriorsSteerBudget(t *testing.T) {
	long := strings.Repeat("The sky is blue on a clear day due to Rayleigh scattering of sunlight. ", 8)
	cfg := DefaultConfig("twin-a", "twin-b")
	cfg.MaxTokens = 256
	cfg.MABChunk = 8
	cfg.Priors = map[string]float64{"twin-a": 0.1, "twin-b": 0.9}
	cfg.PriorWeight = 4
	o := mustNew(t, newFakeBackend(map[string]string{"twin-a": long, "twin-b": long}), cfg)
	res, err := o.MAB(context.Background(), testPrompt)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Outcome("twin-a")
	b, _ := res.Outcome("twin-b")
	// The answers are identical, so only the priors break the symmetry.
	if b.Pulls <= a.Pulls {
		t.Fatalf("priors failed to steer budget: twin-a=%d twin-b=%d pulls", a.Pulls, b.Pulls)
	}
}

func TestPriorsNeverOverrideSelection(t *testing.T) {
	// A stale prior worships the off-topic model; the winner must still
	// be chosen on this query's actual final scores.
	cfg := DefaultConfig("good", "bad")
	cfg.Priors = map[string]float64{"bad": 0.99, "good": 0.01}
	o := mustNew(t, threeModels(), cfg)
	for _, strat := range []Strategy{StrategyMAB, StrategyHybrid} {
		res, err := o.Run(context.Background(), strat, testPrompt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Model != "good" {
			t.Fatalf("%s selected %q under a bad prior, want good", strat, res.Model)
		}
	}
}

func TestNoPriorsMatchesUnroutedRun(t *testing.T) {
	run := func(cfg Config, strat Strategy) Result {
		o := mustNew(t, threeModels(), cfg)
		res, err := o.Run(context.Background(), strat, testPrompt)
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0 // wall clock is the only nondeterministic field
		return res
	}
	for _, strat := range []Strategy{StrategyOUA, StrategyMAB, StrategyHybrid} {
		base := DefaultConfig("good", "okay", "bad")
		withNil := base
		withEmpty := base
		withEmpty.Priors = map[string]float64{}
		if got, want := run(withEmpty, strat), run(withNil, strat); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: empty priors diverged from nil priors:\n got %+v\nwant %+v", strat, got, want)
		}
	}
}

func TestOUAIgnoresPriors(t *testing.T) {
	run := func(priors map[string]float64) Result {
		cfg := DefaultConfig("good", "okay", "bad")
		cfg.Priors = priors
		o := mustNew(t, threeModels(), cfg)
		res, err := o.OUA(context.Background(), testPrompt)
		if err != nil {
			t.Fatal(err)
		}
		res.Elapsed = 0
		return res
	}
	with := run(map[string]float64{"bad": 0.99})
	without := run(nil)
	if !reflect.DeepEqual(with, without) {
		t.Fatalf("OUA must ignore priors:\n with %+v\nwithout %+v", with, without)
	}
}

func TestFeedbackSnapshotRestore(t *testing.T) {
	f := NewFeedbackStore()
	f.Rate("good", 1)
	f.Rate("good", 0.5)
	f.Rate("bad", -1)
	f.Rate("", 1) // dropped

	st := f.Snapshot()
	st.Ratings["ghost"] = RatingSnapshot{} // zero weight: skipped on restore

	g := NewFeedbackStore()
	if n := g.Restore(st); n != 2 {
		t.Fatalf("restored %d models, want 2", n)
	}
	for _, m := range []string{"good", "bad"} {
		if got, want := g.Prior(m), f.Prior(m); got != want {
			t.Fatalf("prior[%s] = %v after restore, want %v", m, got, want)
		}
	}
	if !reflect.DeepEqual(g.Ratings(), map[string][2]float64{
		"good": f.Ratings()["good"], "bad": f.Ratings()["bad"],
	}) {
		t.Fatalf("ratings diverged after restore: %v vs %v", g.Ratings(), f.Ratings())
	}
}
