package core

import (
	"context"
	"strings"
	"testing"
)

func TestFeedbackPrior(t *testing.T) {
	f := NewFeedbackStore()
	if p := f.Prior("unrated"); p != 0 {
		t.Fatalf("unrated prior = %f", p)
	}
	f.Rate("good", 1)
	f.Rate("good", 1)
	f.Rate("bad", -1)
	if p := f.Prior("good"); p <= 0 || p > f.MaxBonus {
		t.Fatalf("positive prior = %f", p)
	}
	if p := f.Prior("bad"); p >= 0 || p < -f.MaxBonus {
		t.Fatalf("negative prior = %f", p)
	}
	// Ratings are clamped.
	f.Rate("extreme", 100)
	if p := f.Prior("extreme"); p > f.MaxBonus+1e-12 {
		t.Fatalf("clamping failed: %f", p)
	}
	// Empty model names are ignored.
	f.Rate("", 1)
	if _, ok := f.Ratings()[""]; ok {
		t.Fatal("empty model stored")
	}
}

func TestFeedbackDecayAdapts(t *testing.T) {
	f := NewFeedbackStore()
	// A long bad history followed by consistent good feedback must flip
	// the prior positive — the "keeps adapting" property.
	for i := 0; i < 10; i++ {
		f.Rate("model", -1)
	}
	if f.Prior("model") >= 0 {
		t.Fatal("prior should be negative after bad history")
	}
	for i := 0; i < 30; i++ {
		f.Rate("model", 1)
	}
	if f.Prior("model") <= 0 {
		t.Fatalf("prior did not recover: %f", f.Prior("model"))
	}
}

func TestFeedbackRatingsAndString(t *testing.T) {
	f := NewFeedbackStore()
	f.Rate("a", 1)
	f.Rate("a", 0.5)
	f.Rate("b", -1)
	r := f.Ratings()
	if r["a"][0] != 2 || r["b"][0] != 1 {
		t.Fatalf("ratings = %v", r)
	}
	s := f.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatalf("leaderboard = %q", s)
	}
	// Best model first.
	if strings.Index(s, "a") > strings.Index(s, "b") {
		t.Fatalf("leaderboard order wrong:\n%s", s)
	}
}

// TestFeedbackBiasesSelection: two models give equally plausible answers;
// consistent negative feedback on one must tip OUA's selection to the
// other.
func TestFeedbackBiasesSelection(t *testing.T) {
	b := newFakeBackend(map[string]string{
		"alpha": "The sky is blue on a clear day.",
		"beta":  "The sky is blue on a clear day.",
	})
	fb := NewFeedbackStore()
	cfg := DefaultConfig("alpha", "beta")
	cfg.Feedback = fb
	o := mustNew(t, b, cfg)

	// Identical answers: the name tiebreak picks "alpha".
	res, err := o.OUA(context.Background(), testPrompt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "alpha" {
		t.Fatalf("baseline winner = %s", res.Model)
	}
	// The user hates alpha's answers.
	for i := 0; i < 5; i++ {
		fb.Rate("alpha", -1)
		fb.Rate("beta", 1)
	}
	res, err = o.OUA(context.Background(), testPrompt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "beta" {
		t.Fatalf("feedback did not flip the winner: %s", res.Model)
	}
}

// TestFeedbackCannotOverrideQuality: the bonus is capped, so feedback
// must not make an off-topic model beat a clearly better answer.
func TestFeedbackCannotOverrideQuality(t *testing.T) {
	b := threeModels()
	fb := NewFeedbackStore()
	cfg := DefaultConfig("good", "bad")
	cfg.Feedback = fb
	o := mustNew(t, b, cfg)
	for i := 0; i < 20; i++ {
		fb.Rate("bad", 1)
		fb.Rate("good", -1)
	}
	res, err := o.OUA(context.Background(), testPrompt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == "bad" {
		t.Fatalf("capped feedback overrode a clear quality gap: %+v", res.Outcomes)
	}
}
