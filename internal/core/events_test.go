package core

import (
	"encoding/json"
	"testing"
	"time"
)

// TestEventElapsedJSON pins the wire shape of Event.Elapsed: integer
// nanoseconds under the key elapsed_ns, omitted entirely when zero so
// pre-existing SSE consumers see unchanged frames for events that carry
// no duration.
func TestEventElapsedJSON(t *testing.T) {
	with, err := json.Marshal(Event{Type: EventChunk, Elapsed: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(with, &m); err != nil {
		t.Fatal(err)
	}
	if got, ok := m["elapsed_ns"].(float64); !ok || got != 1.5e9 {
		t.Fatalf("elapsed_ns = %v (present=%v), want 1.5e9", m["elapsed_ns"], ok)
	}

	without, err := json.Marshal(Event{Type: EventScore})
	if err != nil {
		t.Fatal(err)
	}
	var m2 map[string]any
	if err := json.Unmarshal(without, &m2); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2["elapsed_ns"]; ok {
		t.Fatalf("zero Elapsed not omitted: %s", without)
	}
}

// TestEventJSONKeysStable pins the full key set of a maximal event —
// SSE consumers and the telemetry collector both key off these names,
// so a rename is a breaking protocol change that must fail a test.
func TestEventJSONKeysStable(t *testing.T) {
	ev := Event{
		Type: EventChunk, Strategy: StrategyOUA, Time: time.Now(),
		Round: 2, Model: "llama3", Text: "hi", Tokens: 3,
		Score: 0.5, QuerySim: 0.6, InterSim: 0.4,
		Reason: "r", Attempts: 2, Elapsed: time.Second,
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"type", "strategy", "time", "round", "model", "text", "tokens",
		"score", "query_sim", "inter_sim", "reason", "attempts", "elapsed_ns",
	}
	if len(m) != len(want) {
		t.Errorf("event serialized %d keys, want %d: %s", len(m), len(want), data)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Errorf("missing key %q in %s", k, data)
		}
	}
}
