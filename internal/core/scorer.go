package core

import (
	"time"

	"llmms/internal/embedding"
)

// This file implements the scoring fast path (DESIGN.md "Scoring fast
// path"). A scorer owns one query's scoring state and makes the
// per-round score-and-reallocate pass — the algorithmic heart of both
// OUA and MAB — cost O(new tokens) + O(N·dim) instead of the naive
// O(total response tokens) + O(N²·dim):
//
//   - Embeddings are incremental: each candidate keeps an
//     embedding.Accumulator, extended with only the text generated since
//     the previous pass (boundary seams handled inside the accumulator),
//     and materialized into the candidate's reused vector storage.
//     Encoders that are not Incremental fall back to full re-encoding.
//
//   - The inter-model agreement term uses the sum-vector identity: with
//     S = Σ members' embeddings, the average similarity of candidate c
//     to the others is (⟨c,S⟩ − ⟨c,c⟩)/(n−1), because ⟨c,S⟩ counts c's
//     similarity to itself once. One O(dim) dot per candidate replaces
//     the O(N²) pairwise loop, and S is maintained incrementally as
//     candidates re-embed, join, or leave the scoring set (prunes,
//     failures, subset changes between strategy phases).
//
//   - Similarities are cached: a candidate whose embedding did not
//     change keeps its query similarity, and also its inter-model
//     similarity when the membership sum is untouched, so a MAB pull
//     re-scores one arm in O(dim), not O(N·dim).
//
// Scoring is numerically score-identical to the pairwise reference
// (property-tested to 1e-9 in scorer_test.go); encoder output is unit
// (or zero) by contract, so similarities use embedding.CosineUnit and
// never recompute norms.
type scorer struct {
	enc         embedding.Encoder
	qv          embedding.Vector
	alpha, beta float64

	// sum is S = Σ members' embeddings, kept in float64 so repeated
	// add/subtract cycles do not accumulate float32 rounding.
	sum []float64
	// members is the current scoring set: candidates whose embeddings
	// are folded into sum. Each pass syncs it to the passed slice.
	members map[*candidate]bool
	// inPass is reusable scratch for the membership sync.
	inPass map[*candidate]bool
}

func newScorer(enc embedding.Encoder, qv embedding.Vector, alpha, beta float64) *scorer {
	return &scorer{
		enc: enc, qv: qv, alpha: alpha, beta: beta,
		members: make(map[*candidate]bool),
		inPass:  make(map[*candidate]bool),
	}
}

// pass brings every candidate's querySim, interSim, and score up to date
// for the scoring set cands. Candidates with empty responses score zero;
// candidates outside cands (pruned, failed, phase-filtered) are removed
// from the agreement sum so the surviving pool only agrees with itself.
func (s *scorer) pass(cands []*candidate) {
	sumChanged := s.syncMembers(cands)
	for _, c := range cands {
		if s.refresh(c) {
			sumChanged = true
		}
	}
	n := len(s.members)
	for _, c := range cands {
		if c.emb == nil {
			c.querySim, c.interSim, c.score = 0, 0, 0
			continue
		}
		if !c.simsValid {
			c.querySim = embedding.CosineUnit(s.qv, c.emb)
		}
		if sumChanged || !c.simsValid {
			if n >= 2 {
				c.interSim = (dotSum(c.emb, s.sum) - c.selfDot) / float64(n-1)
			} else {
				c.interSim = 0
			}
		}
		c.simsValid = true
		c.score = s.alpha*c.querySim + s.beta*c.interSim
	}
}

// syncMembers removes candidates that left the scoring set from the
// agreement sum and reports whether the sum changed. Additions happen in
// refresh, once the candidate has an embedding.
func (s *scorer) syncMembers(cands []*candidate) bool {
	if len(s.members) == 0 {
		return false
	}
	clear(s.inPass)
	for _, c := range cands {
		s.inPass[c] = true
	}
	changed := false
	for m := range s.members {
		if !s.inPass[m] {
			s.subVec(m.emb)
			delete(s.members, m)
			changed = true
		}
	}
	return changed
}

// refresh brings one candidate's embedding up to date with its response
// and keeps the agreement sum consistent, reporting whether the sum
// changed. The embedding vector storage is reused across rounds: the old
// contribution is subtracted from the sum before the in-place overwrite.
func (s *scorer) refresh(c *candidate) bool {
	if c.response == "" {
		return false
	}
	if c.emb != nil && c.encoded == len(c.response) {
		// Unchanged since the last pass; join the sum if newly in set.
		if !s.members[c] {
			s.addVec(c.emb)
			s.members[c] = true
			return true
		}
		return false
	}
	wasMember := s.members[c]
	if wasMember {
		s.subVec(c.emb)
	}
	if c.acc == nil {
		c.acc, _ = embedding.NewAccumulator(s.enc)
	}
	if c.acc != nil {
		c.acc.Add(c.response[c.encoded:])
		c.emb = c.acc.VectorInto(c.emb)
	} else {
		// Non-incremental encoder: full re-encode of the accumulated
		// response (the pre-fast-path behavior).
		c.emb = s.enc.Encode(c.response)
	}
	c.encoded = len(c.response)
	c.selfDot = embedding.Dot(c.emb, c.emb)
	c.simsValid = false
	s.addVec(c.emb)
	s.members[c] = true
	return true
}

func (s *scorer) addVec(v embedding.Vector) {
	if s.sum == nil {
		s.sum = make([]float64, len(v))
	}
	for i, x := range v {
		s.sum[i] += float64(x)
	}
}

func (s *scorer) subVec(v embedding.Vector) {
	for i, x := range v {
		if i < len(s.sum) {
			s.sum[i] -= float64(x)
		}
	}
}

// dotSum is the mixed-precision dot product of a float32 embedding with
// the float64 agreement sum.
func dotSum(v embedding.Vector, sum []float64) float64 {
	n := len(v)
	if len(sum) < n {
		n = len(sum)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += float64(v[i]) * sum[i]
	}
	return s
}

// newScorer builds the per-query scorer for the orchestrator's encoder
// and score weights.
func (o *Orchestrator) newScorer(qv embedding.Vector) *scorer {
	return newScorer(o.cfg.Encoder, qv, o.cfg.Alpha, o.cfg.Beta)
}

// scorePass runs one timed scoring pass over cands, applies feedback
// priors, and announces the pass (EventScorePass carries the pass's
// compute time, feeding the llmms_score_duration_seconds histogram).
func (o *Orchestrator) scorePass(sc *scorer, strategy Strategy, round int, cands []*candidate) {
	start := time.Now()
	sc.pass(cands)
	if o.cfg.Feedback != nil {
		for _, c := range cands {
			if c.emb != nil {
				c.score += o.cfg.Feedback.Prior(c.model)
			}
		}
	}
	o.emit(Event{Type: EventScorePass, Strategy: strategy, Round: round, Elapsed: time.Since(start)})
}
