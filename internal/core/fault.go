package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"llmms/internal/llm"
)

// FaultBackend wraps an inner Backend with scripted fault injection for
// tests and benchmarks: per-model added latency (to prove fan-out rounds
// cost the max, not the sum), errors on specific call numbers (to
// exercise retry recovery and exhaustion), and permanent failures (to
// exercise prune-on-failure and the everyone-failed path). The zero
// schedule is a transparent pass-through.
//
// FaultBackend is safe for concurrent use, like any orchestrator
// backend.
type FaultBackend struct {
	inner Backend

	mu      sync.Mutex
	calls   map[string]int
	latency map[string]time.Duration
	failOn  map[string]map[int]error
	failAll map[string]error

	// Streaming schedule. Streams are opt-in (EnableStreams) so existing
	// fault schedules keyed on GenerateChunk call numbers keep meaning
	// what they say: an un-enabled FaultBackend reports
	// llm.ErrStreamUnsupported and the orchestrator quietly stays on the
	// per-round path.
	streamsOn    bool
	openFail     map[string]error
	breakAfter   map[string]int
	streamOpens  map[string]int
	streamCloses map[string]int
}

// NewFaultBackend wraps inner with an empty fault schedule.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{
		inner:        inner,
		calls:        make(map[string]int),
		latency:      make(map[string]time.Duration),
		failOn:       make(map[string]map[int]error),
		failAll:      make(map[string]error),
		openFail:     make(map[string]error),
		breakAfter:   make(map[string]int),
		streamOpens:  make(map[string]int),
		streamCloses: make(map[string]int),
	}
}

// SetLatency adds d of simulated transport delay to every call for
// model. The delay respects context cancellation.
func (f *FaultBackend) SetLatency(model string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency[model] = d
}

// FailCall makes the nth GenerateChunk call (1-based, counted per model)
// for model return err instead of reaching the inner backend.
func (f *FaultBackend) FailCall(model string, nth int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failOn[model] == nil {
		f.failOn[model] = make(map[int]error)
	}
	f.failOn[model][nth] = err
}

// FailAlways makes every call for model return err — a permanently dead
// daemon.
func (f *FaultBackend) FailAlways(model string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAll[model] = err
}

// Calls reports how many GenerateChunk calls model has received,
// including the ones that were failed.
func (f *FaultBackend) Calls(model string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[model]
}

// TotalCalls reports the GenerateChunk calls across all models.
func (f *FaultBackend) TotalCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c
	}
	return n
}

// EnableStreams makes the backend advertise persistent generation
// streams, delegating opens to the inner backend (which must itself be
// an llm.StreamingBackend). Off by default so chunk-count fault
// schedules keep their meaning.
func (f *FaultBackend) EnableStreams() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.streamsOn = true
}

// FailStreamOpen makes every OpenStream for model return err — a
// backend that cannot hold sessions but still serves per-round chunks.
func (f *FaultBackend) FailStreamOpen(model string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.openFail[model] = err
}

// BreakStreamAfter makes model's streams fail after delivering n tokens:
// the first Next calls drain normally up to the break point (partial
// slices included), then the stream errors — the mid-answer connection
// drop the fallback ladder must survive without losing text.
func (f *FaultBackend) BreakStreamAfter(model string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.breakAfter[model] = n
}

// StreamOpens reports how many streams model has opened successfully.
func (f *FaultBackend) StreamOpens(model string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.streamOpens[model]
}

// StreamCloses reports how many of model's streams have been closed —
// the leak check: after a query, StreamOpens == StreamCloses for every
// model.
func (f *FaultBackend) StreamCloses(model string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.streamCloses[model]
}

// OpenStream implements llm.StreamingBackend with fault injection. When
// streams are not enabled (or the inner backend cannot stream) it
// reports llm.ErrStreamUnsupported, which the orchestrator treats as a
// quiet routing signal back to GenerateChunk.
func (f *FaultBackend) OpenStream(ctx context.Context, req llm.ChunkRequest) (llm.ChunkStream, error) {
	f.mu.Lock()
	on := f.streamsOn
	failErr := f.openFail[req.Model]
	d := f.latency[req.Model]
	brk, hasBrk := f.breakAfter[req.Model]
	f.mu.Unlock()

	if !on {
		return nil, llm.ErrStreamUnsupported
	}
	sb, ok := f.inner.(llm.StreamingBackend)
	if !ok {
		return nil, llm.ErrStreamUnsupported
	}
	if d > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	inner, err := sb.OpenStream(ctx, req)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.streamOpens[req.Model]++
	f.mu.Unlock()
	s := &faultStream{inner: inner, f: f, model: req.Model}
	if hasBrk {
		s.breakAfter = brk
		s.breaks = true
	}
	return s, nil
}

// errStreamBroken is the scripted mid-stream failure BreakStreamAfter
// injects.
var errStreamBroken = errors.New("core: fault-injected stream break")

// faultStream wraps an inner stream with the break schedule and the
// open/close accounting.
type faultStream struct {
	inner      llm.ChunkStream
	f          *FaultBackend
	model      string
	delivered  int
	breakAfter int
	breaks     bool
	closeOnce  sync.Once
}

// Next delegates to the inner stream, capping each drain at the tokens
// remaining before the scripted break so partial text precedes the
// error, and failing once the break point is reached.
func (s *faultStream) Next(ctx context.Context, maxTokens int) (llm.Chunk, error) {
	if s.breaks {
		left := s.breakAfter - s.delivered
		if left <= 0 {
			return llm.Chunk{}, errStreamBroken
		}
		if maxTokens <= 0 || maxTokens > left {
			maxTokens = left
		}
	}
	c, err := s.inner.Next(ctx, maxTokens)
	s.delivered += c.EvalCount
	return c, err
}

// Buffered passes through the inner stream's prefetch count.
func (s *faultStream) Buffered() int {
	if bs, ok := s.inner.(llm.BufferedStream); ok {
		return bs.Buffered()
	}
	return 0
}

// Close closes the inner stream and counts the close exactly once.
func (s *faultStream) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.inner.Close()
		s.f.mu.Lock()
		s.f.streamCloses[s.model]++
		s.f.mu.Unlock()
	})
	return err
}

// GenerateChunk implements Backend: it applies the model's latency and
// failure schedule, then delegates to the inner backend.
func (f *FaultBackend) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (llm.Chunk, error) {
	f.mu.Lock()
	f.calls[req.Model]++
	n := f.calls[req.Model]
	d := f.latency[req.Model]
	err := f.failAll[req.Model]
	if err == nil && f.failOn[req.Model] != nil {
		err = f.failOn[req.Model][n]
	}
	f.mu.Unlock()

	if d > 0 {
		select {
		case <-ctx.Done():
			return llm.Chunk{}, ctx.Err()
		case <-time.After(d):
		}
	}
	if err != nil {
		return llm.Chunk{}, err
	}
	return f.inner.GenerateChunk(ctx, req)
}
