package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"llmms/internal/llm"
)

// FaultBackend wraps an inner Backend with scripted fault injection for
// tests and benchmarks: per-model added latency (to prove fan-out rounds
// cost the max, not the sum), errors on specific call numbers (to
// exercise retry recovery and exhaustion), and permanent failures (to
// exercise prune-on-failure and the everyone-failed path). The zero
// schedule is a transparent pass-through.
//
// Schedules are keyed by name. A plain FaultBackend keys every lookup by
// the request's model, reproducing the historical behavior; a Replica
// view (see Replica) keys lookups by "model@replica" instead, so one
// FaultBackend over one shared engine can script divergent behavior for
// each member of a fleet.Pool replica set — the slow replica, the dead
// replica, the one that breaks streams mid-answer.
//
// FaultBackend is safe for concurrent use, like any orchestrator
// backend.
type FaultBackend struct {
	inner Backend

	mu      sync.Mutex
	calls   map[string]int
	latency map[string]time.Duration
	failOn  map[string]map[int]error
	failAll map[string]error

	// Streaming schedule. Streams are opt-in (EnableStreams) so existing
	// fault schedules keyed on GenerateChunk call numbers keep meaning
	// what they say: an un-enabled FaultBackend reports
	// llm.ErrStreamUnsupported and the orchestrator quietly stays on the
	// per-round path.
	streamsOn    bool
	openFail     map[string]error
	breakAfter   map[string]int
	streamOpens  map[string]int
	streamCloses map[string]int
}

// NewFaultBackend wraps inner with an empty fault schedule.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{
		inner:        inner,
		calls:        make(map[string]int),
		latency:      make(map[string]time.Duration),
		failOn:       make(map[string]map[int]error),
		failAll:      make(map[string]error),
		openFail:     make(map[string]error),
		breakAfter:   make(map[string]int),
		streamOpens:  make(map[string]int),
		streamCloses: make(map[string]int),
	}
}

// Unwrap exposes the inner backend to llm.AsStreaming capability probes.
// FaultBackend decorates streams itself (OpenStream below), so the probe
// finds the fault layer first; Unwrap exists for wrappers stacked on top.
func (f *FaultBackend) Unwrap() llm.Backend { return f.inner }

// ReplicaKey composes the schedule key a Replica view uses for model:
// "model@id". Tests script a replica's behavior with e.g.
// f.SetLatency(core.ReplicaKey(model, "r1"), 20*time.Millisecond).
func ReplicaKey(model, id string) string { return model + "@" + id }

// Replica returns a Backend view of f for one fleet replica: requests
// pass through to the shared inner backend unchanged, but every schedule
// lookup and call count is keyed ReplicaKey(req.Model, id) instead of
// req.Model. The view shares f's mutex and accounting, so a test can
// hand N views of one FaultBackend to a fleet pool and script each
// replica independently.
func (f *FaultBackend) Replica(id string) *FaultReplica {
	return &FaultReplica{f: f, id: id}
}

// FaultReplica is one replica's view of a FaultBackend; see Replica.
type FaultReplica struct {
	f  *FaultBackend
	id string
}

// ID returns the replica identifier the view keys its schedule under.
func (r *FaultReplica) ID() string { return r.id }

// GenerateChunk implements Backend under the replica's schedule key.
func (r *FaultReplica) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (llm.Chunk, error) {
	return r.f.generateKeyed(ctx, req, ReplicaKey(req.Model, r.id))
}

// OpenStream implements llm.StreamingBackend under the replica's
// schedule key.
func (r *FaultReplica) OpenStream(ctx context.Context, req llm.ChunkRequest) (llm.ChunkStream, error) {
	return r.f.openStreamKeyed(ctx, req, ReplicaKey(req.Model, r.id))
}

// SetLatency adds d of simulated transport delay to every call for key
// (a model name, or a ReplicaKey on replica views). The delay respects
// context cancellation.
func (f *FaultBackend) SetLatency(key string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency[key] = d
}

// FailCall makes the nth GenerateChunk call (1-based, counted per key)
// for key return err instead of reaching the inner backend.
func (f *FaultBackend) FailCall(key string, nth int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failOn[key] == nil {
		f.failOn[key] = make(map[int]error)
	}
	f.failOn[key][nth] = err
}

// FailAlways makes every call for key return err — a permanently dead
// daemon (or dead replica, with a ReplicaKey).
func (f *FaultBackend) FailAlways(key string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAll[key] = err
}

// ClearFail removes key's permanent failure — the dead daemon coming
// back, for probe-driven re-admission tests.
func (f *FaultBackend) ClearFail(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.failAll, key)
}

// Calls reports how many GenerateChunk calls key has received, including
// the ones that were failed.
func (f *FaultBackend) Calls(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[key]
}

// TotalCalls reports the GenerateChunk calls across all keys.
func (f *FaultBackend) TotalCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c
	}
	return n
}

// EnableStreams makes the backend advertise persistent generation
// streams, delegating opens to the inner backend (which must itself be
// an llm.StreamingBackend). Off by default so chunk-count fault
// schedules keep their meaning.
func (f *FaultBackend) EnableStreams() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.streamsOn = true
}

// FailStreamOpen makes every OpenStream for key return err — a backend
// that cannot hold sessions but still serves per-round chunks.
func (f *FaultBackend) FailStreamOpen(key string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.openFail[key] = err
}

// BreakStreamAfter makes key's streams fail after delivering n tokens:
// the first Next calls drain normally up to the break point (partial
// slices included), then the stream errors — the mid-answer connection
// drop the fallback ladder must survive without losing text.
func (f *FaultBackend) BreakStreamAfter(key string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.breakAfter[key] = n
}

// StreamOpens reports how many streams key has opened successfully.
func (f *FaultBackend) StreamOpens(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.streamOpens[key]
}

// StreamCloses reports how many of key's streams have been closed — the
// leak check: after a query, StreamOpens == StreamCloses for every key.
func (f *FaultBackend) StreamCloses(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.streamCloses[key]
}

// OpenStream implements llm.StreamingBackend with fault injection. When
// streams are not enabled (or the inner backend cannot stream) it
// reports llm.ErrStreamUnsupported, which the orchestrator treats as a
// quiet routing signal back to GenerateChunk.
func (f *FaultBackend) OpenStream(ctx context.Context, req llm.ChunkRequest) (llm.ChunkStream, error) {
	return f.openStreamKeyed(ctx, req, req.Model)
}

// openStreamKeyed is OpenStream with the schedule key made explicit —
// req.Model on the plain backend, ReplicaKey(model, id) on replica
// views.
func (f *FaultBackend) openStreamKeyed(ctx context.Context, req llm.ChunkRequest, key string) (llm.ChunkStream, error) {
	f.mu.Lock()
	on := f.streamsOn
	failErr := f.openFail[key]
	d := f.latency[key]
	brk, hasBrk := f.breakAfter[key]
	f.mu.Unlock()

	if !on {
		return nil, llm.ErrStreamUnsupported
	}
	sb, ok := llm.AsStreaming(f.inner)
	if !ok {
		return nil, llm.ErrStreamUnsupported
	}
	if d > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(d):
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	inner, err := sb.OpenStream(ctx, req)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.streamOpens[key]++
	f.mu.Unlock()
	s := &faultStream{inner: inner, f: f, key: key}
	if hasBrk {
		s.breakAfter = brk
		s.breaks = true
	}
	return s, nil
}

// errStreamBroken is the scripted mid-stream failure BreakStreamAfter
// injects.
var errStreamBroken = errors.New("core: fault-injected stream break")

// faultStream wraps an inner stream with the break schedule and the
// open/close accounting.
type faultStream struct {
	inner      llm.ChunkStream
	f          *FaultBackend
	key        string
	delivered  int
	breakAfter int
	breaks     bool
	closeOnce  sync.Once
}

// Next delegates to the inner stream, capping each drain at the tokens
// remaining before the scripted break so partial text precedes the
// error, and failing once the break point is reached.
func (s *faultStream) Next(ctx context.Context, maxTokens int) (llm.Chunk, error) {
	if s.breaks {
		left := s.breakAfter - s.delivered
		if left <= 0 {
			return llm.Chunk{}, errStreamBroken
		}
		if maxTokens <= 0 || maxTokens > left {
			maxTokens = left
		}
	}
	c, err := s.inner.Next(ctx, maxTokens)
	s.delivered += c.EvalCount
	return c, err
}

// Buffered passes through the inner stream's prefetch count.
func (s *faultStream) Buffered() int {
	if bs, ok := s.inner.(llm.BufferedStream); ok {
		return bs.Buffered()
	}
	return 0
}

// Close closes the inner stream and counts the close exactly once.
func (s *faultStream) Close() error {
	var err error
	s.closeOnce.Do(func() {
		err = s.inner.Close()
		s.f.mu.Lock()
		s.f.streamCloses[s.key]++
		s.f.mu.Unlock()
	})
	return err
}

// GenerateChunk implements Backend: it applies the model's latency and
// failure schedule, then delegates to the inner backend.
func (f *FaultBackend) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (llm.Chunk, error) {
	return f.generateKeyed(ctx, req, req.Model)
}

// generateKeyed is GenerateChunk with the schedule key made explicit.
func (f *FaultBackend) generateKeyed(ctx context.Context, req llm.ChunkRequest, key string) (llm.Chunk, error) {
	f.mu.Lock()
	f.calls[key]++
	n := f.calls[key]
	d := f.latency[key]
	err := f.failAll[key]
	if err == nil && f.failOn[key] != nil {
		err = f.failOn[key][n]
	}
	f.mu.Unlock()

	if d > 0 {
		select {
		case <-ctx.Done():
			return llm.Chunk{}, ctx.Err()
		case <-time.After(d):
		}
	}
	if err != nil {
		return llm.Chunk{}, err
	}
	return f.inner.GenerateChunk(ctx, req)
}
