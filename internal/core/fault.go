package core

import (
	"context"
	"sync"
	"time"

	"llmms/internal/llm"
)

// FaultBackend wraps an inner Backend with scripted fault injection for
// tests and benchmarks: per-model added latency (to prove fan-out rounds
// cost the max, not the sum), errors on specific call numbers (to
// exercise retry recovery and exhaustion), and permanent failures (to
// exercise prune-on-failure and the everyone-failed path). The zero
// schedule is a transparent pass-through.
//
// FaultBackend is safe for concurrent use, like any orchestrator
// backend.
type FaultBackend struct {
	inner Backend

	mu      sync.Mutex
	calls   map[string]int
	latency map[string]time.Duration
	failOn  map[string]map[int]error
	failAll map[string]error
}

// NewFaultBackend wraps inner with an empty fault schedule.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{
		inner:   inner,
		calls:   make(map[string]int),
		latency: make(map[string]time.Duration),
		failOn:  make(map[string]map[int]error),
		failAll: make(map[string]error),
	}
}

// SetLatency adds d of simulated transport delay to every call for
// model. The delay respects context cancellation.
func (f *FaultBackend) SetLatency(model string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency[model] = d
}

// FailCall makes the nth GenerateChunk call (1-based, counted per model)
// for model return err instead of reaching the inner backend.
func (f *FaultBackend) FailCall(model string, nth int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failOn[model] == nil {
		f.failOn[model] = make(map[int]error)
	}
	f.failOn[model][nth] = err
}

// FailAlways makes every call for model return err — a permanently dead
// daemon.
func (f *FaultBackend) FailAlways(model string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAll[model] = err
}

// Calls reports how many GenerateChunk calls model has received,
// including the ones that were failed.
func (f *FaultBackend) Calls(model string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[model]
}

// TotalCalls reports the GenerateChunk calls across all models.
func (f *FaultBackend) TotalCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c
	}
	return n
}

// GenerateChunk implements Backend: it applies the model's latency and
// failure schedule, then delegates to the inner backend.
func (f *FaultBackend) GenerateChunk(ctx context.Context, req llm.ChunkRequest) (llm.Chunk, error) {
	f.mu.Lock()
	f.calls[req.Model]++
	n := f.calls[req.Model]
	d := f.latency[req.Model]
	err := f.failAll[req.Model]
	if err == nil && f.failOn[req.Model] != nil {
		err = f.failOn[req.Model][n]
	}
	f.mu.Unlock()

	if d > 0 {
		select {
		case <-ctx.Done():
			return llm.Chunk{}, ctx.Err()
		case <-time.After(d):
		}
	}
	if err != nil {
		return llm.Chunk{}, err
	}
	return f.inner.GenerateChunk(ctx, req)
}
