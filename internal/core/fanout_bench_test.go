package core

import (
	"context"
	"strings"
	"testing"

	"llmms/internal/llm"
)

// benchFanoutPrompt is a knowledge-base question padded with context so
// the simulated prefill (prompt re-ingest) is a realistic fraction of
// the round: the per-round chunked path pays it on every round, the
// persistent stream pays it once per query. Deterministic by
// construction — the engine plans the same answer every run.
var benchFanoutPrompt = "Question: What happens if you swallow chewing gum?\n" +
	"Context: " + strings.Repeat("Chewing gum base is largely indigestible and passes through the digestive tract intact. ", 20) +
	"\nAnswer:"

func benchFanoutConfig() Config {
	cfg := DefaultConfig(llm.ModelLlama3, llm.ModelMistral, llm.ModelQwen2)
	cfg.MaxTokens = 144
	cfg.Rounds = 6
	return cfg
}

func benchFanoutOnce(b *testing.B, disable bool) Result {
	b.Helper()
	cfg := benchFanoutConfig()
	cfg.DisableStreaming = disable
	o, err := New(llm.NewEngine(llm.Options{LatencyScale: 0.02}), cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := o.OUA(context.Background(), benchFanoutPrompt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFanoutPipelined measures OUA per-query wall time with
// simulated decode and prefill latency (LatencyScale 0.02): per_round is
// the chunked baseline that re-opens a generation call — and re-ingests
// the prompt — every round; pipelined holds one stream per model and
// slices rounds off the client-side buffer. The pipelined sub-benchmark
// first cross-checks the determinism contract: both paths must select
// the same winner and answer.
func BenchmarkFanoutPipelined(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"per_round", true},
		{"pipelined", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			if !mode.disable {
				ref := benchFanoutOnce(b, true)
				got := benchFanoutOnce(b, false)
				if got.Answer != ref.Answer || got.Model != ref.Model {
					b.Fatalf("pipelined winner (%s, %q) != per-round winner (%s, %q)",
						got.Model, got.Answer, ref.Model, ref.Answer)
				}
			}
			cfg := benchFanoutConfig()
			cfg.DisableStreaming = mode.disable
			o, err := New(llm.NewEngine(llm.Options{LatencyScale: 0.02}), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.OUA(context.Background(), benchFanoutPrompt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
