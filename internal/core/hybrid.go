package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"llmms/internal/llm"
)

// Hybrid runs the combined strategy the paper's analysis proposes (§8.4,
// "Trade-Offs in Orchestration": early pruning is efficient in
// straightforward cases, adaptive allocation is robust to uncertainty —
// "a hybrid approach could potentially leverage the advantages of both
// methods").
//
// Phase 1 (OUA-style screening): every model generates one even chunk;
// the partial outputs are scored and every model trailing the best score
// by more than PruneMargin is pruned — one cheap pass eliminates the
// clearly wrong answers.
//
// Phase 2 (MAB refinement): the survivors continue under UCB1 with the
// remaining budget, exactly as in MAB, so ambiguous queries keep the
// bandit's adaptive allocation while easy ones have already concentrated
// the budget on one or two models.
//
// Screening chunks fan out concurrently, and per-model backend failures
// degrade gracefully in both phases: a failed model is retired with an
// EventModelFailed; the query errors only when every model has failed.
func (o *Orchestrator) Hybrid(ctx context.Context, prompt string) (Result, error) {
	start := time.Now()
	cfg := o.cfg
	n := len(cfg.Models)
	cands := make([]*candidate, n)
	for i, m := range cfg.Models {
		cands[i] = o.newCandidate(m)
	}
	qv := cfg.Encoder.Encode(prompt)
	sc := o.newScorer(qv)
	o.emit(Event{Type: EventStart, Strategy: StrategyHybrid})

	// Phase 1: one even screening chunk per model — half of an even
	// split, large enough that the partial outputs score reliably, small
	// enough that half the budget is still free for the bandit phase.
	// The screening chunks fan out concurrently (collected in model
	// order); a model that fails its retry budget is retired with an
	// EventModelFailed instead of killing the query.
	screenChunk := cfg.MaxTokens / (2 * n)
	if screenChunk < 1 {
		screenChunk = 1
	}
	used := 0
	// A screening survivor could win the entire refinement pool on top of
	// its screening chunk, so sessions are opened for that ceiling.
	totalPulls := len(cands)
	o.attachSessions(cands, prompt)
	defer func() { o.closeAllSessions(StrategyHybrid, totalPulls, cands, "query_end") }()
	sessionHint := cfg.MaxTokens - (n-1)*screenChunk
	o.emit(Event{Type: EventRound, Strategy: StrategyHybrid, Round: 1, Elapsed: time.Since(start)})
	jobs := make([]fanJob, n)
	for i, c := range cands {
		jobs[i] = fanJob{cand: c, take: screenChunk, hint: sessionHint}
	}
	results := o.fanOut(ctx, prompt, jobs)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	for i, r := range results {
		c := jobs[i].cand
		o.emitStreamEvents(StrategyHybrid, 1, c, r)
		if r.err != nil {
			o.failCandidate(StrategyHybrid, 1, c, r.attempts, r.err)
			continue
		}
		chunk := r.chunk
		c.response = chunk.Text
		c.cont = chunk.Context
		c.tokens = chunk.EvalCount
		c.pulls = 1
		c.reason = chunk.DoneReason
		used += chunk.EvalCount
		switch chunk.DoneReason {
		case llm.DoneStop:
			c.done = true
		case llm.DoneCancel:
			return Result{}, cancelErr(ctx)
		}
		if chunk.EvalCount > 0 {
			o.emit(Event{Type: EventChunk, Strategy: StrategyHybrid, Round: 1,
				Model: c.model, Text: chunk.Text, Tokens: chunk.EvalCount,
				Elapsed: r.elapsed, Attempts: r.attempts, Prefetched: r.prefetched})
		}
	}
	o.emitRoundStall(StrategyHybrid, 1, results)
	if allFailed(cands) {
		return Result{}, allModelsFailedError(StrategyHybrid, cands)
	}
	screened := surviving(cands)
	o.scorePass(sc, StrategyHybrid, 1, screened)
	best := argmaxScore(screened)
	for _, c := range screened {
		c.rewardSum = c.score // seed the bandit with the screening reward
		o.emit(Event{Type: EventScore, Strategy: StrategyHybrid, Round: 1,
			Model: c.model, Score: c.score, QuerySim: c.querySim, InterSim: c.interSim})
		if c != best && best.score-c.score > cfg.PruneMargin {
			c.pruned = true
			o.closeSession(StrategyHybrid, 1, c, "pruned")
			o.emit(Event{Type: EventPrune, Strategy: StrategyHybrid, Round: 1,
				Model: c.model, Score: c.score,
				Reason: fmt.Sprintf("screening: trailing best by %.3f", best.score-c.score)})
		}
	}

	// Phase 2: UCB1 over the survivors with the remaining budget.
	for used < cfg.MaxTokens {
		gamma := cfg.Gamma0 * (1 - float64(used)/float64(cfg.MaxTokens))
		arm := o.selectHybridArm(cands, gamma, totalPulls)
		if arm == nil {
			break
		}
		take := cfg.MABChunk
		if rem := cfg.MaxTokens - used; take > rem {
			take = rem
		}
		totalPulls++
		o.emit(Event{Type: EventRound, Strategy: StrategyHybrid, Round: totalPulls, Model: arm.model,
			Elapsed: time.Since(start)})
		r := o.pull(ctx, arm, prompt, take, cfg.MaxTokens-used)
		o.emitStreamEvents(StrategyHybrid, totalPulls, arm, r)
		if r.err != nil {
			if ctx.Err() != nil {
				return Result{}, ctx.Err()
			}
			o.failCandidate(StrategyHybrid, totalPulls, arm, r.attempts, r.err)
			if allFailed(cands) {
				return Result{}, allModelsFailedError(StrategyHybrid, cands)
			}
			continue
		}
		chunk := r.chunk
		arm.response += chunk.Text
		arm.cont = chunk.Context
		arm.tokens += chunk.EvalCount
		arm.pulls++
		arm.reason = chunk.DoneReason
		used += chunk.EvalCount
		switch chunk.DoneReason {
		case llm.DoneStop:
			arm.done = true
		case llm.DoneCancel:
			return Result{}, cancelErr(ctx)
		}
		if chunk.EvalCount > 0 {
			o.emit(Event{Type: EventChunk, Strategy: StrategyHybrid, Round: totalPulls,
				Model: arm.model, Text: chunk.Text, Tokens: chunk.EvalCount,
				Elapsed: r.elapsed, Attempts: r.attempts, Prefetched: r.prefetched})
		}
		if r.streamed {
			o.emit(Event{Type: EventRoundStall, Strategy: StrategyHybrid, Round: totalPulls,
				Elapsed: r.elapsed})
		}
		o.scorePass(sc, StrategyHybrid, totalPulls, activeCandidates(cands))
		arm.rewardSum += arm.score
		o.emit(Event{Type: EventScore, Strategy: StrategyHybrid, Round: totalPulls,
			Model: arm.model, Score: arm.score, QuerySim: arm.querySim, InterSim: arm.interSim})

		if hybridSettled(cands) {
			break
		}
	}

	survivors := activeCandidates(cands)
	if len(survivors) == 0 {
		// Every unfailed model was score-pruned or failed later; fall
		// back to the best surviving candidate so the query still gets
		// an answer — or error when none is left.
		survivors = surviving(cands)
		if len(survivors) == 0 {
			return Result{}, allModelsFailedError(StrategyHybrid, cands)
		}
	}
	o.scorePass(sc, StrategyHybrid, totalPulls, survivors)
	winner := argmaxFinalReward(survivors)
	elapsed := time.Since(start)
	o.emit(Event{Type: EventWinner, Strategy: StrategyHybrid, Model: winner.model,
		Text: winner.response, Tokens: used, Score: winner.score, Elapsed: elapsed,
		Reason: fmt.Sprintf("highest final reward %.3f after screening + %d pulls", winner.score, totalPulls-len(cands))})
	return Result{
		Strategy: StrategyHybrid, Answer: winner.response, Model: winner.model,
		TokensUsed: used, Rounds: totalPulls,
		Outcomes: outcomes(cands), Elapsed: elapsed,
	}, nil
}

// selectHybridArm is UCB1 restricted to unpruned, unfinished arms.
func (o *Orchestrator) selectHybridArm(cands []*candidate, gamma float64, totalPulls int) *candidate {
	var best *candidate
	bestIdx := math.Inf(-1)
	for _, c := range cands {
		if c.done || c.pruned {
			continue
		}
		idx := ucb1(c, gamma, totalPulls)
		if best == nil || idx > bestIdx || (idx == bestIdx && c.model < best.model) {
			best, bestIdx = c, idx
		}
	}
	return best
}

// hybridSettled reports whether every surviving arm has finished.
func hybridSettled(cands []*candidate) bool {
	for _, c := range cands {
		if !c.pruned && !c.done {
			return false
		}
	}
	return true
}
