package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"llmms/internal/llm"
)

// This file implements the concurrent generation pass shared by the
// multi-model strategies. The paper's candidate models "stream partial
// outputs concurrently"; over an HTTP backend a sequential round costs
// the *sum* of per-model latencies, a fan-out round costs the *max*.
//
// Two invariants keep concurrent rounds reproducible:
//
//   - Determinism: results are collected into a slice indexed by the
//     round's job order (model index), and all candidate mutation and
//     event emission happens on the orchestrating goroutine in that
//     order. Workers only write their own slot.
//   - Graceful degradation: a chunk call that still fails after the
//     RetryPolicy budget marks its model failed-and-pruned (with an
//     EventModelFailed) instead of aborting the query; the query errors
//     only when every model has failed (ErrAllModelsFailed).

// ErrAllModelsFailed reports that no candidate model survived: every
// backend kept erroring past its retry budget, so there is no answer to
// return. Per-model detail is in the wrapping error and the
// EventModelFailed events.
var ErrAllModelsFailed = errors.New("core: all models failed")

// DefaultRetryPolicy is the per-chunk fault-tolerance budget used when
// Config.Retry is the zero value: three attempts, 50 ms exponential
// backoff capped at 1 s, 30 s per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:  3,
		BaseBackoff:  50 * time.Millisecond,
		MaxBackoff:   time.Second,
		ChunkTimeout: 30 * time.Second,
	}
}

// RetryPolicy bounds how hard the orchestrator works to get one chunk
// out of one model before declaring the model failed. Zero fields take
// the DefaultRetryPolicy values; negative BaseBackoff or ChunkTimeout
// disables the backoff sleep or the per-attempt deadline respectively.
type RetryPolicy struct {
	// MaxAttempts is the total tries per chunk (1 = no retries).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; it doubles after
	// every failed attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
	// ChunkTimeout is the per-attempt deadline. An attempt that exceeds
	// it counts as a failure and is retried.
	ChunkTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.ChunkTimeout == 0 {
		p.ChunkTimeout = d.ChunkTimeout
	}
	return p
}

// errChunkTimeout marks an attempt that hit the per-attempt deadline
// (the backend reported a cancel that the parent context did not cause).
var errChunkTimeout = errors.New("core: chunk attempt timed out")

// generateWithRetry is the single retry wrapper every strategy and every
// backend goes through: it issues one GenerateChunk under the policy's
// per-attempt timeout and retries transient failures with exponential
// backoff. Parent-context cancellation is never retried and is returned
// as the context's own error. The attempt count is returned for
// EventModelFailed reporting.
func generateWithRetry(ctx context.Context, b Backend, req llm.ChunkRequest, p RetryPolicy) (llm.Chunk, int, error) {
	backoff := p.BaseBackoff
	var lastErr error
	attempts := 0
	for attempts < p.MaxAttempts {
		if err := ctx.Err(); err != nil {
			return llm.Chunk{}, attempts, err
		}
		attempts++
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.ChunkTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.ChunkTimeout)
		}
		chunk, err := b.GenerateChunk(attemptCtx, req)
		cancel()
		if err == nil && chunk.DoneReason == llm.DoneCancel && ctx.Err() == nil {
			// The attempt deadline interrupted the stream mid-chunk: the
			// backend reports a cancel the caller didn't ask for. Treat
			// it as a timeout and retry the same chunk.
			err = errChunkTimeout
		}
		if err == nil {
			return chunk, attempts, nil
		}
		if ctx.Err() != nil {
			return llm.Chunk{}, attempts, ctx.Err()
		}
		lastErr = err
		if attempts < p.MaxAttempts && backoff > 0 {
			select {
			case <-ctx.Done():
				return llm.Chunk{}, attempts, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
	}
	return llm.Chunk{}, attempts, fmt.Errorf("after %d attempts: %w", attempts, lastErr)
}

// fanJob is one model's slice of a fan-out round.
type fanJob struct {
	cand *candidate
	take int
	// hint is the session-wide budget a lazily opened stream should
	// cover — the most tokens this candidate could still receive this
	// query. Ignored on the per-round path and once a stream is open.
	hint int
}

// fanResult is the collected outcome of one fanJob, in job order.
type fanResult struct {
	chunk    llm.Chunk
	attempts int
	err      error
	// elapsed is the generation call's wall clock, retries included —
	// measured on the worker so queueing behind MaxConcurrent is
	// excluded once the call starts. On a streamed drain it is the time
	// spent waiting for tokens not yet buffered (the round's stall).
	elapsed time.Duration

	// Session transitions, reported back so the orchestrating goroutine
	// can emit the corresponding events in job order (stream.go).
	streamed    bool   // chunk came off the persistent stream
	opened      bool   // this call opened the session's stream
	closeReason string // non-empty when this call ended the stream
	fallback    error  // stream error that degraded the session mid-query
	prefetched  int    // tokens already buffered when the drain started
}

// fanOut issues every job's GenerateChunk concurrently (bounded by
// Config.MaxConcurrent when positive) and blocks until all have
// completed or failed their retry budget. Workers write only their own
// result slot; the caller consumes results in job order, so candidate
// state and event order stay deterministic regardless of which model
// answered first.
func (o *Orchestrator) fanOut(ctx context.Context, prompt string, jobs []fanJob) []fanResult {
	results := make([]fanResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var sem chan struct{}
	if o.cfg.MaxConcurrent > 0 && o.cfg.MaxConcurrent < len(jobs) {
		sem = make(chan struct{}, o.cfg.MaxConcurrent)
	}
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j fanJob) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			results[i] = o.pull(ctx, j.cand, prompt, j.take, j.hint)
		}(i, j)
	}
	wg.Wait()
	return results
}

// pull issues one candidate's chunk call — through its persistent
// generation session when one is attached (stream.go), via the plain
// retried per-round path otherwise. It is the single generation entry
// point for fan-out workers and the bandits' sequential pulls. A
// candidate's session is touched by one pull at a time; pull never
// mutates any other candidate state and never emits events, so it is
// safe on fan-out workers.
func (o *Orchestrator) pull(ctx context.Context, c *candidate, prompt string, take, hint int) fanResult {
	callStart := time.Now()
	var r fanResult
	if c.sess != nil {
		r = c.sess.next(ctx, c.cont, take, hint)
	} else {
		chunk, attempts, err := generateWithRetry(ctx, o.backend, llm.ChunkRequest{
			Model: c.model, Prompt: prompt, MaxTokens: take, Cont: c.cont,
		}, o.cfg.Retry)
		r = fanResult{chunk: chunk, attempts: attempts, err: err}
	}
	r.elapsed = time.Since(callStart)
	return r
}

// failCandidate retires a model whose retry budget is exhausted: it is
// marked failed and pruned (graceful degradation — the query continues
// on the survivors) and the failure is announced as an EventModelFailed.
func (o *Orchestrator) failCandidate(strategy Strategy, round int, c *candidate, attempts int, err error) {
	c.failed = true
	c.pruned = true
	c.failErr = err
	o.closeSession(strategy, round, c, "failed")
	o.emit(Event{Type: EventModelFailed, Strategy: strategy, Round: round,
		Model: c.model, Attempts: attempts, Reason: err.Error()})
}

// cancelErr returns the context's error, falling back to
// context.Canceled when a backend reported a cancel the context does not
// explain — a query must never end in cancel with a nil error.
func cancelErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// allFailed reports whether no candidate is left to answer.
func allFailed(cands []*candidate) bool {
	for _, c := range cands {
		if !c.failed {
			return false
		}
	}
	return true
}

// surviving returns the candidates that have not failed — the pool a
// final answer may be drawn from even when all of them were
// score-pruned.
func surviving(cands []*candidate) []*candidate {
	var out []*candidate
	for _, c := range cands {
		if !c.failed {
			out = append(out, c)
		}
	}
	return out
}

// allFailedErr is the terminal error: a one-line message for logs, with
// ErrAllModelsFailed and every per-model cause reachable via errors.Is.
type allFailedErr struct {
	msg    string
	causes []error
}

func (e *allFailedErr) Error() string   { return e.msg }
func (e *allFailedErr) Unwrap() []error { return e.causes }

// allModelsFailedError composes the terminal error from the per-model
// failure records.
func allModelsFailedError(strategy Strategy, cands []*candidate) error {
	detail := ""
	causes := []error{ErrAllModelsFailed}
	for _, c := range cands {
		if c.failErr != nil {
			if detail != "" {
				detail += "; "
			}
			detail += fmt.Sprintf("%s: %v", c.model, c.failErr)
			causes = append(causes, c.failErr)
		}
	}
	return &allFailedErr{
		msg:    fmt.Sprintf("core: %s: %v (%s)", strategy, ErrAllModelsFailed, detail),
		causes: causes,
	}
}
