package core

import (
	"context"
	"strings"
	"testing"
)

func tracedRun(t *testing.T, strategy Strategy) *Trace {
	t.Helper()
	trace := NewTrace()
	cfg := DefaultConfig("good", "okay", "bad")
	cfg.MaxTokens = 240
	cfg.OnEvent = trace.Record
	o := mustNew(t, threeModels(), cfg)
	if _, err := o.Run(context.Background(), strategy, testPrompt); err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestTraceLines(t *testing.T) {
	trace := tracedRun(t, StrategyOUA)
	lines := trace.Lines()
	if len(lines) < 4 {
		t.Fatalf("only %d trace lines:\n%s", len(lines), trace)
	}
	log := trace.String()
	for _, want := range []string{"Started a oua query", "Asked ", " scored ", " won at "} {
		if !strings.Contains(log, want) {
			t.Fatalf("trace missing %q:\n%s", want, log)
		}
	}
	// Every candidate appears in the log.
	for _, m := range []string{"good", "okay", "bad"} {
		if !strings.Contains(log, m) {
			t.Fatalf("trace missing model %s:\n%s", m, log)
		}
	}
}

func TestTraceSummary(t *testing.T) {
	trace := tracedRun(t, StrategyOUA)
	sum := trace.Summary()
	if !strings.Contains(sum, "strategy oua") {
		t.Fatalf("summary = %q", sum)
	}
	if !strings.Contains(sum, "won") {
		t.Fatalf("no winner in summary: %q", sum)
	}
	// The off-topic model is reported pruned.
	if !strings.Contains(sum, "bad pruned") {
		t.Fatalf("pruned fate missing: %q", sum)
	}
}

func TestTraceResetAndEvents(t *testing.T) {
	trace := tracedRun(t, StrategyMAB)
	if len(trace.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	// Events() returns a copy.
	evs := trace.Events()
	evs[0].Model = "mutated"
	if trace.Events()[0].Model == "mutated" {
		t.Fatal("Events leaked internal slice")
	}
	trace.Reset()
	if len(trace.Events()) != 0 || trace.String() != "" {
		t.Fatal("reset did not clear the trace")
	}
}

// TestTraceLinesAllEventTypes feeds one synthetic event of every type
// and checks each renders a line — including round and model_failed,
// which real runs only emit on specific paths.
func TestTraceLinesAllEventTypes(t *testing.T) {
	trace := NewTrace()
	events := []Event{
		{Type: EventStart, Strategy: StrategyOUA},
		{Type: EventRound, Round: 1},
		{Type: EventRound, Round: 2, Model: "llama3"},
		{Type: EventChunk, Model: "llama3", Tokens: 12},
		{Type: EventScore, Model: "llama3", Score: 0.8, QuerySim: 0.9, InterSim: 0.6},
		{Type: EventPrune, Model: "mistral", Score: 0.2, Reason: "trailing by 0.6"},
		{Type: EventModelFailed, Model: "qwen2", Attempts: 3, Reason: "backend down"},
		{Type: EventWinner, Model: "llama3", Score: 0.8, Tokens: 12, Reason: "highest score"},
	}
	for _, ev := range events {
		trace.Record(ev)
	}
	lines := trace.Lines()
	if len(lines) != len(events) {
		t.Fatalf("%d lines from %d events:\n%s", len(lines), len(events), trace)
	}
	for i, want := range []string{
		"Started a oua query across the candidate models.",
		"Round 1 began.",
		"Round 2: pulled llama3.",
		"Asked llama3 for 12 more tokens (12 so far).",
		"llama3 scored 80% (relevance 90%, agreement 60%).",
		"Dropped mistral at 20%: trailing by 0.6.",
		"Lost qwen2 after 3 attempts (backend down); continuing with the rest.",
		"llama3 won at 80% after 12 total tokens (highest score).",
	} {
		if lines[i] != want {
			t.Errorf("line %d = %q, want %q", i, lines[i], want)
		}
	}
}

// TestTraceSummaryWinnerOnly covers the repaired edge: a winner that
// emitted no chunk or score events (e.g. a single-model run with no
// scoring pass) must still be rendered, in the same per-model form.
func TestTraceSummaryWinnerOnly(t *testing.T) {
	trace := NewTrace()
	trace.Record(Event{Type: EventStart, Strategy: StrategySingle, Model: "llama3"})
	trace.Record(Event{Type: EventWinner, Model: "llama3", Tokens: 40})
	sum := trace.Summary()
	if !strings.Contains(sum, "strategy single") {
		t.Fatalf("summary = %q", sum)
	}
	if !strings.Contains(sum, "llama3 won") {
		t.Fatalf("chunk-less winner dropped from summary: %q", sum)
	}
}

// TestTraceSummaryFates checks every fate renders: competed, pruned,
// failed, and won — with the winner's score taken from its winner event
// when the scoring pass never ran for it.
func TestTraceSummaryFates(t *testing.T) {
	trace := NewTrace()
	trace.Record(Event{Type: EventStart, Strategy: StrategyOUA})
	trace.Record(Event{Type: EventChunk, Model: "a", Tokens: 5})
	trace.Record(Event{Type: EventChunk, Model: "b", Tokens: 5})
	trace.Record(Event{Type: EventChunk, Model: "c", Tokens: 5})
	trace.Record(Event{Type: EventChunk, Model: "d", Tokens: 5})
	trace.Record(Event{Type: EventPrune, Model: "b", Score: 0.1})
	trace.Record(Event{Type: EventModelFailed, Model: "c", Attempts: 2, Reason: "down"})
	trace.Record(Event{Type: EventWinner, Model: "a", Score: 0.9, Tokens: 20})
	sum := trace.Summary()
	for _, want := range []string{
		"a won (5 tokens, 90%)",
		"b pruned (5 tokens, 10%)",
		"c failed (5 tokens, 0%)",
		"d competed (5 tokens, 0%)",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: %q", want, sum)
		}
	}
}

// TestRecorderTap verifies Config.Recorder receives every event the
// streaming hook sees — and works with no OnEvent attached at all.
func TestRecorderTap(t *testing.T) {
	var streamed, recorded []Event
	cfg := DefaultConfig("good", "okay", "bad")
	cfg.MaxTokens = 240
	cfg.OnEvent = func(ev Event) { streamed = append(streamed, ev) }
	cfg.Recorder = recorderFunc(func(ev Event) { recorded = append(recorded, ev) })
	o := mustNew(t, threeModels(), cfg)
	if _, err := o.Run(context.Background(), StrategyOUA, testPrompt); err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 || len(recorded) != len(streamed) {
		t.Fatalf("recorder saw %d events, stream saw %d", len(recorded), len(streamed))
	}
	for i := range recorded {
		if recorded[i].Type != streamed[i].Type || recorded[i].Model != streamed[i].Model {
			t.Fatalf("event %d diverged: recorder %+v vs stream %+v", i, recorded[i], streamed[i])
		}
		if recorded[i].Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	// Chunk events carry a generation cost and attempt count; the winner
	// event carries the total orchestration time.
	for _, ev := range recorded {
		switch ev.Type {
		case EventChunk:
			if ev.Attempts < 1 {
				t.Errorf("chunk event without attempts: %+v", ev)
			}
		case EventWinner:
			if ev.Elapsed <= 0 {
				t.Errorf("winner event without elapsed: %+v", ev)
			}
		}
	}

	// Recorder alone (no OnEvent) still receives the stream.
	recorded = nil
	cfg.OnEvent = nil
	o2 := mustNew(t, threeModels(), cfg)
	if _, err := o2.Run(context.Background(), StrategyMAB, testPrompt); err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Fatal("recorder-only config received no events")
	}
}

type recorderFunc func(Event)

func (f recorderFunc) RecordEvent(ev Event) { f(ev) }

func TestTraceSingleModel(t *testing.T) {
	trace := NewTrace()
	cfg := DefaultConfig("good")
	cfg.OnEvent = trace.Record
	o := mustNew(t, threeModels(), cfg)
	if _, err := o.Single(context.Background(), "good", testPrompt); err != nil {
		t.Fatal(err)
	}
	log := trace.String()
	if !strings.Contains(log, "served by good") {
		t.Fatalf("single-model trace:\n%s", log)
	}
}
