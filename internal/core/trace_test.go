package core

import (
	"context"
	"strings"
	"testing"
)

func tracedRun(t *testing.T, strategy Strategy) *Trace {
	t.Helper()
	trace := NewTrace()
	cfg := DefaultConfig("good", "okay", "bad")
	cfg.MaxTokens = 240
	cfg.OnEvent = trace.Record
	o := mustNew(t, threeModels(), cfg)
	if _, err := o.Run(context.Background(), strategy, testPrompt); err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestTraceLines(t *testing.T) {
	trace := tracedRun(t, StrategyOUA)
	lines := trace.Lines()
	if len(lines) < 4 {
		t.Fatalf("only %d trace lines:\n%s", len(lines), trace)
	}
	log := trace.String()
	for _, want := range []string{"Started a oua query", "Asked ", " scored ", " won at "} {
		if !strings.Contains(log, want) {
			t.Fatalf("trace missing %q:\n%s", want, log)
		}
	}
	// Every candidate appears in the log.
	for _, m := range []string{"good", "okay", "bad"} {
		if !strings.Contains(log, m) {
			t.Fatalf("trace missing model %s:\n%s", m, log)
		}
	}
}

func TestTraceSummary(t *testing.T) {
	trace := tracedRun(t, StrategyOUA)
	sum := trace.Summary()
	if !strings.Contains(sum, "strategy oua") {
		t.Fatalf("summary = %q", sum)
	}
	if !strings.Contains(sum, "won") {
		t.Fatalf("no winner in summary: %q", sum)
	}
	// The off-topic model is reported pruned.
	if !strings.Contains(sum, "bad pruned") {
		t.Fatalf("pruned fate missing: %q", sum)
	}
}

func TestTraceResetAndEvents(t *testing.T) {
	trace := tracedRun(t, StrategyMAB)
	if len(trace.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	// Events() returns a copy.
	evs := trace.Events()
	evs[0].Model = "mutated"
	if trace.Events()[0].Model == "mutated" {
		t.Fatal("Events leaked internal slice")
	}
	trace.Reset()
	if len(trace.Events()) != 0 || trace.String() != "" {
		t.Fatal("reset did not clear the trace")
	}
}

func TestTraceSingleModel(t *testing.T) {
	trace := NewTrace()
	cfg := DefaultConfig("good")
	cfg.OnEvent = trace.Record
	o := mustNew(t, threeModels(), cfg)
	if _, err := o.Single(context.Background(), "good", testPrompt); err != nil {
		t.Fatal(err)
	}
	log := trace.String()
	if !strings.Contains(log, "served by good") {
		t.Fatalf("single-model trace:\n%s", log)
	}
}
