package core

import (
	"context"
	"errors"
	"time"

	"llmms/internal/llm"
)

// This file implements pipelined generation (DESIGN.md "Pipelined
// generation"): when the backend implements llm.StreamingBackend, each
// candidate gets a genSession that opens ONE generation stream per
// (model, query) and slices per-round chunks off the stream's
// client-side buffer. The backend keeps decoding between rounds, so
// round r+1's tokens are (partially) generated while round r is being
// scored, and the per-round prompt re-ingest of the chunked path is
// paid once per query instead of once per round.
//
// Invariants, matching the fan-out contract (fanout.go):
//
//   - Determinism: a drained slice is token-for-token what the
//     per-round GenerateChunk call would have returned (same take caps,
//     same DoneReason ladder), so winner, answer, and token accounting
//     are identical with streaming on or off. Sessions never emit
//     events; transitions are reported through fanResult flags and
//     announced by the orchestrating goroutine in job order.
//   - Graceful degradation: a stream that fails to open or breaks
//     mid-query marks the session broken and the SAME call transparently
//     falls back to the retried per-round path, resuming from the last
//     good continuation state — text already drained is never lost,
//     because the buffer hands out partial slices before surfacing the
//     error. A backend that reports llm.ErrStreamUnsupported degrades
//     quietly (no fallback event: nothing was wrong, the path simply
//     does not exist).
//   - Hygiene: every opened stream is closed exactly once — on natural
//     completion, prune, early exit, failure, or query end — so backend
//     generation capacity is released as soon as a candidate stops
//     competing.

// genSession is one candidate's persistent generation session. It is
// touched by at most one fan-out worker per round (a candidate gets at
// most one job per round) and by the orchestrating goroutine between
// rounds, never concurrently.
type genSession struct {
	backend llm.StreamingBackend
	o       *Orchestrator
	model   string
	prompt  string

	// stream is the open session, nil before the first drain, after a
	// natural finish (a later budget grant reopens from cont), and after
	// Close.
	stream llm.ChunkStream
	// broken latches a stream failure: the session stops re-trying the
	// stream path and serves every remaining call via per-round chunks.
	broken bool
}

// next produces the candidate's chunk for one round: it drains up to
// take tokens from the stream (lazily opening it with the session-wide
// hint budget), or falls back to the retried per-round path when the
// stream is unavailable or broke. cont is the candidate's current
// continuation state — the resume point for opens and fallbacks.
func (s *genSession) next(ctx context.Context, cont []int, take, hint int) fanResult {
	var r fanResult
	if s.stream == nil && !s.broken {
		if hint < take {
			hint = take
		}
		st, err := s.backend.OpenStream(ctx, llm.ChunkRequest{
			Model: s.model, Prompt: s.prompt, MaxTokens: hint, Cont: cont,
		})
		if err != nil {
			s.broken = true
			if ctx.Err() != nil {
				r.err = ctx.Err()
				return r
			}
			if !errors.Is(err, llm.ErrStreamUnsupported) {
				r.fallback = err
			}
		} else {
			s.stream = st
			r.opened = true
		}
	}
	if s.stream != nil {
		if bs, ok := s.stream.(llm.BufferedStream); ok {
			if r.prefetched = bs.Buffered(); r.prefetched > take {
				r.prefetched = take
			}
		}
		drainCtx, cancel := ctx, context.CancelFunc(func() {})
		if t := s.o.cfg.Retry.ChunkTimeout; t > 0 {
			drainCtx, cancel = context.WithTimeout(ctx, t)
		}
		chunk, err := s.stream.Next(drainCtx, take)
		cancel()
		if err == nil {
			r.chunk = chunk
			r.attempts = 1
			r.streamed = true
			if chunk.Done {
				// Natural completion: release the backend session. A later
				// budget grant (OUA redistribution) reopens from cont.
				s.stream.Close()
				s.stream = nil
				r.closeReason = "done"
			}
			return r
		}
		// The stream broke (or a drain hit the per-chunk timeout with an
		// empty buffer). Text drained so far is safe — the buffer serves
		// partial slices before surfacing errors — so the per-round path
		// resumes exactly where the stream left off.
		s.stream.Close()
		s.stream = nil
		s.broken = true
		r.closeReason = "error"
		if ctx.Err() != nil {
			r.err = ctx.Err()
			return r
		}
		if !errors.Is(err, llm.ErrStreamUnsupported) {
			r.fallback = err
		}
	}
	chunk, attempts, err := generateWithRetry(ctx, s.o.backend, llm.ChunkRequest{
		Model: s.model, Prompt: s.prompt, MaxTokens: take, Cont: cont,
	}, s.o.cfg.Retry)
	r.chunk, r.attempts, r.err = chunk, attempts, err
	return r
}

// attachSessions gives every candidate a generation session when the
// backend can stream and streaming is enabled. With no session attached
// the strategies run the per-round path unchanged.
func (o *Orchestrator) attachSessions(cands []*candidate, prompt string) {
	if o.cfg.DisableStreaming {
		return
	}
	sb, ok := llm.AsStreaming(o.backend)
	if !ok {
		return
	}
	for _, c := range cands {
		c.sess = &genSession{backend: sb, o: o, model: c.model, prompt: prompt}
	}
}

// closeStream closes the candidate's open stream, if any, reporting
// whether one was actually closed. Runs on the orchestrating goroutine.
func (c *candidate) closeStream() bool {
	if c.sess == nil || c.sess.stream == nil {
		return false
	}
	c.sess.stream.Close()
	c.sess.stream = nil
	return true
}

// closeSession closes one candidate's stream and announces it; reason
// is from the bounded set done|pruned|early_exit|failed|query_end|error.
func (o *Orchestrator) closeSession(strategy Strategy, round int, c *candidate, reason string) {
	if c.closeStream() {
		o.emit(Event{Type: EventStreamClose, Strategy: strategy, Round: round,
			Model: c.model, Reason: reason})
	}
}

// closeAllSessions sweeps every candidate's remaining stream — the
// end-of-query cleanup (deferred by each strategy) and the early-exit
// cancel of the losers' still-running generations.
func (o *Orchestrator) closeAllSessions(strategy Strategy, round int, cands []*candidate, reason string) {
	for _, c := range cands {
		o.closeSession(strategy, round, c, reason)
	}
}

// emitStreamEvents announces one fan result's session transitions —
// open, close, fallback — on the orchestrating goroutine, in job order,
// preserving the event-determinism invariant (workers never emit).
func (o *Orchestrator) emitStreamEvents(strategy Strategy, round int, c *candidate, r fanResult) {
	if r.opened {
		o.emit(Event{Type: EventStreamOpen, Strategy: strategy, Round: round, Model: c.model})
	}
	if r.closeReason != "" {
		o.emit(Event{Type: EventStreamClose, Strategy: strategy, Round: round,
			Model: c.model, Reason: r.closeReason})
	}
	if r.fallback != nil {
		o.emit(Event{Type: EventStreamFallback, Strategy: strategy, Round: round,
			Model: c.model, Reason: r.fallback.Error()})
	}
}

// emitRoundStall announces how long the round's slowest streamed drain
// waited on generation. Rounds served entirely by the per-round path
// record nothing — the metric measures the pipelined path's overlap.
func (o *Orchestrator) emitRoundStall(strategy Strategy, round int, results []fanResult) {
	stall, streamed := time.Duration(0), false
	for _, r := range results {
		if r.streamed {
			streamed = true
			if r.elapsed > stall {
				stall = r.elapsed
			}
		}
	}
	if streamed {
		o.emit(Event{Type: EventRoundStall, Strategy: strategy, Round: round, Elapsed: stall})
	}
}
