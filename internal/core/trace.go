package core

import (
	"fmt"
	"strings"
	"sync"
)

// Trace collects orchestration events and renders them as the
// human-readable decision log the paper proposes (§9.5, "Transparent
// Orchestration Logs": *"show users a simple log: 'We asked Model A
// first, it got 60% confidence; then we asked Model B, it got 75% and
// won'"*). Attach Trace.Record as (or inside) Config.OnEvent, run a
// query, then call String or Lines.
//
// A Trace is safe for concurrent recording, though a single orchestrated
// query emits events sequentially.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record appends one event; pass it as Config.OnEvent.
func (t *Trace) Record(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, ev)
}

// Events returns a copy of the recorded events in order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Reset clears the trace for reuse across queries.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = t.events[:0]
}

// Lines renders the trace as one plain-English sentence per decision.
func (t *Trace) Lines() []string {
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()

	var lines []string
	tokensByModel := make(map[string]int)
	for _, ev := range events {
		switch ev.Type {
		case EventStart:
			if ev.Model != "" {
				lines = append(lines, fmt.Sprintf("Started a %s query served by %s.", ev.Strategy, ev.Model))
			} else {
				lines = append(lines, fmt.Sprintf("Started a %s query across the candidate models.", ev.Strategy))
			}
		case EventRound:
			if ev.Model != "" {
				lines = append(lines, fmt.Sprintf("Round %d: pulled %s.", ev.Round, ev.Model))
			} else {
				lines = append(lines, fmt.Sprintf("Round %d began.", ev.Round))
			}
		case EventChunk:
			tokensByModel[ev.Model] += ev.Tokens
			lines = append(lines, fmt.Sprintf("Asked %s for %d more tokens (%d so far).",
				ev.Model, ev.Tokens, tokensByModel[ev.Model]))
		case EventScore:
			lines = append(lines, fmt.Sprintf("%s scored %.0f%% (relevance %.0f%%, agreement %.0f%%).",
				ev.Model, ev.Score*100, ev.QuerySim*100, ev.InterSim*100))
		case EventPrune:
			lines = append(lines, fmt.Sprintf("Dropped %s at %.0f%%: %s.", ev.Model, ev.Score*100, ev.Reason))
		case EventModelFailed:
			lines = append(lines, fmt.Sprintf("Lost %s after %d attempts (%s); continuing with the rest.",
				ev.Model, ev.Attempts, ev.Reason))
		case EventWinner:
			lines = append(lines, fmt.Sprintf("%s won at %.0f%% after %d total tokens (%s).",
				ev.Model, ev.Score*100, ev.Tokens, ev.Reason))
		}
	}
	return lines
}

// String renders the trace as a newline-joined log.
func (t *Trace) String() string { return strings.Join(t.Lines(), "\n") }

// Summary condenses the trace to the per-model story: tokens received,
// final score, and fate — the compact variant for UI overlays.
func (t *Trace) Summary() string {
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	t.mu.Unlock()

	type modelFate struct {
		tokens int
		score  float64
		fate   string
	}
	fates := make(map[string]*modelFate)
	order := []string{}
	get := func(m string) *modelFate {
		if f, ok := fates[m]; ok {
			return f
		}
		f := &modelFate{fate: "competed"}
		fates[m] = f
		order = append(order, m)
		return f
	}
	var strategy Strategy
	for _, ev := range events {
		if ev.Strategy != "" {
			strategy = ev.Strategy
		}
		switch ev.Type {
		case EventChunk:
			get(ev.Model).tokens += ev.Tokens
		case EventScore:
			get(ev.Model).score = ev.Score
		case EventPrune:
			f := get(ev.Model)
			f.fate = "pruned"
			f.score = ev.Score
		case EventModelFailed:
			get(ev.Model).fate = "failed"
		case EventWinner:
			// get registers the winner even when it emitted no chunk or
			// score event, so the winner is always rendered in the same
			// per-model form instead of being dropped or glued on.
			f := get(ev.Model)
			f.fate = "won"
			if ev.Score != 0 {
				f.score = ev.Score
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy %s: ", strategy)
	parts := make([]string, 0, len(order))
	for _, m := range order {
		f := fates[m]
		parts = append(parts, fmt.Sprintf("%s %s (%d tokens, %.0f%%)", m, f.fate, f.tokens, f.score*100))
	}
	b.WriteString(strings.Join(parts, "; "))
	return b.String()
}
