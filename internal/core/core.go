// Package core implements the LLM-MS orchestration layer — the paper's
// primary contribution (Chapter 4).
//
// An Orchestrator answers one prompt by coordinating several candidate
// models under a shared token budget λ_max. Models produce partial
// outputs through the getChunk primitive (a budget-capped, resumable
// generation call); every partial output is embedded and scored by
//
//	score = α·cos(emb(response), emb(prompt)) + β·interModelAgreement
//
// and the budget is reallocated toward the most promising models. Two
// allocation policies are provided:
//
//   - OUA (Overperformers–Underperformers Algorithm, Algorithm 1):
//     round-robin chunks, pruning of trailing models, early return of a
//     clearly leading finished answer.
//   - MAB (Multi-Armed Bandit, Algorithm 2): each model is a UCB1 arm;
//     chunks go to the arm with the highest upper confidence bound, with
//     an exploration coefficient that decays as the budget is consumed.
//
// A single-model baseline completes the evaluation triad. The package is
// backend-agnostic: any type with the GenerateChunk method (the in-process
// llm.Engine or the HTTP modeld.Client) can serve the models.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"llmms/internal/embedding"
	"llmms/internal/llm"
)

// Backend produces partial generations. llm.Engine, modeld.Client, and
// fleet.Pool all satisfy it; GenerateChunk is the paper's getChunk(LLM_i,
// p, λ): generate up to req.MaxTokens more tokens of the model's answer
// to req.Prompt, resuming from req.Cont (nil starts fresh), returning
// the aggregated text so far this call, the done reason, and the
// continuation state.
//
// Backend is an alias of llm.Backend — the repository's single backend
// contract. Streaming is an optional capability of the SAME value,
// resolved through llm.AsStreaming (never by direct type assertion), so
// wrappers like FaultBackend or a fleet pool cannot strip it silently;
// see internal/llm/backend.go.
type Backend = llm.Backend

// Strategy names an orchestration policy.
type Strategy string

// The orchestration strategies of the paper's evaluation (§8.1).
const (
	// StrategyOUA is the Overperformers–Underperformers Algorithm.
	StrategyOUA Strategy = "oua"
	// StrategyMAB is the UCB1 Multi-Armed Bandit algorithm.
	StrategyMAB Strategy = "mab"
	// StrategySingle is the static single-model baseline.
	StrategySingle Strategy = "single"
	// StrategyHybrid is the OUA-screening + MAB-refinement combination
	// the paper's analysis proposes (§8.4).
	StrategyHybrid Strategy = "hybrid"
)

// ParseStrategy resolves a user-supplied strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case StrategyOUA, StrategyMAB, StrategySingle, StrategyHybrid:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("core: unknown strategy %q (want oua, mab, hybrid, or single)", s)
}

// Config tunes an Orchestrator. The zero value is not usable; start from
// DefaultConfig or PaperStrictConfig.
type Config struct {
	// Models are the candidate model tags. At least one is required; OUA
	// and MAB are meaningful with two or more.
	Models []string
	// MaxTokens is λ_max, the shared generation budget per query.
	MaxTokens int
	// Alpha weights the query-similarity term of the score (paper: 0.7).
	Alpha float64
	// Beta weights the inter-model agreement term (paper: 0.3).
	Beta float64
	// PruneMargin prunes the worst model when the second-worst score
	// exceeds it by more than this (Algorithm 1 line 21 uses 0.5; see
	// DefaultConfig for why the default is smaller).
	PruneMargin float64
	// LeadMargin returns the best model early when it leads the
	// second-best score by more than this and has finished (line 17).
	LeadMargin float64
	// Rounds is how many OUA generation rounds the per-model allowance is
	// spread across. More rounds means finer pruning granularity.
	Rounds int
	// MABChunk is the token chunk granted per bandit pull. The thesis
	// text says "next token"; per-token round trips are pathological over
	// HTTP, and §6.3 describes chunked partial outputs, so pulls are
	// chunk-sized and configurable.
	MABChunk int
	// Gamma0 is the initial UCB1 exploration coefficient; it decays as
	// γ = Gamma0·(1 − usedTokens/MaxTokens) (Algorithm 2 line 11).
	Gamma0 float64
	// Encoder embeds prompts and partial responses for scoring. Nil means
	// embedding.Default().
	Encoder embedding.Encoder
	// OnEvent, when non-nil, receives every orchestration event (chunk
	// arrivals, score updates, prunes, the final selection) synchronously.
	// Used by the application layer to stream progress to clients.
	OnEvent func(Event)
	// Recorder, when non-nil, also receives every orchestration event,
	// after OnEvent — the metrics/tracing tap (see the Recorder type).
	Recorder Recorder
	// Feedback, when non-nil, adds each model's learned prior (§9.5
	// "Self-Improving Orchestration") to its combined score, so models
	// the user has rated well attract budget sooner.
	Feedback *FeedbackStore
	// Priors, when non-empty, warm-start the bandit strategies' per-arm
	// reward estimates (predictive routing; DESIGN.md "Predictive
	// routing"): Priors[model] is the expected per-pull reward on the
	// score scale, counted as PriorWeight pseudo-pulls, so a routed arm
	// starts from its cluster's historical mean instead of from zero
	// history. Models absent from the map start cold. OUA ignores
	// priors — its allocation is round-robin, not mean-driven — and the
	// final winner is always chosen on actual final scores, so priors
	// steer budget, never the selection.
	Priors map[string]float64
	// PriorWeight is the pseudo-pull mass behind each entry of Priors.
	// Non-positive takes the default 2.
	PriorWeight float64
	// Retry is the per-chunk fault-tolerance budget: every GenerateChunk
	// call is retried with exponential backoff under a per-attempt
	// timeout before its model is declared failed. The zero value takes
	// DefaultRetryPolicy.
	Retry RetryPolicy
	// MaxConcurrent bounds the in-flight GenerateChunk calls of one
	// fan-out round. Zero (the default) runs one goroutine per active
	// model, which is the paper's "stream partial outputs concurrently";
	// a positive value caps the workers for backends that throttle.
	MaxConcurrent int
	// DisableStreaming forces the per-round GenerateChunk path even when
	// the backend implements llm.StreamingBackend. The default (false)
	// opens one persistent generation stream per (model, query) and
	// slices per-round chunks off a client-side buffer, so round r+1's
	// tokens decode while round r is being scored (see stream.go).
	DisableStreaming bool
	// Logger, when non-nil, receives structured orchestration logs:
	// model failures and stream fallbacks at warn, prunes/early exits
	// and the winning selection at debug. The caller stamps it with
	// query/trace IDs (logger.With) before handing it over; core never
	// logs prompt or response text. Nil disables logging.
	Logger *slog.Logger
}

// DefaultConfig returns the tuned configuration used throughout the
// repository. The paper's pseudocode margins of 0.5 are calibrated for
// raw score gaps that unit-norm embeddings rarely produce (cosine
// similarities of competing plausible answers cluster tightly), so the
// defaults use margins at which pruning and early exit actually trigger.
func DefaultConfig(models ...string) Config {
	return Config{
		Models:      models,
		MaxTokens:   2048,
		Alpha:       0.7,
		Beta:        0.3,
		PruneMargin: 0.08,
		LeadMargin:  0.08,
		Rounds:      4,
		MABChunk:    16,
		Gamma0:      0.3,
	}
}

// PaperStrictConfig returns the configuration with the pseudocode's
// literal constants (α=0.7, β=0.3, margins 0.5). With these margins
// pruning and early exit are rare, which reproduces the thesis
// algorithms exactly as written.
func PaperStrictConfig(models ...string) Config {
	cfg := DefaultConfig(models...)
	cfg.PruneMargin = 0.5
	cfg.LeadMargin = 0.5
	return cfg
}

func (c Config) withDefaults() Config {
	if c.MaxTokens <= 0 {
		c.MaxTokens = 2048
	}
	if c.Alpha == 0 && c.Beta == 0 {
		c.Alpha, c.Beta = 0.7, 0.3
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.MABChunk <= 0 {
		c.MABChunk = 16
	}
	if c.Gamma0 <= 0 {
		c.Gamma0 = 0.3
	}
	if c.PriorWeight <= 0 {
		c.PriorWeight = 2
	}
	if c.Encoder == nil {
		c.Encoder = embedding.Default()
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// validate rejects configurations the algorithms cannot run with.
func (c Config) validate() error {
	if len(c.Models) == 0 {
		return errors.New("core: config has no models")
	}
	seen := make(map[string]bool, len(c.Models))
	for _, m := range c.Models {
		if m == "" {
			return errors.New("core: config has an empty model name")
		}
		if seen[m] {
			return fmt.Errorf("core: duplicate model %q", m)
		}
		seen[m] = true
	}
	if c.PruneMargin < 0 || c.LeadMargin < 0 {
		return errors.New("core: margins must be non-negative")
	}
	if c.Alpha < 0 || c.Beta < 0 {
		return errors.New("core: alpha and beta must be non-negative")
	}
	if c.MaxConcurrent < 0 {
		return errors.New("core: MaxConcurrent must be non-negative")
	}
	return nil
}

// ModelOutcome is the per-model record of one orchestrated query.
type ModelOutcome struct {
	// Model is the model tag.
	Model string `json:"model"`
	// Response is the model's accumulated (possibly partial) answer.
	Response string `json:"response"`
	// Tokens is how many tokens the model generated for this query.
	Tokens int `json:"tokens"`
	// Score is the model's final combined score α·qSim + β·interSim.
	Score float64 `json:"score"`
	// QuerySim is the final cosine similarity to the prompt embedding.
	QuerySim float64 `json:"query_sim"`
	// InterSim is the final average similarity to the other candidates.
	InterSim float64 `json:"inter_sim"`
	// Pulls is how many generation calls the model received.
	Pulls int `json:"pulls"`
	// Pruned reports whether the model was removed before completion —
	// by trailing the scoreboard or by failing its chunk calls.
	Pruned bool `json:"pruned"`
	// Done reports whether the model finished its answer naturally.
	Done bool `json:"done"`
	// DoneReason is the final generation status ("stop", "length", "").
	DoneReason string `json:"done_reason,omitempty"`
	// Failed reports that the model's backend kept erroring after the
	// retry budget and was dropped from the query (graceful degradation).
	Failed bool `json:"failed,omitempty"`
	// Error is the final backend error of a failed model.
	Error string `json:"error,omitempty"`
}

// Result is the outcome of one orchestrated query.
type Result struct {
	// Strategy is the policy that produced the result.
	Strategy Strategy `json:"strategy"`
	// Answer is the selected response text.
	Answer string `json:"answer"`
	// Model is the tag of the model whose answer was selected.
	Model string `json:"model"`
	// TokensUsed is the total generation cost across all models.
	TokensUsed int `json:"tokens_used"`
	// Rounds is how many allocation rounds (OUA) or pulls (MAB) ran.
	Rounds int `json:"rounds"`
	// EarlyExit reports whether OUA returned before exhausting budgets.
	EarlyExit bool `json:"early_exit"`
	// Outcomes holds the per-model records, sorted by descending score.
	Outcomes []ModelOutcome `json:"outcomes"`
	// Elapsed is the wall-clock orchestration time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Outcome returns the record for one model, if present.
func (r Result) Outcome(model string) (ModelOutcome, bool) {
	for _, o := range r.Outcomes {
		if o.Model == model {
			return o, true
		}
	}
	return ModelOutcome{}, false
}

// Orchestrator coordinates candidate models for one query at a time. It
// is stateless across queries and safe for concurrent use as long as the
// backend is.
type Orchestrator struct {
	backend Backend
	cfg     Config
}

// New builds an orchestrator. The configuration is validated eagerly so
// misconfigurations surface at construction rather than at query time.
func New(backend Backend, cfg Config) (*Orchestrator, error) {
	if backend == nil {
		return nil, errors.New("core: nil backend")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Orchestrator{backend: backend, cfg: cfg}, nil
}

// Config returns the orchestrator's effective (defaulted) configuration.
func (o *Orchestrator) Config() Config { return o.cfg }

// Run dispatches to the strategy implementation. For StrategySingle the
// first configured model serves the query with the whole budget.
func (o *Orchestrator) Run(ctx context.Context, strategy Strategy, prompt string) (Result, error) {
	switch strategy {
	case StrategyOUA:
		return o.OUA(ctx, prompt)
	case StrategyMAB:
		return o.MAB(ctx, prompt)
	case StrategyHybrid:
		return o.Hybrid(ctx, prompt)
	case StrategySingle:
		return o.Single(ctx, o.cfg.Models[0], prompt)
	default:
		return Result{}, fmt.Errorf("core: unknown strategy %q", strategy)
	}
}

// Single answers with one fixed model and the full budget — the paper's
// static baseline (§8.1 execution mode 1).
func (o *Orchestrator) Single(ctx context.Context, model, prompt string) (Result, error) {
	start := time.Now()
	found := false
	for _, m := range o.cfg.Models {
		if m == model {
			found = true
			break
		}
	}
	if !found {
		return Result{}, fmt.Errorf("core: model %q is not configured", model)
	}
	o.emit(Event{Type: EventStart, Strategy: StrategySingle, Model: model})
	callStart := time.Now()
	chunk, attempts, err := generateWithRetry(ctx, o.backend,
		llm.ChunkRequest{Model: model, Prompt: prompt, MaxTokens: o.cfg.MaxTokens}, o.cfg.Retry)
	if err != nil {
		// One model is the whole candidate pool: its failure is the
		// everyone-failed case, not a degradable one.
		o.emit(Event{Type: EventModelFailed, Strategy: StrategySingle, Model: model,
			Attempts: attempts, Reason: err.Error()})
		return Result{}, fmt.Errorf("core: single %s: %w", model, err)
	}
	o.emit(Event{Type: EventChunk, Strategy: StrategySingle, Model: model, Text: chunk.Text,
		Tokens: chunk.EvalCount, Elapsed: time.Since(callStart), Attempts: attempts})
	qv := o.cfg.Encoder.Encode(prompt)
	sim := embedding.Cosine(qv, o.cfg.Encoder.Encode(chunk.Text))
	out := ModelOutcome{
		Model: model, Response: chunk.Text, Tokens: chunk.EvalCount,
		Score: o.cfg.Alpha * sim, QuerySim: sim, Pulls: 1,
		Done: chunk.DoneReason == llm.DoneStop, DoneReason: string(chunk.DoneReason),
	}
	res := Result{
		Strategy: StrategySingle, Answer: chunk.Text, Model: model,
		TokensUsed: chunk.EvalCount, Rounds: 1,
		Outcomes: []ModelOutcome{out}, Elapsed: time.Since(start),
	}
	o.emit(Event{Type: EventWinner, Strategy: StrategySingle, Model: model, Text: chunk.Text,
		Tokens: res.TokensUsed, Elapsed: res.Elapsed})
	return res, nil
}

func (o *Orchestrator) emit(ev Event) {
	if o.cfg.OnEvent == nil && o.cfg.Recorder == nil && o.cfg.Logger == nil {
		return
	}
	ev.Time = time.Now()
	if o.cfg.OnEvent != nil {
		o.cfg.OnEvent(ev)
	}
	if o.cfg.Recorder != nil {
		o.cfg.Recorder.RecordEvent(ev)
	}
	o.logEvent(ev)
}

// logEvent maps the noteworthy orchestration events onto the
// structured log. Failures and degradations warn; control-flow
// decisions (prune, early exit, winner) log at debug so a debug-level
// run narrates the whole query without flooding info-level output with
// per-chunk noise.
func (o *Orchestrator) logEvent(ev Event) {
	log := o.cfg.Logger
	if log == nil {
		return
	}
	switch ev.Type {
	case EventModelFailed:
		log.Warn("model failed",
			"model", ev.Model, "attempts", ev.Attempts, "reason", ev.Reason)
	case EventStreamFallback:
		log.Warn("stream fallback", "model", ev.Model)
	case EventPrune:
		log.Debug("model pruned",
			"strategy", string(ev.Strategy), "model", ev.Model, "round", ev.Round)
	case EventWinner:
		log.Debug("winner selected",
			"strategy", string(ev.Strategy), "model", ev.Model,
			"tokens", ev.Tokens, "elapsed", ev.Elapsed)
	}
}

// scoreAll computes the combined score for every candidate with a
// non-empty response: α·cos(resp, prompt) + β·(average cosine to the
// other candidates' responses). It is the one-shot form of the scoring
// fast path (scorer.go): a fresh scorer runs a single pass, so all the
// incremental machinery reduces to encode-everything-then-score while
// staying the same code the per-round strategies exercise.
func scoreAll(enc embedding.Encoder, qv embedding.Vector, alpha, beta float64, cands []*candidate) {
	newScorer(enc, qv, alpha, beta).pass(cands)
}

// candidate is the in-flight state of one model during orchestration.
type candidate struct {
	model    string
	response string
	cont     []int
	tokens   int
	pulls    int
	done     bool
	reason   llm.DoneReason
	pruned   bool
	failed   bool
	failErr  error

	// Scoring state, owned by the query's scorer (scorer.go): acc is the
	// candidate's incremental encoder state, encoded how many bytes of
	// response it has consumed, emb the materialized embedding (storage
	// reused across rounds), selfDot its cached ⟨emb,emb⟩ for the
	// sum-vector identity, and simsValid whether querySim/interSim are
	// current for the unchanged embedding.
	acc       *embedding.Accumulator
	encoded   int
	emb       embedding.Vector
	selfDot   float64
	simsValid bool
	querySim  float64
	interSim  float64
	score     float64

	// OUA budget
	remaining int

	// MAB state. priorSum/priorPulls carry the warm-start pseudo-pulls
	// from Config.Priors; both stay zero without priors, which keeps
	// every bandit formula identical to the prior-free code path.
	rewardSum  float64
	priorSum   float64
	priorPulls float64

	// sess is the candidate's persistent generation session (stream.go),
	// attached when the backend supports streaming; nil keeps the plain
	// per-round GenerateChunk path.
	sess *genSession
}

// newCandidate builds the in-flight state for one model, seeding the
// bandit warm-start pseudo-pulls when the config carries a prior for it.
func (o *Orchestrator) newCandidate(model string) *candidate {
	c := &candidate{model: model}
	if prior, ok := o.cfg.Priors[model]; ok {
		c.priorSum = prior * o.cfg.PriorWeight
		c.priorPulls = o.cfg.PriorWeight
	}
	return c
}

func (c *candidate) outcome() ModelOutcome {
	out := ModelOutcome{
		Model: c.model, Response: c.response, Tokens: c.tokens,
		Score: c.score, QuerySim: c.querySim, InterSim: c.interSim,
		Pulls: c.pulls, Pruned: c.pruned, Done: c.done, DoneReason: string(c.reason),
		Failed: c.failed,
	}
	if c.failErr != nil {
		out.Error = c.failErr.Error()
	}
	return out
}

// outcomes converts candidates to sorted ModelOutcome records (by
// descending score, name-tiebroken for determinism).
func outcomes(cands []*candidate) []ModelOutcome {
	out := make([]ModelOutcome, len(cands))
	for i, c := range cands {
		out[i] = c.outcome()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Model < out[j].Model
	})
	return out
}
