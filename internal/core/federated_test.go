package core

import (
	"context"
	"testing"

	"llmms/internal/llm"
)

func TestMultiBackendDispatch(t *testing.T) {
	siteA := newFakeBackend(map[string]string{"good": "The sky is blue on a clear day."})
	siteB := newFakeBackend(map[string]string{"okay": "On a clear day the sky appears blue."})
	mb := NewMultiBackend(nil)
	if err := mb.Register("good", siteA); err != nil {
		t.Fatal(err)
	}
	if err := mb.Register("okay", siteB); err != nil {
		t.Fatal(err)
	}
	if got := mb.Models(); len(got) != 2 || got[0] != "good" || got[1] != "okay" {
		t.Fatalf("models = %v", got)
	}

	o := mustNew(t, mb, DefaultConfig("good", "okay"))
	res, err := o.OUA(context.Background(), testPrompt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == "" {
		t.Fatal("empty answer")
	}
	// Each daemon only served its own model.
	if siteA.callCount("okay") != 0 || siteB.callCount("good") != 0 {
		t.Fatal("request crossed daemon boundaries")
	}
	if siteA.callCount("good") == 0 || siteB.callCount("okay") == 0 {
		t.Fatal("a daemon was never consulted")
	}
}

func TestMultiBackendFallbackAndErrors(t *testing.T) {
	fallback := newFakeBackend(map[string]string{"misc": "fallback answer."})
	mb := NewMultiBackend(fallback)
	if _, err := mb.GenerateChunk(context.Background(), llm.ChunkRequest{Model: "misc", Prompt: "q", MaxTokens: 8}); err != nil {
		t.Fatalf("fallback dispatch failed: %v", err)
	}
	strict := NewMultiBackend(nil)
	if _, err := strict.GenerateChunk(context.Background(), llm.ChunkRequest{Model: "ghost", Prompt: "q", MaxTokens: 8}); err == nil {
		t.Fatal("expected error for unrouted model without fallback")
	}
	if err := strict.Register("", fallback); err == nil {
		t.Fatal("expected error for empty model tag")
	}
	if err := strict.Register("m", nil); err == nil {
		t.Fatal("expected error for nil backend")
	}
}
